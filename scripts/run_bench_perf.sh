#!/usr/bin/env bash
# Regenerate the committed bench_perf JSON trajectory.
#
# Usage:
#   scripts/run_bench_perf.sh [output.json] [build-dir]
#
# Builds bench_perf in Release (-O3) and writes one JSON document
# with every benchmark. The committed trajectory files at the repo
# root (BENCH_baseline.json, BENCH_pr6.json, ...) are produced by
# exactly this invocation, so successive snapshots stay comparable:
#
#   scripts/run_bench_perf.sh BENCH_baseline.json
#
# Notes:
#   - google-benchmark in this toolchain takes --benchmark_min_time
#     as a plain double (seconds), without the "s" suffix.
#   - Run on an otherwise idle machine; the hot loops are
#     single-digit-microsecond and sensitive to noise.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-bench_perf.json}"
build_dir="${2:-${repo_root}/build}"

case "${out}" in
  /*) ;;
  *) out="$(pwd)/${out}" ;;
esac

cmake -S "${repo_root}" -B "${build_dir}" \
      -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" --target bench_perf -j >/dev/null

"${build_dir}/bench_perf" \
    --benchmark_format=json \
    --benchmark_out_format=json \
    --benchmark_out="${out}" \
    --benchmark_min_time=0.2 \
    --benchmark_repetitions=1

echo "wrote ${out}"
