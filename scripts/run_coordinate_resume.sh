#!/usr/bin/env bash
#
# Checkpoint/resume gate for the dynamic coordinator: start a
# coordination whose in-flight chunks hang, SIGKILL the
# coordinator mid-run (after at least one chunk's outcomes hit
# the journal), then re-run with --resume and require the
# finished report to be byte-identical to the single-process
# --batch report.
#
# Usage: run_coordinate_resume.sh ECO_CHIP BATCH.json WORKDIR

set -eu

APP="$1"
BATCH="$2"
WORK="$3"

rm -rf "$WORK"
mkdir -p "$WORK"

"$APP" --batch "$BATCH" --json "$WORK/ref.json" > /dev/null

# chunk_000 completes normally; while the hang marker exists,
# every other chunk sleeps forever -- the in-flight work the test
# SIGKILLs the coordinator under. The orphaned sleepers exit
# without ever writing a report or an event, like a worker lost
# to a dead machine.
cat > "$WORK/worker.sh" <<WORKER
#!/bin/sh
if [ -e "$WORK/hang" ] && [ "\$(basename "\$1")" != "chunk_000.json" ]; then
    sleep 600
    exit 3
fi
exec "$APP" --shard_worker "\$1" --json "\$2" --engine_threads "\$3"
WORKER
chmod +x "$WORK/worker.sh"

cat > "$WORK/hosts.json" <<HOSTS
{
    "hosts": [
        {
            "name": "localhost",
            "slots": 2,
            "command": "sh $WORK/worker.sh {sub_batch} {report} {threads}"
        }
    ]
}
HOSTS

: > "$WORK/hang"
# Logs to files, not pipes: the orphaned sleepers inherit the
# coordinator's stdio, and an inherited pipe would keep the test
# runner waiting on EOF long after the test is done.
"$APP" --coordinate "$BATCH" --hosts "$WORK/hosts.json" \
    --shard_dir "$WORK/coord" --chunk_size 2 \
    --json "$WORK/killed.json" > "$WORK/killed.log" 2>&1 &
COORD=$!

# Wait until the journal holds at least one complete line (the
# trailing byte is a newline), then kill the coordinator with a
# signal it cannot catch.
JOURNAL="$WORK/coord/journal.ndjson"
for _ in $(seq 1 600); do
    if [ -s "$JOURNAL" ] && [ -z "$(tail -c 1 "$JOURNAL")" ]; then
        break
    fi
    sleep 0.05
done
if ! [ -s "$JOURNAL" ]; then
    echo "FAIL: no outcome ever reached the journal" >&2
    kill -9 "$COORD" 2>/dev/null || true
    exit 1
fi
kill -9 "$COORD" 2>/dev/null || true
wait "$COORD" 2>/dev/null || true

rm -f "$WORK/hang"
"$APP" --coordinate "$BATCH" --hosts "$WORK/hosts.json" \
    --shard_dir "$WORK/coord" --chunk_size 2 --resume \
    --json "$WORK/resumed.json" > "$WORK/resumed.log"

if ! grep -q "^resumed " "$WORK/resumed.log"; then
    echo "FAIL: the resumed run replayed no journaled outcomes" >&2
    cat "$WORK/resumed.log" >&2
    exit 1
fi

# Best effort: reap the orphaned sleeper workers.
pkill -9 -f "$WORK/worker.sh" 2> /dev/null || true

cmp "$WORK/ref.json" "$WORK/resumed.json"
echo "resume OK: finished report is byte-identical to --batch"
