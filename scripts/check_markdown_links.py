#!/usr/bin/env python3
"""Check that every relative markdown link in README.md and docs/
resolves to an existing file.

External links (http/https/mailto) and pure-fragment links (#...)
are skipped; a `path#fragment` link is checked for the path part
only. Exits 1 listing every broken link.

Usage: scripts/check_markdown_links.py [FILE_OR_DIR ...]
       (default: README.md docs/)
"""

import re
import sys
from pathlib import Path

# [text](target) -- non-greedy text, target up to the closing
# paren; inline code spans are stripped first so examples of the
# syntax don't trip the checker.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE = re.compile(r"`[^`]*`")


def collect(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md":
            yield path
        else:
            print(f"warning: skipping non-markdown {path}",
                  file=sys.stderr)


def check_file(md: Path):
    text = md.read_text(encoding="utf-8")
    text = CODE_FENCE.sub("", text)
    text = INLINE_CODE.sub("", text)
    broken = []
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not (md.parent / rel).exists():
            broken.append((target, rel))
    return broken


def main(argv):
    roots = argv[1:] or ["README.md", "docs"]
    files = list(collect(roots))
    if not files:
        print("error: no markdown files found", file=sys.stderr)
        return 2
    total = 0
    bad = 0
    for md in files:
        broken = check_file(md)
        total += 1
        for target, rel in broken:
            bad += 1
            print(f"{md}: broken link '{target}' "
                  f"(missing {md.parent / rel})")
    print(f"checked {total} markdown file(s), "
          f"{bad} broken link(s)")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
