#!/usr/bin/env bash
# Smoke-run every `./build/eco_chip ...` invocation documented in
# the docs so the documented commands cannot rot: each line of a
# fenced code block that starts with `./build/eco_chip`
# (backslash continuations joined) is executed from the repo root
# and must exit 0. Every scanned doc must contain at least one
# invocation (doc/scanner drift is itself an error).
#
# Usage: scripts/run_doc_invocations.sh [ECO_CHIP_BINARY] [DOC ...]
#   ECO_CHIP_BINARY  substituted for `./build/eco_chip`
#                    (default: ./build/eco_chip)
#   DOC ...          markdown files to scan
#                    (default: docs/cli.md docs/distributed.md
#                     docs/serving.md docs/search.md)
set -u

APP="${1:-./build/eco_chip}"
if [ "$#" -ge 1 ]; then
    shift
fi
if [ "$#" -ge 1 ]; then
    DOCS=("$@")
else
    DOCS=(docs/cli.md docs/distributed.md docs/serving.md docs/search.md)
fi

if [ ! -x "$APP" ]; then
    echo "error: eco_chip binary not executable: $APP" >&2
    exit 2
fi

ran=0
failed=0

for DOC in "${DOCS[@]}"; do
    if [ ! -f "$DOC" ]; then
        echo "error: doc file not found: $DOC" >&2
        exit 2
    fi
    doc_ran=0

    # Join "\"-continued lines, then keep the eco_chip invocations.
    while IFS= read -r cmd; do
        # Substitute the binary path for the documented one.
        cmd="${APP}${cmd#./build/eco_chip}"
        ran=$((ran + 1))
        doc_ran=$((doc_ran + 1))
        echo "[$ran] $cmd"
        status=0
        bash -c "$cmd" >/dev/null 2>&1 || status=$?
        if [ "$status" -ne 0 ]; then
            echo "    FAILED (exit $status)" >&2
            failed=$((failed + 1))
        fi
    done < <(sed -e ':a' -e '/\\$/N' -e 's/\\\n[[:space:]]*/ /' -e 'ta' "$DOC" \
             | grep -E '^\./build/eco_chip')

    if [ "$doc_ran" -eq 0 ]; then
        echo "error: no invocations found in $DOC (doc/scanner drift?)" >&2
        exit 2
    fi
done

echo "doc invocations: $((ran - failed))/$ran ok"
[ "$failed" -eq 0 ]
