#!/usr/bin/env bash
# serve_equivalence gate: the BatchReport a client assembles from
# served responses (--connect --json) must be byte-identical to
# the single-process --batch report -- on a cold cache, and again
# when every answer comes from the on-disk result cache.
#
# Usage: run_serve_cmp.sh APP BATCH_FILE WORKDIR
set -euo pipefail

APP=$1
BATCH=$2
WORKDIR=$3

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

# sun_path tops out around 108 bytes and build trees can exceed
# it, so the socket lives in a short mktemp dir, not $WORKDIR.
SOCK_DIR=$(mktemp -d /tmp/eco_serve.XXXXXX)
SOCK="$SOCK_DIR/eco.sock"

cleanup() {
    if [[ -n "${SERVER_PID:-}" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$SOCK_DIR"
}
trap cleanup EXIT

# Reference: the plain --batch report.
"$APP" --batch "$BATCH" --json "$WORKDIR/batch.json" >/dev/null

"$APP" --serve --socket "$SOCK" --cache_dir "$WORKDIR/cache" \
    >"$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

# Cold: every request evaluates on the server's engine.
"$APP" --connect "$SOCK" --batch "$BATCH" \
    --json "$WORKDIR/served_cold.json" >/dev/null 2>/dev/null
cmp "$WORKDIR/batch.json" "$WORKDIR/served_cold.json"

# Warm: every request answers from the result cache.
"$APP" --connect "$SOCK" --batch "$BATCH" \
    --json "$WORKDIR/served_warm.json" >/dev/null 2>/dev/null
cmp "$WORKDIR/batch.json" "$WORKDIR/served_warm.json"

# The stats verb must show the cache actually answered round two.
STATS=$("$APP" --connect "$SOCK" --stats)
echo "stats: $STATS"
echo "$STATS" | grep -q '"hits":[1-9]' || {
    echo "expected cache hits in stats reply" >&2
    exit 1
}

"$APP" --connect "$SOCK" --shutdown >/dev/null
wait "$SERVER_PID"
echo "serve_equivalence: cold and cache-hit reports are" \
     "byte-identical to --batch"
