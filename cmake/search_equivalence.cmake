# CTest script: the BatchReport an exhaustive `--search` records
# (--report) must be byte-identical to the single-process
# `--batch` run over the hand-expanded request list the same
# search writes (--expand) -- the PR 8 acceptance gate, exercised
# here at the CLI level; tests/test_search.cpp locks the same
# property at the library level.
#
# Variables: APP (eco_chip binary), SPEC (search spec JSON),
#            WORKDIR (scratch directory).

if(NOT APP OR NOT SPEC OR NOT WORKDIR)
    message(FATAL_ERROR "usage: cmake -DAPP=... -DSPEC=... -DWORKDIR=... -P search_equivalence.cmake")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(expanded_json "${WORKDIR}/expanded_requests.json")
set(search_json "${WORKDIR}/search_report.json")
set(batch_json "${WORKDIR}/batch_report.json")

execute_process(
    COMMAND "${APP}" --search "${SPEC}"
            --expand "${expanded_json}"
            --report "${search_json}"
            --engine_threads 2
    RESULT_VARIABLE search_rc
    OUTPUT_QUIET)
if(NOT search_rc EQUAL 0)
    message(FATAL_ERROR "--search run failed (exit ${search_rc})")
endif()

execute_process(
    COMMAND "${APP}" --batch "${expanded_json}"
            --engine_threads 4 --json "${batch_json}"
    RESULT_VARIABLE batch_rc
    OUTPUT_QUIET)
if(NOT batch_rc EQUAL 0)
    message(FATAL_ERROR "--batch run failed (exit ${batch_rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${search_json}" "${batch_json}"
    RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
        "exhaustive search report differs from the hand-expanded "
        "batch report:\n  ${search_json}\n  ${batch_json}")
endif()

message(STATUS "search/batch reports byte-identical")
