# CTest script: `eco_chip --shard --shards 4` must produce a
# merged BatchReport byte-identical to the single-process
# `--batch` run of the same file (the PR 4 acceptance gate,
# exercised here at the CLI level; tests/test_engine.cpp locks
# the same property at the library level).
#
# Variables: APP (eco_chip binary), BATCH (requests.json),
#            WORKDIR (scratch directory).

if(NOT APP OR NOT BATCH OR NOT WORKDIR)
    message(FATAL_ERROR "usage: cmake -DAPP=... -DBATCH=... -DWORKDIR=... -P shard_equivalence.cmake")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(batch_json "${WORKDIR}/batch_report.json")
set(shard_json "${WORKDIR}/shard_report.json")

execute_process(
    COMMAND "${APP}" --batch "${BATCH}" --engine_threads 4
            --json "${batch_json}"
    RESULT_VARIABLE batch_rc
    OUTPUT_QUIET)
if(NOT batch_rc EQUAL 0)
    message(FATAL_ERROR "--batch run failed (exit ${batch_rc})")
endif()

execute_process(
    COMMAND "${APP}" --shard "${BATCH}" --shards 4
            --engine_threads 2 --json "${shard_json}"
    RESULT_VARIABLE shard_rc
    OUTPUT_QUIET)
if(NOT shard_rc EQUAL 0)
    message(FATAL_ERROR "--shard run failed (exit ${shard_rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${batch_json}" "${shard_json}"
    RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
        "merged shard report differs from the single-process "
        "batch report:\n  ${batch_json}\n  ${shard_json}")
endif()

message(STATUS "shard/batch reports byte-identical")
