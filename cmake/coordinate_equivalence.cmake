# CTest script: `eco_chip --coordinate --hosts HOSTS.json` must
# produce a merged BatchReport byte-identical to the
# single-process `--batch` run of the same file (the PR 5
# acceptance gate, exercised here at the CLI level through the
# command transport; tests/test_engine.cpp locks the same
# property at the library level, with fault injection).
#
# Variables: APP (eco_chip binary), BATCH (requests.json),
#            HOSTS (hosts.json manifest),
#            WORKDIR (scratch directory).

if(NOT APP OR NOT BATCH OR NOT HOSTS OR NOT WORKDIR)
    message(FATAL_ERROR "usage: cmake -DAPP=... -DBATCH=... -DHOSTS=... -DWORKDIR=... -P coordinate_equivalence.cmake")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(batch_json "${WORKDIR}/batch_report.json")
set(coordinate_json "${WORKDIR}/coordinate_report.json")

execute_process(
    COMMAND "${APP}" --batch "${BATCH}" --engine_threads 4
            --json "${batch_json}"
    RESULT_VARIABLE batch_rc
    OUTPUT_QUIET)
if(NOT batch_rc EQUAL 0)
    message(FATAL_ERROR "--batch run failed (exit ${batch_rc})")
endif()

execute_process(
    COMMAND "${APP}" --coordinate "${BATCH}" --hosts "${HOSTS}"
            --engine_threads 2 --json "${coordinate_json}"
    RESULT_VARIABLE coordinate_rc
    OUTPUT_QUIET)
if(NOT coordinate_rc EQUAL 0)
    message(FATAL_ERROR "--coordinate run failed (exit ${coordinate_rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${batch_json}" "${coordinate_json}"
    RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
        "merged coordinated report differs from the "
        "single-process batch report:\n  ${batch_json}\n  ${coordinate_json}")
endif()

message(STATUS "coordinate/batch reports byte-identical")
