/**
 * @file
 * Ablation study — the contribution of each ECO-CHIP model term
 * that the ACT baseline lacks (the paper's Sec. VIII critique,
 * quantified): wafer-periphery wastage, equipment-efficiency
 * derate, design CFP, and area-dependent packaging. Each row
 * removes one term from the full model on the GA102 (7,14,10)
 * 3-chiplet testcase.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

namespace {

struct Ablation
{
    const char *name;
    double embodiedCo2Kg;
};

double
embodied(const EcoChipConfig &config, bool zero_design,
         bool act_package)
{
    EcoChip estimator(config);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 14.0, 10.0);
    CarbonReport r = estimator.estimate(system);
    double total = r.mfgCo2Kg;
    total += act_package ? ActModel::kPackageCo2Kg
                         : r.hi.totalCo2Kg();
    if (!zero_design)
        total += r.designCo2Kg;
    return total;
}

} // namespace

int
main()
{
    bench::banner("Ablation",
                  "embodied-carbon contribution of each model "
                  "term (GA102 3-chiplet (7,14,10), kg CO2)");

    EcoChipConfig full;
    full.operating = testcases::ga102Operating();

    EcoChipConfig no_wastage = full;
    no_wastage.includeWastage = false;

    std::vector<Ablation> rows_data;
    rows_data.push_back({"full model",
                         embodied(full, false, false)});
    rows_data.push_back({"- wafer wastage",
                         embodied(no_wastage, false, false)});
    rows_data.push_back({"- design CFP",
                         embodied(full, true, false)});
    rows_data.push_back({"- area-dependent package (ACT's "
                         "fixed 150 g)",
                         embodied(full, false, true)});
    rows_data.push_back(
        {"- all three (ACT-like)",
         embodied(no_wastage, true, true)});

    // ACT itself (also drops eta_eq).
    {
        EcoChip estimator(full);
        rows_data.push_back(
            {"ACT baseline",
             estimator.actEmbodiedCo2Kg(
                 testcases::ga102ThreeChiplet(estimator.tech(),
                                              7.0, 14.0, 10.0))});
    }

    const double reference = rows_data.front().embodiedCo2Kg;
    std::vector<std::vector<std::string>> rows;
    for (const auto &row : rows_data) {
        rows.push_back({row.name,
                        bench::num(row.embodiedCo2Kg),
                        bench::num(row.embodiedCo2Kg - reference),
                        bench::num(row.embodiedCo2Kg /
                                   reference)});
    }
    bench::emit({"variant", "Cemb_kg", "delta_kg", "vs_full"},
                rows);

    // Energy-source ablation: how far renewables take the same
    // hardware.
    bench::banner("Ablation (energy)",
                  "embodied carbon vs. fab/package/design energy "
                  "source");
    rows.clear();
    for (double intensity : {700.0, 450.0, 230.0, 41.0, 11.0}) {
        EcoChipConfig config = full;
        config.fabIntensityGPerKwh = intensity;
        config.package.intensityGPerKwh = intensity;
        config.design.intensityGPerKwh = intensity;
        rows.push_back({bench::num(intensity),
                        bench::num(
                            embodied(config, false, false))});
    }
    bench::emit({"gCO2_per_kWh", "Cemb_kg"}, rows);
    return 0;
}
