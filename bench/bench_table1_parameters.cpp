/**
 * @file
 * Table I — the realized input-parameter database: every Table I
 * parameter as instantiated by the default TechDb calibration,
 * per technology node, so the calibration is auditable against the
 * published ranges.
 */

#include <vector>

#include "bench_util.h"
#include "tech/carbon_intensity.h"
#include "tech/tech_db.h"

using namespace ecochip;

int
main()
{
    TechDb tech;

    bench::banner("Table I (1/3)",
                  "silicon manufacturing parameters per node");
    std::vector<std::vector<std::string>> rows;
    for (double node : TechDb::standardNodesNm()) {
        rows.push_back(
            {bench::num(node),
             bench::num(tech.defectDensityPerCm2(node)),
             bench::num(tech.transistorDensityMtrPerMm2(
                 DesignType::Logic, node)),
             bench::num(tech.transistorDensityMtrPerMm2(
                 DesignType::Memory, node)),
             bench::num(tech.transistorDensityMtrPerMm2(
                 DesignType::Analog, node)),
             bench::num(tech.epaKwhPerCm2(node)),
             bench::num(tech.cgasKgPerCm2(node)),
             bench::num(tech.cmaterialKgPerCm2(node)),
             bench::num(tech.equipmentDerate(node)),
             bench::num(tech.edaProductivity(node))});
    }
    bench::emit({"node_nm", "D0_cm2", "DT_logic", "DT_mem",
                 "DT_analog", "EPA_kWh_cm2", "Cgas_kg_cm2",
                 "Cmat_kg_cm2", "eta_eq", "eta_EDA"},
                rows);

    bench::banner("Table I (2/3)",
                  "packaging parameters per node");
    rows.clear();
    for (double node : {22.0, 28.0, 40.0, 65.0}) {
        rows.push_back(
            {bench::num(node),
             bench::num(tech.eplaRdlKwhPerCm2(node)),
             bench::num(tech.eplaBridgeKwhPerCm2(node)),
             bench::num(tech.eplaInterposerKwhPerCm2(node)),
             bench::num(tech.energyPerTsvKwh(node), 6),
             bench::num(tech.rdlDefectDensityPerCm2(node)),
             bench::num(tech.interposerDefectDensityPerCm2(node))});
    }
    bench::emit({"node_nm", "EPLA_rdl", "EPLA_bridge",
                 "EPLA_interposer", "E_per_tsv_kWh", "D0_rdl",
                 "D0_interposer"},
                rows);

    bench::banner("Table I (3/3)",
                  "operating point and cost tables per node; "
                  "energy-source carbon intensities");
    rows.clear();
    for (double node : TechDb::standardNodesNm()) {
        rows.push_back(
            {bench::num(node),
             bench::num(tech.supplyVoltageV(node)),
             bench::num(tech.effCapFfPerTransistor(node)),
             bench::num(tech.leakageMaPerMtr(node)),
             bench::num(tech.waferCostUsd(node)),
             bench::num(tech.maskSetCostUsd(node))});
    }
    bench::emit({"node_nm", "Vdd_V", "Ceff_fF_per_tr",
                 "Ileak_mA_per_MTr", "wafer_usd", "mask_set_usd"},
                rows);

    rows.clear();
    for (EnergySource source :
         {EnergySource::Coal, EnergySource::Gas,
          EnergySource::Biomass, EnergySource::Solar,
          EnergySource::Geothermal, EnergySource::Hydro,
          EnergySource::Nuclear, EnergySource::Wind}) {
        rows.push_back(
            {toString(source),
             bench::num(carbonIntensityGPerKwh(source))});
    }
    bench::emit({"source", "gCO2_per_kWh"}, rows);
    return 0;
}
