/**
 * @file
 * Fig. 8 — total CFP split into embodied and operational, chiplet
 * systems vs. their monolithic counterparts:
 *
 * (a) Intel Emerald Rapids 2-chiplet with EMIB packaging (server
 *     CPU: operation-dominated);
 * (b) Apple A15 3-chiplet with RDL fanout (battery device:
 *     embodied-dominated, ~80/20 split as validated against
 *     Apple's product report).
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

namespace {

std::vector<std::string>
row(const std::string &label, const CarbonReport &r)
{
    const double total = r.totalCo2Kg();
    return {label,
            bench::num(r.mfgCo2Kg),
            bench::num(r.hi.totalCo2Kg()),
            bench::num(r.designCo2Kg),
            bench::num(r.embodiedCo2Kg()),
            bench::num(r.operation.co2Kg),
            bench::num(total),
            bench::num(r.embodiedCo2Kg() / total),
            bench::num(r.operation.co2Kg / total)};
}

const std::vector<std::string> kHeaders = {
    "system",  "Cmfg_kg", "CHI_kg",  "Cdes_kg", "Cemb_kg",
    "Cop_kg",  "Ctot_kg", "emb_frac", "op_frac"};

} // namespace

int
main()
{
    // (a) EMR 2-chiplet, EMIB.
    {
        EcoChipConfig config;
        config.package.arch = PackagingArch::SiliconBridge;
        config.operating = testcases::emrOperating();
        EcoChip estimator(config);

        bench::banner("Fig. 8(a)",
                      "EMR 2-chiplet (EMIB) vs. monolith, total "
                      "CFP split");
        std::vector<std::vector<std::string>> rows;
        rows.push_back(
            row("EMR-mono",
                estimator.estimate(
                    testcases::emrMonolithic(estimator.tech()))));
        rows.push_back(
            row("EMR-2c(EMIB)",
                estimator.estimate(
                    testcases::emrTwoChiplet(estimator.tech()))));
        bench::emit(kHeaders, rows);
    }

    // (b) A15 3-chiplet, RDL fanout.
    {
        EcoChipConfig config;
        config.package.arch = PackagingArch::RdlFanout;
        config.operating = testcases::a15Operating();
        EcoChip estimator(config);

        bench::banner("Fig. 8(b)",
                      "A15 3-chiplet (RDL fanout) vs. monolith, "
                      "total CFP split");
        std::vector<std::vector<std::string>> rows;
        rows.push_back(
            row("A15-mono",
                estimator.estimate(
                    testcases::a15Monolithic(estimator.tech()))));
        rows.push_back(row(
            "A15-3c(5,7,10)",
            estimator.estimate(testcases::a15ThreeChiplet(
                estimator.tech(), 5.0, 7.0, 10.0))));
        bench::emit(kHeaders, rows);
    }
    return 0;
}
