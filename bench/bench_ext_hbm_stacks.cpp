/**
 * @file
 * Extension — mixed 2.5D/3D integration: HBM-style memory towers
 * on a passive interposer for the GA102-class GPU. Composes the
 * paper's interposer (Eq. 9-style BEOL) and 3D (Eq. 11 bonds)
 * models into the architecture real HBM GPUs ship with, and sweeps
 * stack height.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

int
main()
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::PassiveInterposer;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const TechDb &tech = estimator.tech();

    bench::banner("Extension",
                  "HBM-style GA102: memory towers on a passive "
                  "interposer vs. the planar 3-chiplet split");

    std::vector<std::vector<std::string>> rows;
    auto add = [&](const std::string &label,
                   const SystemSpec &system) {
        const CarbonReport r = estimator.estimate(system);
        rows.push_back({label,
                        std::to_string(system.chiplets.size()),
                        bench::num(r.hi.packageAreaMm2),
                        bench::num(r.mfgCo2Kg),
                        bench::num(r.hi.packageCo2Kg),
                        bench::num(r.hi.stackBondCo2Kg),
                        bench::num(r.hi.packageYield),
                        bench::num(r.embodiedCo2Kg()),
                        bench::num(r.totalCo2Kg())});
    };

    add("planar-3c(7,10,14)",
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0));
    for (int tiers : {2, 4, 8}) {
        add("hbm-2x" + std::to_string(tiers),
            testcases::ga102Hbm(tech, 2, tiers));
    }
    add("hbm-4x4", testcases::ga102Hbm(tech, 4, 4));

    bench::emit({"config", "chiplets", "pkg_mm2", "Cmfg_kg",
                 "Cpkg_kg", "bond_kg", "pkg_yield", "Cemb_kg",
                 "Ctot_kg"},
                rows);
    return 0;
}
