/**
 * @file
 * Runtime benchmarks of the estimator itself with
 * google-benchmark: single estimates, full technology-space
 * sweeps, and the floorplanner. The reference artifact notes full
 * execution "should take 10 sec"; the C++ implementation targets
 * microseconds per estimate so it can sit inside architectural
 * DSE loops.
 */

#include <benchmark/benchmark.h>

#include "core/ecochip.h"
#include "core/explorer.h"
#include "core/testcases.h"
#include "floorplan/floorplan.h"
#include "session/analysis_session.h"

using namespace ecochip;

namespace {

void
BM_EstimateGa102ThreeChiplet(benchmark::State &state)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimator.estimate(system));
    }
}
BENCHMARK(BM_EstimateGa102ThreeChiplet);

void
BM_EstimateMonolith(benchmark::State &state)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const SystemSpec system =
        testcases::ga102Monolithic(estimator.tech());
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimator.estimate(system));
    }
}
BENCHMARK(BM_EstimateMonolith);

void
BM_TechSpaceSweep27(benchmark::State &state)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    TechSpaceExplorer explorer(estimator);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(explorer.sweep(system, nodes));
    }
}
BENCHMARK(BM_TechSpaceSweep27);

void
BM_TechSpaceSweep27ColdCache(benchmark::State &state)
{
    // Fresh estimator per sweep: the memoization-free baseline
    // the shared evaluation cache is measured against.
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    const TechDb tech;
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0);
    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    for (auto _ : state) {
        EcoChip estimator(config, tech);
        TechSpaceExplorer explorer(estimator);
        benchmark::DoNotOptimize(explorer.sweep(system, nodes));
    }
}
BENCHMARK(BM_TechSpaceSweep27ColdCache);

void
BM_SessionSweep27(benchmark::State &state)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.sweep(nodes));
    }
}
BENCHMARK(BM_SessionSweep27);

void
BM_MonteCarloBatched(benchmark::State &state)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const int threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.monteCarlo(
            256, 42, Parallelism{threads}));
    }
}
BENCHMARK(BM_MonteCarloBatched)->Arg(1)->Arg(4)->Arg(8);

void
BM_Floorplan(benchmark::State &state)
{
    const int nc = static_cast<int>(state.range(0));
    std::vector<ChipletBox> boxes;
    for (int i = 0; i < nc; ++i) {
        std::string name("c");
        name += std::to_string(i);
        boxes.push_back(
            {std::move(name), 50.0 + 13.0 * (i % 5), 1.0});
    }
    Floorplanner planner;
    for (auto _ : state) {
        benchmark::DoNotOptimize(planner.plan(boxes));
    }
}
BENCHMARK(BM_Floorplan)->Arg(4)->Arg(16)->Arg(64);

void
BM_Estimate3dStack(benchmark::State &state)
{
    TechDb tech;
    const auto point =
        testcases::arvrAccelerator(tech, "2K", 4);
    EcoChipConfig config;
    config.package.arch = PackagingArch::Stack3d;
    config.operating = testcases::arvrOperating(point);
    EcoChip estimator(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            estimator.estimate(point.system));
    }
}
BENCHMARK(BM_Estimate3dStack);

} // namespace

BENCHMARK_MAIN();
