/**
 * @file
 * Runtime benchmarks of the estimator itself with
 * google-benchmark: single estimates, full technology-space
 * sweeps, and the floorplanner. The reference artifact notes full
 * execution "should take 10 sec"; the C++ implementation targets
 * microseconds per estimate so it can sit inside architectural
 * DSE loops.
 */

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/ecochip.h"
#include "core/explorer.h"
#include "core/testcases.h"
#include "engine/analysis_engine.h"
#include "engine/shard_coordinator.h"
#include "engine/shard_runner.h"
#include "floorplan/floorplan.h"
#include "io/batch_report_io.h"
#include "io/request_io.h"
#include "json/json.h"
#include "json/ondemand.h"
#include "json/stream_writer.h"
#include "search/search_driver.h"
#include "session/analysis_session.h"

#if defined(__unix__) || defined(__APPLE__)
#define ECOCHIP_BENCH_HAS_SERVER 1
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include "server/analysis_server.h"
#include "server/server_client.h"
#else
#define ECOCHIP_BENCH_HAS_SERVER 0
#endif

using namespace ecochip;

namespace {

void
BM_EstimateGa102ThreeChiplet(benchmark::State &state)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimator.estimate(system));
    }
}
BENCHMARK(BM_EstimateGa102ThreeChiplet);

void
BM_EstimateMonolith(benchmark::State &state)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const SystemSpec system =
        testcases::ga102Monolithic(estimator.tech());
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimator.estimate(system));
    }
}
BENCHMARK(BM_EstimateMonolith);

void
BM_TechSpaceSweep27(benchmark::State &state)
{
    // Fresh estimator per sweep: the cost a DSE driver pays the
    // first time it explores a design, with nothing memoized yet.
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    const TechDb tech;
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0);
    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    for (auto _ : state) {
        EcoChip estimator(config, tech);
        TechSpaceExplorer explorer(estimator);
        benchmark::DoNotOptimize(explorer.sweep(system, nodes));
    }
}
BENCHMARK(BM_TechSpaceSweep27);

void
BM_SweepCacheHit27(benchmark::State &state)
{
    // Persistent estimator: every sweep after the first is served
    // from the shared evaluation cache.
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    TechSpaceExplorer explorer(estimator);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(explorer.sweep(system, nodes));
    }
}
BENCHMARK(BM_SweepCacheHit27);

void
BM_SessionSweep27(benchmark::State &state)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.sweep(nodes));
    }
}
BENCHMARK(BM_SessionSweep27);

void
BM_MonteCarloBatched(benchmark::State &state)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const int threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.monteCarlo(
            256, 42, Parallelism{threads}));
    }
}
BENCHMARK(BM_MonteCarloBatched)->Arg(1)->Arg(4)->Arg(8);

std::vector<ChipletBox>
floorplanBoxes(int nc)
{
    std::vector<ChipletBox> boxes;
    for (int i = 0; i < nc; ++i) {
        std::string name("c");
        name += std::to_string(i);
        boxes.push_back(
            {std::move(name), 50.0 + 13.0 * (i % 5), 1.0});
    }
    return boxes;
}

void
BM_Floorplan(benchmark::State &state)
{
    // Default planner: slicing search with the dominance
    // lower-bound cutoff in the combine enumeration ("after").
    const auto boxes =
        floorplanBoxes(static_cast<int>(state.range(0)));
    Floorplanner planner;
    for (auto _ : state) {
        benchmark::DoNotOptimize(planner.plan(boxes));
    }
}
BENCHMARK(BM_Floorplan)->Arg(4)->Arg(16)->Arg(64);

void
BM_FloorplanExhaustive(benchmark::State &state)
{
    // Exhaustive child-pair enumeration: the pre-cutoff baseline
    // ("before"), kept so the saving stays measured. Results are
    // bit-identical to BM_Floorplan's.
    const auto boxes =
        floorplanBoxes(static_cast<int>(state.range(0)));
    Floorplanner planner;
    planner.setExhaustiveCombine(true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(planner.plan(boxes));
    }
}
BENCHMARK(BM_FloorplanExhaustive)->Arg(4)->Arg(16)->Arg(64);

/** The EngineBatch request mix, shared with BM_ShardedBatch. */
std::vector<AnalysisRequest>
engineBatchRequests()
{
    std::vector<AnalysisRequest> requests;
    std::uint64_t seed = 1;
    for (const auto &name :
         ScenarioRegistry::builtin().names()) {
        MonteCarloSpec mc;
        mc.trials = 48;
        mc.seed = seed++;
        requests.push_back({ScenarioRef::scenario(name), mc});
    }
    // Sweeps only where the space is small (3^3 / 3^2);
    // server-4die and hbm-accel would be 3^6 / 3^18 assignments.
    for (const char *name : {"ga102", "a15", "emr"}) {
        SweepSpec sweep;
        sweep.nodesNm = {7.0, 10.0, 14.0};
        requests.push_back(
            {ScenarioRef::scenario(name), sweep});
    }
    return requests;
}

void
BM_EngineBatch(benchmark::State &state)
{
    // Batch throughput (requests/s, reported as items_per_second)
    // across engine thread counts. Each request carries real DSE
    // work -- Monte-Carlo bands (fresh perturbed estimators every
    // trial, nothing memoizable) and a full node sweep per
    // builtin scenario -- so the numbers measure request-level
    // scaling, not cache hits. One cold engine per iteration
    // keeps context construction and deduplication in the
    // measured cost.
    const int threads = static_cast<int>(state.range(0));
    const std::vector<AnalysisRequest> requests =
        engineBatchRequests();

    for (auto _ : state) {
        AnalysisEngine engine(threads);
        const BatchReport report = engine.runBatch(requests);
        benchmark::DoNotOptimize(report);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_EngineBatch)
    ->Name("EngineBatch")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void
BM_ShardedBatch(benchmark::State &state)
{
    // Process-level scaling of the same mix EngineBatch measures
    // thread-level scaling on: each iteration shards the batch
    // file across N forked worker processes (2 engine threads
    // each) and merges the per-shard reports. Arg(1) is the
    // one-process baseline, so the fork/serialize/merge overhead
    // stays visible next to the 2- and 4-process speedups.
    const int processes = static_cast<int>(state.range(0));
    const auto requests = engineBatchRequests();

    const auto dir =
        std::filesystem::temp_directory_path() /
        "ecochip_bench_sharded";
    std::filesystem::create_directories(dir);
    const std::string batch_path =
        (dir / "batch.json").string();
    json::Value doc = json::Value::makeObject();
    doc.set("requests", requestsToJson(requests));
    json::writeFile(doc, batch_path);

    ShardedRunOptions options;
    options.batchPath = batch_path;
    options.shards = processes;
    options.engineThreadsPerWorker = 2;

    for (auto _ : state) {
        const ShardedRunResult result =
            runShardedBatch(options);
        if (!result.allOk()) {
            state.SkipWithError("sharded batch failed");
            break;
        }
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(requests.size()));
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ShardedBatch)
    ->Name("ShardedBatch")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_CoordinatedBatch(benchmark::State &state)
{
    // Host-level scaling of the same mix, one layer up: each
    // iteration coordinates the batch file across N one-slot
    // local hosts (2 engine threads per worker) through the
    // shard coordinator's dispatch loop, so its scheduling,
    // polling, and merge overhead stays measured next to
    // ShardedBatch's raw fork/merge numbers. Arg(1) is the
    // one-host baseline.
    const int host_count = static_cast<int>(state.range(0));
    const auto requests = engineBatchRequests();

    const auto dir =
        std::filesystem::temp_directory_path() /
        "ecochip_bench_coordinated";
    std::filesystem::create_directories(dir);
    const std::string batch_path =
        (dir / "batch.json").string();
    json::Value doc = json::Value::makeObject();
    doc.set("requests", requestsToJson(requests));
    json::writeFile(doc, batch_path);

    CoordinatorOptions options;
    options.batchPath = batch_path;
    for (int h = 0; h < host_count; ++h)
        options.hosts.hosts.push_back(
            {"local-" + std::to_string(h), 1, ""});
    options.engineThreadsPerWorker = 2;

    for (auto _ : state) {
        const CoordinatedRunResult result =
            runCoordinatedBatch(options);
        if (!result.allOk()) {
            state.SkipWithError("coordinated batch failed");
            break;
        }
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(requests.size()));
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CoordinatedBatch)
    ->Name("CoordinatedBatch")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_DynamicCoordinatedBatch(benchmark::State &state)
{
    // The pull-queue scheduler over the same mix and the same
    // N one-slot local hosts as CoordinatedBatch: measures what
    // chunked dispatch, event tailing, journaling, and
    // incremental merge cost next to the static plan-and-wait
    // loop.
    const int host_count = static_cast<int>(state.range(0));
    const auto requests = engineBatchRequests();

    const auto dir =
        std::filesystem::temp_directory_path() /
        "ecochip_bench_dyn_coordinated";
    std::filesystem::create_directories(dir);
    const std::string batch_path =
        (dir / "batch.json").string();
    json::Value doc = json::Value::makeObject();
    doc.set("requests", requestsToJson(requests));
    json::writeFile(doc, batch_path);

    CoordinatorOptions options;
    options.batchPath = batch_path;
    for (int h = 0; h < host_count; ++h)
        options.hosts.hosts.push_back(
            {"local-" + std::to_string(h), 1, ""});
    options.engineThreadsPerWorker = 2;

    for (auto _ : state) {
        const CoordinatedRunResult result =
            runDynamicCoordinatedBatch(options);
        if (!result.allOk()) {
            state.SkipWithError("dynamic coordinated batch "
                                "failed");
            break;
        }
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(requests.size()));
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_DynamicCoordinatedBatch)
    ->Name("DynamicCoordinatedBatch")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * A local-process host whose completions are withheld for a
 * per-request tax after the worker actually finishes -- a
 * straggler host whose throughput, not just latency, lags the
 * fleet. The children still run in parallel, so the benchmark
 * measures scheduling, not serialized compute.
 */
class SlowLocalTransport : public LocalProcessTransport
{
  public:
    explicit SlowLocalTransport(double per_request_seconds)
        : perRequestSeconds_(per_request_seconds)
    {
    }

    void start(const ShardDispatch &dispatch) override
    {
        const double tax =
            perRequestSeconds_ *
            static_cast<double>(
                loadBatchFile(dispatch.subBatchPath)
                    .requests.size());
        notBefore_[dispatch.shard] =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(tax));
        LocalProcessTransport::start(dispatch);
    }

    std::optional<int> poll(std::size_t shard) override
    {
        if (exited_.count(shard) == 0) {
            const auto code = LocalProcessTransport::poll(shard);
            if (!code)
                return std::nullopt;
            exited_[shard] = *code;
        }
        if (std::chrono::steady_clock::now() <
            notBefore_[shard])
            return std::nullopt;
        const int code = exited_[shard];
        exited_.erase(shard);
        return code;
    }

  private:
    double perRequestSeconds_;
    std::map<std::size_t,
             std::chrono::steady_clock::time_point>
        notBefore_;
    std::map<std::size_t, int> exited_;
};

/** fast + slow one-slot hosts over @p batch_path; the slow host
 *  pays @p per_request_seconds per dispatched request. */
CoordinatorOptions
skewedHostOptions(const std::string &batch_path,
                  double per_request_seconds)
{
    CoordinatorOptions options;
    options.batchPath = batch_path;
    options.hosts.hosts.push_back({"fast", 1, ""});
    options.hosts.hosts.push_back({"slow", 1, ""});
    options.engineThreadsPerWorker = 2;
    options.transportFactory =
        [per_request_seconds](const HostSpec &host)
        -> std::shared_ptr<ShardTransport> {
        if (host.name == "slow")
            return std::make_shared<SlowLocalTransport>(
                per_request_seconds);
        return std::make_shared<LocalProcessTransport>();
    };
    return options;
}

constexpr double kSkewPerRequestSeconds = 0.03;

void
BM_StaticSkewedHosts(benchmark::State &state)
{
    // The straggler problem the pull queue exists to fix: the
    // static planner deals ~half the batch to the slow host up
    // front and the run ends only when that half drains through
    // the 30 ms/request host.
    const auto requests = engineBatchRequests();
    const auto dir =
        std::filesystem::temp_directory_path() /
        "ecochip_bench_skew_static";
    std::filesystem::create_directories(dir);
    const std::string batch_path =
        (dir / "batch.json").string();
    json::Value doc = json::Value::makeObject();
    doc.set("requests", requestsToJson(requests));
    json::writeFile(doc, batch_path);

    CoordinatorOptions options =
        skewedHostOptions(batch_path, kSkewPerRequestSeconds);
    for (auto _ : state) {
        const CoordinatedRunResult result =
            runCoordinatedBatch(options);
        if (!result.allOk()) {
            state.SkipWithError("skewed static run failed");
            break;
        }
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(requests.size()));
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StaticSkewedHosts)
    ->Name("StaticSkewedHosts")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_DynamicSkewedHosts(benchmark::State &state)
{
    // Same fleet, pull queue: the slow host only ever holds one
    // small chunk, the fast host steals the rest of the queue,
    // and the wall clock tracks the fast host's throughput
    // instead of the straggler's.
    const auto requests = engineBatchRequests();
    const auto dir =
        std::filesystem::temp_directory_path() /
        "ecochip_bench_skew_dynamic";
    std::filesystem::create_directories(dir);
    const std::string batch_path =
        (dir / "batch.json").string();
    json::Value doc = json::Value::makeObject();
    doc.set("requests", requestsToJson(requests));
    json::writeFile(doc, batch_path);

    CoordinatorOptions options =
        skewedHostOptions(batch_path, kSkewPerRequestSeconds);
    options.chunkTargetRequests = 1;
    for (auto _ : state) {
        const CoordinatedRunResult result =
            runDynamicCoordinatedBatch(options);
        if (!result.allOk()) {
            state.SkipWithError("skewed dynamic run failed");
            break;
        }
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(requests.size()));
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_DynamicSkewedHosts)
    ->Name("DynamicSkewedHosts")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

#if ECOCHIP_BENCH_HAS_SERVER

/**
 * A forked `--serve` daemon with a result cache, drained via the
 * shutdown verb on destruction. Forked before the benchmark
 * creates any threads of its own.
 */
struct BenchServer
{
    pid_t pid = -1;
    std::string socket;
    std::filesystem::path cacheDir;

    BenchServer()
    {
        socket = "/tmp/eco_bench_" +
                 std::to_string(getpid()) + ".sock";
        cacheDir = std::filesystem::temp_directory_path() /
                   "ecochip_bench_served_cache";
        std::filesystem::remove_all(cacheDir);

        ServerOptions options;
        options.socketPath = socket;
        options.engineThreads = 2;
        options.cacheDir = cacheDir.string();
        pid = fork();
        if (pid == 0) {
            try {
                AnalysisServer server(std::move(options));
                server.run();
                _exit(0);
            } catch (...) {
                _exit(17);
            }
        }
    }

    bool ready() const
    {
        return pid > 0 &&
               ServerClient::waitForServer(socket, 15.0);
    }

    ~BenchServer()
    {
        if (pid <= 0)
            return;
        try {
            ServerClient(socket).shutdownServer();
        } catch (...) {
            kill(pid, SIGKILL);
        }
        int status = 0;
        waitpid(pid, &status, 0);
        std::filesystem::remove_all(cacheDir);
    }
};

/** The request both served benchmarks measure: enough
 *  Monte-Carlo work that an evaluation dwarfs a cache lookup. */
std::string
servedRequestLine(std::uint64_t seed)
{
    MonteCarloSpec mc;
    mc.trials = 512;
    mc.seed = seed;
    const AnalysisRequest request{
        ScenarioRef::scenario("ga102"), mc};
    return requestToJson(request).dump(false);
}

void
BM_ServedRequestCold(benchmark::State &state)
{
    // Round-trip latency of a served request that always misses
    // the result cache: every iteration varies the Monte-Carlo
    // seed, so the server pays a full evaluation each time. The
    // cache-hit benchmark below answers the identical request
    // from disk; the gap between the two is the serve-vs-compute
    // win BENCH_pr7.json tracks.
    BenchServer server;
    if (!server.ready()) {
        state.SkipWithError("analysis server did not start");
        return;
    }
    ServerClient client(server.socket);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        client.sendLine(servedRequestLine(seed++));
        benchmark::DoNotOptimize(client.readLine());
    }
}
BENCHMARK(BM_ServedRequestCold)
    ->Name("ServedRequestCold")
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void
BM_ServedRequestCacheHit(benchmark::State &state)
{
    BenchServer server;
    if (!server.ready()) {
        state.SkipWithError("analysis server did not start");
        return;
    }
    ServerClient client(server.socket);
    // Warm the entry once; every measured round-trip is a
    // content-addressed cache hit after that.
    const std::string line = servedRequestLine(0);
    client.sendLine(line);
    client.readLine();
    for (auto _ : state) {
        client.sendLine(line);
        benchmark::DoNotOptimize(client.readLine());
    }
}
BENCHMARK(BM_ServedRequestCacheHit)
    ->Name("ServedRequestCacheHit")
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

#endif // ECOCHIP_BENCH_HAS_SERVER

/** A 54-point generator catalog for the search benchmarks. */
json::Value
searchBenchCatalog()
{
    return json::parse(R"({
        "generators": [{
            "name": "bench-space",
            "architecture": {
                "name": "FPGA-PCA",
                "packaging": "rdl_fanout",
                "chiplets": [
                    {"name": "pe-array", "type": "logic",
                     "node_nm": 7, "area_mm2": 140.0},
                    {"name": "bram", "type": "memory",
                     "node_nm": 10, "area_mm2": 90.0},
                    {"name": "io-xcvr", "type": "io",
                     "node_nm": 14, "area_mm2": 70.0,
                     "reused": true}
                ]
            },
            "operational": {
                "lifetime_years": 3, "duty_cycle": 0.35,
                "avg_power_w": 60.0,
                "intensity_g_per_kwh": 700
            },
            "axes": [
                {"axis": "node_nm", "name": "pe_node",
                 "chiplet": "pe-array", "values": [5, 7, 10]},
                {"axis": "chiplet_count", "name": "pe_split",
                 "chiplet": "pe-array", "values": [1, 2, 4]},
                {"axis": "packaging",
                 "values": ["rdl_fanout", "silicon_bridge",
                            "passive_interposer"]},
                {"axis": "lifetime_years", "values": [3, 5]}
            ]
        }]
    })");
}

void
BM_SearchExpansion(benchmark::State &state)
{
    // Lazy-expansion throughput: derived names per second over
    // the odometer (flat index -> per-axis indices -> name).
    // This is the name-resolution cost every search strategy and
    // every derived-name batch request pays per point.
    ScenarioRegistry registry;
    registry.loadJson(searchBenchCatalog(), "bench", ".");
    const ScenarioSpace space(registry.generator("bench-space"));
    for (auto _ : state) {
        for (std::size_t flat = 0; flat < space.size(); ++flat)
            benchmark::DoNotOptimize(space.nameAt(flat));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_SearchExpansion)
    ->Name("SearchExpansion")
    ->Unit(benchmark::kMicrosecond);

void
BM_SearchExhaustive(benchmark::State &state)
{
    // End-to-end exhaustive search of the 54-point space: space
    // instantiation, engine evaluation, scalarization, and
    // Pareto extraction, on a cold driver per iteration (the
    // cost a DSE caller pays per `--search`). Items are design
    // points per second.
    SearchSpec spec;
    spec.generator = "bench-space";
    spec.objectives.push_back(
        {SearchMetric::EmbodiedKg, false, 1.0});
    const int threads = static_cast<int>(state.range(0));

    for (auto _ : state) {
        EngineOptions options;
        options.threads = threads;
        options.registry.loadJson(searchBenchCatalog(),
                                  "bench", ".");
        SearchDriver driver(std::move(options));
        benchmark::DoNotOptimize(driver.run(spec));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 54);
}
BENCHMARK(BM_SearchExhaustive)
    ->Name("SearchExhaustive")
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_Estimate3dStack(benchmark::State &state)
{
    TechDb tech;
    const auto point =
        testcases::arvrAccelerator(tech, "2K", 4);
    EcoChipConfig config;
    config.package.arch = PackagingArch::Stack3d;
    config.operating = testcases::arvrOperating(point);
    EcoChip estimator(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            estimator.estimate(point.system));
    }
}
BENCHMARK(BM_Estimate3dStack);

// ------------------------------------------- JSON wire path

/**
 * A 10k-outcome BatchReport: three real outcomes (two verbs plus
 * one failure, so every serializer branch stays hot) replicated
 * to batch scale. Built once; the benchmarks below measure the
 * wire path, not the engine.
 */
const BatchReport &
wireBenchReport()
{
    static const BatchReport report = [] {
        std::vector<AnalysisRequest> requests;
        requests.push_back(
            {ScenarioRef::scenario("ga102"), EstimateSpec{}});
        requests.push_back(
            {ScenarioRef::scenario("no-such-scenario"),
             EstimateSpec{}});
        SweepSpec sweep;
        sweep.nodesNm = {7.0, 10.0};
        requests.push_back(
            {ScenarioRef::scenario("emr"), sweep});
        AnalysisEngine engine(2);
        const BatchReport seed = engine.runBatch(requests);

        BatchReport big;
        big.outcomes.reserve(10000);
        for (std::size_t i = 0; i < 10000; ++i)
            big.outcomes.push_back(
                seed.outcomes[i % seed.outcomes.size()]);
        return big;
    }();
    return report;
}

/** The report's compact wire bytes, shared by the parse side. */
const std::string &
wireBenchText()
{
    static const std::string text =
        batchReportText(wireBenchReport(), false);
    return text;
}

void
BM_JsonSerializeReportDom(benchmark::State &state)
{
    // Baseline: materialize the report DOM, then dump it -- the
    // pre-wire-path cost of every --json write and merge.
    const BatchReport &report = wireBenchReport();
    std::size_t bytes = 0;
    for (auto _ : state) {
        const std::string text =
            batchReportToJson(report).dump(false);
        bytes = text.size();
        benchmark::DoNotOptimize(text);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_JsonSerializeReportDom)
    ->Name("JsonSerializeReport10kDom")
    ->Unit(benchmark::kMillisecond);

void
BM_JsonSerializeReportWire(benchmark::State &state)
{
    // The streaming writer path: identical bytes, no DOM.
    const BatchReport &report = wireBenchReport();
    std::size_t bytes = 0;
    for (auto _ : state) {
        const std::string text =
            batchReportText(report, false);
        bytes = text.size();
        benchmark::DoNotOptimize(text);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_JsonSerializeReportWire)
    ->Name("JsonSerializeReport10kWire")
    ->Unit(benchmark::kMillisecond);

void
BM_JsonParseReportDom(benchmark::State &state)
{
    // Baseline: full DOM parse of the report, the way the merge
    // path consumed shard reports before the scanner existed.
    const std::string &text = wireBenchText();
    for (auto _ : state) {
        const json::Value doc = json::parse(text);
        benchmark::DoNotOptimize(
            doc.at("outcomes").asArray().size());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParseReportDom)
    ->Name("JsonParseReport10kDom")
    ->Unit(benchmark::kMillisecond);

void
BM_JsonParseReportWire(benchmark::State &state)
{
    // The on-demand scan the shard merge runs: validate the
    // document, walk to "outcomes", and yield each outcome as a
    // raw span -- no DOM, no copies.
    const std::string &text = wireBenchText();
    for (auto _ : state) {
        json::ondemand::Scanner scanner(text);
        std::string key;
        std::size_t outcomes = 0;
        scanner.beginObject();
        while (scanner.nextMember(key)) {
            if (key != "outcomes") {
                scanner.rawValue();
                continue;
            }
            scanner.beginArray();
            while (scanner.nextElement()) {
                benchmark::DoNotOptimize(scanner.rawValue());
                ++outcomes;
            }
        }
        scanner.expectEnd();
        benchmark::DoNotOptimize(outcomes);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParseReportWire)
    ->Name("JsonParseReport10kWire")
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
