/**
 * @file
 * Fig. 12 — chiplet reusability: design-carbon amortization over
 * manufacturing volume.
 *
 * (a) Cdes vs. the NMi/NS ratio for the EMR 2-chiplet testcase in
 *     7 nm (Ndes=100): larger ratios amortize design over more
 *     systems;
 * (b-d) Ctot vs. NMi/NS ratio and lifetime for GA102 (RDL), A15
 *     (RDL), and EMR (EMIB): operation-dominated systems barely
 *     move with the ratio, embodied-dominated ones (A15) benefit.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

namespace {

const std::vector<double> kRatios = {0.5, 1.0, 2.0, 5.0, 10.0};

/** EMR 2-chiplet with both dies designed fresh (reuse disabled) so
 *  the amortization sweep has design carbon to amortize. */
SystemSpec
emrFreshDesign(const TechDb &tech, double node_nm)
{
    SystemSpec emr = testcases::emrTwoChiplet(tech, node_nm);
    for (auto &chiplet : emr.chiplets)
        chiplet.reused = false;
    return emr;
}

} // namespace

int
main()
{
    const double ns = 100000.0;

    // (a) Cdes vs. NMi/NS for EMR 2-chiplet at 7 nm.
    bench::banner("Fig. 12(a)",
                  "Cdes vs. NMi/NS (EMR 2-chiplet, 7 nm, "
                  "Ndes=100)");
    std::vector<std::vector<std::string>> rows;
    for (double ratio : kRatios) {
        EcoChipConfig config;
        config.package.arch = PackagingArch::SiliconBridge;
        config.design.systemVolume = ns;
        config.design.chipletVolume = ratio * ns;
        config.operating = testcases::emrOperating();
        EcoChip estimator(config);
        const CarbonReport r = estimator.estimate(
            emrFreshDesign(estimator.tech(), 7.0));
        rows.push_back(
            {bench::num(ratio), bench::num(r.designCo2Kg)});
    }
    bench::emit({"NMi/NS", "Cdes_kg_per_part"}, rows);

    // (b-d) Ctot vs. ratio and lifetime.
    struct Study
    {
        const char *figure;
        const char *name;
        PackagingArch arch;
    };
    const Study studies[] = {
        {"Fig. 12(b)", "GA102", PackagingArch::RdlFanout},
        {"Fig. 12(c)", "A15", PackagingArch::RdlFanout},
        {"Fig. 12(d)", "EMR", PackagingArch::SiliconBridge},
    };

    for (const Study &study : studies) {
        bench::banner(study.figure,
                      std::string(study.name) +
                          ": Ctot vs. NMi/NS and lifetime");
        rows.clear();
        for (double lifetime : {2.0, 3.0, 4.0, 5.0}) {
            for (double ratio : kRatios) {
                EcoChipConfig config;
                config.package.arch = study.arch;
                config.design.systemVolume = ns;
                config.design.chipletVolume = ratio * ns;

                SystemSpec system;
                if (std::string(study.name) == "GA102") {
                    config.operating = testcases::ga102Operating();
                    system = testcases::ga102ThreeChiplet(
                        TechDb(), 7.0, 10.0, 14.0);
                } else if (std::string(study.name) == "A15") {
                    config.operating = testcases::a15Operating();
                    system = testcases::a15ThreeChiplet(
                        TechDb(), 5.0, 7.0, 10.0);
                } else {
                    config.operating = testcases::emrOperating();
                    system = emrFreshDesign(TechDb(), 7.0);
                }
                config.operating.lifetimeYears = lifetime;
                EcoChip estimator(config);
                const CarbonReport r = estimator.estimate(system);
                rows.push_back({bench::num(lifetime),
                                bench::num(ratio),
                                bench::num(r.embodiedCo2Kg()),
                                bench::num(r.operation.co2Kg),
                                bench::num(r.totalCo2Kg())});
            }
        }
        bench::emit({"lifetime_y", "NMi/NS", "Cemb_kg", "Cop_kg",
                     "Ctot_kg"},
                    rows);
    }
    return 0;
}
