/**
 * @file
 * Fig. 9 — HI-related CFP overheads (CHI) of the five packaging
 * architectures as the GA102's 500 mm^2 digital logic block is
 * split into Nc chiplets. Package interconnect in 65 nm.
 *
 * Paper shape targets:
 *  - EMIB cheapest at Nc=2, rising with Nc (more bridges);
 *  - RDL cheapest for Nc >= 6;
 *  - interposers costliest (extra large silicon die), active above
 *    passive;
 *  - active-interposer routing overhead visible (65 nm routers),
 *    passive-interposer routing near-negligible (7 nm routers);
 *  - 3D overhead decreasing with tier count.
 */

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/disaggregate.h"
#include "core/ecochip.h"

using namespace ecochip;

namespace {

HiResult
overheads(const EcoChip &estimator, PackagingArch arch, int nc)
{
    EcoChipConfig config = estimator.config();
    config.package.arch = arch;
    EcoChip local(config);
    const SystemSpec split = makeUniformSplit(
        "ga102-digital", 500.0, 7.0, nc, local.tech());

    ManufacturingModel mfg(local.tech(), config.wafer,
                           config.fabIntensityGPerKwh);
    return PackageModel(local.tech(), mfg, config.package)
        .evaluate(split);
}

} // namespace

int
main()
{
    EcoChip estimator;

    bench::banner("Fig. 9",
                  "CHI per packaging architecture vs. Nc "
                  "(GA102 500 mm^2 digital block, g CO2)");

    const std::vector<PackagingArch> planar_archs = {
        PackagingArch::RdlFanout, PackagingArch::SiliconBridge,
        PackagingArch::PassiveInterposer,
        PackagingArch::ActiveInterposer};

    std::vector<std::vector<std::string>> rows;
    for (int nc : {2, 4, 6, 8}) {
        for (PackagingArch arch : planar_archs) {
            const HiResult hi = overheads(estimator, arch, nc);
            rows.push_back(
                {std::to_string(nc), toString(arch),
                 bench::num(hi.packageCo2Kg * 1e3),
                 bench::num(hi.routingCo2Kg * 1e3),
                 bench::num(hi.totalCo2Kg() * 1e3),
                 bench::num(hi.packageYield)});
        }
    }
    // 3D: tiers swept 2 - 4 (Sec. V-B(1)).
    for (int tiers : {2, 3, 4}) {
        const HiResult hi =
            overheads(estimator, PackagingArch::Stack3d, tiers);
        rows.push_back({std::to_string(tiers), "3d",
                        bench::num(hi.packageCo2Kg * 1e3),
                        bench::num(hi.routingCo2Kg * 1e3),
                        bench::num(hi.totalCo2Kg() * 1e3),
                        bench::num(hi.packageYield)});
    }

    bench::emit({"Nc", "arch", "package_gCO2", "routing_gCO2",
                 "CHI_gCO2", "pkg_yield"},
                rows);
    return 0;
}
