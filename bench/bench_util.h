/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 */

#ifndef ECOCHIP_BENCH_BENCH_UTIL_H
#define ECOCHIP_BENCH_BENCH_UTIL_H

#include <string>
#include <vector>

#include "support/csv.h"
#include "support/table_printer.h"

namespace ecochip::bench {

/** Print a figure banner. */
void banner(const std::string &figure, const std::string &caption);

/**
 * Emit one data series both as an aligned table and as a CSV block
 * (the artifact "prints the underlying raw data").
 *
 * @param headers Column names.
 * @param rows One vector of cells per row.
 */
void emit(const std::vector<std::string> &headers,
          const std::vector<std::vector<std::string>> &rows);

/** Format a double for series output. */
std::string num(double value, int precision = 4);

/** Format a "(d,m,a)" node-triple label for sweep series. */
std::string nodeLabel(double digital_nm, double memory_nm,
                      double analog_nm);

} // namespace ecochip::bench

#endif // ECOCHIP_BENCH_BENCH_UTIL_H
