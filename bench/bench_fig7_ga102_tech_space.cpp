/**
 * @file
 * Fig. 7 — GA102 3-chiplet technology-space exploration with RDL
 * fanout packaging, tuples over {7, 10, 14} nm for the
 * (digital, memory, analog) chiplets.
 *
 * (a) Cmfg and CHI per tuple;
 * (b) design carbon for a single SP&R iteration per tuple;
 * (c) embodied carbon (Ndes=100, NS=100k) vs. the ACT baseline;
 * (d) total carbon split into embodied and operational over a
 *     2-year lifetime.
 *
 * Shape targets: the (7,14,10)-class tuples minimize Cemb; the
 * (10,10,10) tuple exceeds even the monolith; ACT under-reports
 * Cemb because it has no design CFP and a fixed package constant.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/explorer.h"
#include "core/testcases.h"

using namespace ecochip;

int
main()
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::RdlFanout;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const TechDb &tech = estimator.tech();

    DesignModel design(tech, config.design);

    bench::banner("Fig. 7",
                  "GA102 3-chiplet (digital,memory,analog) node "
                  "tuples, RDL fanout");

    std::vector<std::vector<std::string>> rows;

    auto add_row = [&](const std::string &label,
                       const SystemSpec &system) {
        const CarbonReport r = estimator.estimate(system);
        // Fig. 7(b): single SP&R iteration across the system's
        // non-reused chiplets.
        double single_iter = 0.0;
        for (const auto &chiplet : system.chiplets)
            if (!chiplet.reused)
                single_iter +=
                    design.singleIterationCo2Kg(chiplet);
        const double act = estimator.actEmbodiedCo2Kg(system);
        rows.push_back(
            {label, bench::num(r.mfgCo2Kg),
             bench::num(r.hi.totalCo2Kg()),
             bench::num(single_iter), bench::num(r.designCo2Kg),
             bench::num(r.embodiedCo2Kg()), bench::num(act),
             bench::num(r.operation.co2Kg),
             bench::num(r.totalCo2Kg())});
    };

    add_row("mono(7,7,7)", testcases::ga102Monolithic(tech, 7.0));

    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    for (double d : nodes) {
        for (double m : nodes) {
            for (double a : nodes) {
                ExplorationPoint point;
                point.nodesNm = {d, m, a};
                add_row(point.label(),
                        testcases::ga102ThreeChiplet(tech, d, m,
                                                     a));
            }
        }
    }

    bench::emit({"config", "Cmfg_kg", "CHI_kg", "Cdes_1iter_kg",
                 "Cdes_amort_kg", "Cemb_kg", "ACT_Cemb_kg",
                 "Cop_kg", "Ctot_kg"},
                rows);

    // Identify the best tuple, as the paper calls out (7,14,10).
    TechSpaceExplorer explorer(estimator);
    const auto points = explorer.sweep(
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0),
        nodes);
    const auto &best = TechSpaceExplorer::bestByEmbodied(points);
    bench::banner("Fig. 7 summary",
                  "lowest-Cemb tuple (digital,memory,analog) = " +
                      best.label());
    return 0;
}
