/**
 * @file
 * Fig. 6 — defect-density behaviour.
 *
 * (a) Normalized defect density across technology nodes: legacy
 *     nodes have matured to lower defectivity.
 * (b) Total CFP of the GA102 monolith as a function of defect
 *     density (D0 swept over the Table I range at a fixed node).
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

int
main()
{
    bench::banner("Fig. 6(a)",
                  "normalized defect density vs. technology node");
    TechDb tech;
    const double d0_3nm = tech.defectDensityPerCm2(3.0);
    std::vector<std::vector<std::string>> node_rows;
    for (double node : TechDb::standardNodesNm()) {
        const double d0 = tech.defectDensityPerCm2(node);
        node_rows.push_back({bench::num(node), bench::num(d0),
                             bench::num(d0 / d0_3nm)});
    }
    bench::emit({"node_nm", "D0_per_cm2", "normalized"}, node_rows);

    bench::banner("Fig. 6(b)",
                  "total CFP vs. defect density (GA102 monolith, "
                  "7 nm, D0 swept over the Table I range)");
    std::vector<std::vector<std::string>> d0_rows;
    for (double d0 = 0.07; d0 <= 0.30 + 1e-9; d0 += 0.0575) {
        TechDb custom;
        // Constant-D0 override isolates the yield effect.
        PiecewiseLinear flat({{3.0, d0}, {65.0, d0}});
        custom.setDefectDensityTable(flat);

        EcoChipConfig config;
        config.operating = testcases::ga102Operating();
        EcoChip estimator(config, custom);
        const CarbonReport report = estimator.estimate(
            testcases::ga102Monolithic(estimator.tech()));
        d0_rows.push_back({bench::num(d0),
                           bench::num(report.mfgCo2Kg),
                           bench::num(report.embodiedCo2Kg()),
                           bench::num(report.totalCo2Kg())});
    }
    bench::emit(
        {"D0_per_cm2", "mfg_kgCO2", "embodied_kgCO2",
         "total_kgCO2"},
        d0_rows);
    return 0;
}
