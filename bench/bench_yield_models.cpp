/**
 * @file
 * Yield-model comparison — the paper's Eq. 4 uses the negative
 * binomial; its yield reference (Cunningham) surveys Poisson,
 * Murphy, and Seeds statistics. This bench shows how the model
 * choice moves die yield and the resulting manufacturing carbon
 * for GA102-class die sizes, bounding the modeling uncertainty.
 */

#include <vector>

#include "bench_util.h"
#include "manufacture/mfg_model.h"
#include "support/units.h"
#include "yield/yield_model.h"

using namespace ecochip;

int
main()
{
    TechDb tech;

    bench::banner("Yield models",
                  "die yield vs. area at 7 nm (D0 = 0.2/cm^2, "
                  "alpha = 3)");
    std::vector<std::vector<std::string>> rows;
    for (double area_mm2 :
         {50.0, 100.0, 200.0, 400.0, 628.0, 800.0}) {
        const double a_cm2 = area_mm2 * units::kCm2PerMm2;
        const double d0 = tech.defectDensityPerCm2(7.0);
        rows.push_back(
            {bench::num(area_mm2),
             bench::num(poissonYield(a_cm2, d0)),
             bench::num(murphyYield(a_cm2, d0)),
             bench::num(negativeBinomialYield(a_cm2, d0, 3.0)),
             bench::num(seedsYield(a_cm2, d0))});
    }
    bench::emit({"area_mm2", "poisson", "murphy",
                 "negative_binomial", "seeds"},
                rows);

    bench::banner("Yield models",
                  "implied manufacturing carbon of a 628 mm^2 "
                  "monolith at 7 nm (kg CO2)");
    rows.clear();
    ManufacturingModel mfg(tech);
    const double gross = mfg.grossCfpaKgPerCm2(7.0);
    const double area_cm2 = 6.28;
    const double d0 = tech.defectDensityPerCm2(7.0);
    for (YieldModelKind kind :
         {YieldModelKind::Poisson, YieldModelKind::Murphy,
          YieldModelKind::NegativeBinomial,
          YieldModelKind::Seeds}) {
        const double yield = dieYield(kind, area_cm2, d0, 3.0);
        rows.push_back({toString(kind), bench::num(yield),
                        bench::num(gross * area_cm2 / yield)});
    }
    bench::emit({"model", "yield", "die_mfg_kgCO2"}, rows);
    return 0;
}
