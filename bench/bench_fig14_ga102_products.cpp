/**
 * @file
 * Fig. 14 — carbon-power and carbon-area products for the GA102
 * 3-chiplet RDL-fanout testcase across node tuples, normalized to
 * the monolithic counterpart.
 *
 * Shape target: older-node chiplets have larger area and power
 * (HI overheads, higher Vdd) but lower CFP per area; the products
 * expose the trade-off.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

int
main()
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::RdlFanout;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const TechDb &tech = estimator.tech();

    bench::banner("Fig. 14",
                  "GA102 3-chiplet: carbon-power and carbon-area "
                  "products, normalized to monolith");

    const SystemSpec mono = testcases::ga102Monolithic(tech, 7.0);
    const CarbonReport mono_r = estimator.estimate(mono);
    const double mono_area = mono.totalSiliconAreaMm2(tech);
    const double mono_cp =
        mono_r.totalCo2Kg() * mono_r.operation.avgPowerW;
    const double mono_ca = mono_r.totalCo2Kg() * mono_area;

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"mono(7,7,7)", bench::num(mono_area),
                    bench::num(mono_r.operation.avgPowerW),
                    bench::num(mono_r.totalCo2Kg()),
                    bench::num(1.0), bench::num(1.0)});

    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    for (double d : nodes) {
        for (double m : nodes) {
            for (double a : nodes) {
                const SystemSpec system =
                    testcases::ga102ThreeChiplet(tech, d, m, a);
                const CarbonReport r = estimator.estimate(system);
                const double area =
                    system.totalSiliconAreaMm2(tech) +
                    r.hi.commAreaMm2 + r.hi.whitespaceAreaMm2;
                const std::string label =
                    bench::nodeLabel(d, m, a);
                rows.push_back(
                    {label, bench::num(area),
                     bench::num(r.operation.avgPowerW),
                     bench::num(r.totalCo2Kg()),
                     bench::num(r.totalCo2Kg() *
                                r.operation.avgPowerW / mono_cp),
                     bench::num(r.totalCo2Kg() * area / mono_ca)});
            }
        }
    }
    bench::emit({"config", "area_mm2", "power_W", "Ctot_kg",
                 "carbon_power_norm", "carbon_area_norm"},
                rows);
    return 0;
}
