/**
 * @file
 * Extension — carbon-delay analysis for GPU disaggregation.
 *
 * The paper restricts carbon-delay products to the AR/VR testcase
 * because it lacks a performance model for chiplet GA102 systems
 * (Sec. VI(1)). With the mesh network estimator this bench closes
 * that gap at first order: as Nc grows, embodied carbon falls but
 * average inter-die latency and NoC power rise; the carbon-latency
 * product exposes the sweet spot.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"
#include "noc/network_model.h"

using namespace ecochip;

int
main()
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::PassiveInterposer;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    NetworkModel network(estimator.tech(), config.package.router);

    bench::banner("Extension",
                  "GA102 disaggregation: embodied carbon vs. "
                  "mesh network latency (passive interposer)");

    std::vector<std::vector<std::string>> rows;
    for (int nc = 3; nc <= 12; ++nc) {
        const SystemSpec system =
            testcases::ga102Split(estimator.tech(), nc);
        const CarbonReport report = estimator.estimate(system);
        // Chiplet routers run at the digital chiplets' node.
        const NetworkEstimate net =
            network.meshEstimate(nc, 7.0, 2.0e9);

        rows.push_back(
            {std::to_string(nc),
             bench::num(report.embodiedCo2Kg()),
             bench::num(net.avgHops),
             bench::num(net.avgLatencyNs),
             bench::num(net.bisectionBandwidthGbps),
             bench::num(net.networkPowerW),
             bench::num(report.embodiedCo2Kg() *
                        net.avgLatencyNs)});
    }
    bench::emit({"Nc", "Cemb_kg", "avg_hops", "latency_ns",
                 "bisection_Gbps", "noc_power_W",
                 "carbon_latency"},
                rows);
    return 0;
}
