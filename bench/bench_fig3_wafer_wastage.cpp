/**
 * @file
 * Fig. 3(b) — manufacturing CFP of the monolithic and 4-chiplet
 * GA102 with and without wafer-periphery wastage accounting, on a
 * 450 mm wafer. Smaller dies waste less periphery silicon per die,
 * widening the chiplet advantage when wastage is charged.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

int
main()
{
    bench::banner("Fig. 3(b)",
                  "wastage-aware manufacturing CFP, GA102 "
                  "monolith vs. 4-chiplet (450 mm wafer)");

    std::vector<std::vector<std::string>> rows;
    double baseline = 0.0;
    for (bool wastage : {false, true}) {
        EcoChipConfig config;
        config.includeWastage = wastage;
        EcoChip estimator(config);

        const CarbonReport mono = estimator.estimate(
            testcases::ga102Monolithic(estimator.tech()));
        const CarbonReport four = estimator.estimate(
            testcases::ga102FourChiplet(estimator.tech(), 7.0));

        const double mono_mfg = mono.mfgCo2Kg;
        const double four_mfg =
            four.mfgCo2Kg + four.hi.totalCo2Kg();
        if (!wastage)
            baseline = mono_mfg;

        rows.push_back({wastage ? "with_wastage" : "no_wastage",
                        "monolith", bench::num(mono_mfg),
                        bench::num(mono_mfg / baseline)});
        rows.push_back({wastage ? "with_wastage" : "no_wastage",
                        "4-chiplet", bench::num(four_mfg),
                        bench::num(four_mfg / baseline)});
    }
    bench::emit({"mode", "system", "mfg_kgCO2", "normalized"},
                rows);

    // Supporting data: DPW and amortized wastage per die size.
    bench::banner("Fig. 3(a)",
                  "dies per wafer and amortized wastage vs. die "
                  "size");
    WaferModel wafer;
    std::vector<std::vector<std::string>> dpw_rows;
    for (double area : {25.0, 50.0, 100.0, 200.0, 400.0, 628.0}) {
        dpw_rows.push_back(
            {bench::num(area),
             std::to_string(wafer.diesPerWafer(area)),
             bench::num(wafer.wastedAreaPerDieMm2(area)),
             bench::num(wafer.utilization(area))});
    }
    bench::emit({"die_mm2", "DPW", "wasted_mm2_per_die",
                 "utilization"},
                dpw_rows);
    return 0;
}
