/**
 * @file
 * Fig. 11 — CHI sensitivity to packaging parameters, on the A15
 * 3-chiplet testcase:
 *
 * (a) RDL layer count L_RDL (4 - 9): linear increase;
 * (b) EMIB bridge range (1 - 4 mm): fewer bridges, lower CHI;
 * (c) active-interposer node (22 - 65 nm): older nodes have lower
 *     EPA, lower CHI;
 * (d) TSV pitch (10 - 45 um): larger pitch, fewer TSVs, better
 *     yield, lower CHI.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

namespace {

HiResult
evaluate(const PackageParams &pkg)
{
    EcoChipConfig config;
    config.package = pkg;
    EcoChip estimator(config);
    const SystemSpec a15 = testcases::a15ThreeChiplet(
        estimator.tech(), 5.0, 7.0, 10.0);
    ManufacturingModel mfg(estimator.tech(), config.wafer,
                           config.fabIntensityGPerKwh);
    return PackageModel(estimator.tech(), mfg, pkg).evaluate(a15);
}

} // namespace

int
main()
{
    // (a) L_RDL sweep.
    bench::banner("Fig. 11(a)",
                  "CHI vs. RDL layer count (A15, RDL fanout)");
    std::vector<std::vector<std::string>> rows;
    for (int layers = 4; layers <= 9; ++layers) {
        PackageParams pkg;
        pkg.arch = PackagingArch::RdlFanout;
        pkg.rdlLayers = layers;
        const HiResult hi = evaluate(pkg);
        rows.push_back({std::to_string(layers),
                        bench::num(hi.totalCo2Kg() * 1e3)});
    }
    bench::emit({"L_RDL", "CHI_gCO2"}, rows);

    // (b) Bridge range sweep.
    bench::banner("Fig. 11(b)",
                  "CHI vs. EMIB bridge range (A15, silicon "
                  "bridge)");
    rows.clear();
    for (double range_mm : {1.0, 2.0, 3.0, 4.0}) {
        PackageParams pkg;
        pkg.arch = PackagingArch::SiliconBridge;
        pkg.bridgeRangeMm = range_mm;
        const HiResult hi = evaluate(pkg);
        rows.push_back({bench::num(range_mm),
                        std::to_string(hi.bridgeCount),
                        bench::num(hi.totalCo2Kg() * 1e3)});
    }
    bench::emit({"range_mm", "bridges", "CHI_gCO2"}, rows);

    // (c) Active-interposer node sweep.
    bench::banner("Fig. 11(c)",
                  "CHI vs. interposer node (A15, active "
                  "interposer)");
    rows.clear();
    for (double node : {22.0, 28.0, 40.0, 65.0}) {
        PackageParams pkg;
        pkg.arch = PackagingArch::ActiveInterposer;
        pkg.interposerNodeNm = node;
        const HiResult hi = evaluate(pkg);
        rows.push_back({bench::num(node),
                        bench::num(hi.totalCo2Kg() * 1e3)});
    }
    bench::emit({"interposer_nm", "CHI_gCO2"}, rows);

    // (d) TSV pitch sweep.
    bench::banner("Fig. 11(d)",
                  "CHI vs. TSV pitch (A15, 3D stacking)");
    rows.clear();
    for (double pitch_um : {10.0, 20.0, 30.0, 45.0}) {
        PackageParams pkg;
        pkg.arch = PackagingArch::Stack3d;
        pkg.bondType = BondType::Tsv;
        pkg.tsvPitchUm = pitch_um;
        const HiResult hi = evaluate(pkg);
        rows.push_back({bench::num(pitch_um),
                        bench::num(hi.bondCount),
                        bench::num(hi.packageYield),
                        bench::num(hi.totalCo2Kg() * 1e3)});
    }
    bench::emit({"pitch_um", "bonds", "pkg_yield", "CHI_gCO2"},
                rows);
    return 0;
}
