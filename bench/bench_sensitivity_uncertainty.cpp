/**
 * @file
 * Sensitivity and uncertainty analysis — quantifying the paper's
 * Sec. VII validation discussion: which inputs dominate the
 * estimate, and what confidence bounds the Table I ranges imply.
 *
 * (a) Tornado table: elasticity of embodied and total carbon to
 *     each input parameter (GA102 3-chiplet (7,14,10), RDL).
 * (b) Monte-Carlo distribution of the GA102 embodied saving vs.
 *     monolith under Table-I-scale input uncertainty.
 */

#include <vector>

#include "analysis/montecarlo.h"
#include "analysis/sensitivity.h"
#include "bench_util.h"
#include "core/testcases.h"

using namespace ecochip;

int
main()
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    TechDb tech;
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 14.0, 10.0);

    // (a) Tornado / elasticity table.
    bench::banner("Sensitivity",
                  "elasticity of carbon metrics to +/-10% input "
                  "perturbations (GA102 3-chiplet)");
    SensitivityAnalyzer analyzer(config);
    const auto params = SensitivityAnalyzer::standardParameters();
    const auto emb = analyzer.analyze(
        system, params, CarbonMetric::Embodied);
    const auto tot =
        analyzer.analyze(system, params, CarbonMetric::Total);

    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < params.size(); ++i) {
        rows.push_back({params[i].name,
                        bench::num(emb[i].lowValue),
                        bench::num(emb[i].highValue),
                        bench::num(emb[i].elasticity),
                        bench::num(tot[i].elasticity)});
    }
    bench::emit({"parameter", "Cemb_low_kg", "Cemb_high_kg",
                 "elasticity_Cemb", "elasticity_Ctot"},
                rows);

    // (b) Monte-Carlo uncertainty on the headline saving.
    bench::banner("Uncertainty",
                  "Monte-Carlo (500 trials) embodied carbon "
                  "under Table-I-scale input bands");
    MonteCarloAnalyzer mc(config);
    const UncertaintyReport chiplets = mc.run(system, 500, 42);
    const UncertaintyReport mono =
        mc.run(testcases::ga102Monolithic(tech), 500, 42);

    rows.clear();
    auto add = [&](const std::string &name,
                   const SampleStats &stats) {
        rows.push_back({name, bench::num(stats.mean()),
                        bench::num(stats.stddev()),
                        bench::num(stats.percentile(10.0)),
                        bench::num(stats.percentile(50.0)),
                        bench::num(stats.percentile(90.0))});
    };
    add("mono Cemb", mono.embodied);
    add("3-chiplet Cemb", chiplets.embodied);
    add("3-chiplet Cop", chiplets.operational);
    add("3-chiplet Ctot", chiplets.total);
    bench::emit({"metric_kgCO2", "mean", "stddev", "p10", "p50",
                 "p90"},
                rows);

    // With paired seeds the per-trial saving distribution is the
    // headline-result confidence statement.
    const double mean_saving =
        1.0 - chiplets.embodied.mean() / mono.embodied.mean();
    std::vector<std::vector<std::string>> saving_row = {
        {bench::num(100.0 * mean_saving)}};
    bench::emit({"mean_embodied_saving_pct"}, saving_row);
    return 0;
}
