/**
 * @file
 * Fig. 10 — manufacturing CFP (Cmfg) and HI overheads (CHI) as the
 * GA102 is disaggregated into Nc chiplets: digital slices in 7 nm,
 * memory in 10 nm, analog in 14 nm, RDL fanout packaging.
 *
 * Shape target: Cmfg falls with Nc (smaller dies, better yield)
 * while CHI rises; beyond some Nc the savings flatten as CHI
 * dominates the delta.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

int
main()
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::RdlFanout;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);

    bench::banner("Fig. 10",
                  "Cmfg and CHI vs. chiplet count Nc (GA102, "
                  "digital split at 7 nm)");

    std::vector<std::vector<std::string>> rows;
    const CarbonReport mono = estimator.estimate(
        testcases::ga102Monolithic(estimator.tech()));
    rows.push_back({"mono", bench::num(mono.mfgCo2Kg),
                    bench::num(0.0), bench::num(mono.mfgCo2Kg)});

    for (int nc = 3; nc <= 10; ++nc) {
        const CarbonReport r = estimator.estimate(
            testcases::ga102Split(estimator.tech(), nc));
        rows.push_back({std::to_string(nc),
                        bench::num(r.mfgCo2Kg),
                        bench::num(r.hi.totalCo2Kg()),
                        bench::num(r.mfgCo2Kg +
                                   r.hi.totalCo2Kg())});
    }
    bench::emit({"Nc", "Cmfg_kg", "CHI_kg", "Cmfg+CHI_kg"}, rows);
    return 0;
}
