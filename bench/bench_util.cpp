#include "bench_util.h"

#include <iostream>

namespace ecochip::bench {

void
banner(const std::string &figure, const std::string &caption)
{
    std::cout << "\n=== " << figure << " — " << caption
              << " ===\n";
}

void
emit(const std::vector<std::string> &headers,
     const std::vector<std::vector<std::string>> &rows)
{
    TablePrinter table(headers);
    for (const auto &row : rows)
        table.addRow(row);
    table.print(std::cout);

    std::cout << "-- csv --\n";
    CsvWriter csv(std::cout);
    csv.writeRow(headers);
    for (const auto &row : rows)
        csv.writeRow(row);
    std::cout << "-- end csv --\n";
}

std::string
num(double value, int precision)
{
    return TablePrinter::formatNumber(value, precision);
}

std::string
nodeLabel(double digital_nm, double memory_nm, double analog_nm)
{
    std::string label;
    label += '(';
    label += std::to_string(int(digital_nm));
    label += ',';
    label += std::to_string(int(memory_nm));
    label += ',';
    label += std::to_string(int(analog_nm));
    label += ')';
    return label;
}

} // namespace ecochip::bench
