/**
 * @file
 * Fig. 13 — carbon-delay, carbon-power, and carbon-area product
 * curves for the 3D-stacked AR/VR neural accelerator (1K and 2K
 * series, 1 - 4 stacked SRAM tiers, 7 nm, microbump 3D).
 *
 * Shape targets: more SRAM tiers reduce latency and operating
 * power, but embodied carbon grows with the extra silicon, so Ctot
 * (2-year lifetime) rises left-to-right within each series.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

int
main()
{
    bench::banner("Fig. 13",
                  "AR/VR accelerator: carbon-delay/power/area "
                  "products (3D microbump, 2-year life)");

    std::vector<std::vector<std::string>> rows;
    TechDb tech;
    for (const auto &point : testcases::arvrSweep(tech)) {
        EcoChipConfig config;
        config.package.arch = PackagingArch::Stack3d;
        config.package.bondType = BondType::Microbump;
        config.operating = testcases::arvrOperating(point);
        EcoChip estimator(config);

        const CarbonReport r = estimator.estimate(point.system);
        const double ctot = r.totalCo2Kg();
        rows.push_back({point.label,
                        std::to_string(point.sramTiers),
                        bench::num(point.latencyMs),
                        bench::num(point.avgPowerW),
                        bench::num(point.footprintMm2),
                        bench::num(r.embodiedCo2Kg()),
                        bench::num(r.operation.co2Kg),
                        bench::num(ctot),
                        bench::num(ctot * point.latencyMs),
                        bench::num(ctot * point.avgPowerW),
                        bench::num(ctot * point.footprintMm2)});
    }
    bench::emit({"config", "tiers", "latency_ms", "power_W",
                 "area_mm2", "Cemb_kg", "Cop_kg", "Ctot_kg",
                 "carbon_delay", "carbon_power", "carbon_area"},
                rows);
    return 0;
}
