/**
 * @file
 * Fig. 2 — motivation results.
 *
 * (a) Manufacturing CFP versus monolithic die area at 10 nm: the
 *     exponential growth caused by falling yield.
 * (b) Manufacturing CFP of a 4-chiplet GA102 (memory and analog
 *     chiplets, digital split in two) normalized to the monolithic
 *     GA102, across technology nodes, including packaging
 *     overheads.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

namespace {

void
fig2a(const EcoChip &estimator)
{
    bench::banner("Fig. 2(a)",
                  "manufacturing CFP vs. monolithic die area "
                  "(10 nm)");

    ManufacturingModel mfg(estimator.tech(),
                           estimator.config().wafer,
                           estimator.config().fabIntensityGPerKwh);

    std::vector<std::vector<std::string>> rows;
    for (double area = 25.0; area <= 200.0 + 1e-9; area += 25.0) {
        const MfgBreakdown b = mfg.dieMfg(area, 10.0);
        rows.push_back({bench::num(area), bench::num(b.yield),
                        bench::num(b.totalCo2Kg() * 1e3),
                        bench::num(b.totalCo2Kg() * 1e3 / area)});
    }
    bench::emit(
        {"area_mm2", "yield", "mfg_gCO2", "gCO2_per_mm2"}, rows);
}

void
fig2b(const EcoChip &estimator)
{
    bench::banner("Fig. 2(b)",
                  "4-chiplet GA102 vs. monolith, normalized "
                  "manufacturing+HI CFP per node");

    std::vector<std::vector<std::string>> rows;
    for (double node : {14.0, 10.0, 7.0}) {
        const SystemSpec mono =
            testcases::ga102Monolithic(estimator.tech(), node);
        const SystemSpec four =
            testcases::ga102FourChiplet(estimator.tech(), node);

        const CarbonReport mono_r = estimator.estimate(mono);
        const CarbonReport four_r = estimator.estimate(four);

        const double mono_mfg = mono_r.mfgCo2Kg;
        const double four_mfg =
            four_r.mfgCo2Kg + four_r.hi.totalCo2Kg();
        rows.push_back({bench::num(node), bench::num(mono_mfg),
                        bench::num(four_mfg),
                        bench::num(four_mfg / mono_mfg)});
    }
    bench::emit({"node_nm", "mono_kgCO2", "4chiplet_kgCO2",
                 "normalized"},
                rows);
}

} // namespace

int
main()
{
    EcoChip estimator;
    fig2a(estimator);
    fig2b(estimator);
    return 0;
}
