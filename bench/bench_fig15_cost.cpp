/**
 * @file
 * Fig. 15 — dollar-cost analysis with the integrated cost model,
 * using the same yields as the CFP estimation.
 *
 * (a) Cost of the GA102 3-chiplet testcase across node tuples:
 *     older-node chiplets are cheaper (better yields, cheaper
 *     wafers), echoing the Ctot trend of Fig. 7(d);
 * (b) Cost vs. Nc for the GA102 digital-logic split: assembly cost
 *     rises with Nc while die cost falls, a shallower trade-off
 *     than the CFP one in Fig. 10.
 */

#include <vector>

#include "bench_util.h"
#include "core/ecochip.h"
#include "core/testcases.h"

using namespace ecochip;

int
main()
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::RdlFanout;
    EcoChip estimator(config);
    const TechDb &tech = estimator.tech();

    bench::banner("Fig. 15(a)",
                  "GA102 3-chiplet unit cost per node tuple (USD)");
    std::vector<std::vector<std::string>> rows;
    {
        const CostBreakdown mono =
            estimator.cost(testcases::ga102Monolithic(tech, 7.0));
        rows.push_back({"mono(7,7,7)", bench::num(mono.dieUsd),
                        bench::num(mono.packageUsd),
                        bench::num(mono.assemblyUsd),
                        bench::num(mono.nreUsd),
                        bench::num(mono.totalUsd())});
    }
    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    for (double d : nodes) {
        for (double m : nodes) {
            for (double a : nodes) {
                const CostBreakdown c = estimator.cost(
                    testcases::ga102ThreeChiplet(tech, d, m, a));
                const std::string label =
                    bench::nodeLabel(d, m, a);
                rows.push_back({label, bench::num(c.dieUsd),
                                bench::num(c.packageUsd),
                                bench::num(c.assemblyUsd),
                                bench::num(c.nreUsd),
                                bench::num(c.totalUsd())});
            }
        }
    }
    bench::emit({"config", "die_usd", "package_usd",
                 "assembly_usd", "nre_usd", "total_usd"},
                rows);

    bench::banner("Fig. 15(b)",
                  "GA102 unit cost vs. chiplet count Nc (USD)");
    rows.clear();
    for (int nc = 3; nc <= 10; ++nc) {
        const CostBreakdown c = estimator.cost(
            testcases::ga102Split(tech, nc));
        rows.push_back({std::to_string(nc), bench::num(c.dieUsd),
                        bench::num(c.packageUsd),
                        bench::num(c.assemblyUsd),
                        bench::num(c.nreUsd),
                        bench::num(c.totalUsd())});
    }
    bench::emit({"Nc", "die_usd", "package_usd", "assembly_usd",
                 "nre_usd", "total_usd"},
                rows);
    return 0;
}
