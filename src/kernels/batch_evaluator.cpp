#include "kernels/batch_evaluator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "design/design_model.h"
#include "manufacture/mfg_model.h"
#include "manufacture/nre_model.h"
#include "noc/router_model.h"
#include "operation/operational_model.h"
#include "package/package_model.h"
#include "support/error.h"
#include "support/units.h"
#include "yield/yield_model.h"

namespace ecochip {

namespace {

/** Resample a node accessor at the standard anchors. */
PiecewiseLinear
resampledTable(const TechDb &tech, double (TechDb::*accessor)(double) const)
{
    std::vector<std::pair<double, double>> points;
    for (double node : TechDb::standardNodesNm())
        points.emplace_back(node, (tech.*accessor)(node));
    return PiecewiseLinear(points);
}

} // namespace

BatchEvaluator::BatchEvaluator(const EcoChipConfig &config,
                               const TechDb &tech,
                               const SystemSpec &system)
    : yieldKind_(config.yieldModel), arch_(config.package.arch)
{
    requireConfig(!system.chiplets.empty(),
                  "system has no chiplets");

    alpha_ = tech.clusteringAlpha();

    // Resampled base tables at the standard node anchors: a trial
    // that rebuilds a table with scale s evaluates exactly
    // (s*yLo) + t*((s*yHi) - (s*yLo)) on these knots.
    const PiecewiseLinear d0_resampled =
        resampledTable(tech, &TechDb::defectDensityPerCm2);
    const PiecewiseLinear epa_resampled =
        resampledTable(tech, &TechDb::epaKwhPerCm2);

    auto d0Lookup = [&](double node_nm) {
        const PiecewiseLinear::Segment seg =
            d0_resampled.segment(node_nm);
        return ScaledLookup{tech.defectDensityPerCm2(node_nm),
                            seg.yLo, seg.yHi, seg.t};
    };
    auto epaLookup = [&](double node_nm) {
        const PiecewiseLinear::Segment seg =
            epa_resampled.segment(node_nm);
        return ScaledLookup{tech.epaKwhPerCm2(node_nm), seg.yLo,
                            seg.yHi, seg.t};
    };

    // --- Manufacturing (same model-construction order and
    // validations as EcoChip::estimate). ---
    ManufacturingModel mfgModel(tech, config.wafer,
                                config.fabIntensityGPerKwh,
                                config.yieldModel);
    mfgModel.setIncludeWastage(config.includeWastage);

    auto makeDieTerm = [&](double area_mm2, double node_nm) {
        // Runs the scalar validations (positive area, wafer fit)
        // and yields the invariant wastage term.
        const MfgBreakdown base =
            mfgModel.dieMfg(area_mm2, node_nm);
        DieTerm term;
        term.areaMm2 = area_mm2;
        term.areaCm2 = area_mm2 * units::kCm2PerMm2;
        term.derate = tech.equipmentDerate(node_nm);
        term.cgas = tech.cgasKgPerCm2(node_nm);
        term.cmaterial = tech.cmaterialKgPerCm2(node_nm);
        term.wastedCo2Kg = base.wastedCo2Kg;
        term.d0 = d0Lookup(node_nm);
        term.epa = epaLookup(node_nm);
        return term;
    };

    singleDie_ = system.singleDie;
    if (system.singleDie) {
        double area_mm2 = 0.0;
        for (const auto &block : system.chiplets)
            area_mm2 += block.areaMm2(tech);
        mfgTerms_.push_back(
            makeDieTerm(area_mm2, system.monolithicNodeNm()));
    } else {
        for (const auto &chiplet : system.chiplets)
            mfgTerms_.push_back(makeDieTerm(
                chiplet.areaMm2(tech), chiplet.nodeNm));
    }

    // --- Packaging. ---
    PackageModel pkgModel(tech, mfgModel, config.package);
    const PackageParams &pp = config.package;
    monolithic_ = system.isMonolithic();
    RouterModel router(tech, pp.router);
    PhyModel phy(tech, pp.router.flitWidthBits);
    double noc_power_w = 0.0;

    auto makePat = [&](int layers, double epla_kwh_per_cm2,
                       double area_mm2, double d0_derate,
                       double node_nm) {
        PatterningTerm pat;
        pat.areaCm2 = area_mm2 * units::kCm2PerMm2;
        pat.energyKwh =
            layers * epla_kwh_per_cm2 * pat.areaCm2;
        pat.d0Derate = d0_derate;
        pat.d0 = d0Lookup(node_nm);
        return pat;
    };
    auto makeSubstrate = [&](double area_mm2) {
        return makePat(pp.substrateBaseLayers,
                       tech.eplaRdlKwhPerCm2(pp.rdlNodeNm),
                       area_mm2, tech.rdlDefectDerate(),
                       pp.rdlNodeNm);
    };
    auto makeBond = [&](double footprint_mm2, int nt) {
        const double pitch_um = pp.bondPitchUm();
        const double vias = std::floor(
            footprint_mm2 * units::kUm2PerMm2 /
            (pitch_um * pitch_um));
        const double bond_events = vias * (nt - 1);
        BondTerm bond;
        bond.yield =
            bondArrayYield(bond_events,
                           pp.bondFailProbability()) *
            std::pow(pp.tierAssemblyYield, nt - 1);
        bond.energyKwh = vias * pp.bondEnergyFactor() *
                         tech.energyPerTsvKwh(
                             pp.bondProcessNodeNm);
        return bond;
    };
    auto addCommTerms = [&](bool use_phy) {
        const double bit_rate_hz =
            pp.nocFlitRateHz * pp.router.flitWidthBits;
        for (std::size_t i = 0; i < system.chiplets.size();
             ++i) {
            const Chiplet &chiplet = system.chiplets[i];
            const double added_mm2 =
                use_phy ? phy.areaMm2(chiplet.nodeNm)
                        : router.areaMm2(chiplet.nodeNm);
            CommTerm term;
            term.bareIndex = i;
            if (added_mm2 <= 0.0)
                term.zero = true;
            else
                term.grown = makeDieTerm(
                    chiplet.areaMm2(tech) + added_mm2,
                    chiplet.nodeNm);
            commTerms_.push_back(term);
            noc_power_w +=
                use_phy
                    ? phy.powerW(chiplet.nodeNm, bit_rate_hz)
                    : router.powerW(chiplet.nodeNm,
                                    pp.nocFlitRateHz);
        }
    };

    if (!monolithic_) {
        if (arch_ == PackagingArch::Stack3d) {
            double footprint_mm2 = 0.0;
            for (const auto &chiplet : system.chiplets)
                footprint_mm2 = std::max(
                    footprint_mm2, chiplet.areaMm2(tech));
            mainBond_ = makeBond(
                footprint_mm2,
                static_cast<int>(system.chiplets.size()));
            substratePat_ = makeSubstrate(footprint_mm2);
            hasSubstrate_ = true;
            addCommTerms(false);
        } else {
            const FloorplanResult fp =
                pkgModel.floorplan(system);
            const double pkg_area_mm2 = fp.areaMm2();
            switch (arch_) {
              case PackagingArch::RdlFanout:
                archPat_ = makePat(
                    pp.rdlLayers,
                    tech.eplaRdlKwhPerCm2(pp.rdlNodeNm),
                    pkg_area_mm2, tech.rdlDefectDerate(),
                    pp.rdlNodeNm);
                addCommTerms(true);
                break;
              case PackagingArch::SiliconBridge: {
                int bridges = 0;
                for (const auto &adj : fp.adjacencies) {
                    bridges += std::max(
                        1, static_cast<int>(std::ceil(
                               adj.overlapMm /
                               pp.bridgeRangeMm)));
                }
                bridges = std::max(
                    bridges,
                    static_cast<int>(system.chiplets.size()) -
                        1);
                bridges_ = bridges;
                archPat_ = makePat(
                    pp.bridgeLayers,
                    tech.eplaBridgeKwhPerCm2(pp.bridgeNodeNm),
                    pp.bridgeAreaMm2, 1.0, pp.bridgeNodeNm);
                embedYield_ =
                    std::pow(pp.bridgeEmbedYield, bridges);
                substratePat_ = makeSubstrate(pkg_area_mm2);
                hasSubstrate_ = true;
                addCommTerms(true);
                break;
              }
              case PackagingArch::PassiveInterposer:
              case PackagingArch::ActiveInterposer: {
                const bool active =
                    arch_ == PackagingArch::ActiveInterposer;
                const double node = pp.interposerNodeNm;
                archPat_ = makePat(
                    pp.interposerBeolLayers,
                    tech.eplaInterposerKwhPerCm2(node),
                    pkg_area_mm2,
                    active ? 1.0
                           : tech.interposerDefectDerate(),
                    node);
                const double wasted_mm2 =
                    mfgModel.includeWastage()
                        ? config.wafer.wastedAreaPerDieMm2(
                              pkg_area_mm2)
                        : 0.0;
                wastageCo2Kg_ = tech.cfpaSiKgPerCm2(node) *
                                wasted_mm2 *
                                units::kCm2PerMm2;
                substratePat_ = makeSubstrate(pkg_area_mm2);
                hasSubstrate_ = true;
                if (active) {
                    feolDerate_ = tech.equipmentDerate(node);
                    feolCgas_ = tech.cgasKgPerCm2(node);
                    feolCmaterial_ =
                        tech.cmaterialKgPerCm2(node);
                    feolEpa_ = epaLookup(node);
                    routerAreaMm2_ =
                        router.areaMm2(node) *
                        static_cast<double>(
                            system.chiplets.size());
                    repeaterAreaMm2_ =
                        pp.repeaterAreaFraction *
                        pkg_area_mm2;
                    noc_power_w =
                        router.powerW(node,
                                      pp.nocFlitRateHz) *
                        static_cast<double>(
                            system.chiplets.size());
                } else {
                    addCommTerms(false);
                }
                break;
              }
              case PackagingArch::Stack3d:
                // Handled before the floorplan branch.
                break;
            }

            // Mixed 2.5D/3D stack groups, first-appearance
            // order (matches PackageModel::evaluate).
            std::vector<std::string> groups;
            for (const auto &chiplet : system.chiplets) {
                if (chiplet.stackGroup.empty())
                    continue;
                bool seen = false;
                for (const auto &group : groups)
                    seen |= group == chiplet.stackGroup;
                if (!seen)
                    groups.push_back(chiplet.stackGroup);
            }
            for (const auto &group : groups) {
                int tiers = 0;
                double footprint_mm2 = 0.0;
                for (const auto &chiplet : system.chiplets) {
                    if (chiplet.stackGroup != group)
                        continue;
                    ++tiers;
                    footprint_mm2 = std::max(
                        footprint_mm2,
                        chiplet.areaMm2(tech));
                }
                if (tiers < 2)
                    requireConfig(false,
                                  "stack group \"" + group +
                                      "\" needs at least two tiers");
                stackBonds_.push_back(
                    makeBond(footprint_mm2, tiers));
            }
        }
    }

    // --- Intensities the trial scales multiply. ---
    fabIntensityBase_ = config.fabIntensityGPerKwh;
    pkgIntensityBase_ = pp.intensityGPerKwh;
    designIntensityBase_ = config.design.intensityGPerKwh;

    // --- Design (Eqs. 12-13). ---
    DesignModel designModel(tech, config.design);
    sprBase_ = config.design.sprHoursPerMgate;
    designIterBase_ =
        static_cast<double>(config.design.designIterations);
    analyzeFraction_ = config.design.analyzeFraction;
    verifMultiple_ = config.design.verifMultiple;
    pdesW_ = config.design.pdesW;
    chipletVolumeBase_ = config.design.chipletVolume;
    systemVolume_ = config.design.systemVolume;
    for (const auto &chiplet : system.chiplets) {
        if (chiplet.reused)
            continue;
        designTerms_.push_back(
            {chiplet.transistorsMtr *
                 config.design.gatesPerTransistor,
             designModel.edaProductivityFit(chiplet.nodeNm)});
    }
    double comm_mtr = 0.0;
    double comm_node_nm = pp.interposerNodeNm;
    if (!system.isMonolithic()) {
        const double nc =
            static_cast<double>(system.chiplets.size());
        switch (arch_) {
          case PackagingArch::RdlFanout:
          case PackagingArch::SiliconBridge:
            comm_mtr = phy.transistorsMtr() * nc;
            comm_node_nm = system.chiplets.front().nodeNm;
            break;
          case PackagingArch::PassiveInterposer:
          case PackagingArch::Stack3d:
            comm_mtr = router.transistorsMtr() * nc;
            comm_node_nm = system.chiplets.front().nodeNm;
            break;
          case PackagingArch::ActiveInterposer:
            comm_mtr = router.transistorsMtr() * nc;
            comm_node_nm = pp.interposerNodeNm;
            break;
        }
    }
    hasComm_ = comm_mtr > 0.0;
    if (hasComm_) {
        commGates_ =
            comm_mtr * config.design.gatesPerTransistor;
        commEtaC_ = designModel.edaProductivityFit(comm_node_nm);
    }

    // --- Mask-set NRE. ---
    includeNre_ = config.includeMaskNre;
    if (includeNre_) {
        NreCarbonModel nreModel(tech,
                                config.fabIntensityGPerKwh,
                                config.design.chipletVolume);
        static_cast<void>(nreModel);
        if (system.singleDie) {
            maskSetEnergiesKwh_.push_back(
                tech.maskSetEnergyKwh(
                    system.monolithicNodeNm()));
        } else {
            for (const auto &chiplet : system.chiplets)
                if (!chiplet.reused)
                    maskSetEnergiesKwh_.push_back(
                        tech.maskSetEnergyKwh(
                            chiplet.nodeNm));
        }
    }

    // --- Operation (Eq. 14). ---
    OperationalModel opModel(tech, config.operating);
    const OperatingSpec &os = config.operating;
    annualPath_ = os.annualEnergyKwh.has_value();
    extraPowerW_ = noc_power_w;
    if (annualPath_)
        annualEnergyKwh_ = *os.annualEnergyKwh;
    else
        avgPowerBaseW_ =
            opModel.systemPowerW(system, noc_power_w);
    lifetimeBase_ = os.lifetimeYears;
    dutyCycleBase_ = os.dutyCycle;
    useIntensity_ = os.useIntensityGPerKwh;
}

double
BatchEvaluator::dieTotalCo2Kg(const DieTerm &term, double s_d0,
                              bool rebuild_d0, double s_epa,
                              bool rebuild_epa,
                              double fab_t) const
{
    const double d0 = term.d0.eval(s_d0, rebuild_d0);
    const double yield =
        dieYieldFast(yieldKind_, term.areaCm2, d0, alpha_);
    const double energy = term.derate * fab_t *
                          units::kKgPerG *
                          term.epa.eval(s_epa, rebuild_epa);
    const double cfpa =
        (energy + term.cgas + term.cmaterial) / yield;
    return cfpa * term.areaMm2 * units::kCm2PerMm2 +
           term.wastedCo2Kg;
}

namespace {

double
patterningYield(const double area_cm2, const double d0,
                const double alpha)
{
    return negativeBinomialYieldFast(area_cm2, d0, alpha);
}

} // namespace

void
BatchEvaluator::evaluateRange(const TrialBatch &batch,
                              std::size_t begin, std::size_t end,
                              double *embodied,
                              double *operational,
                              double *total) const
{
    // Per-chiplet bare die carbon: computed once per trial,
    // consumed by both the mfg sum and the comm-growth deltas
    // (the scalar path computes the identical value twice).
    std::vector<double> bare(mfgTerms_.size());

    for (std::size_t i = begin; i < end; ++i) {
        const double s_d0 = batch.defectDensityScale[i];
        const bool rb_d0 = batch.rebuildDefectDensity[i] != 0;
        const double s_epa = batch.epaScale[i];
        const bool rb_epa = batch.rebuildEpa[i] != 0;
        const double fab_t =
            fabIntensityBase_ * batch.fabIntensityScale[i];
        const double pkg_t =
            pkgIntensityBase_ * batch.packageIntensityScale[i];
        const double des_t =
            designIntensityBase_ *
            batch.designIntensityScale[i];
        const double spr_t =
            sprBase_ * batch.sprHoursScale[i];
        const double iters =
            batch.designIterations[i] != 0.0
                ? batch.designIterations[i]
                : designIterBase_;
        const double vol_t =
            chipletVolumeBase_ * batch.chipletVolumeScale[i];
        if (vol_t < 1.0)
            throw ConfigError(
                "chiplet volume must be at least 1");
        const double life_t =
            lifetimeBase_ * batch.lifetimeScale[i];
        const double duty_t = std::min(
            1.0, dutyCycleBase_ * batch.dutyCycleScale[i]);

        // Manufacturing (Eqs. 4-6).
        double mfg_co2 = 0.0;
        for (std::size_t d = 0; d < mfgTerms_.size(); ++d) {
            bare[d] = dieTotalCo2Kg(mfgTerms_[d], s_d0, rb_d0,
                                    s_epa, rb_epa, fab_t);
            mfg_co2 += bare[d];
        }

        // Packaging (Sec. III-D).
        double package_co2 = 0.0;
        double routing_co2 = 0.0;
        if (!monolithic_) {
            switch (arch_) {
              case PackagingArch::RdlFanout: {
                const double yield = patterningYield(
                    archPat_.areaCm2,
                    archPat_.d0Derate *
                        archPat_.d0.eval(s_d0, rb_d0),
                    alpha_);
                package_co2 = pkg_t * archPat_.energyKwh *
                              units::kKgPerG / yield;
                break;
              }
              case PackagingArch::SiliconBridge: {
                const double bridge_yield = patterningYield(
                    archPat_.areaCm2,
                    archPat_.d0Derate *
                        archPat_.d0.eval(s_d0, rb_d0),
                    alpha_);
                const double per_bridge =
                    pkg_t * archPat_.energyKwh *
                    units::kKgPerG / bridge_yield;
                const double substrate_yield =
                    patterningYield(
                        substratePat_.areaCm2,
                        substratePat_.d0Derate *
                            substratePat_.d0.eval(s_d0, rb_d0),
                        alpha_);
                const double substrate =
                    pkg_t * substratePat_.energyKwh *
                    units::kKgPerG / substrate_yield;
                package_co2 =
                    (substrate + bridges_ * per_bridge) /
                    embedYield_;
                break;
              }
              case PackagingArch::PassiveInterposer:
              case PackagingArch::ActiveInterposer: {
                const double beol_yield = patterningYield(
                    archPat_.areaCm2,
                    archPat_.d0Derate *
                        archPat_.d0.eval(s_d0, rb_d0),
                    alpha_);
                const double beol = pkg_t *
                                    archPat_.energyKwh *
                                    units::kKgPerG /
                                    beol_yield;
                const double substrate_yield =
                    patterningYield(
                        substratePat_.areaCm2,
                        substratePat_.d0Derate *
                            substratePat_.d0.eval(s_d0, rb_d0),
                        alpha_);
                const double substrate =
                    pkg_t * substratePat_.energyKwh *
                    units::kKgPerG / substrate_yield;
                package_co2 =
                    beol + wastageCo2Kg_ + substrate;
                if (arch_ ==
                    PackagingArch::ActiveInterposer) {
                    const double feol_energy =
                        feolDerate_ * fab_t *
                        units::kKgPerG *
                        feolEpa_.eval(s_epa, rb_epa);
                    const double feol_cfpa =
                        (feol_energy + feolCgas_ +
                         feolCmaterial_) /
                        beol_yield;
                    routing_co2 = feol_cfpa *
                                  routerAreaMm2_ *
                                  units::kCm2PerMm2;
                    package_co2 += feol_cfpa *
                                   repeaterAreaMm2_ *
                                   units::kCm2PerMm2;
                }
                break;
              }
              case PackagingArch::Stack3d: {
                const double bonds =
                    pkg_t * mainBond_.energyKwh *
                    units::kKgPerG / mainBond_.yield;
                const double substrate_yield =
                    patterningYield(
                        substratePat_.areaCm2,
                        substratePat_.d0Derate *
                            substratePat_.d0.eval(s_d0, rb_d0),
                        alpha_);
                const double substrate =
                    pkg_t * substratePat_.energyKwh *
                    units::kKgPerG / substrate_yield;
                package_co2 = bonds + substrate;
                break;
              }
            }

            for (const auto &comm : commTerms_) {
                if (comm.zero)
                    continue;
                routing_co2 +=
                    dieTotalCo2Kg(comm.grown, s_d0, rb_d0,
                                  s_epa, rb_epa, fab_t) -
                    bare[comm.bareIndex];
            }

            if (!stackBonds_.empty()) {
                double stack_co2 = 0.0;
                for (const auto &bond : stackBonds_)
                    stack_co2 += pkg_t * bond.energyKwh *
                                 units::kKgPerG / bond.yield;
                package_co2 += stack_co2;
            }
        }
        const double hi_co2 = package_co2 + routing_co2;

        // Design (Eqs. 12-13).
        double design_co2 = 0.0;
        for (const auto &term : designTerms_) {
            const double spr = spr_t * term.gates;
            const double analyze = analyzeFraction_ * spr;
            const double iterative =
                (spr + analyze) * iters / term.etaC;
            const double hours =
                verifMultiple_ * iterative + iterative;
            const double energy =
                hours * pdesW_ * units::kKwhPerWh;
            const double co2 =
                des_t * energy * units::kKgPerG;
            design_co2 += co2 / vol_t;
        }
        if (hasComm_) {
            const double spr = spr_t * commGates_;
            const double analyze = analyzeFraction_ * spr;
            const double iterative =
                (spr + analyze) * iters / commEtaC_;
            const double hours =
                verifMultiple_ * iterative + iterative;
            const double energy =
                hours * pdesW_ * units::kKwhPerWh;
            const double comm_co2 =
                des_t * energy * units::kKgPerG;
            design_co2 += comm_co2 / systemVolume_;
        }

        // Mask-set NRE (Sec. V-C extension).
        double nre_co2 = 0.0;
        for (const double energy_kwh : maskSetEnergiesKwh_)
            nre_co2 += fab_t * energy_kwh * units::kKgPerG /
                       vol_t;

        // Operation (Eq. 14 / battery-rating path).
        double op_co2;
        if (annualPath_) {
            const double on_hours_per_year =
                duty_t * units::kHoursPerYear;
            const double extra_kwh_per_year =
                extraPowerW_ * on_hours_per_year *
                units::kKwhPerWh;
            const double lifetime_kwh =
                (annualEnergyKwh_ + extra_kwh_per_year) *
                life_t;
            op_co2 = useIntensity_ * lifetime_kwh *
                     units::kKgPerG;
        } else {
            const double on_hours = life_t *
                                    units::kHoursPerYear *
                                    duty_t;
            const double lifetime_kwh = avgPowerBaseW_ *
                                        on_hours *
                                        units::kKwhPerWh;
            op_co2 = useIntensity_ * lifetime_kwh *
                     units::kKgPerG;
        }

        const double embodied_co2 =
            mfg_co2 + hi_co2 + design_co2 + nre_co2;
        embodied[i] = embodied_co2;
        operational[i] = op_co2;
        total[i] = embodied_co2 + op_co2;
    }
}

} // namespace ecochip
