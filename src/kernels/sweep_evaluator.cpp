#include "kernels/sweep_evaluator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "design/design_model.h"
#include "floorplan/floorplan.h"
#include "manufacture/mfg_model.h"
#include "manufacture/nre_model.h"
#include "noc/router_model.h"
#include "operation/operational_model.h"
#include "package/package_model.h"
#include "support/error.h"
#include "support/units.h"
#include "wafer/wafer_model.h"
#include "yield/yield_model.h"

namespace ecochip {

namespace {

/**
 * Process-wide floorplan memo. A floorplan is a pure function of
 * (spacing, ordered box list); it does not depend on the technology
 * database or configuration, so entries can outlive any single
 * estimator's evaluation cache.
 */
MemoTable<FloorplanResult> &
floorplanMemo()
{
    static MemoTable<FloorplanResult> memo;
    return memo;
}

/** Append a double's raw IEEE-754 bytes (CacheKey layout). */
void
appendRaw(std::string &buf, double v)
{
    char raw[sizeof(double)];
    std::memcpy(raw, &v, sizeof(double));
    buf.append(raw, sizeof(double));
}

/** Append a length-prefixed string (CacheKey layout). */
void
appendRaw(std::string &buf, const std::string &s)
{
    const int size = static_cast<int>(s.size());
    char raw[sizeof(int)];
    std::memcpy(raw, &size, sizeof(int));
    buf.append(raw, sizeof(int));
    buf.append(s);
}

} // namespace

/**
 * Reusable per-sweep buffers. Every point needs a report key, a
 * floorplan key, and a box list; keeping them in one scratch
 * object reused across the whole sweep makes the per-point loop
 * allocation-free once the buffers reach steady-state capacity.
 */
struct SweepEvaluator::Scratch
{
    std::string reportKey;
    std::string floorplanKey;
    std::vector<ChipletBox> boxes;
};

/** Compiled sweep plan: everything invariant across points. */
struct SweepEvaluator::Plan
{
    /** cand[i][j]: chiplet i at its j-th candidate node. */
    std::vector<std::vector<Candidate>> cand;

    /** Node-independent report-key prefix (reportKeyPrefix()). */
    std::string reportPrefix;

    std::vector<std::string> names;
    std::vector<char> reused;

    PackagingArch arch = PackagingArch::RdlFanout;
    double alpha = 0.0;
    double pkgIntensity = 0.0;
    double spacingMm = 0.0;

    // Layered-patterning invariants at the fixed packaging nodes:
    // (layers * EPLA) energy prefactors and defect densities.
    double archLayersEpla = 0.0;
    double archD0 = 0.0;
    double subLayersEpla = 0.0;
    double subD0 = 0.0;

    // Silicon bridge: the per-bridge patterning carbon and bridge
    // yield are point-invariant (fixed bridge area and node).
    double bridgeRangeMm = 1.0;
    double bridgeEmbedYield = 1.0;
    double bridgeYield = 1.0;
    double bridgePerCo2Kg = 0.0;

    // Interposers.
    bool includeWastage = false;
    WaferModel wafer;
    double cfpaSiKgPerCm2 = 0.0;
    double grossCfpaKgPerCm2 = 0.0;  ///< active FEOL, gross
    double routerAreaTotalMm2 = 0.0; ///< active: all routers
    double repeaterFraction = 0.0;
    double activeCommPowerW = 0.0;

    // Vertical bonds.
    double bondPitchSqUm2 = 1.0;
    double bondFailProbability = 0.0;
    double bondEnergyFactor = 0.0;
    double energyPerTsvKwh = 0.0;
    double tierYieldPowAll = 1.0; ///< 3D: all chiplets stacked

    std::vector<GroupTerm> groups; ///< 2.5D stack groups
    std::vector<BoxTerm> boxes;    ///< planarBoxes() replica

    // Design.
    bool hasComm = false;
    bool activeComm = false;
    double commDesignActiveCo2Kg = 0.0;

    bool includeNre = false;

    // Operation.
    bool annualPath = false;
    double annualEnergyKwh = 0.0;
    double annualOnHoursPerYear = 0.0;
    double annualAvgPowerBaseW = 0.0;
    double lifetimeYears = 0.0;
    bool powerOverride = false;
    double overridePowerW = 0.0;
    double onHoursLife = 0.0;
    double useIntensity = 0.0;
};

std::shared_ptr<const SweepEvaluator::Plan>
SweepEvaluator::compile(
    const SystemSpec &system,
    const std::vector<std::vector<double>> &candidates_per_chiplet)
    const
{
    // One plan per (system identity, candidate grid); memoized in
    // the estimator's kernel cache so repeated sweeps (DSE loops,
    // benchmarks) skip compilation entirely.
    std::string prefix = EcoChip::reportKeyPrefix(system);
    CacheKey ck;
    ck.tag('K').add(std::string_view(prefix));
    for (const auto &list : candidates_per_chiplet) {
        ck.add(static_cast<int>(list.size()));
        for (double node : list)
            ck.add(node);
    }
    const std::string plan_key = std::move(ck).str();
    {
        std::shared_ptr<const void> hit;
        if (estimator_->cache_->kernel.find(plan_key, hit))
            return std::static_pointer_cast<const Plan>(hit);
    }

    requireConfig(!system.chiplets.empty(),
                  "system has no chiplets");

    const EcoChipConfig &config = estimator_->config_;
    const TechDb &tech = estimator_->tech_;
    const PackageParams &pp = config.package;
    const std::size_t n = system.chiplets.size();
    const double nc = static_cast<double>(n);

    // Constructing the scalar models up front reproduces every
    // configuration validation (same exceptions, same messages) the
    // scalar path would raise on the first point.
    ManufacturingModel mfg(tech, config.wafer,
                           config.fabIntensityGPerKwh,
                           config.yieldModel);
    mfg.setIncludeWastage(config.includeWastage);
    const PackageModel packageModel(tech, mfg, pp);
    static_cast<void>(packageModel);
    RouterModel router(tech, pp.router);
    PhyModel phy(tech, pp.router.flitWidthBits);
    DesignModel design(tech, config.design);
    OperationalModel operation(tech, config.operating);

    auto plan = std::make_shared<Plan>();
    plan->reportPrefix = std::move(prefix);
    plan->arch = pp.arch;
    plan->alpha = tech.clusteringAlpha();
    plan->pkgIntensity = pp.intensityGPerKwh;
    plan->spacingMm = pp.spacingMm;

    // --- packaging invariants ---------------------------------
    // The organic base substrate under bridge/interposer/3D
    // packages: coarse RDL layers at the fixed RDL node.
    plan->subLayersEpla = pp.substrateBaseLayers *
                          tech.eplaRdlKwhPerCm2(pp.rdlNodeNm);
    plan->subD0 = tech.rdlDefectDensityPerCm2(pp.rdlNodeNm);
    // Replicate the checked yield call's argument validation once.
    negativeBinomialYield(0.0, plan->subD0, plan->alpha);

    switch (pp.arch) {
      case PackagingArch::RdlFanout:
        plan->archLayersEpla =
            pp.rdlLayers * tech.eplaRdlKwhPerCm2(pp.rdlNodeNm);
        plan->archD0 = tech.rdlDefectDensityPerCm2(pp.rdlNodeNm);
        break;
      case PackagingArch::SiliconBridge: {
        plan->bridgeRangeMm = pp.bridgeRangeMm;
        plan->bridgeEmbedYield = pp.bridgeEmbedYield;
        plan->bridgeYield = negativeBinomialYield(
            pp.bridgeAreaMm2 * units::kCm2PerMm2,
            tech.bridgeDefectDensityPerCm2(pp.bridgeNodeNm),
            plan->alpha);
        // One bridge's patterning carbon, exactly as the scalar
        // layeredPatterningCo2Kg computes it.
        if (!(plan->bridgeYield > 0.0 && plan->bridgeYield <= 1.0))
            throw ModelError("package layer yield out of range");
        const double bridge_cm2 =
            pp.bridgeAreaMm2 * units::kCm2PerMm2;
        const double bridge_kwh =
            pp.bridgeLayers *
            tech.eplaBridgeKwhPerCm2(pp.bridgeNodeNm) * bridge_cm2;
        plan->bridgePerCo2Kg =
            units::carbonKg(pp.intensityGPerKwh, bridge_kwh) /
            plan->bridgeYield;
        break;
      }
      case PackagingArch::PassiveInterposer:
      case PackagingArch::ActiveInterposer: {
        const double node = pp.interposerNodeNm;
        plan->archLayersEpla = pp.interposerBeolLayers *
                               tech.eplaInterposerKwhPerCm2(node);
        plan->archD0 =
            pp.arch == PackagingArch::ActiveInterposer
                ? tech.defectDensityPerCm2(node)
                : tech.interposerDefectDensityPerCm2(node);
        negativeBinomialYield(0.0, plan->archD0, plan->alpha);
        plan->includeWastage = mfg.includeWastage();
        plan->wafer = mfg.wafer();
        plan->cfpaSiKgPerCm2 = tech.cfpaSiKgPerCm2(node);
        if (pp.arch == PackagingArch::ActiveInterposer) {
            plan->grossCfpaKgPerCm2 = mfg.grossCfpaKgPerCm2(node);
            plan->routerAreaTotalMm2 = router.areaMm2(node) * nc;
            plan->repeaterFraction = pp.repeaterAreaFraction;
            plan->activeCommPowerW =
                router.powerW(node, pp.nocFlitRateHz) * nc;
        }
        break;
      }
      case PackagingArch::Stack3d:
        break;
    }

    // Stack groups (2.5D) / whole-system tower (3D).
    bool has_bonds = pp.arch == PackagingArch::Stack3d;
    if (pp.arch == PackagingArch::Stack3d) {
        plan->tierYieldPowAll = std::pow(
            pp.tierAssemblyYield, static_cast<int>(n) - 1);
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            const std::string &group =
                system.chiplets[i].stackGroup;
            if (group.empty())
                continue;
            bool seen = false;
            for (const auto &g : plan->groups)
                seen |= system.chiplets[g.members.front()]
                            .stackGroup == group;
            if (seen)
                continue;
            GroupTerm term;
            for (std::size_t k = 0; k < n; ++k)
                if (system.chiplets[k].stackGroup == group)
                    term.members.push_back(k);
            if (term.members.size() < 2)
                requireConfig(false,
                              "stack group \"" + group +
                                  "\" needs at least two tiers");
            term.tiers = static_cast<int>(term.members.size());
            term.tierYieldPow =
                std::pow(pp.tierAssemblyYield, term.tiers - 1);
            plan->groups.push_back(std::move(term));
            has_bonds = true;
        }
    }
    if (has_bonds) {
        const double pitch_um = pp.bondPitchUm();
        plan->bondPitchSqUm2 = pitch_um * pitch_um;
        plan->bondFailProbability = pp.bondFailProbability();
        requireConfig(plan->bondFailProbability >= 0.0 &&
                          plan->bondFailProbability < 1.0,
                      "bond failure probability must be in [0, 1)");
        plan->bondEnergyFactor = pp.bondEnergyFactor();
        plan->energyPerTsvKwh =
            tech.energyPerTsvKwh(pp.bondProcessNodeNm);
    }

    // Floorplan boxes in planarBoxes() order: planar chiplets by
    // position, each stack group once at its first member.
    if (pp.arch != PackagingArch::Stack3d) {
        std::vector<std::string> seen_groups;
        for (std::size_t i = 0; i < n; ++i) {
            const Chiplet &chiplet = system.chiplets[i];
            if (chiplet.stackGroup.empty()) {
                plan->boxes.push_back({chiplet.name, {i}});
                continue;
            }
            bool seen = false;
            for (const auto &g : seen_groups)
                seen |= g == chiplet.stackGroup;
            if (seen)
                continue;
            seen_groups.push_back(chiplet.stackGroup);
            BoxTerm box;
            box.label = chiplet.stackGroup;
            for (std::size_t k = 0; k < n; ++k)
                if (system.chiplets[k].stackGroup ==
                    chiplet.stackGroup)
                    box.members.push_back(k);
            plan->boxes.push_back(std::move(box));
        }
    }

    // --- design / NRE / operation invariants ------------------
    double comm_mtr = 0.0;
    switch (pp.arch) {
      case PackagingArch::RdlFanout:
      case PackagingArch::SiliconBridge:
        comm_mtr = phy.transistorsMtr() * nc;
        break;
      case PackagingArch::PassiveInterposer:
      case PackagingArch::Stack3d:
      case PackagingArch::ActiveInterposer:
        comm_mtr = router.transistorsMtr() * nc;
        break;
    }
    plan->hasComm = comm_mtr > 0.0;
    plan->activeComm = pp.arch == PackagingArch::ActiveInterposer;

    // Replicates DesignModel::systemDesignCo2Kg's communication-IP
    // term for a given implementation node.
    const DesignParams &dp = config.design;
    auto commDesignTerm = [&](double node_nm) {
        const double comm_gates =
            comm_mtr * dp.gatesPerTransistor;
        const double spr = dp.sprHoursPerMgate * comm_gates;
        const double analyze = dp.analyzeFraction * spr;
        const double iterative = (spr + analyze) *
                                 dp.designIterations /
                                 design.edaProductivityFit(node_nm);
        const double verif = dp.verifMultiple * iterative;
        const double hours = verif + iterative;
        const double energy_kwh =
            hours * dp.pdesW * units::kKwhPerWh;
        const double comm_co2 =
            units::carbonKg(dp.intensityGPerKwh, energy_kwh);
        return comm_co2 / dp.systemVolume;
    };
    if (plan->hasComm && plan->activeComm)
        plan->commDesignActiveCo2Kg =
            commDesignTerm(pp.interposerNodeNm);

    plan->includeNre = config.includeMaskNre;
    NreCarbonModel nre(tech, config.fabIntensityGPerKwh,
                       config.design.chipletVolume);

    const OperatingSpec &os = config.operating;
    plan->lifetimeYears = os.lifetimeYears;
    plan->useIntensity = os.useIntensityGPerKwh;
    if (os.annualEnergyKwh) {
        plan->annualPath = true;
        plan->annualEnergyKwh = *os.annualEnergyKwh;
        plan->annualOnHoursPerYear =
            os.dutyCycle * units::kHoursPerYear;
        plan->annualAvgPowerBaseW = *os.annualEnergyKwh /
                                    units::kKwhPerWh /
                                    plan->annualOnHoursPerYear;
    } else {
        plan->powerOverride = os.avgPowerW.has_value();
        if (plan->powerOverride)
            plan->overridePowerW = *os.avgPowerW;
        plan->onHoursLife = os.lifetimeYears *
                            units::kHoursPerYear * os.dutyCycle;
    }

    // --- per-(chiplet, candidate) terms -----------------------
    const bool use_phy = pp.arch == PackagingArch::RdlFanout ||
                         pp.arch == PackagingArch::SiliconBridge;
    const bool per_chiplet_comm =
        pp.arch != PackagingArch::ActiveInterposer;
    const double bit_rate_hz =
        pp.nocFlitRateHz * pp.router.flitWidthBits;
    const bool need_powers =
        !plan->annualPath && !plan->powerOverride;

    plan->cand.resize(n);
    plan->names.resize(n);
    plan->reused.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        Chiplet chiplet = system.chiplets[i];
        plan->names[i] = chiplet.name;
        plan->reused[i] = chiplet.reused ? 1 : 0;
        auto &column = plan->cand[i];
        column.reserve(candidates_per_chiplet[i].size());
        for (double node : candidates_per_chiplet[i]) {
            chiplet.nodeNm = node;
            Candidate c;
            c.nodeNm = node;
            const double area = chiplet.areaMm2(tech);
            c.bare = estimator_->cachedDieMfg(mfg, area, node);
            if (per_chiplet_comm) {
                const double added = use_phy
                                         ? phy.areaMm2(node)
                                         : router.areaMm2(node);
                c.commAreaMm2 = added;
                c.commPowerW =
                    use_phy
                        ? phy.powerW(node, bit_rate_hz)
                        : router.powerW(node, pp.nocFlitRateHz);
                // Growth delta, exactly like addedAreaCo2Kg: the
                // grown die is never cached in the scalar path.
                if (added > 0.0)
                    c.commDeltaCo2Kg =
                        mfg.dieMfg(area + added, node)
                            .totalCo2Kg() -
                        c.bare.totalCo2Kg();
            }
            if (!chiplet.reused)
                c.designAmortizedCo2Kg =
                    estimator_
                        ->cachedChipletDesign(design, chiplet)
                        .amortizedCo2Kg;
            if (need_powers)
                c.chipletPowerW = operation.chipletPowerW(chiplet);
            if (plan->includeNre)
                c.nreCo2Kg = nre.amortizedCo2Kg(chiplet);
            if (i == 0 && plan->hasComm && !plan->activeComm)
                c.commDesignCo2Kg = commDesignTerm(node);
            column.push_back(std::move(c));
        }
    }

    estimator_->cache_->kernel.store(
        plan_key, std::shared_ptr<const void>(plan));
    return plan;
}

CarbonReport
SweepEvaluator::evaluatePoint(const Plan &plan,
                              const std::vector<std::size_t> &idx,
                              Scratch &scratch) const
{
    const std::size_t n = plan.cand.size();
    auto at = [&](std::size_t i) -> const Candidate & {
        return plan.cand[i][idx[i]];
    };

    // Report key: invariant prefix + the point's raw node doubles,
    // matching EcoChip::reportKey byte for byte.
    std::string &key = scratch.reportKey;
    key.assign(plan.reportPrefix);
    for (std::size_t i = 0; i < n; ++i)
        appendRaw(key, at(i).nodeNm);
    {
        CarbonReport cached;
        if (estimator_->cache_->report.find(key, cached))
            return cached;
    }

    CarbonReport report;

    // --- manufacturing ----------------------------------------
    double mfg_total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        mfg_total += at(i).bare.totalCo2Kg();
    report.mfgCo2Kg = mfg_total;

    // --- packaging (HiResult) ---------------------------------
    HiResult hi;
    auto patterningCo2 = [&](double layers_epla, double area_cm2,
                             double yield) {
        if (!(yield > 0.0 && yield <= 1.0))
            throw ModelError("package layer yield out of range");
        const double energy_kwh = layers_epla * area_cm2;
        return units::carbonKg(plan.pkgIntensity, energy_kwh) /
               yield;
    };
    auto substrateCo2 = [&](double area_mm2) {
        const double area_cm2 = area_mm2 * units::kCm2PerMm2;
        const double yield = negativeBinomialYieldFast(
            area_cm2, plan.subD0, plan.alpha);
        return patterningCo2(plan.subLayersEpla, area_cm2, yield);
    };
    auto bondCo2 = [&](double footprint_mm2, int nt,
                       double tier_pow) {
        const double vias =
            std::floor(footprint_mm2 * units::kUm2PerMm2 /
                       plan.bondPitchSqUm2);
        const double bond_events = vias * (nt - 1);
        const double yield =
            std::exp(-bond_events * plan.bondFailProbability) *
            tier_pow;
        const double energy_kwh =
            vias * plan.bondEnergyFactor * plan.energyPerTsvKwh;
        hi.bondCount += vias;
        hi.packageYield *= yield;
        return units::carbonKg(plan.pkgIntensity, energy_kwh) /
               yield;
    };
    auto commOverheads = [&]() {
        for (std::size_t i = 0; i < n; ++i) {
            hi.routingCo2Kg += at(i).commDeltaCo2Kg;
            hi.commAreaMm2 += at(i).commAreaMm2;
            hi.nocPowerW += at(i).commPowerW;
        }
    };

    if (plan.arch == PackagingArch::Stack3d) {
        double footprint_mm2 = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            footprint_mm2 =
                std::max(footprint_mm2, at(i).bare.areaMm2);
        const double bonds =
            bondCo2(footprint_mm2, static_cast<int>(n),
                    plan.tierYieldPowAll);
        hi.stackBondCo2Kg = bonds;
        hi.packageCo2Kg = bonds + substrateCo2(footprint_mm2);
        hi.packageAreaMm2 = footprint_mm2;
        hi.whitespaceAreaMm2 = 0.0;
        commOverheads();
    } else {
        // Floorplan: memoized process-wide on (spacing, boxes).
        FloorplanResult fp;
        {
            std::vector<ChipletBox> &boxes = scratch.boxes;
            boxes.clear();
            boxes.reserve(plan.boxes.size());
            std::string &fkey = scratch.floorplanKey;
            fkey.clear();
            fkey.push_back('F');
            appendRaw(fkey, plan.spacingMm);
            for (const auto &box : plan.boxes) {
                double area_mm2 = 0.0;
                for (std::size_t m : box.members)
                    area_mm2 =
                        std::max(area_mm2, at(m).bare.areaMm2);
                appendRaw(fkey, box.label);
                appendRaw(fkey, area_mm2);
                boxes.push_back({box.label, area_mm2, 1.0});
            }
            if (!floorplanMemo().find(fkey, fp)) {
                fp = Floorplanner(plan.spacingMm).plan(boxes);
                floorplanMemo().store(fkey, fp);
            }
        }
        hi.packageAreaMm2 = fp.areaMm2();
        hi.whitespaceAreaMm2 = fp.whitespaceAreaMm2;
        const double pkg_area_mm2 = fp.areaMm2();
        const double area_cm2 = pkg_area_mm2 * units::kCm2PerMm2;

        switch (plan.arch) {
          case PackagingArch::RdlFanout: {
            const double yield = negativeBinomialYieldFast(
                area_cm2, plan.archD0, plan.alpha);
            hi.packageCo2Kg = patterningCo2(plan.archLayersEpla,
                                            area_cm2, yield);
            hi.packageYield = yield;
            commOverheads();
            break;
          }
          case PackagingArch::SiliconBridge: {
            int bridges = 0;
            for (const auto &adj : fp.adjacencies)
                bridges += std::max(
                    1, static_cast<int>(std::ceil(
                           adj.overlapMm / plan.bridgeRangeMm)));
            bridges = std::max(bridges,
                               static_cast<int>(n) - 1);
            hi.bridgeCount = bridges;
            const double embed_yield =
                std::pow(plan.bridgeEmbedYield, bridges);
            const double substrate = substrateCo2(pkg_area_mm2);
            hi.packageCo2Kg =
                (substrate + bridges * plan.bridgePerCo2Kg) /
                embed_yield;
            hi.packageYield =
                embed_yield * std::pow(plan.bridgeYield, bridges);
            commOverheads();
            break;
          }
          case PackagingArch::PassiveInterposer:
          case PackagingArch::ActiveInterposer: {
            const double beol_yield = negativeBinomialYieldFast(
                area_cm2, plan.archD0, plan.alpha);
            const double beol = patterningCo2(
                plan.archLayersEpla, area_cm2, beol_yield);
            const double wasted_mm2 =
                plan.includeWastage
                    ? plan.wafer.wastedAreaPerDieMm2(pkg_area_mm2)
                    : 0.0;
            const double wastage = plan.cfpaSiKgPerCm2 *
                                   wasted_mm2 * units::kCm2PerMm2;
            hi.packageCo2Kg =
                beol + wastage + substrateCo2(pkg_area_mm2);
            hi.packageYield = beol_yield;
            if (plan.arch == PackagingArch::ActiveInterposer) {
                const double repeater_area =
                    plan.repeaterFraction * pkg_area_mm2;
                const double feol_cfpa =
                    plan.grossCfpaKgPerCm2 / beol_yield;
                hi.routingCo2Kg = feol_cfpa *
                                  plan.routerAreaTotalMm2 *
                                  units::kCm2PerMm2;
                hi.packageCo2Kg += feol_cfpa * repeater_area *
                                   units::kCm2PerMm2;
                hi.commAreaMm2 = plan.routerAreaTotalMm2;
                hi.nocPowerW = plan.activeCommPowerW;
            } else {
                commOverheads();
            }
            break;
          }
          case PackagingArch::Stack3d:
            break; // handled before the floorplan branch
        }

        for (const auto &group : plan.groups) {
            double footprint_mm2 = 0.0;
            for (std::size_t m : group.members)
                footprint_mm2 =
                    std::max(footprint_mm2, at(m).bare.areaMm2);
            hi.stackBondCo2Kg += bondCo2(
                footprint_mm2, group.tiers, group.tierYieldPow);
        }
        hi.packageCo2Kg += hi.stackBondCo2Kg;
    }
    report.hi = hi;

    // --- design -----------------------------------------------
    double per_part = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        if (!plan.reused[i])
            per_part += at(i).designAmortizedCo2Kg;
    if (plan.hasComm)
        per_part += plan.activeComm ? plan.commDesignActiveCo2Kg
                                    : at(0).commDesignCo2Kg;
    report.designCo2Kg = per_part;

    // --- mask-set NRE -----------------------------------------
    if (plan.includeNre) {
        double nre_total = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            nre_total += at(i).nreCo2Kg;
        report.nreCo2Kg = nre_total;
    }

    // --- operation --------------------------------------------
    OperationalBreakdown op;
    const double extra_power_w = hi.nocPowerW;
    if (plan.annualPath) {
        const double extra_kwh_per_year =
            extra_power_w * plan.annualOnHoursPerYear *
            units::kKwhPerWh;
        op.lifetimeEnergyKwh =
            (plan.annualEnergyKwh + extra_kwh_per_year) *
            plan.lifetimeYears;
        op.avgPowerW = plan.annualAvgPowerBaseW + extra_power_w;
    } else {
        if (!(extra_power_w >= 0.0))
            throw ConfigError("extra power must be non-negative");
        if (plan.powerOverride) {
            op.avgPowerW = plan.overridePowerW + extra_power_w;
        } else {
            double total_w = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                total_w += at(i).chipletPowerW;
            op.avgPowerW = total_w + extra_power_w;
        }
        op.lifetimeEnergyKwh =
            op.avgPowerW * plan.onHoursLife * units::kKwhPerWh;
    }
    op.co2Kg =
        units::carbonKg(plan.useIntensity, op.lifetimeEnergyKwh);
    report.operation = op;

    // --- per-chiplet detail -----------------------------------
    report.chiplets.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Candidate &c = at(i);
        ChipletReport cr;
        cr.name = plan.names[i];
        cr.nodeNm = c.nodeNm;
        cr.areaMm2 = c.bare.areaMm2;
        cr.yield = c.bare.yield;
        cr.mfgCo2Kg = c.bare.totalCo2Kg();
        cr.designCo2Kg =
            plan.reused[i] ? 0.0 : c.designAmortizedCo2Kg;
        report.chiplets.push_back(std::move(cr));
    }

    estimator_->cache_->report.store(key, report);
    return report;
}

std::vector<ExplorationPoint>
SweepEvaluator::sweep(
    const SystemSpec &system,
    const std::vector<std::vector<double>> &candidates_per_chiplet)
    const
{
    // Monolithic systems bypass every packaging/comm code path the
    // plan hoists; the scalar estimator is already a single cached
    // die evaluation there.
    const bool batched = !system.isMonolithic();
    std::shared_ptr<const Plan> plan;
    if (batched)
        plan = compile(system, candidates_per_chiplet);

    std::size_t total = 1;
    for (const auto &candidates : candidates_per_chiplet)
        total *= candidates.size();

    Scratch scratch;
    std::vector<ExplorationPoint> points;
    points.reserve(total);
    std::vector<double> assignment(system.chiplets.size());
    std::vector<std::size_t> idx(system.chiplets.size(), 0);
    while (true) {
        for (std::size_t i = 0; i < idx.size(); ++i)
            assignment[i] = candidates_per_chiplet[i][idx[i]];

        ExplorationPoint point;
        point.nodesNm = assignment;
        // withNodes() first: it owns the per-point node validation.
        point.system = system.withNodes(assignment);
        point.report = batched
                           ? evaluatePoint(*plan, idx, scratch)
                           : estimator_->estimate(point.system);
        points.push_back(std::move(point));

        std::size_t digit = idx.size();
        while (digit > 0) {
            --digit;
            if (++idx[digit] <
                candidates_per_chiplet[digit].size())
                break;
            idx[digit] = 0;
            if (digit == 0)
                return points;
        }
    }
}

} // namespace ecochip
