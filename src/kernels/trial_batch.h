/**
 * @file
 * Structure-of-arrays trial container for batch evaluation.
 *
 * Monte-Carlo and sensitivity analyses evaluate the same system
 * under thousands of scaled input variants. The legacy path copied
 * the whole EcoChipConfig/TechDb per trial and rebuilt every model;
 * a TrialBatch instead stores one flat column per perturbable
 * input, so a BatchEvaluator can stream trials through tight,
 * branch-light loops (see docs/architecture.md, "Data-oriented
 * evaluation").
 *
 * Every column is multiplicative against the baseline except
 * `designIterations`, which is an absolute replacement value
 * (0.0 = keep the baseline count). The defaults written by
 * `resize()` are exact identities: a freshly resized trial
 * evaluates bit-identically to the unperturbed scalar estimate.
 */

#ifndef ECOCHIP_KERNELS_TRIAL_BATCH_H
#define ECOCHIP_KERNELS_TRIAL_BATCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecochip {

/** One column per perturbable input; one row per trial. */
struct TrialBatch
{
    /** Scale on every D0(p) table ordinate. */
    std::vector<double> defectDensityScale;

    /** Scale on every EPA(p) table ordinate. */
    std::vector<double> epaScale;

    /** Scale on the fab carbon intensity Cmfg,src. */
    std::vector<double> fabIntensityScale;

    /** Scale on the packaging carbon intensity. */
    std::vector<double> packageIntensityScale;

    /** Scale on the design-compute carbon intensity. */
    std::vector<double> designIntensityScale;

    /** Scale on the SP&R compute anchor (hours per Mgate). */
    std::vector<double> sprHoursScale;

    /**
     * Absolute design iteration count Ndes as a double;
     * 0.0 keeps the baseline count.
     */
    std::vector<double> designIterations;

    /** Scale on the chiplet volume NMi. */
    std::vector<double> chipletVolumeScale;

    /** Scale on the product lifetime. */
    std::vector<double> lifetimeScale;

    /**
     * Scale on the duty cycle TON; applied as
     * min(1.0, base * scale), exactly like the scalar path.
     */
    std::vector<double> dutyCycleScale;

    /**
     * Non-zero when the trial re-interpolates the D0 table at the
     * standard node anchors (the Monte-Carlo table rebuild). Zero
     * trials read the untouched base table, which differs bitwise
     * from a rebuilt table at scale 1.0 whenever the base table
     * has non-standard knots.
     */
    std::vector<std::uint8_t> rebuildDefectDensity;

    /** Same rebuild marker for the EPA table. */
    std::vector<std::uint8_t> rebuildEpa;

    /** Resize every column to @p n identity trials. */
    void
    resize(std::size_t n)
    {
        defectDensityScale.assign(n, 1.0);
        epaScale.assign(n, 1.0);
        fabIntensityScale.assign(n, 1.0);
        packageIntensityScale.assign(n, 1.0);
        designIntensityScale.assign(n, 1.0);
        sprHoursScale.assign(n, 1.0);
        designIterations.assign(n, 0.0);
        chipletVolumeScale.assign(n, 1.0);
        lifetimeScale.assign(n, 1.0);
        dutyCycleScale.assign(n, 1.0);
        rebuildDefectDensity.assign(n, 0);
        rebuildEpa.assign(n, 0);
    }

    /** Trial count. */
    std::size_t
    size() const
    {
        return defectDensityScale.size();
    }
};

} // namespace ecochip

#endif // ECOCHIP_KERNELS_TRIAL_BATCH_H
