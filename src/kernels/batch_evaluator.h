/**
 * @file
 * Data-oriented batch evaluation kernel for scaled-input trials.
 *
 * The scalar path evaluates one perturbed trial by copying the
 * whole EcoChipConfig and TechDb, rebuilding two interpolation
 * tables, and constructing a fresh EcoChip plus every sub-model --
 * roughly 15 us per trial, almost all of it setup. A
 * BatchEvaluator does that setup exactly once: its constructor
 * precomputes every scenario-invariant quantity (chiplet areas,
 * floorplan, interpolation-segment knots, bond counts, EDA
 * productivity fits, ...) and `evaluateRange()` then runs only the
 * trial-dependent arithmetic per trial.
 *
 * Bit-identity contract: for any TrialBatch row, the (embodied,
 * operational, total) outputs are bit-identical to building the
 * scaled config/tech the way MonteCarloAnalyzer::evaluateTrial and
 * SensitivityAnalyzer's parameter closures do and calling
 * EcoChip::estimate on a fresh estimator. The kernel guarantees
 * this by replicating the scalar models' floating-point expression
 * trees exactly; tests/test_kernels.cpp locks the contract with
 * byte-compare golden tests. Interpolation-table rebuilds are
 * reproduced through hoisted PiecewiseLinear::segment() knots: a
 * rebuilt table's eval is (s*yLo) + t*((s*yHi) - (s*yLo)) on the
 * resampled base knots, computed without touching the table.
 */

#ifndef ECOCHIP_KERNELS_BATCH_EVALUATOR_H
#define ECOCHIP_KERNELS_BATCH_EVALUATOR_H

#include <cstddef>
#include <vector>

#include "core/ecochip.h"
#include "kernels/trial_batch.h"
#include "support/interp.h"

namespace ecochip {

/**
 * Precompiled evaluation plan for one (config, tech, system).
 *
 * Construction runs every configuration validation the scalar
 * path would run (same exception types and messages) and hoists
 * all scenario-invariant structure. `evaluateRange()` is const and
 * thread-safe; Monte-Carlo workers share one evaluator.
 */
class BatchEvaluator
{
  public:
    /**
     * Build the plan. Throws exactly what a scalar estimate of
     * @p system under @p config / @p tech would throw.
     */
    BatchEvaluator(const EcoChipConfig &config, const TechDb &tech,
                   const SystemSpec &system);

    /**
     * Evaluate trials [@p begin, @p end) of @p batch, writing each
     * trial's metrics at its own index of the output arrays.
     *
     * @param batch Trial columns (all sized >= @p end).
     * @param embodied Embodied carbon per trial (kg CO2).
     * @param operational Operational carbon per trial (kg CO2).
     * @param total Total carbon per trial (kg CO2).
     */
    void evaluateRange(const TrialBatch &batch, std::size_t begin,
                       std::size_t end, double *embodied,
                       double *operational, double *total) const;

  private:
    /**
     * Hoisted interpolation lookup of one (table, node) query.
     * Reproduces both the untouched-table eval (`baseVal`) and the
     * rebuilt-at-standard-nodes eval (knot pair + parameter from
     * the resampled base table).
     */
    struct ScaledLookup
    {
        double baseVal = 0.0;
        double yLo = 0.0;
        double yHi = 0.0;
        double t = 0.0;

        double
        eval(double scale, bool rebuild) const
        {
            return rebuild
                       ? (scale * yLo) +
                             t * ((scale * yHi) - (scale * yLo))
                       : baseVal;
        }
    };

    /** Everything invariant of one die's manufacturing carbon. */
    struct DieTerm
    {
        double areaMm2 = 0.0;
        double areaCm2 = 0.0;
        double derate = 0.0;
        double cgas = 0.0;
        double cmaterial = 0.0;
        double wastedCo2Kg = 0.0;
        ScaledLookup d0;
        ScaledLookup epa;
    };

    /** Per-chiplet communication silicon growth (PHY or router). */
    struct CommTerm
    {
        DieTerm grown;
        std::size_t bareIndex = 0; ///< index into mfgTerms_
        bool zero = false;         ///< added area was <= 0
    };

    /** Invariants of one layered-patterning carbon term. */
    struct PatterningTerm
    {
        double energyKwh = 0.0;
        double areaCm2 = 0.0;
        double d0Derate = 1.0;
        ScaledLookup d0;
    };

    /** Invariants of one vertical-stack bond carbon term. */
    struct BondTerm
    {
        double energyKwh = 0.0;
        double yield = 1.0;
    };

    /** Per-chiplet design-carbon invariants (non-reused only). */
    struct DesignTerm
    {
        double gates = 0.0;
        double etaC = 1.0;
    };

    double dieTotalCo2Kg(const DieTerm &term, double s_d0,
                         bool rebuild_d0, double s_epa,
                         bool rebuild_epa, double fab_t) const;

    // --- yield statistics ---
    YieldModelKind yieldKind_;
    double alpha_ = 0.0;

    // --- manufacturing ---
    bool singleDie_ = false;
    std::vector<DieTerm> mfgTerms_;

    // --- packaging ---
    PackagingArch arch_;
    bool monolithic_ = false;
    std::vector<CommTerm> commTerms_;
    PatterningTerm archPat_;      ///< RDL / bridge / beol term
    PatterningTerm substratePat_; ///< organic base substrate
    bool hasSubstrate_ = false;
    int bridges_ = 0;
    double embedYield_ = 1.0;
    double wastageCo2Kg_ = 0.0;
    BondTerm mainBond_;
    std::vector<BondTerm> stackBonds_;
    // Active-interposer FEOL (router + repeater regions).
    double feolDerate_ = 0.0;
    double feolCgas_ = 0.0;
    double feolCmaterial_ = 0.0;
    ScaledLookup feolEpa_;
    double routerAreaMm2_ = 0.0;
    double repeaterAreaMm2_ = 0.0;

    // --- intensities (baseline values the scales multiply) ---
    double fabIntensityBase_ = 0.0;
    double pkgIntensityBase_ = 0.0;
    double designIntensityBase_ = 0.0;

    // --- design ---
    std::vector<DesignTerm> designTerms_;
    double sprBase_ = 0.0;
    double designIterBase_ = 0.0;
    double analyzeFraction_ = 0.0;
    double verifMultiple_ = 0.0;
    double pdesW_ = 0.0;
    double chipletVolumeBase_ = 0.0;
    double systemVolume_ = 0.0;
    bool hasComm_ = false;
    double commGates_ = 0.0;
    double commEtaC_ = 1.0;

    // --- mask-set NRE ---
    bool includeNre_ = false;
    std::vector<double> maskSetEnergiesKwh_;

    // --- operation ---
    bool annualPath_ = false;
    double annualEnergyKwh_ = 0.0;
    double extraPowerW_ = 0.0;
    double avgPowerBaseW_ = 0.0;
    double lifetimeBase_ = 0.0;
    double dutyCycleBase_ = 0.0;
    double useIntensity_ = 0.0;
};

} // namespace ecochip

#endif // ECOCHIP_KERNELS_BATCH_EVALUATOR_H
