/**
 * @file
 * Data-oriented batch kernel for technology-space sweeps.
 *
 * A sweep evaluates the same system under every candidate node
 * assignment -- |candidates|^|chiplets| full estimates. The scalar
 * path re-constructs every model and re-floorplans per point; the
 * SweepEvaluator compiles the sweep once into a plan of per-
 * (chiplet, candidate) terms (bare-die manufacturing, comm-silicon
 * growth deltas, design amortizations, per-chiplet powers) and
 * evaluates each point with only the point-dependent math: the
 * floorplan (memoized process-wide -- it depends only on box areas)
 * and the packaging yield/patterning expressions.
 *
 * Bit-identity contract: every ExplorationPoint (node list,
 * retargeted system, full CarbonReport with all HiResult and
 * per-chiplet fields) is byte-identical to what
 * TechSpaceExplorer::sweep produced through scalar
 * EcoChip::estimate calls, and the estimator's evaluation cache is
 * populated with exactly the same entries (reports, bare-die
 * manufacturing breakdowns, design breakdowns) a scalar sweep
 * would leave behind. Monolithic systems take the scalar path
 * unchanged.
 */

#ifndef ECOCHIP_KERNELS_SWEEP_EVALUATOR_H
#define ECOCHIP_KERNELS_SWEEP_EVALUATOR_H

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/ecochip.h"
#include "core/explorer.h"

namespace ecochip {

/** Batch evaluator for cartesian node sweeps of one estimator. */
class SweepEvaluator
{
  public:
    /**
     * @param estimator Configured estimator; the plan is cached in
     *        its evaluation cache (so it is invalidated together
     *        with every other memoized value when the configuration
     *        changes) and must not outlive it.
     */
    explicit SweepEvaluator(const EcoChip &estimator)
        : estimator_(&estimator)
    {}

    /**
     * Evaluate every node assignment in lexicographic order.
     * Inputs must already be validated (candidate list count,
     * non-empty candidate lists) by the caller.
     */
    std::vector<ExplorationPoint>
    sweep(const SystemSpec &system,
          const std::vector<std::vector<double>>
              &candidates_per_chiplet) const;

  private:
    /** Hoisted terms of one (chiplet, candidate-node) pair. */
    struct Candidate
    {
        double nodeNm = 0.0;
        /** Bare-die manufacturing at this node. */
        MfgBreakdown bare;
        /** Comm-silicon growth: grown die minus bare die (kg). */
        double commDeltaCo2Kg = 0.0;
        /** PHY/router area added to the die (mm^2). */
        double commAreaMm2 = 0.0;
        /** PHY/router power at this node (W). */
        double commPowerW = 0.0;
        /** Amortized design carbon; 0 for reused chiplets (kg). */
        double designAmortizedCo2Kg = 0.0;
        /** Analytical average chiplet power (W). */
        double chipletPowerW = 0.0;
        /** Amortized mask-set NRE; 0 unless charged (kg). */
        double nreCo2Kg = 0.0;
        /**
         * Communication-IP design carbon per part when this node
         * leads the system (front chiplet only, non-active
         * architectures).
         */
        double commDesignCo2Kg = 0.0;
    };

    /** One floorplan box: a planar chiplet or a stack group. */
    struct BoxTerm
    {
        std::string label;
        /** Chiplet indices whose area drives the box (max). */
        std::vector<std::size_t> members;
    };

    /** One vertical stack group's bond-carbon invariants. */
    struct GroupTerm
    {
        std::vector<std::size_t> members;
        int tiers = 0;
        /** pow(tierAssemblyYield, tiers - 1). */
        double tierYieldPow = 1.0;
    };

    /** Compiled sweep plan for one (system, candidates) pair. */
    struct Plan;

    /** Reusable per-sweep buffers (keys, boxes) shared by points. */
    struct Scratch;

    std::shared_ptr<const Plan>
    compile(const SystemSpec &system,
            const std::vector<std::vector<double>>
                &candidates_per_chiplet) const;

    CarbonReport evaluatePoint(const Plan &plan,
                               const std::vector<std::size_t> &idx,
                               Scratch &scratch) const;

    const EcoChip *estimator_;
};

} // namespace ecochip

#endif // ECOCHIP_KERNELS_SWEEP_EVALUATOR_H
