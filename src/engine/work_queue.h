/**
 * @file
 * The dynamic coordinator's work-queue building blocks: chunk
 * planning and the incremental (streaming) report merge.
 *
 * Where the static planner (`engine/shard_planner.h`) deals the
 * whole batch into exactly one sub-batch per host slot up front,
 * the dynamic scheduler wants *many more chunks than slots* so
 * fast hosts can keep pulling work while a slow host grinds on
 * one chunk. The planning rule is otherwise the same: requests
 * are grouped by scenario binding and whole groups travel
 * together, so every request against one binding still lands in
 * the same worker process and the engine's `EvaluationContext`
 * deduplication survives the cut.
 *
 * The merge side is incremental: outcomes arrive one stream
 * event at a time (in whatever order hosts deliver them), the
 * merger scatters each to its original batch index exactly once,
 * and the final document is a pure function of the outcome *set*
 * -- merge order can never change the report bytes, which keeps
 * the dynamic run byte-identical to single-process `--batch`
 * (locked by `tests/test_engine.cpp` and the
 * `coordinate_equivalence` / `coordinate_resume` CTests).
 *
 * Orchestration lives in `engine/shard_coordinator.h`; the
 * on-disk event formats in `io/event_journal_io.h`.
 */

#ifndef ECOCHIP_ENGINE_WORK_QUEUE_H
#define ECOCHIP_ENGINE_WORK_QUEUE_H

#include <cstddef>
#include <string>
#include <vector>

#include "io/request_io.h"
#include "json/json.h"
#include "session/analysis_request.h"

namespace ecochip {

/** Which original request indices each work chunk runs. */
struct ChunkPlan
{
    /**
     * Per-chunk original batch indices, ascending within each
     * chunk. Every chunk is non-empty and holds only whole
     * binding groups.
     */
    std::vector<std::vector<std::size_t>> chunks;

    /** Number of chunks planned. */
    std::size_t chunkCount() const { return chunks.size(); }

    /** Total requests across all chunks. */
    std::size_t requestCount() const;
};

/**
 * Plan binding-cohesive chunks of roughly
 * @p target_requests_per_chunk requests over all of @p requests.
 *
 * Requests are grouped by scenario binding (`ScenarioRef` label)
 * in first-appearance order, then whole groups are packed into
 * chunks greedily: a chunk closes once adding the next group
 * would push it past the target (a group larger than the target
 * becomes its own chunk -- groups are never split). Indices are
 * ascending within each chunk, so sub-batches preserve relative
 * request order.
 *
 * @throws ConfigError when @p requests is empty or the target
 *         is < 1.
 */
ChunkPlan planChunks(const std::vector<AnalysisRequest> &requests,
                     int target_requests_per_chunk);

/**
 * Same as `planChunks`, restricted to the requests at
 * @p indices -- the resume path plans chunks over only the
 * requests the journal has not already answered.
 *
 * @throws ConfigError on an empty, out-of-range, or duplicated
 *         index list.
 */
ChunkPlan
planChunksOver(const std::vector<AnalysisRequest> &requests,
               const std::vector<std::size_t> &indices,
               int target_requests_per_chunk);

/**
 * Write one sub-batch file per chunk into @p directory
 * (`chunk_000.json`, `chunk_001.json`, ...), each loadable by
 * `loadBatchFile` / runnable by `eco_chip --shard_worker` --
 * the chunk-flavored `writeShardFiles`.
 *
 * @return The sub-batch file paths, in chunk order.
 */
std::vector<std::string>
writeChunkFiles(const BatchFile &batch, const ChunkPlan &plan,
                const std::string &directory);

/**
 * Order-insensitive accumulation of a batch's outcomes.
 *
 * Outcome documents (the `outcomeToJson` shape) are added at
 * their original batch index as they stream in; the first add
 * per index wins and later duplicates -- a retried chunk
 * re-delivering outcomes its failed attempt already streamed --
 * are ignored. Outcomes are held as canonical compact text
 * spans, never as `json::Value` trees: the hot path scatters
 * scanner output straight into slots and `reportText()` splices
 * the merged document back out, which depends only on which
 * outcomes were added, never on their arrival order.
 */
class IncrementalMerger
{
  public:
    /** @param total_requests Size of the batch being merged. */
    explicit IncrementalMerger(std::size_t total_requests);

    /**
     * Record @p outcome_text (one canonical compact outcome
     * document -- `splitEventLine` and the streaming serializers
     * produce exactly that) as request @p index's result.
     * @return True when this was the first outcome for
     *         @p index, false for a duplicate (ignored).
     * @throws ConfigError when @p index is out of range.
     */
    bool add(std::size_t index, std::string outcome_text);

    /** DOM convenience: canonicalizes and delegates to the
     *  text overload. */
    bool add(std::size_t index, const json::Value &outcome);

    /** True when @p index already has an outcome. */
    bool filled(std::size_t index) const;

    /** Outcomes recorded so far. */
    std::size_t doneCount() const { return done_; }

    /** Recorded outcomes whose `ok` member is false. */
    std::size_t failedCount() const { return failed_; }

    /** True once every request has an outcome. */
    bool complete() const { return done_ == slots_.size(); }

    /** Indices still missing an outcome, ascending. */
    std::vector<std::size_t> missingIndices() const;

    /**
     * The merged `BatchReport` document as text, compact or
     * pretty -- exactly the bytes of the single-process report
     * over the same outcomes, assembled by splicing the stored
     * spans (no DOM). All indices must be filled
     * (`requireModel`).
     */
    std::string reportText(bool pretty) const;

    /**
     * The merged `BatchReport` document. All indices must be
     * filled (`requireModel`); byte-identical to the
     * single-process report over the same outcomes.
     */
    json::Value report() const;

  private:
    struct Slot
    {
        bool filled = false;
        bool ok = false;
        std::string outcome; // canonical compact text
    };
    std::vector<Slot> slots_;
    std::size_t done_ = 0;
    std::size_t failed_ = 0;
};

} // namespace ecochip

#endif // ECOCHIP_ENGINE_WORK_QUEUE_H
