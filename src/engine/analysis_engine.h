/**
 * @file
 * Asynchronous batch scheduler for declarative analysis requests.
 *
 * Where `AnalysisSession` answers one question at a time,
 * `AnalysisEngine` takes *what to compute* -- `AnalysisRequest`
 * values, typically parsed from a `requests.json` batch file --
 * and owns *how it is scheduled*: a fixed thread-pool drains the
 * request queue, and identical scenario bindings are deduplicated
 * onto one shared `EvaluationContext`, so a thousand requests
 * against nine scenarios build nine contexts and share their
 * memoized evaluation caches.
 *
 * Determinism is preserved end to end: every request evaluates
 * through the same `runSpec` executor the session verbs use, so a
 * `runBatch` at any thread count is bit-identical to running the
 * requests one by one through `AnalysisSession` (equal seeds
 * included).
 *
 * @code
 *   AnalysisEngine engine(EngineOptions{.threads = 8});
 *   auto future = engine.submit(
 *       {ScenarioRef::scenario("ga102"), MonteCarloSpec{}});
 *   BatchReport report = engine.runBatch(requests);
 *   // report.outcomes[i] matches requests[i]; a failed request
 *   // carries its error and never takes down the batch.
 * @endcode
 */

#ifndef ECOCHIP_ENGINE_ANALYSIS_ENGINE_H
#define ECOCHIP_ENGINE_ANALYSIS_ENGINE_H

#include <cstddef>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/thread_pool.h"
#include "session/analysis_request.h"
#include "session/analysis_session.h"

namespace ecochip {

/** Scheduling knobs of an `AnalysisEngine`. */
struct EngineOptions
{
    /** Worker threads draining the request queue. */
    int threads = 1;

    /**
     * Scenario catalog requests resolve registry bindings
     * against; extend with `ScenarioRegistry::loadFile` to name
     * user-defined workloads.
     */
    ScenarioRegistry registry = ScenarioRegistry::builtin();

    /** Technology calibration shared by every context. */
    TechDb tech;
};

/** Outcome of one request of a batch. */
struct RequestOutcome
{
    /** The request this outcome answers. */
    AnalysisRequest request;

    /** Result; empty when the request failed. */
    std::optional<AnalysisResult> result;

    /** Error message; empty when the request succeeded. */
    std::string error;

    /** True when the request produced a result. */
    bool ok() const { return result.has_value(); }
};

/** Per-request outcomes of one `runBatch`, in request order. */
struct BatchReport
{
    std::vector<RequestOutcome> outcomes;

    /** Count of successful requests. */
    std::size_t succeeded() const;

    /** Count of failed requests. */
    std::size_t failed() const;

    /** True when every request succeeded. */
    bool allOk() const { return failed() == 0; }
};

/**
 * Thread-pooled analysis scheduler with scenario-context
 * deduplication. Thread-safe: `submit`/`runBatch` may be called
 * from any thread.
 */
class AnalysisEngine
{
  public:
    explicit AnalysisEngine(EngineOptions options = {});

    /** Convenience: default options at @p threads workers. */
    explicit AnalysisEngine(int threads);

    /** Worker count. */
    int threads() const { return pool_.threadCount(); }

    /** The catalog registry bindings resolve against. */
    const ScenarioRegistry &registry() const
    {
        return options_.registry;
    }

    /**
     * Schedule one request on the pool.
     *
     * The future carries the result -- or the request's exception
     * (`ConfigError` and friends propagate per request, exactly
     * as the session verbs throw them).
     */
    std::future<AnalysisResult> submit(AnalysisRequest request);

    /**
     * Run a whole batch and wait for it.
     *
     * Requests are scheduled across the pool; outcome @c i
     * answers request @c i. A failed request records its error in
     * its outcome and never affects the others.
     */
    BatchReport
    runBatch(const std::vector<AnalysisRequest> &requests);

    /**
     * The session a binding resolves to, built on first use and
     * shared (one `EvaluationContext` per distinct binding)
     * afterwards. Distinct bindings build concurrently; workers
     * racing for the same binding wait on one build. A failed
     * build throws to every waiter and is forgotten, so a later
     * request retries it.
     */
    AnalysisSession sessionFor(const ScenarioRef &ref);

    /** Distinct evaluation contexts built (or building). */
    std::size_t contextCount() const;

  private:
    EngineOptions options_;

    mutable std::mutex sessionsMutex_;

    /**
     * Shared futures so the lock is only held for map access,
     * never for context construction (which may touch disk).
     */
    std::map<std::string, std::shared_future<AnalysisSession>>
        sessions_;

    /** Last member: destroyed (drained) before the caches. */
    ThreadPool pool_;
};

} // namespace ecochip

#endif // ECOCHIP_ENGINE_ANALYSIS_ENGINE_H
