/**
 * @file
 * Asynchronous batch scheduler for declarative analysis requests.
 *
 * Where `AnalysisSession` answers one question at a time,
 * `AnalysisEngine` takes *what to compute* -- `AnalysisRequest`
 * values, typically parsed from a `requests.json` batch file --
 * and owns *how it is scheduled*: a fixed thread-pool drains the
 * request queue, and identical scenario bindings are deduplicated
 * onto one shared `EvaluationContext`, so a thousand requests
 * against nine scenarios build nine contexts and share their
 * memoized evaluation caches.
 *
 * Three execution shapes, all over the same scheduler:
 *
 *  - `submit()` hands back one `std::future<AnalysisResult>` per
 *    request;
 *  - `runStream()` delivers every `(index, RequestOutcome)` to a
 *    callback in completion order as workers finish -- the
 *    incremental-progress path behind `eco_chip --batch --stream`
 *    and its NDJSON output;
 *  - `runBatch()` waits for the whole batch and returns the
 *    outcomes in request order. It is implemented on top of
 *    `runStream`, so the aggregate and streaming paths can never
 *    diverge.
 *
 * Batches also shard across *processes*: `engine/shard_planner.h`
 * splits a batch file into per-shard sub-batches (keeping equal
 * bindings together so context dedup survives the cut) and
 * `engine/shard_runner.h` runs them as worker processes and
 * merges the per-shard `BatchReport`s back into one report that
 * is byte-identical to the single-process run.
 *
 * Determinism is preserved end to end: every request evaluates
 * through the same `runSpec` executor the session verbs use, so a
 * `runBatch` at any thread count -- or sharded over any process
 * count -- is bit-identical to running the requests one by one
 * through `AnalysisSession` (equal seeds included).
 *
 * Wire formats (`requests.json` in, `BatchReport` JSON and NDJSON
 * stream events out) are specified in `docs/file_formats.md`; the
 * CLI surface is documented in `docs/cli.md`.
 *
 * @code
 *   AnalysisEngine engine(EngineOptions{.threads = 8});
 *   auto future = engine.submit(
 *       {ScenarioRef::scenario("ga102"), MonteCarloSpec{}});
 *   engine.runStream(requests, [](std::size_t i,
 *                                 const RequestOutcome &o) {
 *       std::cout << streamEventLine(i, o) << "\n";  // NDJSON
 *   });
 *   BatchReport report = engine.runBatch(requests);
 *   // report.outcomes[i] matches requests[i]; a failed request
 *   // carries its error and never takes down the batch.
 * @endcode
 */

#ifndef ECOCHIP_ENGINE_ANALYSIS_ENGINE_H
#define ECOCHIP_ENGINE_ANALYSIS_ENGINE_H

#include <cstddef>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/thread_pool.h"
#include "session/analysis_request.h"
#include "session/analysis_session.h"

namespace ecochip {

/** Scheduling knobs of an `AnalysisEngine`. */
struct EngineOptions
{
    /** Worker threads draining the request queue. */
    int threads = 1;

    /**
     * Scenario catalog requests resolve registry bindings
     * against; extend with `ScenarioRegistry::loadFile` to name
     * user-defined workloads.
     */
    ScenarioRegistry registry = ScenarioRegistry::builtin();

    /** Technology calibration shared by every context. */
    TechDb tech;
};

/** Outcome of one request of a batch. */
struct RequestOutcome
{
    /** The request this outcome answers. */
    AnalysisRequest request;

    /** Result; empty when the request failed. */
    std::optional<AnalysisResult> result;

    /** Error message; empty when the request succeeded. */
    std::string error;

    /** True when the request produced a result. */
    bool ok() const { return result.has_value(); }
};

/** Per-request outcomes of one `runBatch`, in request order. */
struct BatchReport
{
    std::vector<RequestOutcome> outcomes;

    /** Count of successful requests. */
    std::size_t succeeded() const;

    /** Count of failed requests. */
    std::size_t failed() const;

    /** True when every request succeeded. */
    bool allOk() const { return failed() == 0; }
};

/**
 * Completion-order delivery of one finished request: the
 * request's index in the submitted batch plus its outcome.
 * Invocations are serialized (never concurrent), so callbacks may
 * write to shared state -- a stream, a vector slot -- without
 * locking. A callback must not throw and must not re-enter the
 * engine it was called from.
 */
using StreamCallback =
    std::function<void(std::size_t index,
                       const RequestOutcome &outcome)>;

/**
 * Thread-pooled analysis scheduler with scenario-context
 * deduplication. Thread-safe: `submit`/`runBatch` may be called
 * from any thread.
 */
class AnalysisEngine
{
  public:
    explicit AnalysisEngine(EngineOptions options = {});

    /** Convenience: default options at @p threads workers. */
    explicit AnalysisEngine(int threads);

    /** Worker count. */
    int threads() const { return pool_.threadCount(); }

    /** The catalog registry bindings resolve against. */
    const ScenarioRegistry &registry() const
    {
        return options_.registry;
    }

    /**
     * Schedule one request on the pool.
     *
     * The future carries the result -- or the request's exception
     * (`ConfigError` and friends propagate per request, exactly
     * as the session verbs throw them).
     */
    std::future<AnalysisResult> submit(AnalysisRequest request);

    /**
     * Run a whole batch, streaming each outcome as it completes.
     *
     * Requests are scheduled across the pool; @p on_complete is
     * invoked once per request, in completion order (which is
     * scheduling-dependent -- the `index` argument maps an event
     * back to its request). Every request is delivered exactly
     * once, failures included: a failed request streams an
     * outcome carrying its error, exactly as `runBatch` records
     * it. Blocks until the whole batch has been delivered.
     */
    void runStream(const std::vector<AnalysisRequest> &requests,
                   const StreamCallback &on_complete);

    /**
     * Run a whole batch and wait for it.
     *
     * Requests are scheduled across the pool; outcome @c i
     * answers request @c i. A failed request records its error in
     * its outcome and never affects the others. Implemented over
     * `runStream`, so the aggregate report is bit-identical to
     * assembling the stream's events by index.
     */
    BatchReport
    runBatch(const std::vector<AnalysisRequest> &requests);

    /**
     * The session a binding resolves to, built on first use and
     * shared (one `EvaluationContext` per distinct binding)
     * afterwards. Distinct bindings build concurrently; workers
     * racing for the same binding wait on one build. A failed
     * build throws to every waiter and is forgotten, so a later
     * request retries it.
     */
    AnalysisSession sessionFor(const ScenarioRef &ref);

    /** Distinct evaluation contexts built (or building). */
    std::size_t contextCount() const;

  private:
    EngineOptions options_;

    /**
     * Outcome of one scenario-context build: the session, or the
     * error it failed with. Failures travel as *data*, not as a
     * shared `std::exception_ptr`: concurrent waiters rethrowing
     * one exception object race on its destruction (the last
     * catch block destroys it while another thread still reads
     * `what()`), so `sessionFor` throws every waiter its own
     * fresh exception instead.
     */
    struct SessionBuild
    {
        /** Built session; empty when the build failed. */
        std::optional<AnalysisSession> session;

        /** Failure text (sans type prefix); empty on success. */
        std::string error;

        /** Whether the failure was a ConfigError. */
        bool isConfigError = false;
    };

    mutable std::mutex sessionsMutex_;

    /**
     * Shared futures so the lock is only held for map access,
     * never for context construction (which may touch disk).
     */
    std::map<std::string, std::shared_future<SessionBuild>>
        sessions_;

    /** Last member: destroyed (drained) before the caches. */
    ThreadPool pool_;
};

} // namespace ecochip

#endif // ECOCHIP_ENGINE_ANALYSIS_ENGINE_H
