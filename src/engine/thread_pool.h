/**
 * @file
 * Fixed-size worker pool backing the `AnalysisEngine` scheduler.
 *
 * Deliberately minimal: a locked FIFO of type-erased tasks drained
 * by N `std::thread` workers. Destruction drains the queue first
 * (every posted task runs), so futures handed out against posted
 * work are always fulfilled.
 */

#ifndef ECOCHIP_ENGINE_THREAD_POOL_H
#define ECOCHIP_ENGINE_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecochip {

/** Fixed pool of worker threads consuming a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers.
     *
     * @param threads Worker count (>= 1).
     * @throws ConfigError when @p threads < 1.
     */
    explicit ThreadPool(int threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count. */
    int threadCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /**
     * Enqueue a task. Tasks run in FIFO order across the pool;
     * a task must not throw (wrap work in a packaged_task or
     * catch internally).
     */
    void post(std::function<void()> task);

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace ecochip

#endif // ECOCHIP_ENGINE_THREAD_POOL_H
