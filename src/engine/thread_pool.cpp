#include "engine/thread_pool.h"

#include <utility>

#include "support/error.h"

namespace ecochip {

ThreadPool::ThreadPool(int threads)
{
    requireConfig(threads >= 1,
                  "thread pool needs at least one worker");
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    requireConfig(static_cast<bool>(task),
                  "thread pool task must be callable");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        requireConfig(!stopping_,
                      "thread pool is shutting down");
        queue_.push_back(std::move(task));
    }
    ready_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            // Drain-before-stop: pending tasks still run so their
            // futures are fulfilled.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace ecochip
