/**
 * @file
 * Multi-process execution of a sharded request batch.
 *
 * The planner (`engine/shard_planner.h`) decides *what* each
 * shard runs; this module runs the shards as worker processes and
 * merges their reports:
 *
 *  - `runShardWorker` is one worker's whole job -- load a
 *    sub-batch file, run it on an in-process `AnalysisEngine`,
 *    write the `BatchReport` JSON to disk. `eco_chip
 *    --shard_worker` is a thin wrapper around it.
 *  - `runShardedBatch` coordinates one machine: split the batch,
 *    fork K workers, wait for them, merge the per-shard reports
 *    into one `BatchReport` document that is byte-identical to
 *    the single-process `runBatch` over the unsplit file. Since
 *    the multi-host coordinator landed it is a thin wrapper over
 *    `runCoordinatedBatch` (`engine/shard_coordinator.h`) with a
 *    one-host manifest of K slots, no retries, and no deadline.
 *
 * Workers run either by fork/exec of a worker executable
 * (`ShardedRunOptions::workerExe`, the CLI path: `eco_chip
 * --shard` re-execs itself with `--shard_worker`) or, when no
 * executable is named, by plain fork with the worker running
 * `runShardWorker` in the child -- the library/test/bench path,
 * which needs no knowledge of any binary's location. Both paths
 * are POSIX-only; on other platforms `runShardedBatch` throws.
 *
 * Fork-only mode carries the usual POSIX precondition: call it
 * from an effectively single-threaded process (no live
 * `AnalysisEngine`/`ThreadPool` workers). The child starts as a
 * clone of the calling thread only, so a lock held by any other
 * parent thread at fork time -- allocator, iostream -- stays
 * locked forever in the child and deadlocks it. The fork/exec
 * mode has no such restriction.
 *
 * Determinism: workers inherit the engine's bit-identity
 * guarantee (any thread count, same results), the planner keeps
 * equal bindings in one process, and the merge restores original
 * request order -- so `--shard --shards K` output is locked
 * byte-identical to `--batch` output (see `tests/test_engine.cpp`
 * and the `shard_equivalence` CTest).
 *
 * Formats in `docs/file_formats.md`, CLI in `docs/cli.md`.
 */

#ifndef ECOCHIP_ENGINE_SHARD_RUNNER_H
#define ECOCHIP_ENGINE_SHARD_RUNNER_H

#include <cstddef>
#include <string>
#include <vector>

#include "json/json.h"

namespace ecochip {

/**
 * Run one shard: load the sub-batch at @p sub_batch_path
 * (including its optional `"scenarios"` catalog), run it on an
 * `AnalysisEngine`, and write the `BatchReport` JSON to
 * @p report_path.
 *
 * @param sub_batch_path Sub-batch file (`writeShardFiles` /
 *        `writeChunkFiles` output, or any batch file).
 * @param report_path Destination for the `BatchReport` JSON.
 * @param engine_threads Worker threads for this shard's engine
 *        (results are bit-identical at any count).
 * @param scenarios_path Optional extra scenario catalog to load
 *        before the sub-batch's own.
 * @param events_path When non-empty, stream one NDJSON event
 *        line per outcome (sub-batch-local `index`, completion
 *        order, flushed per line) to this path while the batch
 *        runs -- what the dynamic coordinator tails for its
 *        incremental merge (`io/event_journal_io.h`). The final
 *        report is still written; events are a live preview of
 *        it, never a replacement.
 * @return 0 when every request succeeded, 1 when any failed (the
 *         report is written either way) -- the worker process
 *         exit convention.
 */
int runShardWorker(const std::string &sub_batch_path,
                   const std::string &report_path,
                   int engine_threads,
                   const std::string &scenarios_path = "",
                   const std::string &events_path = "");

/** How `runShardedBatch` splits and runs a batch. */
struct ShardedRunOptions
{
    /** Batch file to shard. */
    std::string batchPath;

    /** Worker process count requested (>= 1; capped at the
     *  number of distinct scenario bindings). */
    int shards = 2;

    /**
     * Engine threads per worker process. 0 (the default) sizes
     * automatically: hardware threads divided by the shard count
     * actually planned, at least 1.
     */
    int engineThreadsPerWorker = 0;

    /**
     * Directory for sub-batch and report files. Empty: a
     * pid-scoped directory under the system temp path, removed
     * after the run. Non-empty: created if needed and left in
     * place.
     */
    std::string shardDir;

    /**
     * Worker executable. Empty: fork and run `runShardWorker`
     * in the child. Non-empty: fork/exec
     * `<workerExe> --shard_worker <sub-batch> --json <report>
     *  --engine_threads <N> [--scenarios <path>]`.
     */
    std::string workerExe;

    /** Extra scenario catalog passed through to every worker. */
    std::string scenariosPath;
};

/** What a sharded run produced. */
struct ShardedRunResult
{
    /** Merged `BatchReport` document, original request order. */
    json::Value mergedReport;

    /** The same report as canonical compact text -- exactly
     *  `mergedReport.dump(false)`, produced without a DOM. */
    std::string mergedReportText;

    /** Shards actually run (<= requested). */
    std::size_t shardsUsed = 0;

    /** Engine threads each worker ran with. */
    int threadsPerWorker = 0;

    /** Requests that succeeded / failed across all shards. */
    std::size_t succeeded = 0;
    std::size_t failed = 0;

    /** Sub-batch files, in shard order (empty when the scratch
     *  directory was temporary and has been removed). */
    std::vector<std::string> shardFiles;

    /** Per-shard report files (ditto). */
    std::vector<std::string> reportFiles;

    /** True when every request of every shard succeeded. */
    bool allOk() const { return failed == 0; }
};

/**
 * Shard @p options.batchPath across worker processes and merge
 * the results.
 *
 * @throws ConfigError on invalid options or malformed files.
 * @throws Error when a worker process dies without writing a
 *         valid report (crash, signal, exec failure) -- a worker
 *         that merely had failing requests exits 1 and is
 *         reported through the merged outcomes instead.
 */
ShardedRunResult runShardedBatch(const ShardedRunOptions &options);

} // namespace ecochip

#endif // ECOCHIP_ENGINE_SHARD_RUNNER_H
