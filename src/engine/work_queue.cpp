#include "engine/work_queue.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "engine/shard_planner.h"
#include "json/ondemand.h"
#include "json/stream_writer.h"
#include "support/error.h"

namespace ecochip {

std::size_t
ChunkPlan::requestCount() const
{
    std::size_t count = 0;
    for (const auto &chunk : chunks)
        count += chunk.size();
    return count;
}

ChunkPlan
planChunks(const std::vector<AnalysisRequest> &requests,
           int target_requests_per_chunk)
{
    std::vector<std::size_t> all(requests.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return planChunksOver(requests, all,
                          target_requests_per_chunk);
}

ChunkPlan
planChunksOver(const std::vector<AnalysisRequest> &requests,
               const std::vector<std::size_t> &indices,
               int target_requests_per_chunk)
{
    requireConfig(!indices.empty(),
                  "cannot plan chunks over an empty request "
                  "list");
    requireConfig(target_requests_per_chunk >= 1,
                  "--chunk_size must be at least 1");

    // Group the given indices by binding, first-appearance order
    // -- the same deterministic rule as planShards, so the plan
    // is a pure function of the batch and the index list.
    std::vector<std::vector<std::size_t>> groups;
    std::map<std::string, std::size_t> group_of;
    std::set<std::size_t> seen;
    for (std::size_t index : indices) {
        requireConfig(index < requests.size(),
                      "chunk-plan index " +
                          std::to_string(index) +
                          " is out of range (batch has " +
                          std::to_string(requests.size()) +
                          " requests)");
        requireConfig(seen.insert(index).second,
                      "chunk-plan index " +
                          std::to_string(index) +
                          " appears more than once");
        const std::string key = requests[index].scenario.label();
        const auto it = group_of.find(key);
        if (it == group_of.end()) {
            group_of.emplace(key, groups.size());
            groups.push_back({index});
        } else {
            groups[it->second].push_back(index);
        }
    }

    // Pack whole groups greedily: close the open chunk once the
    // next group would overshoot the target. A group never
    // splits (binding cohesion), so an oversized group simply
    // becomes a chunk of its own.
    const auto target =
        static_cast<std::size_t>(target_requests_per_chunk);
    ChunkPlan plan;
    std::vector<std::size_t> open;
    for (const auto &group : groups) {
        if (!open.empty() &&
            open.size() + group.size() > target) {
            plan.chunks.push_back(std::move(open));
            open.clear();
        }
        open.insert(open.end(), group.begin(), group.end());
    }
    if (!open.empty())
        plan.chunks.push_back(std::move(open));

    // Ascending indices per chunk: sub-batches preserve the
    // original relative request order, keeping the merge a
    // straight scatter.
    for (auto &chunk : plan.chunks)
        std::sort(chunk.begin(), chunk.end());
    return plan;
}

std::vector<std::string>
writeChunkFiles(const BatchFile &batch, const ChunkPlan &plan,
                const std::string &directory)
{
    return writeSubBatchFiles(batch, plan.chunks, directory,
                              "chunk");
}

IncrementalMerger::IncrementalMerger(std::size_t total_requests)
    : slots_(total_requests)
{
}

bool
IncrementalMerger::add(std::size_t index,
                       std::string outcome_text)
{
    requireConfig(index < slots_.size(),
                  "outcome index " + std::to_string(index) +
                      " is out of range (batch has " +
                      std::to_string(slots_.size()) +
                      " requests)");
    Slot &slot = slots_[index];
    if (slot.filled)
        return false; // a retried chunk re-delivered it
    slot.filled = true;
    slot.outcome = std::move(outcome_text);
    // Same fallback as Value::booleanOr: a non-object outcome
    // simply has no "ok" member and counts as failed.
    slot.ok = !slot.outcome.empty() &&
              slot.outcome.front() == '{' &&
              json::ondemand::booleanField(slot.outcome, "ok",
                                           false);
    ++done_;
    if (!slot.ok)
        ++failed_;
    return true;
}

bool
IncrementalMerger::add(std::size_t index,
                       const json::Value &outcome)
{
    return add(index, outcome.dump(false));
}

bool
IncrementalMerger::filled(std::size_t index) const
{
    return index < slots_.size() && slots_[index].filled;
}

std::vector<std::size_t>
IncrementalMerger::missingIndices() const
{
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < slots_.size(); ++i)
        if (!slots_[i].filled)
            missing.push_back(i);
    return missing;
}

std::string
IncrementalMerger::reportText(bool pretty) const
{
    requireModel(complete(),
                 "report() on an incomplete merge (" +
                     std::to_string(done_) + " of " +
                     std::to_string(slots_.size()) +
                     " outcomes)");
    const std::size_t succeeded = slots_.size() - failed_;
    json::StreamWriter writer(pretty);
    writer.beginObject();
    writer.key("succeeded");
    writer.number(static_cast<double>(succeeded));
    writer.key("failed");
    writer.number(static_cast<double>(failed_));
    writer.key("outcomes");
    writer.beginArray();
    for (const auto &slot : slots_) {
        if (!pretty) {
            // Slots are canonical compact text: splice verbatim.
            writer.raw(slot.outcome);
        } else {
            json::ondemand::Scanner scanner(slot.outcome);
            json::ondemand::reserializeValue(scanner, writer);
            scanner.expectEnd();
        }
    }
    writer.endArray();
    writer.endObject();
    return writer.take();
}

json::Value
IncrementalMerger::report() const
{
    return json::parse(reportText(false));
}

} // namespace ecochip
