#include "engine/shard_coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <filesystem>
#include <set>
#include <thread>
#include <utility>

#include "engine/analysis_engine.h"
#include "engine/shard_planner.h"
#include "engine/shard_runner.h"
#include "io/request_io.h"
#include "support/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define ECOCHIP_COORD_HAS_FORK 1
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define ECOCHIP_COORD_HAS_FORK 0
#endif

namespace ecochip {

namespace {

#if ECOCHIP_COORD_HAS_FORK

/**
 * Fork one child: exec'ing @p argv_strings when non-empty, else
 * running @p in_child. Returns the child's pid. The child _exits
 * (never exit) so it cannot flush stdio buffers or run atexit
 * handlers inherited from the parent.
 */
long
spawnChild(const std::vector<std::string> &argv_strings,
           const std::function<int()> &in_child)
{
    const pid_t pid = fork();
    if (pid < 0)
        throw ModelError("fork() failed spawning a shard "
                         "dispatch");
    if (pid == 0) {
        // Own process group, so cancelling a straggler can kill
        // the whole tree -- a compound command template keeps
        // /bin/sh alive as the worker's parent, and killing the
        // shell alone would orphan the worker. Both sides call
        // setpgid to close the fork/exec race; failure is
        // harmless (the child stays in the parent's group and
        // the direct kill below still lands).
        setpgid(0, 0);
        if (!argv_strings.empty()) {
            std::vector<char *> argv;
            for (const auto &arg : argv_strings)
                argv.push_back(const_cast<char *>(arg.c_str()));
            argv.push_back(nullptr);
            execvp(argv[0], argv.data());
            _exit(127); // exec failed
        }
        int code = 125;
        try {
            code = in_child();
        } catch (...) {
            code = 125;
        }
        _exit(code);
    }
    setpgid(pid, pid); // see the child-side call above
    return pid;
}

/**
 * Non-blocking wait: the child's exit code once it finished
 * (signal-terminated children report 128 + signo, un-waitable
 * ones -1), nullopt while it is still running.
 */
std::optional<int>
pollChild(long pid)
{
    int status = 0;
    pid_t waited;
    do {
        waited = waitpid(static_cast<pid_t>(pid), &status,
                         WNOHANG);
    } while (waited < 0 && errno == EINTR);
    if (waited == 0)
        return std::nullopt;
    if (waited != static_cast<pid_t>(pid))
        return -1; // unaccountable child
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return std::nullopt; // stopped/continued: still running
}

/** Kill and reap a straggler child and its process group. */
void
killChild(long pid)
{
    // Group first (shell wrappers, compound commands), then the
    // direct child in case setpgid lost its race.
    kill(-static_cast<pid_t>(pid), SIGKILL);
    kill(static_cast<pid_t>(pid), SIGKILL);
    int status = 0;
    pid_t waited;
    do {
        waited = waitpid(static_cast<pid_t>(pid), &status, 0);
    } while (waited < 0 && errno == EINTR);
}

#else // !ECOCHIP_COORD_HAS_FORK

[[noreturn]] void
throwNoFork()
{
    throw ConfigError(
        "process transports require a POSIX platform "
        "(fork/exec); inject a custom ShardTransport instead");
}

#endif // ECOCHIP_COORD_HAS_FORK

/** Shared poll step for the pid-keyed transports. */
std::optional<int>
pollPidTable(std::map<std::size_t, long> &pids,
             std::size_t shard)
{
#if !ECOCHIP_COORD_HAS_FORK
    (void)pids;
    (void)shard;
    throwNoFork();
#else
    const auto it = pids.find(shard);
    requireModel(it != pids.end(),
                 "poll() on a shard with no live dispatch");
    const auto code = pollChild(it->second);
    if (code)
        pids.erase(it);
    return code;
#endif
}

/** Shared cancel step for the pid-keyed transports. */
void
cancelPidTable(std::map<std::size_t, long> &pids,
               std::size_t shard)
{
#if !ECOCHIP_COORD_HAS_FORK
    (void)pids;
    (void)shard;
    throwNoFork();
#else
    const auto it = pids.find(shard);
    requireModel(it != pids.end(),
                 "cancel() on a shard with no live dispatch");
    killChild(it->second);
    pids.erase(it);
#endif
}

} // namespace

// ---------------------------------------------- LocalProcessTransport

void
LocalProcessTransport::start(const ShardDispatch &dispatch)
{
#if !ECOCHIP_COORD_HAS_FORK
    (void)dispatch;
    throwNoFork();
#else
    std::vector<std::string> argv;
    if (!dispatch.workerExe.empty()) {
        argv = {dispatch.workerExe,
                "--shard_worker",
                dispatch.subBatchPath,
                "--json",
                dispatch.reportPath,
                "--engine_threads",
                std::to_string(dispatch.engineThreads)};
        if (!dispatch.scenariosPath.empty()) {
            argv.push_back("--scenarios");
            argv.push_back(dispatch.scenariosPath);
        }
    }
    // Fork-only mode runs the worker in the child directly; the
    // coordinator's event loop is single-threaded, so the usual
    // POSIX fork-from-one-thread precondition holds (see
    // engine/shard_runner.h).
    pids_[dispatch.shard] = spawnChild(argv, [dispatch] {
        return runShardWorker(
            dispatch.subBatchPath, dispatch.reportPath,
            dispatch.engineThreads, dispatch.scenariosPath);
    });
#endif
}

std::optional<int>
LocalProcessTransport::poll(std::size_t shard)
{
    return pollPidTable(pids_, shard);
}

void
LocalProcessTransport::cancel(std::size_t shard)
{
    cancelPidTable(pids_, shard);
}

// ---------------------------------------------- CommandTransport

namespace {

/**
 * POSIX-shell-quote one substituted value. Values made only of
 * known-safe characters pass through untouched (keeps the
 * common expanded command readable and ssh-friendly); anything
 * else -- a shard dir with spaces, a quote -- is single-quoted
 * with embedded quotes escaped, so it can never split into
 * extra words or grow shell syntax inside `/bin/sh -c`.
 */
std::string
shellQuote(const std::string &value)
{
    static const char *safe =
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "0123456789" "_@%+=:,./-";
    if (!value.empty() &&
        value.find_first_not_of(safe) == std::string::npos)
        return value;
    std::string quoted = "'";
    for (const char c : value) {
        if (c == '\'')
            quoted += "'\\''";
        else
            quoted += c;
    }
    quoted += "'";
    return quoted;
}

} // namespace

CommandTransport::CommandTransport(HostSpec host)
    : host_(std::move(host))
{
    requireConfig(!host_.command.empty(),
                  "host \"" + host_.name +
                      "\" has no command template; use the "
                      "local transport instead");
    validateCommandTemplate(host_.command,
                            "host \"" + host_.name + "\"");
}

std::string
CommandTransport::commandFor(const ShardDispatch &dispatch) const
{
    if (dispatch.workerExe.empty() &&
        host_.command.find("{worker}") != std::string::npos)
        throw ConfigError(
            "host \"" + host_.name +
            "\" names {worker} in its command template but "
            "this run has no worker executable");
    const std::vector<std::pair<std::string, std::string>>
        values = {
        {"host", shellQuote(host_.name)},
        {"worker", shellQuote(dispatch.workerExe)},
        {"sub_batch", shellQuote(dispatch.subBatchPath)},
        {"report", shellQuote(dispatch.reportPath)},
        {"threads", std::to_string(dispatch.engineThreads)},
        {"scenarios_args",
         dispatch.scenariosPath.empty()
             ? std::string()
             : "--scenarios " +
                   shellQuote(dispatch.scenariosPath)},
    };
    return expandCommandTemplate(host_.command, values);
}

void
CommandTransport::start(const ShardDispatch &dispatch)
{
#if !ECOCHIP_COORD_HAS_FORK
    (void)dispatch;
    throwNoFork();
#else
    const std::string command = commandFor(dispatch);
    pids_[dispatch.shard] =
        spawnChild({"/bin/sh", "-c", command}, {});
#endif
}

std::optional<int>
CommandTransport::poll(std::size_t shard)
{
    return pollPidTable(pids_, shard);
}

void
CommandTransport::cancel(std::size_t shard)
{
    cancelPidTable(pids_, shard);
}

// ---------------------------------------------- TestTransport

void
TestTransport::injectHangs(std::size_t shard, std::size_t count)
{
    hangs_[shard] += count;
}

void
TestTransport::injectFailures(std::size_t shard,
                              std::size_t count)
{
    failures_[shard] += count;
}

void
TestTransport::start(const ShardDispatch &dispatch)
{
    history_.push_back(dispatch);
    const std::size_t nth = dispatches_[dispatch.shard]++;

    const std::size_t hangs = hangs_.count(dispatch.shard)
                                  ? hangs_[dispatch.shard]
                                  : 0;
    if (nth < hangs) {
        state_[dispatch.shard] = std::nullopt; // hung
        return;
    }
    const std::size_t failures =
        failures_.count(dispatch.shard)
            ? failures_[dispatch.shard]
            : 0;
    if (nth < hangs + failures) {
        state_[dispatch.shard] = 134; // died, no report
        return;
    }
    // Healthy dispatch: run the worker in-process, synchronously.
    state_[dispatch.shard] = runShardWorker(
        dispatch.subBatchPath, dispatch.reportPath,
        dispatch.engineThreads, dispatch.scenariosPath);
}

std::optional<int>
TestTransport::poll(std::size_t shard)
{
    const auto it = state_.find(shard);
    requireModel(it != state_.end(),
                 "poll() on a shard with no live dispatch");
    if (!it->second.has_value())
        return std::nullopt; // hung until cancelled
    const int code = *it->second;
    state_.erase(it);
    return code;
}

void
TestTransport::cancel(std::size_t shard)
{
    const auto it = state_.find(shard);
    requireModel(it != state_.end(),
                 "cancel() on a shard with no live dispatch");
    state_.erase(it);
    ++cancelled_;
}

// ---------------------------------------------- coordinator

namespace {

std::shared_ptr<ShardTransport>
defaultTransport(const HostSpec &host)
{
    if (host.isLocal())
        return std::make_shared<LocalProcessTransport>();
    return std::make_shared<CommandTransport>(host);
}

} // namespace

CoordinatedRunResult
runCoordinatedBatch(const CoordinatorOptions &options)
{
    const auto &hosts = options.hosts.hosts;
    requireConfig(!hosts.empty(),
                  "host manifest names no hosts");
    requireConfig(options.retries >= 0,
                  "--retries must be >= 0");
    requireConfig(options.shardTimeoutSeconds >= 0.0,
                  "--shard_timeout must be positive "
                  "(0 disables the deadline)");
    requireConfig(options.engineThreadsPerWorker >= 0,
                  "engine threads per worker must be >= 1 "
                  "(or 0 for automatic)");

    const BatchFile batch = loadBatchFile(options.batchPath);
    const ShardPlan plan =
        planShards(batch.requests, options.hosts.totalSlots());

    // Same auto sizing rule as the single-host runner: divide
    // the machine between the shards actually planned.
    const int worker_threads =
        options.engineThreadsPerWorker > 0
            ? options.engineThreadsPerWorker
            : std::max(1,
                       Parallelism::hardware().threads /
                           static_cast<int>(plan.shardCount()));

    const bool temporary = options.shardDir.empty();
    const std::string dir =
        temporary
            ? (std::filesystem::temp_directory_path() /
               ("ecochip_coordinate_" +
                std::to_string(
#if ECOCHIP_COORD_HAS_FORK
                    static_cast<long>(getpid())
#else
                    0L
#endif
                        )))
                  .string()
            : options.shardDir;

    std::vector<std::shared_ptr<ShardTransport>> transports;
    transports.reserve(hosts.size());
    for (const auto &host : hosts)
        transports.push_back(options.transportFactory
                                 ? options.transportFactory(host)
                                 : defaultTransport(host));

    CoordinatedRunResult result;
    result.shardsUsed = plan.shardCount();
    result.threadsPerWorker = worker_threads;
    try {
        result.shardFiles = writeShardFiles(batch, plan, dir);
        for (const auto &shard_file : result.shardFiles)
            result.reportFiles.push_back(shard_file + ".report");

        struct ShardState
        {
            std::size_t attempts = 0;
            std::set<std::size_t> excludedHosts;
            bool inFlight = false;
            bool done = false;
            std::size_t host = 0;
            std::chrono::steady_clock::time_point started;

            /** Report path of the live (then successful)
             *  dispatch. */
            std::string currentReport;
        };
        std::vector<ShardState> states(plan.shardCount());
        std::vector<int> free_slots;
        for (const auto &host : hosts)
            free_slots.push_back(host.slots);
        std::deque<std::size_t> ready;
        for (std::size_t s = 0; s < plan.shardCount(); ++s)
            ready.push_back(s);
        std::size_t completed = 0;

        const auto record_attempt =
            [&](std::size_t shard, bool ok,
                const std::string &reason) {
                const ShardState &st = states[shard];
                result.attempts.push_back(
                    {shard, st.attempts - 1,
                     hosts[st.host].name, ok, reason});
            };

        // A failed/cancelled dispatch frees its slot, burns one
        // retry, excludes the host it failed on, and re-queues
        // the shard -- or fails the whole run once the retry
        // budget is spent.
        const auto handle_failure = [&](std::size_t shard,
                                        const std::string
                                            &reason) {
            ShardState &st = states[shard];
            st.inFlight = false;
            ++free_slots[st.host];
            record_attempt(shard, false, reason);
            if (static_cast<int>(st.attempts) >
                options.retries) {
                // The result (and its attempt history) never
                // escapes on the error path, so the operator's
                // per-attempt trail must ride in the message.
                std::string history;
                for (const auto &attempt : result.attempts)
                    if (attempt.shard == shard)
                        history += "\n  attempt #" +
                                   std::to_string(
                                       attempt.attempt) +
                                   " on host '" + attempt.host +
                                   "': " + attempt.reason;
                throw Error(
                    "shard #" + std::to_string(shard) + " (" +
                    result.shardFiles[shard] +
                    ") has no retries left after " +
                    std::to_string(st.attempts) +
                    " attempt(s); dispatch history:" + history);
            }
            st.excludedHosts.insert(st.host);
            ++result.redispatches;
            ready.push_back(shard);
        };

        // On any mid-run error (retries exhausted, transport
        // failure), kill the other in-flight dispatches before
        // unwinding -- orphaned workers must not race the
        // scratch-directory cleanup below.
        const auto cancel_in_flight = [&]() {
            for (std::size_t shard = 0; shard < states.size();
                 ++shard)
                if (states[shard].inFlight)
                    try {
                        transports[states[shard].host]->cancel(
                            shard);
                    } catch (...) {
                        // Best effort; keep the original error.
                    }
        };

        try {
            // Idle backoff: start fine-grained so short shards
            // complete promptly, decay toward a coarse tick so
            // hour-long dispatches do not busy-poll the
            // coordinating node. Any progress resets it.
            std::chrono::milliseconds idle_sleep{1};
            constexpr std::chrono::milliseconds max_idle_sleep{
                50};
            while (completed < plan.shardCount()) {
                // Dispatch: deal every ready shard a free slot on
                // the first (manifest order) host it has not failed
                // on; once a shard has failed everywhere, any host
                // will do -- a one-host manifest must still be able
                // to retry.
                for (std::size_t n = ready.size(); n > 0; --n) {
                    const std::size_t shard = ready.front();
                    ready.pop_front();
                    ShardState &st = states[shard];
                    bool any_unexcluded = false;
                    for (std::size_t h = 0; h < hosts.size(); ++h)
                        if (st.excludedHosts.count(h) == 0)
                            any_unexcluded = true;
                    std::optional<std::size_t> chosen;
                    for (std::size_t h = 0; h < hosts.size();
                         ++h) {
                        if (free_slots[h] <= 0)
                            continue;
                        if (any_unexcluded &&
                            st.excludedHosts.count(h) != 0)
                            continue;
                        chosen = h;
                        break;
                    }
                    if (!chosen) {
                        ready.push_back(shard); // wait for a slot
                        continue;
                    }

                    ShardDispatch dispatch;
                    dispatch.shard = shard;
                    dispatch.attempt = st.attempts;
                    dispatch.host = hosts[*chosen].name;
                    dispatch.subBatchPath =
                        result.shardFiles[shard];
                    // Retries write to a fresh per-attempt path:
                    // a cancelled straggler whose worker outlives
                    // the kill (an orphan behind ssh or a shell
                    // wrapper) may still scribble on *its* report
                    // file, and must never race the retry's
                    // output or the final merge read.
                    dispatch.reportPath =
                        st.attempts == 0
                            ? result.reportFiles[shard]
                            : result.reportFiles[shard] +
                                  ".retry" +
                                  std::to_string(st.attempts);
                    dispatch.engineThreads = worker_threads;
                    dispatch.scenariosPath = options.scenariosPath;
                    dispatch.workerExe = options.workerExe;

                    // A stale report (previous run, reused
                    // shard_dir) must never merge as this
                    // dispatch's output.
                    std::error_code ec;
                    std::filesystem::remove(dispatch.reportPath,
                                            ec);

                    ++st.attempts;
                    st.host = *chosen;
                    st.currentReport = dispatch.reportPath;
                    st.started = std::chrono::steady_clock::now();
                    st.inFlight = true;
                    --free_slots[*chosen];
                    transports[*chosen]->start(dispatch);
                }

                // Poll: collect completions, cancel stragglers.
                bool progressed = false;
                for (std::size_t shard = 0; shard < states.size();
                     ++shard) {
                    ShardState &st = states[shard];
                    if (!st.inFlight)
                        continue;
                    const auto code =
                        transports[st.host]->poll(shard);
                    if (code) {
                        progressed = true;
                        const bool exit_ok =
                            *code == 0 || *code == 1;
                        if (exit_ok &&
                            std::filesystem::exists(
                                st.currentReport)) {
                            st.inFlight = false;
                            st.done = true;
                            ++free_slots[st.host];
                            ++completed;
                            // The merge (and the user-facing
                            // listing) must read the attempt
                            // that actually succeeded.
                            result.reportFiles[shard] =
                                st.currentReport;
                            record_attempt(shard, true,
                                           *code == 0
                                               ? "ok"
                                               : "requests "
                                                 "failed");
                        } else if (exit_ok) {
                            handle_failure(
                                shard,
                                "exited " +
                                    std::to_string(*code) +
                                    " but wrote no report at " +
                                    st.currentReport);
                        } else {
                            handle_failure(
                                shard,
                                "died with exit code " +
                                    std::to_string(*code) +
                                    " before writing its report");
                        }
                    } else if (options.shardTimeoutSeconds > 0.0) {
                        const double elapsed =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                st.started)
                                .count();
                        if (elapsed >
                            options.shardTimeoutSeconds) {
                            progressed = true;
                            transports[st.host]->cancel(shard);
                            handle_failure(
                                shard,
                                "missed the " +
                                    std::to_string(
                                        options
                                            .shardTimeoutSeconds) +
                                    " s deadline (straggler "
                                    "cancelled)");
                        }
                    }
                }

                if (progressed) {
                    idle_sleep = std::chrono::milliseconds{1};
                } else if (completed < plan.shardCount()) {
                    std::this_thread::sleep_for(idle_sleep);
                    idle_sleep =
                        std::min(idle_sleep * 2, max_idle_sleep);
                }
            }
        } catch (...) {
            cancel_in_flight();
            throw;
        }

        std::vector<json::Value> reports;
        reports.reserve(plan.shardCount());
        for (const auto &report_file : result.reportFiles)
            reports.push_back(json::parseFile(report_file));
        result.mergedReport = mergeShardReports(plan, reports);
        result.succeeded = static_cast<std::size_t>(
            result.mergedReport.at("succeeded").asInteger());
        result.failed = static_cast<std::size_t>(
            result.mergedReport.at("failed").asInteger());
    } catch (...) {
        if (temporary) {
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
        }
        throw;
    }

    if (temporary) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        result.shardFiles.clear();
        result.reportFiles.clear();
    }
    return result;
}

} // namespace ecochip
