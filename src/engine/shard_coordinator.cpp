#include "engine/shard_coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "engine/analysis_engine.h"
#include "engine/shard_planner.h"
#include "engine/shard_runner.h"
#include "engine/work_queue.h"
#include "io/event_journal_io.h"
#include "io/request_io.h"
#include "json/ondemand.h"
#include "json/stream_writer.h"
#include "support/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define ECOCHIP_COORD_HAS_FORK 1
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define ECOCHIP_COORD_HAS_FORK 0
#endif

namespace ecochip {

namespace {

#if ECOCHIP_COORD_HAS_FORK

/**
 * Fork one child: exec'ing @p argv_strings when non-empty, else
 * running @p in_child. Returns the child's pid. The child _exits
 * (never exit) so it cannot flush stdio buffers or run atexit
 * handlers inherited from the parent.
 */
long
spawnChild(const std::vector<std::string> &argv_strings,
           const std::function<int()> &in_child)
{
    const pid_t pid = fork();
    if (pid < 0)
        throw ModelError("fork() failed spawning a shard "
                         "dispatch");
    if (pid == 0) {
        // Own process group, so cancelling a straggler can kill
        // the whole tree -- a compound command template keeps
        // /bin/sh alive as the worker's parent, and killing the
        // shell alone would orphan the worker. Both sides call
        // setpgid to close the fork/exec race; failure is
        // harmless (the child stays in the parent's group and
        // the direct kill below still lands).
        setpgid(0, 0);
        if (!argv_strings.empty()) {
            std::vector<char *> argv;
            for (const auto &arg : argv_strings)
                argv.push_back(const_cast<char *>(arg.c_str()));
            argv.push_back(nullptr);
            execvp(argv[0], argv.data());
            _exit(127); // exec failed
        }
        int code = 125;
        try {
            code = in_child();
        } catch (...) {
            code = 125;
        }
        _exit(code);
    }
    setpgid(pid, pid); // see the child-side call above
    return pid;
}

/**
 * Non-blocking wait: the child's exit code once it finished
 * (signal-terminated children report 128 + signo, un-waitable
 * ones -1), nullopt while it is still running.
 */
std::optional<int>
pollChild(long pid)
{
    int status = 0;
    pid_t waited;
    do {
        waited = waitpid(static_cast<pid_t>(pid), &status,
                         WNOHANG);
    } while (waited < 0 && errno == EINTR);
    if (waited == 0)
        return std::nullopt;
    if (waited != static_cast<pid_t>(pid))
        return -1; // unaccountable child
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return std::nullopt; // stopped/continued: still running
}

/** Kill and reap a straggler child and its process group. */
void
killChild(long pid)
{
    // Group first (shell wrappers, compound commands), then the
    // direct child in case setpgid lost its race.
    kill(-static_cast<pid_t>(pid), SIGKILL);
    kill(static_cast<pid_t>(pid), SIGKILL);
    int status = 0;
    pid_t waited;
    do {
        waited = waitpid(static_cast<pid_t>(pid), &status, 0);
    } while (waited < 0 && errno == EINTR);
}

#else // !ECOCHIP_COORD_HAS_FORK

[[noreturn]] void
throwNoFork()
{
    throw ConfigError(
        "process transports require a POSIX platform "
        "(fork/exec); inject a custom ShardTransport instead");
}

#endif // ECOCHIP_COORD_HAS_FORK

/** Shared poll step for the pid-keyed transports. */
std::optional<int>
pollPidTable(std::map<std::size_t, long> &pids,
             std::size_t shard)
{
#if !ECOCHIP_COORD_HAS_FORK
    (void)pids;
    (void)shard;
    throwNoFork();
#else
    const auto it = pids.find(shard);
    requireModel(it != pids.end(),
                 "poll() on a shard with no live dispatch");
    const auto code = pollChild(it->second);
    if (code)
        pids.erase(it);
    return code;
#endif
}

/** Shared cancel step for the pid-keyed transports. */
void
cancelPidTable(std::map<std::size_t, long> &pids,
               std::size_t shard)
{
#if !ECOCHIP_COORD_HAS_FORK
    (void)pids;
    (void)shard;
    throwNoFork();
#else
    const auto it = pids.find(shard);
    requireModel(it != pids.end(),
                 "cancel() on a shard with no live dispatch");
    killChild(it->second);
    pids.erase(it);
#endif
}

} // namespace

// ---------------------------------------------- LocalProcessTransport

void
LocalProcessTransport::start(const ShardDispatch &dispatch)
{
#if !ECOCHIP_COORD_HAS_FORK
    (void)dispatch;
    throwNoFork();
#else
    std::vector<std::string> argv;
    if (!dispatch.workerExe.empty()) {
        argv = {dispatch.workerExe,
                "--shard_worker",
                dispatch.subBatchPath,
                "--json",
                dispatch.reportPath,
                "--engine_threads",
                std::to_string(dispatch.engineThreads)};
        if (!dispatch.scenariosPath.empty()) {
            argv.push_back("--scenarios");
            argv.push_back(dispatch.scenariosPath);
        }
    }
    // Fork-only mode runs the worker in the child directly; the
    // coordinator's event loop is single-threaded, so the usual
    // POSIX fork-from-one-thread precondition holds (see
    // engine/shard_runner.h).
    pids_[dispatch.shard] = spawnChild(argv, [dispatch] {
        return runShardWorker(
            dispatch.subBatchPath, dispatch.reportPath,
            dispatch.engineThreads, dispatch.scenariosPath,
            dispatch.eventsPath);
    });
#endif
}

std::optional<int>
LocalProcessTransport::poll(std::size_t shard)
{
    return pollPidTable(pids_, shard);
}

void
LocalProcessTransport::cancel(std::size_t shard)
{
    cancelPidTable(pids_, shard);
}

// ---------------------------------------------- CommandTransport

namespace {

/**
 * POSIX-shell-quote one substituted value. Values made only of
 * known-safe characters pass through untouched (keeps the
 * common expanded command readable and ssh-friendly); anything
 * else -- a shard dir with spaces, a quote -- is single-quoted
 * with embedded quotes escaped, so it can never split into
 * extra words or grow shell syntax inside `/bin/sh -c`.
 */
std::string
shellQuote(const std::string &value)
{
    static const char *safe =
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "0123456789" "_@%+=:,./-";
    if (!value.empty() &&
        value.find_first_not_of(safe) == std::string::npos)
        return value;
    std::string quoted = "'";
    for (const char c : value) {
        if (c == '\'')
            quoted += "'\\''";
        else
            quoted += c;
    }
    quoted += "'";
    return quoted;
}

} // namespace

CommandTransport::CommandTransport(HostSpec host)
    : host_(std::move(host))
{
    requireConfig(!host_.command.empty(),
                  "host \"" + host_.name +
                      "\" has no command template; use the "
                      "local transport instead");
    validateCommandTemplate(host_.command,
                            "host \"" + host_.name + "\"");
}

std::string
CommandTransport::commandFor(const ShardDispatch &dispatch) const
{
    if (dispatch.workerExe.empty() &&
        host_.command.find("{worker}") != std::string::npos)
        throw ConfigError(
            "host \"" + host_.name +
            "\" names {worker} in its command template but "
            "this run has no worker executable");
    const std::vector<std::pair<std::string, std::string>>
        values = {
        {"host", shellQuote(host_.name)},
        {"worker", shellQuote(dispatch.workerExe)},
        {"sub_batch", shellQuote(dispatch.subBatchPath)},
        {"report", shellQuote(dispatch.reportPath)},
        {"events",
         shellQuote(dispatch.eventsPath.empty()
                        ? eventsPathFor(dispatch.reportPath)
                        : dispatch.eventsPath)},
        {"threads", std::to_string(dispatch.engineThreads)},
        {"scenarios_args",
         dispatch.scenariosPath.empty()
             ? std::string()
             : "--scenarios " +
                   shellQuote(dispatch.scenariosPath)},
    };
    return expandCommandTemplate(host_.command, values);
}

void
CommandTransport::start(const ShardDispatch &dispatch)
{
#if !ECOCHIP_COORD_HAS_FORK
    (void)dispatch;
    throwNoFork();
#else
    const std::string command = commandFor(dispatch);
    pids_[dispatch.shard] =
        spawnChild({"/bin/sh", "-c", command}, {});
#endif
}

std::optional<int>
CommandTransport::poll(std::size_t shard)
{
    return pollPidTable(pids_, shard);
}

void
CommandTransport::cancel(std::size_t shard)
{
    cancelPidTable(pids_, shard);
}

// ---------------------------------------------- TestTransport

void
TestTransport::injectFault(std::size_t shard,
                           TransportFault fault)
{
    schedule_[shard].push_back(fault);
}

void
TestTransport::injectHangs(std::size_t shard, std::size_t count)
{
    TransportFault fault;
    fault.kind = TransportFault::Kind::Hang;
    for (std::size_t i = 0; i < count; ++i)
        injectFault(shard, fault);
}

void
TestTransport::injectFailures(std::size_t shard,
                              std::size_t count)
{
    TransportFault fault;
    fault.kind = TransportFault::Kind::Fail;
    for (std::size_t i = 0; i < count; ++i)
        injectFault(shard, fault);
}

void
TestTransport::setSpeed(double seconds,
                        double per_request_seconds)
{
    delaySeconds_ = seconds;
    perRequestDelaySeconds_ = per_request_seconds;
}

void
TestTransport::start(const ShardDispatch &dispatch)
{
    history_.push_back(dispatch);
    const std::size_t nth = dispatches_[dispatch.shard]++;

    LiveDispatch live;
    live.dispatch = dispatch;

    std::optional<TransportFault> fault;
    const auto it = schedule_.find(dispatch.shard);
    if (it != schedule_.end() && nth < it->second.size())
        fault = it->second[nth];

    if (fault && fault->kind == TransportFault::Kind::Hang) {
        live.hung = true;
        live_[dispatch.shard] = std::move(live);
        return;
    }
    if (fault && fault->kind == TransportFault::Kind::Fail) {
        live.exitCode = fault->exitCode; // died, no report
        live_[dispatch.shard] = std::move(live);
        return;
    }

    // Healthy (or slow / kill-mid-stream) dispatch: the worker
    // runs in-process at the first poll past the readiness
    // point, so an uneven-speed host is modeled as completions
    // that simply take longer to surface.
    double delay = delaySeconds_;
    if (perRequestDelaySeconds_ > 0.0)
        delay += perRequestDelaySeconds_ *
                 static_cast<double>(
                     loadBatchFile(dispatch.subBatchPath)
                         .requests.size());
    if (fault && fault->kind == TransportFault::Kind::Slow)
        delay += fault->delaySeconds;
    if (fault &&
        fault->kind == TransportFault::Kind::KillMidStream)
        live.truncateEvents = fault->eventLines;
    live.readyAt =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(delay));
    live_[dispatch.shard] = std::move(live);
}

std::optional<int>
TestTransport::poll(std::size_t shard)
{
    const auto it = live_.find(shard);
    requireModel(it != live_.end(),
                 "poll() on a shard with no live dispatch");
    LiveDispatch &live = it->second;
    if (live.hung)
        return std::nullopt; // hung until cancelled
    if (live.exitCode) {
        const int code = *live.exitCode;
        live_.erase(it);
        return code;
    }
    if (std::chrono::steady_clock::now() < live.readyAt)
        return std::nullopt; // still "running"

    const ShardDispatch dispatch = live.dispatch;
    const auto truncate = live.truncateEvents;
    live_.erase(it);

    const std::string events_path =
        dispatch.eventsPath.empty()
            ? eventsPathFor(dispatch.reportPath)
            : dispatch.eventsPath;
    if (!truncate)
        return runShardWorker(
            dispatch.subBatchPath, dispatch.reportPath,
            dispatch.engineThreads, dispatch.scenariosPath,
            events_path);

    // Kill-mid-stream: run the worker against scratch paths,
    // deliver only its first N event lines, and report a
    // SIGKILL exit -- no report file, a partial stream.
    const std::string scratch_report =
        dispatch.reportPath + ".killtmp";
    const std::string scratch_events = events_path + ".killtmp";
    runShardWorker(dispatch.subBatchPath, scratch_report,
                   dispatch.engineThreads,
                   dispatch.scenariosPath, scratch_events);
    {
        std::ifstream in(scratch_events);
        std::ofstream out(events_path,
                          std::ios::out | std::ios::trunc);
        std::string line;
        for (std::size_t n = 0;
             n < *truncate && std::getline(in, line); ++n)
            out << line << '\n';
    }
    std::error_code ec;
    std::filesystem::remove(scratch_report, ec);
    std::filesystem::remove(scratch_events, ec);
    return 128 + 9; // SIGKILLed worker
}

void
TestTransport::cancel(std::size_t shard)
{
    const auto it = live_.find(shard);
    requireModel(it != live_.end(),
                 "cancel() on a shard with no live dispatch");
    live_.erase(it);
    ++cancelled_;
}

// ---------------------------------------------- coordinator

namespace {

std::shared_ptr<ShardTransport>
defaultTransport(const HostSpec &host)
{
    if (host.isLocal())
        return std::make_shared<LocalProcessTransport>();
    return std::make_shared<CommandTransport>(host);
}

} // namespace

CoordinatedRunResult
runCoordinatedBatch(const CoordinatorOptions &options)
{
    const auto &hosts = options.hosts.hosts;
    requireConfig(!hosts.empty(),
                  "host manifest names no hosts");
    requireConfig(options.retries >= 0,
                  "--retries must be >= 0");
    requireConfig(options.shardTimeoutSeconds >= 0.0,
                  "--shard_timeout must be positive "
                  "(0 disables the deadline)");
    requireConfig(options.engineThreadsPerWorker >= 0,
                  "engine threads per worker must be >= 1 "
                  "(or 0 for automatic)");

    const BatchFile batch = loadBatchFile(options.batchPath);
    const ShardPlan plan =
        planShards(batch.requests, options.hosts.totalSlots());

    // Same auto sizing rule as the single-host runner: divide
    // the machine between the shards actually planned.
    const int worker_threads =
        options.engineThreadsPerWorker > 0
            ? options.engineThreadsPerWorker
            : std::max(1,
                       Parallelism::hardware().threads /
                           static_cast<int>(plan.shardCount()));

    const bool temporary = options.shardDir.empty();
    const std::string dir =
        temporary
            ? (std::filesystem::temp_directory_path() /
               ("ecochip_coordinate_" +
                std::to_string(
#if ECOCHIP_COORD_HAS_FORK
                    static_cast<long>(getpid())
#else
                    0L
#endif
                        )))
                  .string()
            : options.shardDir;

    std::vector<std::shared_ptr<ShardTransport>> transports;
    transports.reserve(hosts.size());
    for (const auto &host : hosts)
        transports.push_back(options.transportFactory
                                 ? options.transportFactory(host)
                                 : defaultTransport(host));

    CoordinatedRunResult result;
    result.shardsUsed = plan.shardCount();
    result.threadsPerWorker = worker_threads;
    try {
        result.shardFiles = writeShardFiles(batch, plan, dir);
        for (const auto &shard_file : result.shardFiles)
            result.reportFiles.push_back(shard_file + ".report");

        // A reused shard_dir may hold the outcome journal of an
        // earlier dynamic run; a fresh static run invalidates it,
        // so unlink it exactly like stale shard reports -- a
        // later --resume must never replay outcomes that do not
        // belong to this directory's current contents.
        std::error_code stale_journal_ec;
        std::filesystem::remove(
            std::filesystem::path(dir) / coordinatorJournalName(),
            stale_journal_ec);

        struct ShardState
        {
            std::size_t attempts = 0;
            std::set<std::size_t> excludedHosts;
            bool inFlight = false;
            bool done = false;
            std::size_t host = 0;
            std::chrono::steady_clock::time_point started;

            /** Report path of the live (then successful)
             *  dispatch. */
            std::string currentReport;
        };
        std::vector<ShardState> states(plan.shardCount());
        std::vector<int> free_slots;
        for (const auto &host : hosts)
            free_slots.push_back(host.slots);
        std::deque<std::size_t> ready;
        for (std::size_t s = 0; s < plan.shardCount(); ++s)
            ready.push_back(s);
        std::size_t completed = 0;

        const auto record_attempt =
            [&](std::size_t shard, bool ok,
                const std::string &reason) {
                const ShardState &st = states[shard];
                result.attempts.push_back(
                    {shard, st.attempts - 1,
                     hosts[st.host].name, ok, reason});
            };

        // A failed/cancelled dispatch frees its slot, burns one
        // retry, excludes the host it failed on, and re-queues
        // the shard -- or fails the whole run once the retry
        // budget is spent.
        const auto handle_failure = [&](std::size_t shard,
                                        const std::string
                                            &reason) {
            ShardState &st = states[shard];
            st.inFlight = false;
            ++free_slots[st.host];
            record_attempt(shard, false, reason);
            if (static_cast<int>(st.attempts) >
                options.retries) {
                // The result (and its attempt history) never
                // escapes on the error path, so the operator's
                // per-attempt trail must ride in the message.
                std::string history;
                for (const auto &attempt : result.attempts)
                    if (attempt.shard == shard)
                        history += "\n  attempt #" +
                                   std::to_string(
                                       attempt.attempt) +
                                   " on host '" + attempt.host +
                                   "': " + attempt.reason;
                throw Error(
                    "shard #" + std::to_string(shard) + " (" +
                    result.shardFiles[shard] +
                    ") has no retries left after " +
                    std::to_string(st.attempts) +
                    " attempt(s); dispatch history:" + history);
            }
            st.excludedHosts.insert(st.host);
            ++result.redispatches;
            ready.push_back(shard);
        };

        // On any mid-run error (retries exhausted, transport
        // failure), kill the other in-flight dispatches before
        // unwinding -- orphaned workers must not race the
        // scratch-directory cleanup below.
        const auto cancel_in_flight = [&]() {
            for (std::size_t shard = 0; shard < states.size();
                 ++shard)
                if (states[shard].inFlight)
                    try {
                        transports[states[shard].host]->cancel(
                            shard);
                    } catch (...) {
                        // Best effort; keep the original error.
                    }
        };

        try {
            // Idle backoff: start fine-grained so short shards
            // complete promptly, decay toward a coarse tick so
            // hour-long dispatches do not busy-poll the
            // coordinating node. Any progress resets it.
            std::chrono::milliseconds idle_sleep{1};
            constexpr std::chrono::milliseconds max_idle_sleep{
                50};
            while (completed < plan.shardCount()) {
                // Dispatch: deal every ready shard a free slot on
                // the first (manifest order) host it has not failed
                // on; once a shard has failed everywhere, any host
                // will do -- a one-host manifest must still be able
                // to retry.
                for (std::size_t n = ready.size(); n > 0; --n) {
                    const std::size_t shard = ready.front();
                    ready.pop_front();
                    ShardState &st = states[shard];
                    bool any_unexcluded = false;
                    for (std::size_t h = 0; h < hosts.size(); ++h)
                        if (st.excludedHosts.count(h) == 0)
                            any_unexcluded = true;
                    std::optional<std::size_t> chosen;
                    for (std::size_t h = 0; h < hosts.size();
                         ++h) {
                        if (free_slots[h] <= 0)
                            continue;
                        if (any_unexcluded &&
                            st.excludedHosts.count(h) != 0)
                            continue;
                        chosen = h;
                        break;
                    }
                    if (!chosen) {
                        ready.push_back(shard); // wait for a slot
                        continue;
                    }

                    ShardDispatch dispatch;
                    dispatch.shard = shard;
                    dispatch.attempt = st.attempts;
                    dispatch.host = hosts[*chosen].name;
                    dispatch.subBatchPath =
                        result.shardFiles[shard];
                    // Retries write to a fresh per-attempt path:
                    // a cancelled straggler whose worker outlives
                    // the kill (an orphan behind ssh or a shell
                    // wrapper) may still scribble on *its* report
                    // file, and must never race the retry's
                    // output or the final merge read.
                    dispatch.reportPath =
                        st.attempts == 0
                            ? result.reportFiles[shard]
                            : result.reportFiles[shard] +
                                  ".retry" +
                                  std::to_string(st.attempts);
                    dispatch.eventsPath =
                        eventsPathFor(dispatch.reportPath);
                    dispatch.engineThreads = worker_threads;
                    dispatch.scenariosPath = options.scenariosPath;
                    dispatch.workerExe = options.workerExe;

                    // A stale report (previous run, reused
                    // shard_dir) must never merge as this
                    // dispatch's output.
                    std::error_code ec;
                    std::filesystem::remove(dispatch.reportPath,
                                            ec);
                    std::filesystem::remove(dispatch.eventsPath,
                                            ec);

                    ++st.attempts;
                    st.host = *chosen;
                    st.currentReport = dispatch.reportPath;
                    st.started = std::chrono::steady_clock::now();
                    st.inFlight = true;
                    --free_slots[*chosen];
                    transports[*chosen]->start(dispatch);
                }

                // Poll: collect completions, cancel stragglers.
                bool progressed = false;
                for (std::size_t shard = 0; shard < states.size();
                     ++shard) {
                    ShardState &st = states[shard];
                    if (!st.inFlight)
                        continue;
                    const auto code =
                        transports[st.host]->poll(shard);
                    if (code) {
                        progressed = true;
                        const bool exit_ok =
                            *code == 0 || *code == 1;
                        if (exit_ok &&
                            std::filesystem::exists(
                                st.currentReport)) {
                            st.inFlight = false;
                            st.done = true;
                            ++free_slots[st.host];
                            ++completed;
                            // The merge (and the user-facing
                            // listing) must read the attempt
                            // that actually succeeded.
                            result.reportFiles[shard] =
                                st.currentReport;
                            record_attempt(shard, true,
                                           *code == 0
                                               ? "ok"
                                               : "requests "
                                                 "failed");
                        } else if (exit_ok) {
                            handle_failure(
                                shard,
                                "exited " +
                                    std::to_string(*code) +
                                    " but wrote no report at " +
                                    st.currentReport);
                        } else {
                            handle_failure(
                                shard,
                                "died with exit code " +
                                    std::to_string(*code) +
                                    " before writing its report");
                        }
                    } else if (options.shardTimeoutSeconds > 0.0) {
                        const double elapsed =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                st.started)
                                .count();
                        if (elapsed >
                            options.shardTimeoutSeconds) {
                            progressed = true;
                            transports[st.host]->cancel(shard);
                            handle_failure(
                                shard,
                                "missed the " +
                                    std::to_string(
                                        options
                                            .shardTimeoutSeconds) +
                                    " s deadline (straggler "
                                    "cancelled)");
                        }
                    }
                }

                if (progressed) {
                    idle_sleep = std::chrono::milliseconds{1};
                } else if (completed < plan.shardCount()) {
                    std::this_thread::sleep_for(idle_sleep);
                    idle_sleep =
                        std::min(idle_sleep * 2, max_idle_sleep);
                }
            }
        } catch (...) {
            cancel_in_flight();
            throw;
        }

        // Merge straight from the report bytes: the on-demand
        // scanner scatters outcome spans, no per-shard DOM.
        std::vector<std::string> reports;
        reports.reserve(plan.shardCount());
        for (const auto &report_file : result.reportFiles) {
            std::ifstream in(report_file, std::ios::binary);
            requireConfig(static_cast<bool>(in),
                          "cannot open JSON file: " +
                              report_file);
            std::ostringstream buf;
            buf << in.rdbuf();
            reports.push_back(buf.str());
        }
        result.mergedReportText =
            mergeShardReportTexts(plan, reports, false);
        result.mergedReport =
            json::parse(result.mergedReportText);
        result.succeeded = static_cast<std::size_t>(
            result.mergedReport.at("succeeded").asInteger());
        result.failed = static_cast<std::size_t>(
            result.mergedReport.at("failed").asInteger());
    } catch (...) {
        if (temporary) {
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
        }
        throw;
    }

    if (temporary) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        result.shardFiles.clear();
        result.reportFiles.clear();
    }
    return result;
}

CoordinatedRunResult
runDynamicCoordinatedBatch(const CoordinatorOptions &options)
{
    const auto &hosts = options.hosts.hosts;
    requireConfig(!hosts.empty(),
                  "host manifest names no hosts");
    requireConfig(options.retries >= 0,
                  "--retries must be >= 0");
    requireConfig(options.shardTimeoutSeconds >= 0.0,
                  "--shard_timeout must be positive "
                  "(0 disables the deadline)");
    requireConfig(options.engineThreadsPerWorker >= 0,
                  "engine threads per worker must be >= 1 "
                  "(or 0 for automatic)");
    requireConfig(options.chunkTargetRequests >= 0,
                  "--chunk_size must be positive "
                  "(or 0 for automatic)");
    requireConfig(!options.resume || !options.shardDir.empty(),
                  "--resume replays the outcome journal of a "
                  "previous run; it requires --shard_dir");

    const BatchFile batch = loadBatchFile(options.batchPath);
    const std::size_t total = batch.requests.size();

    const bool temporary = options.shardDir.empty();
    const std::string dir =
        temporary
            ? (std::filesystem::temp_directory_path() /
               ("ecochip_coordinate_" +
                std::to_string(
#if ECOCHIP_COORD_HAS_FORK
                    static_cast<long>(getpid())
#else
                    0L
#endif
                        )))
                  .string()
            : options.shardDir;

    std::vector<std::shared_ptr<ShardTransport>> transports;
    transports.reserve(hosts.size());
    for (const auto &host : hosts)
        transports.push_back(options.transportFactory
                                 ? options.transportFactory(host)
                                 : defaultTransport(host));

    CoordinatedRunResult result;
    try {
        std::filesystem::create_directories(dir);
        const std::string journal_path =
            (std::filesystem::path(dir) /
             coordinatorJournalName())
                .string();

        IncrementalMerger merger(total);
        std::size_t resumed = 0;
        if (options.resume) {
            for (auto &entry :
                 replayEventJournalText(journal_path)) {
                requireConfig(
                    entry.index < total,
                    journal_path + ": journaled index " +
                        std::to_string(entry.index) +
                        " is out of range for this batch (" +
                        std::to_string(total) +
                        " requests); the journal belongs to a "
                        "different batch -- remove it or run "
                        "without --resume");
                // The journaled outcome is canonical compact
                // text, so its "request" span compares directly
                // against the canonical request serialization --
                // no DOM on either side.
                json::StreamWriter expected_writer;
                appendRequest(expected_writer,
                              batch.requests[entry.index]);
                const std::string expected =
                    expected_writer.take();
                const auto echoed = json::ondemand::findMember(
                    entry.outcome, "request");
                requireConfig(
                    echoed && *echoed == expected,
                    journal_path +
                        ": the journaled outcome for index " +
                        std::to_string(entry.index) +
                        " does not answer this batch's request "
                        "at that index; the journal belongs to "
                        "a different batch -- remove it or run "
                        "without --resume");
                if (merger.add(entry.index,
                               std::move(entry.outcome)))
                    ++resumed;
            }
        } else {
            // Fresh run: a stale journal from a previous run in
            // a reused shard_dir must not leak into this run's
            // checkpoint (the same hygiene as stale shard
            // reports).
            std::error_code stale_ec;
            std::filesystem::remove(journal_path, stale_ec);
        }

        EventJournalWriter journal;
        journal.open(journal_path, options.resume);

        const auto remaining = merger.missingIndices();
        ChunkPlan plan;
        if (!remaining.empty()) {
            const int slots =
                std::max(1, options.hosts.totalSlots());
            // Auto target: ~3 chunks per slot, so fast hosts
            // keep pulling while a straggler grinds on one.
            const int target =
                options.chunkTargetRequests > 0
                    ? options.chunkTargetRequests
                    : static_cast<int>(std::max<std::size_t>(
                          1, (remaining.size() +
                              3 * static_cast<std::size_t>(
                                      slots) -
                              1) /
                                 (3 * static_cast<std::size_t>(
                                          slots))));
            plan = planChunksOver(batch.requests, remaining,
                                  target);
        }
        const std::size_t chunk_count = plan.chunkCount();

        // Concurrency = min(slots, chunks): divide the machine
        // between the workers that can actually run at once.
        const int concurrent = std::max(
            1, std::min(options.hosts.totalSlots(),
                        static_cast<int>(chunk_count)));
        const int worker_threads =
            options.engineThreadsPerWorker > 0
                ? options.engineThreadsPerWorker
                : std::max(1, Parallelism::hardware().threads /
                                  concurrent);

        result.shardsUsed = chunk_count;
        result.chunksPlanned = chunk_count;
        result.resumedOutcomes = resumed;
        result.threadsPerWorker = worker_threads;
        result.journalPath = journal_path;
        result.shardFiles = writeChunkFiles(batch, plan, dir);
        for (const auto &chunk_file : result.shardFiles)
            result.reportFiles.push_back(chunk_file + ".report");

        struct ChunkState
        {
            std::size_t attempts = 0;
            std::set<std::size_t> excludedHosts;
            bool inFlight = false;
            bool done = false;
            /** Abort policy: never (re-)dispatched. */
            bool abandoned = false;
            std::size_t host = 0;
            std::chrono::steady_clock::time_point started;
            std::string currentReport;

            /** Tail over the live dispatch's event file. */
            NdjsonTailReader events;

            /** This chunk's outcomes merged so far (across all
             *  of its attempts). */
            std::size_t deliveredRequests = 0;
        };
        std::vector<ChunkState> states(chunk_count);
        std::vector<int> free_slots;
        for (const auto &host : hosts)
            free_slots.push_back(host.slots);
        std::deque<std::size_t> ready;
        for (std::size_t c = 0; c < chunk_count; ++c)
            ready.push_back(c);
        std::size_t completed = 0;
        std::size_t abandoned = 0;
        bool aborted = false;

        std::vector<CoordinatorProgress::Host> host_progress;
        for (const auto &host : hosts) {
            CoordinatorProgress::Host row;
            row.name = host.name;
            host_progress.push_back(std::move(row));
        }

        const auto run_start = std::chrono::steady_clock::now();
        auto last_emit = run_start - std::chrono::hours(1);
        std::size_t fresh_delivered = 0;

        const auto emit_progress = [&](bool force) {
            if (!options.onProgress)
                return;
            const auto now = std::chrono::steady_clock::now();
            if (!force &&
                std::chrono::duration<double>(now - last_emit)
                        .count() < 0.05)
                return;
            last_emit = now;
            CoordinatorProgress snapshot;
            snapshot.hosts = host_progress;
            snapshot.chunksTotal = chunk_count;
            snapshot.chunksDone = completed;
            for (const auto &st : states)
                if (st.inFlight)
                    ++snapshot.chunksInFlight;
            snapshot.requestsTotal = total;
            snapshot.requestsDone = merger.doneCount();
            snapshot.requestsFailed = merger.failedCount();
            snapshot.resumedOutcomes = resumed;
            snapshot.elapsedSeconds =
                std::chrono::duration<double>(now - run_start)
                    .count();
            snapshot.requestsPerSecond =
                snapshot.elapsedSeconds > 0.0
                    ? static_cast<double>(fresh_delivered) /
                          snapshot.elapsedSeconds
                    : 0.0;
            snapshot.aborted = aborted;
            options.onProgress(snapshot);
        };

        const auto record_attempt =
            [&](std::size_t chunk, bool ok,
                const std::string &reason) {
                const ChunkState &st = states[chunk];
                result.attempts.push_back(
                    {chunk, st.attempts - 1,
                     hosts[st.host].name, ok, reason});
            };

        // First delivery of a chunk-local outcome: journal it,
        // merge it, count it. Duplicates (a retried chunk
        // re-streaming what its failed attempt already
        // delivered) are dropped -- results are deterministic,
        // so the first copy is the only copy needed.
        const auto deliver = [&](std::size_t chunk,
                                 std::size_t local,
                                 std::string outcome_text) {
            requireConfig(
                local < plan.chunks[chunk].size(),
                "chunk #" + std::to_string(chunk) +
                    " delivered an event for index " +
                    std::to_string(local) + " but holds only " +
                    std::to_string(plan.chunks[chunk].size()) +
                    " requests");
            const std::size_t original =
                plan.chunks[chunk][local];
            if (merger.filled(original))
                return;
            journal.append(original,
                           std::string_view(outcome_text));
            merger.add(original, std::move(outcome_text));
            ChunkState &st = states[chunk];
            ++st.deliveredRequests;
            ++host_progress[st.host].doneRequests;
            ++fresh_delivered;
        };

        /** Consume the new complete event lines of a chunk's
         *  live dispatch; true when anything arrived. */
        const auto drain_events = [&](std::size_t chunk) {
            bool any = false;
            ChunkState &st = states[chunk];
            for (const auto &line : st.events.poll()) {
                try {
                    json::ondemand::validate(line);
                } catch (const std::exception &) {
                    throw ConfigError(
                        st.events.path() +
                        ": malformed worker event line");
                }
                const JournalEntryText entry = splitEventLine(
                    line, st.events.path());
                deliver(chunk, entry.index, entry.outcome);
                any = true;
            }
            return any;
        };

        // Threshold met: stop feeding the queue. Undispatched
        // chunks are cancelled outright; in-flight ones drain.
        const auto maybe_abort = [&]() {
            if (aborted ||
                options.abortAfterFailedRequests == 0 ||
                merger.failedCount() <
                    options.abortAfterFailedRequests)
                return;
            aborted = true;
            while (!ready.empty()) {
                states[ready.front()].abandoned = true;
                ++abandoned;
                ready.pop_front();
            }
        };

        const auto handle_failure = [&](std::size_t chunk,
                                        const std::string
                                            &reason) {
            ChunkState &st = states[chunk];
            st.inFlight = false;
            ++free_slots[st.host];
            record_attempt(chunk, false, reason);
            if (aborted) {
                // The run is already winding down; spending
                // retries on a doomed merge helps nobody.
                st.abandoned = true;
                ++abandoned;
                return;
            }
            if (static_cast<int>(st.attempts) >
                options.retries) {
                std::string history;
                for (const auto &attempt : result.attempts)
                    if (attempt.shard == chunk)
                        history += "\n  attempt #" +
                                   std::to_string(
                                       attempt.attempt) +
                                   " on host '" + attempt.host +
                                   "': " + attempt.reason;
                throw Error(
                    "chunk #" + std::to_string(chunk) + " (" +
                    result.shardFiles[chunk] +
                    ") has no retries left after " +
                    std::to_string(st.attempts) +
                    " attempt(s); dispatch history:" + history);
            }
            st.excludedHosts.insert(st.host);
            ++result.redispatches;
            ready.push_back(chunk);
        };

        const auto cancel_in_flight = [&]() {
            for (std::size_t chunk = 0; chunk < states.size();
                 ++chunk)
                if (states[chunk].inFlight)
                    try {
                        transports[states[chunk].host]->cancel(
                            chunk);
                    } catch (...) {
                        // Best effort; keep the original error.
                    }
        };

        try {
            std::chrono::milliseconds idle_sleep{1};
            constexpr std::chrono::milliseconds max_idle_sleep{
                50};
            maybe_abort(); // resumed failures may already trip it
            while (completed + abandoned < chunk_count) {
                // Pull: every free slot takes the next queued
                // chunk it has not failed on (same host
                // preference rules as the static scheduler).
                for (std::size_t n = ready.size(); n > 0; --n) {
                    const std::size_t chunk = ready.front();
                    ready.pop_front();
                    ChunkState &st = states[chunk];
                    bool any_unexcluded = false;
                    for (std::size_t h = 0; h < hosts.size();
                         ++h)
                        if (st.excludedHosts.count(h) == 0)
                            any_unexcluded = true;
                    std::optional<std::size_t> chosen;
                    for (std::size_t h = 0; h < hosts.size();
                         ++h) {
                        if (free_slots[h] <= 0)
                            continue;
                        if (any_unexcluded &&
                            st.excludedHosts.count(h) != 0)
                            continue;
                        chosen = h;
                        break;
                    }
                    if (!chosen) {
                        ready.push_back(chunk); // wait for a slot
                        continue;
                    }

                    ShardDispatch dispatch;
                    dispatch.shard = chunk;
                    dispatch.attempt = st.attempts;
                    dispatch.host = hosts[*chosen].name;
                    dispatch.subBatchPath =
                        result.shardFiles[chunk];
                    // Per-attempt report/event paths, for the
                    // same orphaned-straggler reason as the
                    // static scheduler.
                    dispatch.reportPath =
                        st.attempts == 0
                            ? result.reportFiles[chunk]
                            : result.reportFiles[chunk] +
                                  ".retry" +
                                  std::to_string(st.attempts);
                    dispatch.eventsPath =
                        eventsPathFor(dispatch.reportPath);
                    dispatch.engineThreads = worker_threads;
                    dispatch.scenariosPath =
                        options.scenariosPath;
                    dispatch.workerExe = options.workerExe;

                    // Stale outputs (previous run, reused
                    // shard_dir) must never merge as this
                    // dispatch's.
                    std::error_code ec;
                    std::filesystem::remove(dispatch.reportPath,
                                            ec);
                    std::filesystem::remove(dispatch.eventsPath,
                                            ec);

                    ++st.attempts;
                    st.host = *chosen;
                    st.currentReport = dispatch.reportPath;
                    st.events.reset(dispatch.eventsPath);
                    st.started =
                        std::chrono::steady_clock::now();
                    st.inFlight = true;
                    --free_slots[*chosen];
                    ++host_progress[*chosen].inFlightChunks;
                    transports[*chosen]->start(dispatch);
                    emit_progress(false);
                }

                // Poll: tail event streams, collect completions,
                // cancel stragglers.
                bool progressed = false;
                for (std::size_t chunk = 0;
                     chunk < states.size(); ++chunk) {
                    ChunkState &st = states[chunk];
                    if (!st.inFlight)
                        continue;
                    if (drain_events(chunk))
                        progressed = true;
                    const auto code =
                        transports[st.host]->poll(chunk);
                    if (code) {
                        progressed = true;
                        drain_events(chunk); // final lines
                        const bool exit_ok =
                            *code == 0 || *code == 1;
                        const std::size_t chunk_size =
                            plan.chunks[chunk].size();
                        if (exit_ok &&
                            st.deliveredRequests < chunk_size &&
                            std::filesystem::exists(
                                st.currentReport)) {
                            // A worker that streams no events (a
                            // custom command template) still
                            // merges -- from its report file,
                            // scanned without a DOM.
                            try {
                                std::ifstream in(
                                    st.currentReport,
                                    std::ios::binary);
                                std::ostringstream buf;
                                buf << in.rdbuf();
                                const std::string text =
                                    buf.str();
                                json::ondemand::Scanner scanner(
                                    text);
                                scanner.beginObject();
                                std::string key;
                                std::vector<std::string>
                                    outcomes;
                                bool has_outcomes = false;
                                while (scanner.nextMember(key)) {
                                    if (key != "outcomes") {
                                        scanner.rawValue();
                                        continue;
                                    }
                                    has_outcomes = true;
                                    scanner.beginArray();
                                    json::StreamWriter writer;
                                    while (
                                        scanner.nextElement()) {
                                        json::ondemand::
                                            reserializeValue(
                                                scanner,
                                                writer);
                                        outcomes.push_back(
                                            writer.take());
                                    }
                                }
                                scanner.expectEnd();
                                if (has_outcomes &&
                                    outcomes.size() ==
                                        chunk_size)
                                    for (std::size_t j = 0;
                                         j < outcomes.size();
                                         ++j)
                                        deliver(chunk, j,
                                                std::move(
                                                    outcomes
                                                        [j]));
                            } catch (const std::exception &) {
                                // Unusable report: the
                                // incomplete-delivery failure
                                // path below handles it.
                            }
                        }
                        if (exit_ok &&
                            st.deliveredRequests ==
                                chunk_size) {
                            st.inFlight = false;
                            st.done = true;
                            ++free_slots[st.host];
                            --host_progress[st.host]
                                  .inFlightChunks;
                            ++host_progress[st.host].doneChunks;
                            ++completed;
                            result.reportFiles[chunk] =
                                st.currentReport;
                            record_attempt(chunk, true,
                                           *code == 0
                                               ? "ok"
                                               : "requests "
                                                 "failed");
                        } else if (exit_ok) {
                            --host_progress[st.host]
                                  .inFlightChunks;
                            handle_failure(
                                chunk,
                                "exited " +
                                    std::to_string(*code) +
                                    " but delivered only " +
                                    std::to_string(
                                        st.deliveredRequests) +
                                    " of " +
                                    std::to_string(chunk_size) +
                                    " outcomes");
                        } else {
                            --host_progress[st.host]
                                  .inFlightChunks;
                            handle_failure(
                                chunk,
                                "died with exit code " +
                                    std::to_string(*code) +
                                    " before completing its "
                                    "chunk");
                        }
                        maybe_abort();
                        emit_progress(false);
                    } else if (options.shardTimeoutSeconds >
                               0.0) {
                        const double elapsed =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::
                                    now() -
                                st.started)
                                .count();
                        if (elapsed >
                            options.shardTimeoutSeconds) {
                            progressed = true;
                            // Salvage whatever the straggler
                            // already streamed before killing
                            // it -- those outcomes are done and
                            // journaled; the retry's duplicates
                            // will be dropped.
                            drain_events(chunk);
                            transports[st.host]->cancel(chunk);
                            --host_progress[st.host]
                                  .inFlightChunks;
                            handle_failure(
                                chunk,
                                "missed the " +
                                    std::to_string(
                                        options
                                            .shardTimeoutSeconds) +
                                    " s deadline (straggler "
                                    "cancelled)");
                            maybe_abort();
                            emit_progress(false);
                        }
                    }
                }

                if (progressed) {
                    idle_sleep = std::chrono::milliseconds{1};
                } else if (completed + abandoned <
                           chunk_count) {
                    std::this_thread::sleep_for(idle_sleep);
                    idle_sleep =
                        std::min(idle_sleep * 2,
                                 max_idle_sleep);
                }
            }
        } catch (...) {
            cancel_in_flight();
            throw;
        }

        // An aborted run reports the requests it never ran as
        // synthetic failures -- visible in the report, absent
        // from the journal, so --resume can still finish them.
        if (aborted)
            for (std::size_t index : merger.missingIndices()) {
                json::StreamWriter writer;
                writer.beginObject();
                writer.key("request");
                appendRequest(writer, batch.requests[index]);
                writer.key("ok");
                writer.boolean(false);
                writer.key("error");
                writer.string(
                    "aborted: the early-abort policy stopped "
                    "dispatching after " +
                    std::to_string(
                        options.abortAfterFailedRequests) +
                    " failed request(s)");
                writer.endObject();
                merger.add(index, writer.take());
            }

        result.aborted = aborted;
        result.mergedReportText = merger.reportText(false);
        result.mergedReport =
            json::parse(result.mergedReportText);
        result.succeeded = static_cast<std::size_t>(
            result.mergedReport.at("succeeded").asInteger());
        result.failed = static_cast<std::size_t>(
            result.mergedReport.at("failed").asInteger());
        emit_progress(true); // final snapshot
    } catch (...) {
        if (temporary) {
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
        }
        throw;
    }

    if (temporary) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        result.shardFiles.clear();
        result.reportFiles.clear();
        result.journalPath.clear();
    }
    return result;
}

} // namespace ecochip
