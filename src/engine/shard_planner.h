/**
 * @file
 * Splitting one request batch into per-process shards, and
 * merging the per-shard `BatchReport`s back together.
 *
 * A shard is just a sub-batch file: requests already serialize to
 * JSON (`io/request_io.h`), so the planner's whole job is
 * deciding *which* requests travel together. Requests are grouped
 * by scenario binding and whole groups are dealt round-robin
 * across shards, so every request against one binding lands in
 * the same worker process and the engine's `EvaluationContext`
 * deduplication (and its memoized caches) survives the cut.
 *
 * The merge step is the planner's inverse: given the per-shard
 * `BatchReport` JSON documents (in the shard order this plan
 * produced), it reassembles one report with every outcome back at
 * its original batch index -- byte-identical to the report a
 * single-process `runBatch` over the unsplit batch serializes.
 *
 * Formats are specified in `docs/file_formats.md`; the
 * process-level orchestration lives in `engine/shard_runner.h`.
 */

#ifndef ECOCHIP_ENGINE_SHARD_PLANNER_H
#define ECOCHIP_ENGINE_SHARD_PLANNER_H

#include <cstddef>
#include <string>
#include <vector>

#include "io/request_io.h"
#include "json/json.h"
#include "session/analysis_request.h"

namespace ecochip {

/** Which original request indices each shard runs. */
struct ShardPlan
{
    /**
     * Per-shard original batch indices, ascending within each
     * shard. Every shard is non-empty; the plan may hold fewer
     * shards than requested when the batch has fewer distinct
     * bindings.
     */
    std::vector<std::vector<std::size_t>> shards;

    /** Number of shards actually planned. */
    std::size_t shardCount() const { return shards.size(); }

    /** Total requests across all shards. */
    std::size_t requestCount() const;
};

/**
 * Plan @p shards shards over @p requests.
 *
 * Requests are grouped by scenario binding (`ScenarioRef` label)
 * in first-appearance order; group `g` is dealt to shard
 * `g % shards`. Shards that would end up empty (more shards
 * requested than distinct bindings exist) are dropped, so every
 * planned shard is a valid non-empty batch.
 *
 * @throws ConfigError when @p requests is empty or @p shards < 1.
 */
ShardPlan planShards(const std::vector<AnalysisRequest> &requests,
                     int shards);

/**
 * Write one sub-batch file per shard into @p directory
 * (`shard_000.json`, `shard_001.json`, ...). Each file is a
 * regular batch document -- `{"requests": [...]}`, plus the
 * original batch's already-resolved `"scenarios"` catalog path
 * when @p batch names one -- loadable by `loadBatchFile` and thus
 * runnable by `eco_chip --shard_worker`.
 *
 * @return The sub-batch file paths, in shard order.
 */
std::vector<std::string>
writeShardFiles(const BatchFile &batch, const ShardPlan &plan,
                const std::string &directory);

/**
 * The generic writer behind `writeShardFiles` (and the work
 * queue's `writeChunkFiles`): one sub-batch file per index group
 * in @p groups, named `<prefix>_000.json`, `<prefix>_001.json`,
 * ... The groups may cover a subset of the batch (a resumed run
 * re-plans only the unfinished requests), but every index must
 * be in range and appear at most once.
 *
 * @return The sub-batch file paths, in group order.
 */
std::vector<std::string>
writeSubBatchFiles(const BatchFile &batch,
                   const std::vector<std::vector<std::size_t>>
                       &groups,
                   const std::string &directory,
                   const std::string &prefix);

/**
 * Merge per-shard `BatchReport` JSON documents back into one.
 *
 * @param plan The plan the shards were produced from.
 * @param shard_reports One parsed `BatchReport` document per
 *        shard, in plan order.
 * @return A `BatchReport` document whose outcomes sit at their
 *         original batch indices -- byte-identical (under
 *         `json::Value::dump`) to the single-process report.
 * @throws ConfigError when a shard report is malformed or its
 *         outcome count disagrees with the plan.
 */
json::Value
mergeShardReports(const ShardPlan &plan,
                  const std::vector<json::Value> &shard_reports);

/**
 * Scan-and-splice twin of `mergeShardReports` -- the primary
 * merge path. Each shard report is scanned with the on-demand
 * parser (no DOM), its outcome spans are canonicalized and
 * scattered to their original batch indices, and the merged
 * document is emitted through the streaming writer: exactly the
 * bytes of `mergeShardReports(...).dump(pretty)`.
 *
 * @param shard_report_texts One `BatchReport` JSON document per
 *        shard (any spacing / number spelling), in plan order.
 * @throws ConfigError when a shard report is malformed or its
 *         outcome count disagrees with the plan.
 */
std::string
mergeShardReportTexts(const ShardPlan &plan,
                      const std::vector<std::string>
                          &shard_report_texts,
                      bool pretty);

} // namespace ecochip

#endif // ECOCHIP_ENGINE_SHARD_PLANNER_H
