#include "engine/shard_planner.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <utility>

#include "engine/work_queue.h"
#include "json/ondemand.h"
#include "json/stream_writer.h"
#include "support/error.h"

namespace ecochip {

std::size_t
ShardPlan::requestCount() const
{
    std::size_t count = 0;
    for (const auto &shard : shards)
        count += shard.size();
    return count;
}

ShardPlan
planShards(const std::vector<AnalysisRequest> &requests,
           int shards)
{
    requireConfig(!requests.empty(),
                  "cannot shard an empty batch");
    requireConfig(shards >= 1,
                  "shard count must be at least 1");

    // Group indices by binding, keeping first-appearance order so
    // the plan is a pure function of the batch (any process
    // recomputing it gets the same assignment).
    std::vector<std::vector<std::size_t>> groups;
    std::map<std::string, std::size_t> group_of;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::string key = requests[i].scenario.label();
        const auto it = group_of.find(key);
        if (it == group_of.end()) {
            group_of.emplace(key, groups.size());
            groups.push_back({i});
        } else {
            groups[it->second].push_back(i);
        }
    }

    // Deal whole groups round-robin; a binding never straddles a
    // shard boundary, so each worker builds every context it
    // needs exactly once.
    const std::size_t count =
        std::min(static_cast<std::size_t>(shards),
                 groups.size());
    ShardPlan plan;
    plan.shards.resize(count);
    for (std::size_t g = 0; g < groups.size(); ++g)
        for (std::size_t index : groups[g])
            plan.shards[g % count].push_back(index);

    // Ascending indices per shard: sub-batches preserve the
    // original relative request order, which keeps the merge a
    // straight scatter.
    for (auto &shard : plan.shards)
        std::sort(shard.begin(), shard.end());
    return plan;
}

std::vector<std::string>
writeShardFiles(const BatchFile &batch, const ShardPlan &plan,
                const std::string &directory)
{
    requireConfig(plan.requestCount() == batch.requests.size(),
                  "shard plan covers " +
                      std::to_string(plan.requestCount()) +
                      " requests but the batch has " +
                      std::to_string(batch.requests.size()));
    return writeSubBatchFiles(batch, plan.shards, directory,
                              "shard");
}

std::vector<std::string>
writeSubBatchFiles(const BatchFile &batch,
                   const std::vector<std::vector<std::size_t>>
                       &groups,
                   const std::string &directory,
                   const std::string &prefix)
{
    std::set<std::size_t> seen;
    for (const auto &group : groups)
        for (std::size_t index : group) {
            requireConfig(index < batch.requests.size(),
                          "sub-batch index " +
                              std::to_string(index) +
                              " is out of range (batch has " +
                              std::to_string(
                                  batch.requests.size()) +
                              " requests)");
            requireConfig(seen.insert(index).second,
                          "sub-batch index " +
                              std::to_string(index) +
                              " appears in more than one group");
        }
    std::filesystem::create_directories(directory);

    // The catalog path was resolved against the original batch
    // file, but may still be cwd-relative; the sub-batches live
    // in another directory, so pin it down to an absolute path.
    std::string catalog;
    if (batch.scenarioCatalog)
        catalog = std::filesystem::absolute(*batch.scenarioCatalog)
                      .lexically_normal()
                      .string();

    std::vector<std::string> paths;
    paths.reserve(groups.size());
    for (std::size_t s = 0; s < groups.size(); ++s) {
        json::Value doc = json::Value::makeObject();
        if (!catalog.empty())
            doc.set("scenarios", catalog);
        json::Value requests = json::Value::makeArray();
        for (std::size_t index : groups[s])
            requests.append(
                requestToJson(batch.requests[index]));
        doc.set("requests", std::move(requests));

        char name[32];
        std::snprintf(name, sizeof(name), "%s_%03zu.json",
                      prefix.c_str(), s);
        const std::string path =
            (std::filesystem::path(directory) / name).string();
        json::writeFile(doc, path);
        paths.push_back(path);
    }
    return paths;
}

std::string
mergeShardReportTexts(const ShardPlan &plan,
                      const std::vector<std::string>
                          &shard_report_texts,
                      bool pretty)
{
    requireConfig(shard_report_texts.size() == plan.shardCount(),
                  "expected " +
                      std::to_string(plan.shardCount()) +
                      " shard reports, got " +
                      std::to_string(shard_report_texts.size()));

    // Scatter each shard's outcomes back to their original batch
    // indices -- canonical compact spans, no DOM anywhere.
    IncrementalMerger merger(plan.requestCount());
    for (std::size_t s = 0; s < plan.shardCount(); ++s) {
        const std::string context =
            "shard report #" + std::to_string(s);
        json::ondemand::Scanner scanner(shard_report_texts[s]);
        requireConfig(scanner.peekType() == json::Type::Object,
                      context +
                          ": not a BatchReport document "
                          "(missing \"outcomes\")");
        scanner.beginObject();
        std::string key;
        bool has_outcomes = false;
        std::vector<std::string> outcomes;
        while (scanner.nextMember(key)) {
            if (key != "outcomes") {
                scanner.rawValue(); // validate and skip
                continue;
            }
            has_outcomes = true;
            // Same complaint as the DOM path's asArray().
            if (scanner.peekType() != json::Type::Array)
                throw ConfigError(
                    std::string("JSON type mismatch: expected "
                                "array, got ") +
                    json::typeName(scanner.peekType()));
            scanner.beginArray();
            json::StreamWriter writer;
            while (scanner.nextElement()) {
                json::ondemand::reserializeValue(scanner,
                                                 writer);
                outcomes.push_back(writer.take());
            }
        }
        scanner.expectEnd();
        requireConfig(has_outcomes,
                      context +
                          ": not a BatchReport document "
                          "(missing \"outcomes\")");
        requireConfig(outcomes.size() == plan.shards[s].size(),
                      context + ": has " +
                          std::to_string(outcomes.size()) +
                          " outcomes but the plan assigned " +
                          std::to_string(plan.shards[s].size()) +
                          " requests");
        for (std::size_t j = 0; j < outcomes.size(); ++j)
            merger.add(plan.shards[s][j],
                       std::move(outcomes[j]));
    }
    return merger.reportText(pretty);
}

json::Value
mergeShardReports(const ShardPlan &plan,
                  const std::vector<json::Value> &shard_reports)
{
    std::vector<std::string> texts;
    texts.reserve(shard_reports.size());
    for (const auto &report : shard_reports)
        texts.push_back(report.dump(false));
    return json::parse(
        mergeShardReportTexts(plan, texts, false));
}

} // namespace ecochip
