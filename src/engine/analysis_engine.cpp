#include "engine/analysis_engine.h"

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>

#include "support/error.h"

namespace ecochip {

std::size_t
BatchReport::succeeded() const
{
    std::size_t count = 0;
    for (const auto &outcome : outcomes)
        count += outcome.ok() ? 1 : 0;
    return count;
}

std::size_t
BatchReport::failed() const
{
    return outcomes.size() - succeeded();
}

namespace {

EngineOptions
optionsWithThreads(int threads)
{
    EngineOptions options;
    options.threads = threads;
    return options;
}

} // namespace

AnalysisEngine::AnalysisEngine(EngineOptions options)
    : options_(std::move(options)), pool_(options_.threads)
{}

AnalysisEngine::AnalysisEngine(int threads)
    : AnalysisEngine(optionsWithThreads(threads))
{}

namespace {

/**
 * ConfigError prefixes its message; strip it so re-throwing a
 * stored failure as a fresh ConfigError does not double it.
 */
std::string
withoutConfigPrefix(std::string what)
{
    constexpr const char *prefix = "config error: ";
    if (what.rfind(prefix, 0) == 0)
        what.erase(0, std::string(prefix).size());
    return what;
}

} // namespace

AnalysisSession
AnalysisEngine::sessionFor(const ScenarioRef &ref)
{
    const std::string key = ref.label();

    std::promise<SessionBuild> promise;
    std::shared_future<SessionBuild> future;
    bool building = false;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        const auto it = sessions_.find(key);
        if (it != sessions_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            sessions_.emplace(key, future);
            building = true;
        }
    }

    if (building) {
        SessionBuild built;
        try {
            ScenarioBuilder builder;
            builder.tech(options_.tech);
            if (ref.kind == ScenarioRef::Kind::Registry)
                builder.registry(options_.registry)
                    .scenario(ref.value);
            else
                builder.designDirectory(ref.value);
            built.session = builder.build();
        } catch (const ConfigError &e) {
            built.error = withoutConfigPrefix(e.what());
            built.isConfigError = true;
        } catch (const std::exception &e) {
            built.error = e.what();
        } catch (...) {
            built.error = "unknown error building scenario "
                          "context";
        }
        if (!built.session) {
            // Forget the entry so a later request retries (the
            // failure may be transient, e.g. a design directory
            // that appears later); waiters already holding the
            // future still see this failure.
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            sessions_.erase(key);
        }
        promise.set_value(std::move(built));
    }

    const SessionBuild &built = future.get();
    if (built.session)
        return *built.session;
    // Every waiter throws its own exception object; see
    // SessionBuild for why the error travels as data.
    if (built.isConfigError)
        throw ConfigError(built.error);
    throw Error(built.error);
}

std::future<AnalysisResult>
AnalysisEngine::submit(AnalysisRequest request)
{
    auto task = std::make_shared<
        std::packaged_task<AnalysisResult()>>(
        [this, request = std::move(request)] {
            // Binding resolution happens inside the task so a bad
            // scenario name fails *its* future, not the caller.
            const AnalysisSession session =
                sessionFor(request.scenario);
            return runSpec(session, request.spec);
        });
    std::future<AnalysisResult> future = task->get_future();
    pool_.post([task] { (*task)(); });
    return future;
}

void
AnalysisEngine::runStream(
    const std::vector<AnalysisRequest> &requests,
    const StreamCallback &on_complete)
{
    if (requests.empty())
        return;

    // Shared by every task; runStream outlives them all (it
    // blocks on `remaining`), so the callback reference stays
    // valid for the tasks' whole lifetime.
    struct StreamState
    {
        std::mutex mutex;
        std::condition_variable drained;
        std::size_t remaining;
    };
    auto state = std::make_shared<StreamState>();
    state->remaining = requests.size();

    for (std::size_t i = 0; i < requests.size(); ++i) {
        pool_.post([this, state, &on_complete, i,
                    request = requests[i]] {
            RequestOutcome outcome;
            outcome.request = request;
            try {
                const AnalysisSession session =
                    sessionFor(request.scenario);
                outcome.result = runSpec(session, request.spec);
            } catch (const std::exception &e) {
                outcome.error = e.what();
            } catch (...) {
                outcome.error = "unknown error";
            }
            // Deliver under the state lock: events are serialized
            // and the decrement happens only after the callback
            // returned, so runStream cannot unblock mid-delivery.
            std::lock_guard<std::mutex> lock(state->mutex);
            on_complete(i, outcome);
            if (--state->remaining == 0)
                state->drained.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(state->mutex);
    state->drained.wait(
        lock, [&state] { return state->remaining == 0; });
}

BatchReport
AnalysisEngine::runBatch(
    const std::vector<AnalysisRequest> &requests)
{
    BatchReport report;
    report.outcomes.resize(requests.size());
    runStream(requests,
              [&report](std::size_t index,
                        const RequestOutcome &outcome) {
                  report.outcomes[index] = outcome;
              });
    return report;
}

std::size_t
AnalysisEngine::contextCount() const
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    return sessions_.size();
}

} // namespace ecochip
