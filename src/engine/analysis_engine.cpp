#include "engine/analysis_engine.h"

#include <exception>
#include <memory>
#include <utility>

#include "support/error.h"

namespace ecochip {

std::size_t
BatchReport::succeeded() const
{
    std::size_t count = 0;
    for (const auto &outcome : outcomes)
        count += outcome.ok() ? 1 : 0;
    return count;
}

std::size_t
BatchReport::failed() const
{
    return outcomes.size() - succeeded();
}

namespace {

EngineOptions
optionsWithThreads(int threads)
{
    EngineOptions options;
    options.threads = threads;
    return options;
}

} // namespace

AnalysisEngine::AnalysisEngine(EngineOptions options)
    : options_(std::move(options)), pool_(options_.threads)
{}

AnalysisEngine::AnalysisEngine(int threads)
    : AnalysisEngine(optionsWithThreads(threads))
{}

AnalysisSession
AnalysisEngine::sessionFor(const ScenarioRef &ref)
{
    const std::string key = ref.label();

    std::promise<AnalysisSession> promise;
    std::shared_future<AnalysisSession> future;
    bool building = false;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        const auto it = sessions_.find(key);
        if (it != sessions_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            sessions_.emplace(key, future);
            building = true;
        }
    }

    if (building) {
        try {
            ScenarioBuilder builder;
            builder.tech(options_.tech);
            if (ref.kind == ScenarioRef::Kind::Registry)
                builder.registry(options_.registry)
                    .scenario(ref.value);
            else
                builder.designDirectory(ref.value);
            promise.set_value(builder.build());
        } catch (...) {
            // Hand the error to everyone already waiting, then
            // forget the entry so a later request retries (the
            // failure may be transient, e.g. a design directory
            // that appears later).
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            sessions_.erase(key);
        }
    }

    return future.get();
}

std::future<AnalysisResult>
AnalysisEngine::submit(AnalysisRequest request)
{
    auto task = std::make_shared<
        std::packaged_task<AnalysisResult()>>(
        [this, request = std::move(request)] {
            // Binding resolution happens inside the task so a bad
            // scenario name fails *its* future, not the caller.
            const AnalysisSession session =
                sessionFor(request.scenario);
            return runSpec(session, request.spec);
        });
    std::future<AnalysisResult> future = task->get_future();
    pool_.post([task] { (*task)(); });
    return future;
}

BatchReport
AnalysisEngine::runBatch(
    const std::vector<AnalysisRequest> &requests)
{
    std::vector<std::future<AnalysisResult>> futures;
    futures.reserve(requests.size());
    for (const auto &request : requests)
        futures.push_back(submit(request));

    BatchReport report;
    report.outcomes.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        RequestOutcome outcome;
        outcome.request = requests[i];
        try {
            outcome.result = futures[i].get();
        } catch (const std::exception &e) {
            outcome.error = e.what();
        }
        report.outcomes.push_back(std::move(outcome));
    }
    return report;
}

std::size_t
AnalysisEngine::contextCount() const
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    return sessions_.size();
}

} // namespace ecochip
