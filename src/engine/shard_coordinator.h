/**
 * @file
 * Multi-host coordination of a sharded request batch.
 *
 * `engine/shard_runner.h` runs shards as worker processes on one
 * machine; this module is the layer above it: a coordinator that
 * takes the same `planShards` output and dispatches each shard
 * through a pluggable `ShardTransport` onto the hosts of a
 * `hosts.json` manifest (`io/host_manifest_io.h`):
 *
 *  - `LocalProcessTransport` wraps the fork(/exec) worker path,
 *    so `runShardedBatch` is now a thin wrapper over the
 *    coordinator with a one-host manifest.
 *  - `CommandTransport` runs a user-supplied command template
 *    (e.g. `ssh {host} eco_chip --shard_worker {sub_batch} ...`)
 *    through `/bin/sh -c`. The sub-batch and report files are
 *    staged in the run's shard directory, which must be visible
 *    to the remote host (shared filesystem) -- see
 *    `docs/distributed.md`.
 *  - `TestTransport` injects faults (failed or hanging
 *    dispatches) and records the dispatch history, for tests.
 *
 * Two schedulers share those transports, both single-threaded
 * event loops (so the fork-only library mode stays safe to
 * use):
 *
 *  - `runCoordinatedBatch` executes a *static* plan: one shard
 *    per manifest slot, dealt up front, merged from the
 *    per-shard report files once every shard finished.
 *  - `runDynamicCoordinatedBatch` (the `--coordinate` CLI path)
 *    executes a *pull queue*: the batch splits into many more
 *    binding-cohesive chunks than slots (`engine/work_queue.h`),
 *    each free slot pulls the next chunk, workers stream
 *    outcomes back as NDJSON events the coordinator tails and
 *    merges incrementally, every first-delivered outcome is
 *    journaled for `--resume`, and `--progress` /
 *    early-abort policies consume the live stream.
 *
 * Both detect stragglers against a configurable deadline,
 * cancel and re-dispatch them -- bounded by
 * `CoordinatorOptions::retries` -- preferring hosts the work
 * has not failed on yet, and both keep the merged `BatchReport`
 * byte-identical to the single-process `--batch` run no matter
 * how many hosts, failures, or re-dispatches were involved
 * (locked by `tests/test_engine.cpp` and the
 * `coordinate_equivalence` / `coordinate_resume` CTests).
 *
 * CLI: `eco_chip --coordinate FILE --hosts HOSTS.json`
 * (`docs/cli.md`); operator guide: `docs/distributed.md`.
 */

#ifndef ECOCHIP_ENGINE_SHARD_COORDINATOR_H
#define ECOCHIP_ENGINE_SHARD_COORDINATOR_H

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/host_manifest_io.h"
#include "json/json.h"

namespace ecochip {

/** One attempt to run one shard on one host. */
struct ShardDispatch
{
    /** Shard index within the plan. */
    std::size_t shard = 0;

    /** 0-based attempt number for this shard. */
    std::size_t attempt = 0;

    /** Manifest name of the host this dispatch targets. */
    std::string host;

    /** Sub-batch file the worker must run. */
    std::string subBatchPath;

    /** Where the worker must leave its `BatchReport` JSON. */
    std::string reportPath;

    /**
     * Where the worker streams its NDJSON outcome events
     * (`eventsPathFor(reportPath)` by convention -- see
     * `io/event_journal_io.h`). The dynamic coordinator tails
     * this file to merge outcomes while the dispatch is still
     * running; the static coordinator ignores it.
     */
    std::string eventsPath;

    /** Engine threads the worker should run with. */
    int engineThreads = 1;

    /** Extra scenario catalog (may be empty). */
    std::string scenariosPath;

    /** Worker executable for transports that exec one (empty in
     *  the fork-only library mode). */
    std::string workerExe;
};

/**
 * How a dispatch reaches a host. One transport instance serves
 * one manifest host; a shard has at most one live dispatch at a
 * time, so the shard index keys `poll`/`cancel`.
 *
 * The exit-code contract matches the shard-worker convention:
 * 0 = every request ok, 1 = some requests failed (the report is
 * written either way); anything else means the dispatch died
 * without a usable report and the coordinator will retry it.
 */
class ShardTransport
{
  public:
    virtual ~ShardTransport() = default;

    /** Launch @p dispatch; must not block on its completion. */
    virtual void start(const ShardDispatch &dispatch) = 0;

    /**
     * Exit code of @p shard's live dispatch once it finished,
     * `std::nullopt` while it is still running.
     */
    virtual std::optional<int> poll(std::size_t shard) = 0;

    /** Abandon @p shard's live dispatch (straggler cancelled by
     *  the deadline), reaping any resources it held. */
    virtual void cancel(std::size_t shard) = 0;

    /** Transport name for logs and dispatch records. */
    virtual std::string name() const = 0;
};

/**
 * Runs a dispatch as a worker process on the coordinating
 * machine: fork/exec of `ShardDispatch::workerExe` when set
 * (`<exe> --shard_worker <sub_batch> --json <report> ...`), else
 * plain fork with `runShardWorker` in the child -- the
 * library/test/bench path. POSIX only; `start` throws elsewhere.
 */
class LocalProcessTransport : public ShardTransport
{
  public:
    void start(const ShardDispatch &dispatch) override;
    std::optional<int> poll(std::size_t shard) override;
    void cancel(std::size_t shard) override;
    std::string name() const override { return "local"; }

  private:
    /** Live child pid per shard. */
    std::map<std::size_t, long> pids_;
};

/**
 * Runs a dispatch through the host's command template: the
 * `{...}` placeholders are expanded
 * (`io/host_manifest_io.h`) and the line runs under
 * `/bin/sh -c`. The command's exit code is the dispatch's exit
 * code, so remote invocations should propagate the worker's
 * (ssh does). POSIX only; `start` throws elsewhere.
 */
class CommandTransport : public ShardTransport
{
  public:
    /** @param host Manifest entry; `host.command` must be a
     *  validated template. */
    explicit CommandTransport(HostSpec host);

    void start(const ShardDispatch &dispatch) override;
    std::optional<int> poll(std::size_t shard) override;
    void cancel(std::size_t shard) override;
    std::string name() const override { return "command"; }

    /** The expanded command line @p dispatch would run. */
    std::string commandFor(const ShardDispatch &dispatch) const;

  private:
    HostSpec host_;
    std::map<std::size_t, long> pids_;
};

/**
 * One scheduled fault of a `TestTransport`: what the nth
 * dispatch of a shard/chunk does instead of (or around) running
 * the worker.
 */
struct TransportFault
{
    enum class Kind
    {
        /** Never completes; polls nullopt until cancelled. */
        Hang,
        /** Reports `exitCode` without writing report/events. */
        Fail,
        /** Runs the worker, but completion is delayed by
         *  `delaySeconds` (a slow host / straggler). */
        Slow,
        /** Kill-mid-stream: the worker's first `eventLines`
         *  event lines reach the events file, no report is
         *  written, and the dispatch reports exit 137 -- a
         *  worker SIGKILLed partway through its chunk. */
        KillMidStream,
    };

    Kind kind = Kind::Fail;

    /** Exit code a `Fail` dispatch reports. */
    int exitCode = 134;

    /** Completion delay of a `Slow` dispatch, seconds. */
    double delaySeconds = 0.0;

    /** Event lines a `KillMidStream` dispatch delivers before
     *  dying. */
    std::size_t eventLines = 0;
};

/**
 * Fault-injecting transport for tests: runs dispatches
 * in-process through `runShardWorker` (no fork). Each
 * shard/chunk has a fault schedule: its nth dispatch consumes
 * the nth scheduled `TransportFault` (in injection order);
 * dispatches beyond the schedule run healthy. Every dispatch
 * (including injected ones) is recorded in `history()` -- the
 * dispatch-order trace the fault-matrix tests assert against.
 */
class TestTransport : public ShardTransport
{
  public:
    /** Append @p fault to @p shard's schedule. */
    void injectFault(std::size_t shard, TransportFault fault);

    /** Append @p count hangs to @p shard's schedule: each hangs
     *  until the coordinator cancels it. */
    void injectHangs(std::size_t shard, std::size_t count);

    /** Append @p count failures to @p shard's schedule: each
     *  fails (exit 134) without writing a report. */
    void injectFailures(std::size_t shard, std::size_t count);

    /**
     * Delay every healthy completion on this transport by
     * @p seconds plus @p per_request_seconds per sub-batch
     * request -- an uneven-speed host whose throughput, not just
     * latency, lags the rest of the fleet.
     */
    void setSpeed(double seconds, double per_request_seconds);

    void start(const ShardDispatch &dispatch) override;
    std::optional<int> poll(std::size_t shard) override;
    void cancel(std::size_t shard) override;
    std::string name() const override { return "test"; }

    /** Every dispatch started, in start order. */
    const std::vector<ShardDispatch> &history() const
    {
        return history_;
    }

    /** Dispatches the coordinator cancelled. */
    std::size_t cancelled() const { return cancelled_; }

  private:
    struct LiveDispatch
    {
        ShardDispatch dispatch;

        /** Hung dispatches poll nullopt until cancelled. */
        bool hung = false;

        /** Exit code decided at start (injected failures);
         *  unset = run the worker at the first ripe poll. */
        std::optional<int> exitCode;

        /** Worker runs at the first poll past this point. */
        std::chrono::steady_clock::time_point readyAt;

        /** Kill-mid-stream: deliver only this many event
         *  lines, no report. */
        std::optional<std::size_t> truncateEvents;
    };

    std::map<std::size_t, std::deque<TransportFault>> schedule_;
    std::map<std::size_t, std::size_t> dispatches_;
    std::map<std::size_t, LiveDispatch> live_;
    std::vector<ShardDispatch> history_;
    std::size_t cancelled_ = 0;
    double delaySeconds_ = 0.0;
    double perRequestDelaySeconds_ = 0.0;
};

/**
 * A progress snapshot of a dynamic coordinated run, delivered
 * through `CoordinatorOptions::onProgress` (the `--progress`
 * consumer).
 */
struct CoordinatorProgress
{
    /** Per-host counters, manifest order. */
    struct Host
    {
        std::string name;
        std::size_t inFlightChunks = 0;
        std::size_t doneChunks = 0;
        std::size_t doneRequests = 0;
    };
    std::vector<Host> hosts;

    std::size_t chunksTotal = 0;
    std::size_t chunksDone = 0;
    std::size_t chunksInFlight = 0;

    std::size_t requestsTotal = 0;

    /** Outcomes merged so far, journal-replayed ones included. */
    std::size_t requestsDone = 0;
    std::size_t requestsFailed = 0;

    /** Outcomes replayed from the journal before dispatching. */
    std::size_t resumedOutcomes = 0;

    /** Seconds since the run started. */
    double elapsedSeconds = 0.0;

    /** Freshly-delivered outcomes per second (resumed outcomes
     *  excluded). */
    double requestsPerSecond = 0.0;

    /** True once the early-abort policy stopped dispatching. */
    bool aborted = false;
};

/** How `runCoordinatedBatch` schedules a batch onto hosts. */
struct CoordinatorOptions
{
    /** Batch file to shard and dispatch. */
    std::string batchPath;

    /** Host manifest; `totalSlots()` is the shard-count request
     *  (capped, as always, at the number of distinct scenario
     *  bindings). */
    HostManifest hosts;

    /** Re-dispatches allowed per shard (>= 0): a shard may run
     *  `retries + 1` times before the run fails. */
    int retries = 2;

    /**
     * Straggler deadline in seconds: a dispatch running longer
     * is cancelled and re-dispatched (it costs one retry).
     * 0 disables the deadline.
     */
    double shardTimeoutSeconds = 0.0;

    /** Engine threads per worker; 0 sizes automatically
     *  (hardware threads / planned shard count, at least 1). */
    int engineThreadsPerWorker = 0;

    /**
     * Directory for sub-batch and report files. Empty: a
     * pid-scoped temp directory, removed after the run.
     * Non-empty: created if needed and left in place. Command
     * transports stage files here, so for remote hosts it must
     * be on a shared filesystem.
     */
    std::string shardDir;

    /** Worker executable for transports that exec or name one
     *  (`{worker}`); empty = fork-only local workers. */
    std::string workerExe;

    /** Extra scenario catalog passed through to every worker. */
    std::string scenariosPath;

    /**
     * Transport factory override (tests): called once per
     * manifest host. Unset: local hosts get
     * `LocalProcessTransport`, command hosts get
     * `CommandTransport`.
     */
    std::function<std::shared_ptr<ShardTransport>(
        const HostSpec &)>
        transportFactory;

    // ---- dynamic scheduling (runDynamicCoordinatedBatch) ----

    /**
     * Target requests per work chunk (`--chunk_size`). 0 sizes
     * automatically: about three chunks per manifest slot, so
     * fast hosts keep pulling while a straggler grinds. Chunks
     * stay binding-cohesive either way (`planChunks`).
     */
    int chunkTargetRequests = 0;

    /**
     * Resume from the shard directory's outcome journal
     * (`--resume`): journaled outcomes are replayed (never
     * re-run) and chunks are planned over the remainder.
     * Requires a non-temporary `shardDir`.
     */
    bool resume = false;

    /**
     * Early-abort policy (`--abort_after_failures`): once this
     * many requests have *failed* (not merely slow), stop
     * dispatching, cancel the undispatched chunks, and let the
     * in-flight ones drain. Unrun requests get synthetic
     * `"aborted"` failure outcomes in the merged report but are
     * not journaled, so a later `--resume` can still finish the
     * batch. 0 disables the policy.
     */
    std::size_t abortAfterFailedRequests = 0;

    /**
     * Progress consumer: invoked from the scheduling loop with
     * throttled snapshots (plus one final snapshot). Must not
     * throw.
     */
    std::function<void(const CoordinatorProgress &)> onProgress;
};

/** One row of a coordinated run's dispatch history. */
struct ShardAttempt
{
    std::size_t shard = 0;
    std::size_t attempt = 0;
    std::string host;

    /** True when the dispatch produced a usable report. */
    bool ok = false;

    /** "ok", "requests failed", or the failure description
     *  ("died with exit code ...", "missed the ... deadline"). */
    std::string reason;
};

/** What a coordinated run produced. */
struct CoordinatedRunResult
{
    /** Merged `BatchReport` document, original request order --
     *  byte-identical to the single-process `--batch` run. */
    json::Value mergedReport;

    /** The same report as canonical compact text -- exactly
     *  `mergedReport.dump(false)`, produced on the scan-and-splice
     *  merge path without a DOM. Consumers that only re-serialize
     *  (`--json` output) should use this. */
    std::string mergedReportText;

    /** Shards actually planned (<= manifest slots). */
    std::size_t shardsUsed = 0;

    /** Engine threads each worker ran with. */
    int threadsPerWorker = 0;

    /** Requests that succeeded / failed across all shards. */
    std::size_t succeeded = 0;
    std::size_t failed = 0;

    /** Shard dispatches that were retried (failures +
     *  cancelled stragglers). */
    std::size_t redispatches = 0;

    /** Every dispatch, in completion-handling order. */
    std::vector<ShardAttempt> attempts;

    /** Sub-batch files, in shard order (empty when the scratch
     *  directory was temporary and has been removed). */
    std::vector<std::string> shardFiles;

    /** Per-shard report files (ditto). */
    std::vector<std::string> reportFiles;

    // ---- dynamic-run extras (runDynamicCoordinatedBatch) ----

    /** Work chunks planned (dynamic runs; 0 when the journal
     *  already answered every request). */
    std::size_t chunksPlanned = 0;

    /** Outcomes replayed from the journal (`resume`). */
    std::size_t resumedOutcomes = 0;

    /** True when the early-abort policy cut the run short. */
    bool aborted = false;

    /** Outcome journal path (empty when the scratch directory
     *  was temporary and has been removed). */
    std::string journalPath;

    /** True when every request of every shard succeeded. */
    bool allOk() const { return failed == 0; }
};

/**
 * Shard @p options.batchPath across the manifest's hosts and
 * merge the reports.
 *
 * @throws ConfigError on invalid options or malformed files.
 * @throws Error when a shard exhausts its retries without
 *         producing a usable report -- a worker that merely had
 *         failing requests exits 1 and is reported through the
 *         merged outcomes instead.
 */
CoordinatedRunResult
runCoordinatedBatch(const CoordinatorOptions &options);

/**
 * Dynamically schedule @p options.batchPath across the
 * manifest's hosts: free slots *pull* binding-cohesive work
 * chunks (`engine/work_queue.h`) from a shared queue, workers
 * stream outcomes back as NDJSON events, and the merge happens
 * incrementally as events arrive -- so a slow host only ever
 * delays the chunks it actually holds. Every first-delivered
 * outcome is journaled (`journal.ndjson` in the shard
 * directory); `options.resume` replays the journal so a killed
 * coordination continues without re-running finished requests.
 *
 * The merged report stays byte-identical to the single-process
 * `--batch` run at any host count, chunk size, failure pattern,
 * or resume point -- unless the early-abort policy fires, in
 * which case the never-dispatched requests carry synthetic
 * `"aborted"` failure outcomes instead.
 *
 * Failure semantics (retries, host exclusion, straggler
 * deadline, exit-code contract) match `runCoordinatedBatch`,
 * applied per chunk; outcomes a failed attempt already streamed
 * are kept, and the retry's duplicates are ignored.
 *
 * @throws ConfigError on invalid options, malformed files, or a
 *         journal that does not match the batch.
 * @throws Error when a chunk exhausts its retries.
 */
CoordinatedRunResult
runDynamicCoordinatedBatch(const CoordinatorOptions &options);

} // namespace ecochip

#endif // ECOCHIP_ENGINE_SHARD_COORDINATOR_H
