/**
 * @file
 * Multi-host coordination of a sharded request batch.
 *
 * `engine/shard_runner.h` runs shards as worker processes on one
 * machine; this module is the layer above it: a coordinator that
 * takes the same `planShards` output and dispatches each shard
 * through a pluggable `ShardTransport` onto the hosts of a
 * `hosts.json` manifest (`io/host_manifest_io.h`):
 *
 *  - `LocalProcessTransport` wraps the fork(/exec) worker path,
 *    so `runShardedBatch` is now a thin wrapper over the
 *    coordinator with a one-host manifest.
 *  - `CommandTransport` runs a user-supplied command template
 *    (e.g. `ssh {host} eco_chip --shard_worker {sub_batch} ...`)
 *    through `/bin/sh -c`. The sub-batch and report files are
 *    staged in the run's shard directory, which must be visible
 *    to the remote host (shared filesystem) -- see
 *    `docs/distributed.md`.
 *  - `TestTransport` injects faults (failed or hanging
 *    dispatches) and records the dispatch history, for tests.
 *
 * The scheduler is a single-threaded event loop (so the
 * fork-only library mode stays safe to use): shards are dealt
 * onto free host slots in manifest order, stragglers are
 * detected against a configurable per-shard deadline and
 * cancelled, and a failed or timed-out shard is re-dispatched --
 * bounded by `CoordinatorOptions::retries` -- preferring hosts
 * it has not failed on yet. The per-shard reports merge through
 * `mergeShardReports`, so the coordinated `BatchReport` stays
 * byte-identical to the single-process `--batch` run no matter
 * how many hosts, failures, or re-dispatches were involved
 * (locked by `tests/test_engine.cpp` and the
 * `coordinate_equivalence` CTest).
 *
 * CLI: `eco_chip --coordinate FILE --hosts HOSTS.json`
 * (`docs/cli.md`); operator guide: `docs/distributed.md`.
 */

#ifndef ECOCHIP_ENGINE_SHARD_COORDINATOR_H
#define ECOCHIP_ENGINE_SHARD_COORDINATOR_H

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/host_manifest_io.h"
#include "json/json.h"

namespace ecochip {

/** One attempt to run one shard on one host. */
struct ShardDispatch
{
    /** Shard index within the plan. */
    std::size_t shard = 0;

    /** 0-based attempt number for this shard. */
    std::size_t attempt = 0;

    /** Manifest name of the host this dispatch targets. */
    std::string host;

    /** Sub-batch file the worker must run. */
    std::string subBatchPath;

    /** Where the worker must leave its `BatchReport` JSON. */
    std::string reportPath;

    /** Engine threads the worker should run with. */
    int engineThreads = 1;

    /** Extra scenario catalog (may be empty). */
    std::string scenariosPath;

    /** Worker executable for transports that exec one (empty in
     *  the fork-only library mode). */
    std::string workerExe;
};

/**
 * How a dispatch reaches a host. One transport instance serves
 * one manifest host; a shard has at most one live dispatch at a
 * time, so the shard index keys `poll`/`cancel`.
 *
 * The exit-code contract matches the shard-worker convention:
 * 0 = every request ok, 1 = some requests failed (the report is
 * written either way); anything else means the dispatch died
 * without a usable report and the coordinator will retry it.
 */
class ShardTransport
{
  public:
    virtual ~ShardTransport() = default;

    /** Launch @p dispatch; must not block on its completion. */
    virtual void start(const ShardDispatch &dispatch) = 0;

    /**
     * Exit code of @p shard's live dispatch once it finished,
     * `std::nullopt` while it is still running.
     */
    virtual std::optional<int> poll(std::size_t shard) = 0;

    /** Abandon @p shard's live dispatch (straggler cancelled by
     *  the deadline), reaping any resources it held. */
    virtual void cancel(std::size_t shard) = 0;

    /** Transport name for logs and dispatch records. */
    virtual std::string name() const = 0;
};

/**
 * Runs a dispatch as a worker process on the coordinating
 * machine: fork/exec of `ShardDispatch::workerExe` when set
 * (`<exe> --shard_worker <sub_batch> --json <report> ...`), else
 * plain fork with `runShardWorker` in the child -- the
 * library/test/bench path. POSIX only; `start` throws elsewhere.
 */
class LocalProcessTransport : public ShardTransport
{
  public:
    void start(const ShardDispatch &dispatch) override;
    std::optional<int> poll(std::size_t shard) override;
    void cancel(std::size_t shard) override;
    std::string name() const override { return "local"; }

  private:
    /** Live child pid per shard. */
    std::map<std::size_t, long> pids_;
};

/**
 * Runs a dispatch through the host's command template: the
 * `{...}` placeholders are expanded
 * (`io/host_manifest_io.h`) and the line runs under
 * `/bin/sh -c`. The command's exit code is the dispatch's exit
 * code, so remote invocations should propagate the worker's
 * (ssh does). POSIX only; `start` throws elsewhere.
 */
class CommandTransport : public ShardTransport
{
  public:
    /** @param host Manifest entry; `host.command` must be a
     *  validated template. */
    explicit CommandTransport(HostSpec host);

    void start(const ShardDispatch &dispatch) override;
    std::optional<int> poll(std::size_t shard) override;
    void cancel(std::size_t shard) override;
    std::string name() const override { return "command"; }

    /** The expanded command line @p dispatch would run. */
    std::string commandFor(const ShardDispatch &dispatch) const;

  private:
    HostSpec host_;
    std::map<std::size_t, long> pids_;
};

/**
 * Fault-injecting transport for tests: runs dispatches
 * in-process through `runShardWorker` (no fork), except that
 * each shard's first `injectHangs` dispatches hang until
 * cancelled and its next `injectFailures` dispatches report exit
 * code 134 without writing a report. Every dispatch (including
 * injected ones) is recorded in `history()`.
 */
class TestTransport : public ShardTransport
{
  public:
    /** The first @p count dispatches of @p shard hang until the
     *  coordinator cancels them. */
    void injectHangs(std::size_t shard, std::size_t count);

    /** The next @p count dispatches of @p shard (after any
     *  injected hangs) fail without writing a report. */
    void injectFailures(std::size_t shard, std::size_t count);

    void start(const ShardDispatch &dispatch) override;
    std::optional<int> poll(std::size_t shard) override;
    void cancel(std::size_t shard) override;
    std::string name() const override { return "test"; }

    /** Every dispatch started, in start order. */
    const std::vector<ShardDispatch> &history() const
    {
        return history_;
    }

    /** Dispatches the coordinator cancelled. */
    std::size_t cancelled() const { return cancelled_; }

  private:
    std::map<std::size_t, std::size_t> hangs_;
    std::map<std::size_t, std::size_t> failures_;
    std::map<std::size_t, std::size_t> dispatches_;
    /** Live dispatch state: value = exit code, nullopt = hung. */
    std::map<std::size_t, std::optional<int>> state_;
    std::vector<ShardDispatch> history_;
    std::size_t cancelled_ = 0;
};

/** How `runCoordinatedBatch` schedules a batch onto hosts. */
struct CoordinatorOptions
{
    /** Batch file to shard and dispatch. */
    std::string batchPath;

    /** Host manifest; `totalSlots()` is the shard-count request
     *  (capped, as always, at the number of distinct scenario
     *  bindings). */
    HostManifest hosts;

    /** Re-dispatches allowed per shard (>= 0): a shard may run
     *  `retries + 1` times before the run fails. */
    int retries = 2;

    /**
     * Straggler deadline in seconds: a dispatch running longer
     * is cancelled and re-dispatched (it costs one retry).
     * 0 disables the deadline.
     */
    double shardTimeoutSeconds = 0.0;

    /** Engine threads per worker; 0 sizes automatically
     *  (hardware threads / planned shard count, at least 1). */
    int engineThreadsPerWorker = 0;

    /**
     * Directory for sub-batch and report files. Empty: a
     * pid-scoped temp directory, removed after the run.
     * Non-empty: created if needed and left in place. Command
     * transports stage files here, so for remote hosts it must
     * be on a shared filesystem.
     */
    std::string shardDir;

    /** Worker executable for transports that exec or name one
     *  (`{worker}`); empty = fork-only local workers. */
    std::string workerExe;

    /** Extra scenario catalog passed through to every worker. */
    std::string scenariosPath;

    /**
     * Transport factory override (tests): called once per
     * manifest host. Unset: local hosts get
     * `LocalProcessTransport`, command hosts get
     * `CommandTransport`.
     */
    std::function<std::shared_ptr<ShardTransport>(
        const HostSpec &)>
        transportFactory;
};

/** One row of a coordinated run's dispatch history. */
struct ShardAttempt
{
    std::size_t shard = 0;
    std::size_t attempt = 0;
    std::string host;

    /** True when the dispatch produced a usable report. */
    bool ok = false;

    /** "ok", "requests failed", or the failure description
     *  ("died with exit code ...", "missed the ... deadline"). */
    std::string reason;
};

/** What a coordinated run produced. */
struct CoordinatedRunResult
{
    /** Merged `BatchReport` document, original request order --
     *  byte-identical to the single-process `--batch` run. */
    json::Value mergedReport;

    /** Shards actually planned (<= manifest slots). */
    std::size_t shardsUsed = 0;

    /** Engine threads each worker ran with. */
    int threadsPerWorker = 0;

    /** Requests that succeeded / failed across all shards. */
    std::size_t succeeded = 0;
    std::size_t failed = 0;

    /** Shard dispatches that were retried (failures +
     *  cancelled stragglers). */
    std::size_t redispatches = 0;

    /** Every dispatch, in completion-handling order. */
    std::vector<ShardAttempt> attempts;

    /** Sub-batch files, in shard order (empty when the scratch
     *  directory was temporary and has been removed). */
    std::vector<std::string> shardFiles;

    /** Per-shard report files (ditto). */
    std::vector<std::string> reportFiles;

    /** True when every request of every shard succeeded. */
    bool allOk() const { return failed == 0; }
};

/**
 * Shard @p options.batchPath across the manifest's hosts and
 * merge the reports.
 *
 * @throws ConfigError on invalid options or malformed files.
 * @throws Error when a shard exhausts its retries without
 *         producing a usable report -- a worker that merely had
 *         failing requests exits 1 and is reported through the
 *         merged outcomes instead.
 */
CoordinatedRunResult
runCoordinatedBatch(const CoordinatorOptions &options);

} // namespace ecochip

#endif // ECOCHIP_ENGINE_SHARD_COORDINATOR_H
