#include "engine/shard_runner.h"

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "engine/analysis_engine.h"
#include "engine/shard_planner.h"
#include "io/batch_report_io.h"
#include "io/request_io.h"
#include "support/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define ECOCHIP_HAS_FORK 1
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define ECOCHIP_HAS_FORK 0
#endif

namespace ecochip {

int
runShardWorker(const std::string &sub_batch_path,
               const std::string &report_path,
               int engine_threads,
               const std::string &scenarios_path)
{
    const BatchFile batch = loadBatchFile(sub_batch_path);

    ScenarioRegistry registry = ScenarioRegistry::builtin();
    if (!scenarios_path.empty())
        registry.loadFile(scenarios_path);
    if (batch.scenarioCatalog)
        registry.loadFile(*batch.scenarioCatalog);

    EngineOptions options;
    options.threads = engine_threads;
    options.registry = std::move(registry);
    AnalysisEngine engine(std::move(options));

    const BatchReport report = engine.runBatch(batch.requests);
    writeBatchReportFile(report, report_path);
    return report.allOk() ? 0 : 1;
}

#if ECOCHIP_HAS_FORK

namespace {

/**
 * Fork one child per shard -- exec'ing @p argvs[i] when exec mode
 * is on, else running @p in_child(i) -- and wait for them all.
 * Returns each child's exit code; a signal-terminated child
 * reports 128 + signo, an un-waitable one -1.
 */
std::vector<int>
runWorkerProcesses(
    std::size_t count,
    const std::vector<std::vector<std::string>> &argvs,
    const std::function<int(std::size_t)> &in_child)
{
    std::vector<pid_t> pids(count, -1);
    for (std::size_t i = 0; i < count; ++i) {
        const pid_t pid = fork();
        if (pid < 0) {
            // Reap what was already spawned before failing, or
            // the children race the caller's scratch-dir cleanup
            // and linger as zombies.
            for (std::size_t j = 0; j < i; ++j) {
                kill(pids[j], SIGKILL);
                int status = 0;
                waitpid(pids[j], &status, 0);
            }
            throw ModelError("fork() failed spawning shard "
                             "worker #" + std::to_string(i));
        }
        if (pid == 0) {
            // Child. _exit (not exit) everywhere: the child must
            // not flush stdio buffers or run atexit handlers
            // inherited from the parent.
            if (!argvs.empty()) {
                std::vector<char *> argv;
                for (const auto &arg : argvs[i])
                    argv.push_back(
                        const_cast<char *>(arg.c_str()));
                argv.push_back(nullptr);
                // execvp: the worker path may be a bare argv[0]
                // fallback that needs the PATH search.
                execvp(argv[0], argv.data());
                _exit(127); // exec failed
            }
            int code = 125;
            try {
                code = in_child(i);
            } catch (...) {
                code = 125;
            }
            _exit(code);
        }
        pids[i] = pid;
    }

    std::vector<int> codes(count, -1);
    for (std::size_t i = 0; i < count; ++i) {
        int status = 0;
        pid_t waited;
        do {
            waited = waitpid(pids[i], &status, 0);
        } while (waited < 0 && errno == EINTR);
        if (waited != pids[i])
            continue; // leaves -1: unaccountable child
        if (WIFEXITED(status))
            codes[i] = WEXITSTATUS(status);
        else if (WIFSIGNALED(status))
            codes[i] = 128 + WTERMSIG(status);
    }
    return codes;
}

} // namespace

#endif // ECOCHIP_HAS_FORK

ShardedRunResult
runShardedBatch(const ShardedRunOptions &options)
{
#if !ECOCHIP_HAS_FORK
    (void)options;
    throw ConfigError(
        "multi-process sharding requires a POSIX platform "
        "(fork/exec); run the batch with AnalysisEngine::runBatch "
        "instead");
#else
    requireConfig(options.shards >= 1,
                  "--shards must be at least 1");
    requireConfig(options.engineThreadsPerWorker >= 0,
                  "engine threads per worker must be >= 1 "
                  "(or 0 for automatic)");

    const BatchFile batch = loadBatchFile(options.batchPath);
    const ShardPlan plan =
        planShards(batch.requests, options.shards);

    // Auto thread sizing divides the machine between the shards
    // *actually planned* -- a batch with fewer bindings than
    // requested shards runs fewer, wider workers.
    const int worker_threads =
        options.engineThreadsPerWorker > 0
            ? options.engineThreadsPerWorker
            : std::max(1,
                       Parallelism::hardware().threads /
                           static_cast<int>(plan.shardCount()));

    // Scratch directory for sub-batches and reports.
    const bool temporary = options.shardDir.empty();
    const std::string dir =
        temporary
            ? (std::filesystem::temp_directory_path() /
               ("ecochip_shards_" + std::to_string(getpid())))
                  .string()
            : options.shardDir;

    ShardedRunResult result;
    try {
        result.shardFiles = writeShardFiles(batch, plan, dir);
        result.shardsUsed = plan.shardCount();
        result.threadsPerWorker = worker_threads;
        for (const auto &shard_file : result.shardFiles) {
            result.reportFiles.push_back(shard_file + ".report");
            // A reused --shard_dir may hold a report from a
            // previous run; a worker dying pre-report must not
            // let that stale file merge as fresh output.
            std::error_code ec;
            std::filesystem::remove(result.reportFiles.back(),
                                    ec);
        }

        // Assemble exec argvs (exec mode only).
        std::vector<std::vector<std::string>> argvs;
        if (!options.workerExe.empty()) {
            for (std::size_t s = 0; s < plan.shardCount(); ++s) {
                std::vector<std::string> argv = {
                    options.workerExe,
                    "--shard_worker",
                    result.shardFiles[s],
                    "--json",
                    result.reportFiles[s],
                    "--engine_threads",
                    std::to_string(worker_threads),
                };
                if (!options.scenariosPath.empty()) {
                    argv.push_back("--scenarios");
                    argv.push_back(options.scenariosPath);
                }
                argvs.push_back(std::move(argv));
            }
        }

        const std::vector<int> codes = runWorkerProcesses(
            plan.shardCount(), argvs, [&](std::size_t s) {
                return runShardWorker(
                    result.shardFiles[s],
                    result.reportFiles[s], worker_threads,
                    options.scenariosPath);
            });

        // Exit convention: 0 = all requests ok, 1 = some failed
        // but the report was written. Anything else means the
        // worker died without a usable report.
        std::vector<json::Value> reports;
        for (std::size_t s = 0; s < codes.size(); ++s) {
            if (codes[s] != 0 && codes[s] != 1)
                throw Error(
                    "shard worker #" + std::to_string(s) +
                    " (" + result.shardFiles[s] +
                    ") died with exit code " +
                    std::to_string(codes[s]) +
                    " before writing its report");
            // A worker that hit a config error (bad catalog,
            // unreadable sub-batch) exits 1 *without* a report;
            // distinguish that from "some requests failed".
            if (!std::filesystem::exists(
                    result.reportFiles[s]))
                throw Error(
                    "shard worker #" + std::to_string(s) +
                    " (exit " + std::to_string(codes[s]) +
                    ") wrote no report at " +
                    result.reportFiles[s] +
                    " -- it likely failed before running its "
                    "sub-batch; see its stderr above");
            reports.push_back(
                json::parseFile(result.reportFiles[s]));
        }

        result.mergedReport = mergeShardReports(plan, reports);
        result.succeeded = static_cast<std::size_t>(
            result.mergedReport.at("succeeded").asInteger());
        result.failed = static_cast<std::size_t>(
            result.mergedReport.at("failed").asInteger());
    } catch (...) {
        if (temporary) {
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
        }
        throw;
    }

    if (temporary) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        result.shardFiles.clear();
        result.reportFiles.clear();
    }
    return result;
#endif
}

} // namespace ecochip
