#include "engine/shard_runner.h"

#include <fstream>
#include <string>
#include <utility>

#include "engine/analysis_engine.h"
#include "engine/shard_coordinator.h"
#include "io/batch_report_io.h"
#include "io/request_io.h"
#include "support/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define ECOCHIP_HAS_FORK 1
#else
#define ECOCHIP_HAS_FORK 0
#endif

namespace ecochip {

int
runShardWorker(const std::string &sub_batch_path,
               const std::string &report_path,
               int engine_threads,
               const std::string &scenarios_path,
               const std::string &events_path)
{
    const BatchFile batch = loadBatchFile(sub_batch_path);

    ScenarioRegistry registry = ScenarioRegistry::builtin();
    if (!scenarios_path.empty())
        registry.loadFile(scenarios_path);
    if (batch.scenarioCatalog)
        registry.loadFile(*batch.scenarioCatalog);

    EngineOptions options;
    options.threads = engine_threads;
    options.registry = std::move(registry);
    AnalysisEngine engine(std::move(options));

    BatchReport report;
    if (events_path.empty()) {
        report = engine.runBatch(batch.requests);
    } else {
        // Stream each outcome the moment it completes, flushed
        // per line so a tailing coordinator only ever reads
        // whole lines; then assemble the report by index --
        // `runBatch` does exactly this internally, so the
        // written report stays bit-identical to the
        // non-streaming path.
        std::ofstream events(events_path,
                             std::ios::out | std::ios::trunc);
        requireConfig(events.good(),
                      "cannot open the worker event stream for "
                      "writing: " +
                          events_path);
        report.outcomes.resize(batch.requests.size());
        engine.runStream(
            batch.requests,
            [&](std::size_t index,
                const RequestOutcome &outcome) {
                events << streamEventLine(index, outcome)
                       << '\n';
                events.flush();
                report.outcomes[index] = outcome;
            });
    }
    writeBatchReportFile(report, report_path);
    return report.allOk() ? 0 : 1;
}

ShardedRunResult
runShardedBatch(const ShardedRunOptions &options)
{
#if !ECOCHIP_HAS_FORK
    (void)options;
    throw ConfigError(
        "multi-process sharding requires a POSIX platform "
        "(fork/exec); run the batch with AnalysisEngine::runBatch "
        "instead");
#else
    requireConfig(options.shards >= 1,
                  "--shards must be at least 1");
    requireConfig(options.engineThreadsPerWorker >= 0,
                  "engine threads per worker must be >= 1 "
                  "(or 0 for automatic)");

    // One synthetic host with --shards slots, no retries, no
    // deadline: the coordinator's scheduling degenerates to
    // exactly the old fork-K-workers-and-wait behavior, and the
    // merge path is shared outright -- so the merged report
    // stays byte-identical to the single-process --batch run.
    CoordinatorOptions coordinate;
    coordinate.batchPath = options.batchPath;
    HostSpec host;
    host.name = "localhost";
    host.slots = options.shards;
    coordinate.hosts.hosts = {std::move(host)};
    coordinate.retries = 0;
    coordinate.shardTimeoutSeconds = 0.0;
    coordinate.engineThreadsPerWorker =
        options.engineThreadsPerWorker;
    coordinate.shardDir = options.shardDir;
    coordinate.workerExe = options.workerExe;
    coordinate.scenariosPath = options.scenariosPath;

    CoordinatedRunResult coordinated =
        runCoordinatedBatch(coordinate);

    ShardedRunResult result;
    result.mergedReport = std::move(coordinated.mergedReport);
    result.mergedReportText =
        std::move(coordinated.mergedReportText);
    result.shardsUsed = coordinated.shardsUsed;
    result.threadsPerWorker = coordinated.threadsPerWorker;
    result.succeeded = coordinated.succeeded;
    result.failed = coordinated.failed;
    result.shardFiles = std::move(coordinated.shardFiles);
    result.reportFiles = std::move(coordinated.reportFiles);
    return result;
#endif
}

} // namespace ecochip
