/**
 * @file
 * Generative scenario spaces: a *generator* catalog entry declares
 * axes over architecture/knob dimensions (tech node, chiplet
 * count, stack count, packaging architecture, operating point) and
 * expands into a cross product of bound scenarios -- lazily, via
 * an odometer iterator, so a million-point space costs nothing
 * until a point is actually instantiated.
 *
 * Every point has a deterministic derived name,
 *
 *     <generator>/<axis>=<value>/<axis>=<value>/...
 *
 * with the axes in declaration order and numeric values spelled
 * exactly as the JSON serializer prints them
 * (`json::formatNumber`), so a point can be named in a
 * `requests.json` batch file, resolved by `ScenarioRegistry`
 * (which recognizes derived names of its loaded generators), and
 * content-addressed by the server's result cache -- one canonical
 * name per point, everywhere.
 *
 * Generators are declared in scenario catalogs
 * (`ScenarioRegistry::loadFile`) next to plain scenarios:
 * @code{.json}
 * {
 *   "generators": [
 *     {"name": "fpga-pca-space",
 *      "description": "FPGA PCA accelerator design space",
 *      "architecture": { ... architecture.json schema ... },
 *      "operational": { ... operationalC.json schema ... },
 *      "axes": [
 *        {"axis": "node_nm", "chiplet": "pe-array",
 *         "values": [5, 7, 10]},
 *        {"axis": "chiplet_count", "chiplet": "pe-array",
 *         "values": [1, 2, 4]},
 *        {"axis": "packaging",
 *         "values": ["rdl_fanout", "silicon_bridge"]}
 *      ]}
 *   ]
 * }
 * @endcode
 *
 * The `src/search/` driver (`search_driver.h`) pumps spaces like
 * these through the batch engine as a search loop; `docs/search.md`
 * documents the axis dimensions field by field.
 */

#ifndef ECOCHIP_SEARCH_SCENARIO_SPACE_H
#define ECOCHIP_SEARCH_SCENARIO_SPACE_H

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/config_loader.h"
#include "json/json.h"
#include "tech/tech_db.h"

namespace ecochip {

/** The knob dimensions a generator axis can sweep. */
enum class AxisKind
{
    /** Re-target chiplets to a node (content fixed, area follows
     *  the density model -- the explorer's sweep semantics). */
    NodeNm,

    /** Split one chiplet into k identical slices (content divided
     *  evenly, twins after the first marked `reused` -- the
     *  paper's Nc-sweep/design-reuse pattern). */
    ChipletCount,

    /** Replicate (or trim) the vertical towers of a stack-group
     *  family to k towers (HBM-stack count). */
    StackCount,

    /** Packaging architecture (`packagingArchFromString`). */
    Packaging,

    /** Operating point: product lifetime (years). */
    LifetimeYears,

    /** Operating point: ON-time fraction. */
    DutyCycle,

    /** Operating point: direct average-power override (W). */
    AvgPowerW,

    /** Operating point: use-phase carbon intensity (g/kWh). */
    UseIntensityGPerKwh,
};

/** Config spelling of an axis kind ("node_nm", ...). */
const char *toString(AxisKind kind);

/** Parse an axis kind from its config spelling. */
AxisKind axisKindFromString(const std::string &name,
                            const std::string &context);

/** One swept dimension of a generator. */
struct GeneratorAxis
{
    /**
     * Token used in derived names (`<name>=<value>`). Defaults to
     * the axis kind's spelling; must be unique within the
     * generator and free of '/' and '='.
     */
    std::string name;

    AxisKind kind = AxisKind::NodeNm;

    /**
     * Target chiplet name. Required for ChipletCount; optional
     * filter for NodeNm (empty = every chiplet).
     */
    std::string chiplet;

    /**
     * Stack-group family prefix for StackCount: the base
     * architecture's exemplar tower is group `<prefix>0`, and a
     * value k binds towers `<prefix>0 .. <prefix>(k-1)`.
     */
    std::string groupPrefix;

    /** Numeric candidate values (every kind except Packaging). */
    std::vector<double> numbers;

    /**
     * Canonical value labels, one per candidate, in declaration
     * order -- `json::formatNumber` spellings for numeric axes,
     * the validated config spellings for Packaging.
     */
    std::vector<std::string> labels;

    /** Candidate count. */
    std::size_t size() const { return labels.size(); }
};

/**
 * A parsed generator catalog entry: base design documents plus the
 * swept axes. Value type -- cheap to copy (documents are shared).
 */
struct GeneratorTemplate
{
    /** Catalog key; also the derived names' first segment. */
    std::string name;

    /** One-line description for listings. */
    std::string description;

    /** Source label ("catalog.json: generator \"x\"") for errors. */
    std::string context;

    /** Base architecture document (required). */
    std::shared_ptr<const json::Value> architecture;

    /** Optional knob documents (null = paper defaults). */
    std::shared_ptr<const json::Value> package;
    std::shared_ptr<const json::Value> design;
    std::shared_ptr<const json::Value> operational;

    /** Swept axes, in declaration order. */
    std::vector<GeneratorAxis> axes;
};

/**
 * Parse one generator entry of a scenario catalog.
 *
 * Validates everything up front so a broken generator fails at
 * load time with the file, generator, and axis named: unknown
 * keys, empty or duplicate axis values, out-of-range knobs,
 * unknown chiplets/stack groups of the base architecture, and
 * name-collision/token syntax problems all throw ConfigError.
 *
 * @param entry The generator JSON object.
 * @param context Source label (catalog path) for error messages.
 * @param base_dir Directory `design_dir` bases resolve against.
 */
GeneratorTemplate generatorFromJson(const json::Value &entry,
                                    const std::string &context,
                                    const std::string &base_dir);

/**
 * The lazy cross product of a generator's axes.
 *
 * Points are ordered row-major over the axes in declaration order
 * (the last axis varies fastest -- odometer order), and are
 * addressed either by flat index or by one index per axis. The
 * full product is never materialized; `instantiate` builds one
 * point's `DesignBundle` on demand.
 */
class ScenarioSpace
{
  public:
    explicit ScenarioSpace(GeneratorTemplate generator);

    const GeneratorTemplate &generator() const
    {
        return generator_;
    }

    /** Axis count. */
    std::size_t axisCount() const
    {
        return generator_.axes.size();
    }

    /** Total point count (product of axis sizes). */
    std::size_t size() const { return size_; }

    /** Decode a flat index into one index per axis. */
    std::vector<std::size_t> indicesAt(std::size_t flat) const;

    /** Flat index of an axis-index vector. */
    std::size_t
    flatIndex(const std::vector<std::size_t> &indices) const;

    /** Derived name of a point. */
    std::string
    nameAt(const std::vector<std::size_t> &indices) const;

    /** Derived name of a point by flat index. */
    std::string nameAt(std::size_t flat) const;

    /**
     * Parse a derived name back into axis indices. Returns empty
     * when @p name is not a point of this space (wrong generator,
     * wrong axis order, or a value outside the declared
     * candidates) -- derived names are strict: only the exact
     * spelling `nameAt` produces resolves.
     */
    std::optional<std::vector<std::size_t>>
    parseName(const std::string &name) const;

    /**
     * Build the design bundle of one point: instantiate the base
     * documents, then apply the chosen axis values in a fixed
     * phase order (nodes, then chiplet splits, then stack counts,
     * then packaging, then operating overrides; declaration order
     * within a phase), and stamp the system with the derived
     * name.
     */
    DesignBundle
    instantiate(const std::vector<std::size_t> &indices,
                const TechDb &tech) const;

  private:
    GeneratorTemplate generator_;
    std::size_t size_ = 1;
};

} // namespace ecochip

#endif // ECOCHIP_SEARCH_SCENARIO_SPACE_H
