/**
 * @file
 * Multi-objective Pareto frontier extraction.
 *
 * The search driver scores every visited design point on several
 * objectives at once (carbon vs. dollar cost vs. a performance
 * proxy); the frontier is the set of points no other point beats
 * on every objective simultaneously -- the trade-off curve the
 * paper's carbon/cost discussions reason over.
 */

#ifndef ECOCHIP_SEARCH_PARETO_H
#define ECOCHIP_SEARCH_PARETO_H

#include <cstddef>
#include <string>
#include <vector>

namespace ecochip {

/** One candidate for frontier extraction. */
struct ParetoPoint
{
    /** Identity used for deterministic tie ordering. */
    std::string name;

    /**
     * Objective vector, every component *minimized* (callers
     * negate maximized objectives before building the point).
     */
    std::vector<double> objectives;
};

/**
 * Indices of the non-dominated points of @p points.
 *
 * Point a dominates b when a is no worse on every objective and
 * strictly better on at least one; points with equal objective
 * vectors do not dominate each other, so duplicates all survive.
 *
 * The returned order is deterministic and independent of the
 * input order: ascending by objective vector (lexicographic),
 * ties broken by name, then by input index. All points must share
 * one objective arity; throws ModelError otherwise.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<ParetoPoint> &points);

} // namespace ecochip

#endif // ECOCHIP_SEARCH_PARETO_H
