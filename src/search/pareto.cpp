#include "search/pareto.h"

#include <algorithm>

#include "support/error.h"

namespace ecochip {

namespace {

/** True when @p a dominates @p b (minimization). */
bool
dominates(const std::vector<double> &a,
          const std::vector<double> &b)
{
    bool strictly_better = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
        if (a[i] < b[i])
            strictly_better = true;
    }
    return strictly_better;
}

} // namespace

std::vector<std::size_t>
paretoFrontier(const std::vector<ParetoPoint> &points)
{
    if (points.empty())
        return {};
    for (const auto &point : points)
        requireModel(point.objectives.size() ==
                         points.front().objectives.size(),
                     "pareto points disagree on objective "
                     "arity");

    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated;
             ++j)
            dominated = j != i &&
                        dominates(points[j].objectives,
                                  points[i].objectives);
        if (!dominated)
            frontier.push_back(i);
    }

    // Deterministic, input-order-independent presentation:
    // ascending objective vector, name-tied, index last (equal
    // name + vector duplicates keep input order).
    std::sort(frontier.begin(), frontier.end(),
              [&](std::size_t a, std::size_t b) {
                  if (points[a].objectives !=
                      points[b].objectives)
                      return points[a].objectives <
                             points[b].objectives;
                  if (points[a].name != points[b].name)
                      return points[a].name < points[b].name;
                  return a < b;
              });
    return frontier;
}

} // namespace ecochip
