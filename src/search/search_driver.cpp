#include "search/search_driver.h"

#include <algorithm>
#include <utility>

#include "support/error.h"

namespace ecochip {

SearchDriver::SearchDriver(EngineOptions options)
    : options_(std::move(options))
{}

void
SearchDriver::validate(const SearchSpec &spec)
{
    requireConfig(!spec.generator.empty(),
                  "search spec needs a generator");
    requireConfig(!spec.objectives.empty(),
                  "search spec needs at least one objective");
    for (const auto &objective : spec.objectives)
        requireConfig(objective.weight > 0.0,
                      "objective weight must be positive");
    for (const auto &constraint : spec.constraints)
        requireConfig(!constraint.min || !constraint.max ||
                          *constraint.min <= *constraint.max,
                      "constraint min exceeds max");
    requireConfig(spec.batchSize >= 1,
                  "batch_size must be >= 1");
    requireConfig(spec.strategy.restarts >= 1,
                  "restarts must be >= 1");
    requireConfig(spec.strategy.steps >= 0,
                  "steps must be >= 0");
    requireConfig(spec.strategy.initialTemp >= 0.0,
                  "initial_temp must be >= 0");
    requireConfig(spec.strategy.cooling > 0.0 &&
                      spec.strategy.cooling <= 1.0,
                  "cooling must be in (0, 1]");
}

std::vector<AnalysisRequest>
SearchDriver::expand(const SearchSpec &spec,
                     const ScenarioSpace &space)
{
    const auto tracked = trackedMetrics(spec);
    const bool needs_cost =
        std::find(tracked.begin(), tracked.end(),
                  SearchMetric::CostUsd) != tracked.end();

    std::vector<AnalysisRequest> requests;
    requests.reserve(space.size() * (needs_cost ? 2 : 1));
    for (std::size_t flat = 0; flat < space.size(); ++flat) {
        const std::string name = space.nameAt(flat);
        requests.push_back(
            {ScenarioRef::scenario(name), EstimateSpec{}});
        if (needs_cost) {
            CostSpec cost;
            if (spec.costParams)
                cost.params = *spec.costParams;
            requests.push_back(
                {ScenarioRef::scenario(name), cost});
        }
    }
    return requests;
}

SearchResult
SearchDriver::run(const SearchSpec &spec)
{
    validate(spec);

    EngineOptions options = options_;
    if (spec.catalog)
        options.registry.loadFile(*spec.catalog);

    const GeneratorTemplate &generator =
        options.registry.generator(spec.generator);
    const ScenarioSpace space(generator);

    AnalysisEngine engine(options);
    SearchContext ctx(spec, space, engine);
    makeStrategy(spec.strategy)->run(ctx);

    SearchResult result;
    result.spec = spec;
    result.spaceSize = space.size();
    result.evaluated = ctx.points();
    result.requests = ctx.requests();
    result.report.outcomes = ctx.outcomes();

    // Scalarized winner: lowest score, first-evaluated on ties.
    for (std::size_t i = 0; i < result.evaluated.size(); ++i) {
        const EvaluatedPoint &point = result.evaluated[i];
        if (!point.feasible)
            continue;
        if (!result.best ||
            point.score <
                result.evaluated[*result.best].score)
            result.best = i;
    }

    // Pareto frontier over the feasible points' objective
    // vectors, maximized metrics negated into minimization.
    const auto tracked = trackedMetrics(spec);
    std::vector<ParetoPoint> candidates;
    std::vector<std::size_t> candidate_slots;
    for (std::size_t i = 0; i < result.evaluated.size(); ++i) {
        const EvaluatedPoint &point = result.evaluated[i];
        if (!point.feasible)
            continue;
        ParetoPoint candidate;
        candidate.name = point.name;
        candidate.objectives.reserve(spec.objectives.size());
        for (const auto &objective : spec.objectives) {
            const auto slot =
                std::find(tracked.begin(), tracked.end(),
                          objective.metric);
            const double value =
                point.metrics[static_cast<std::size_t>(
                    slot - tracked.begin())];
            candidate.objectives.push_back(
                objective.maximize ? -value : value);
        }
        candidates.push_back(std::move(candidate));
        candidate_slots.push_back(i);
    }
    for (const std::size_t index : paretoFrontier(candidates))
        result.frontier.push_back(candidate_slots[index]);

    return result;
}

} // namespace ecochip
