#include "search/scenario_space.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <utility>

#include "package/package_params.h"
#include "support/error.h"

namespace ecochip {

namespace {

/**
 * Ceiling on a space's point count. Expansion is lazy, so this is
 * not a memory limit -- it guards the flat-index arithmetic (and
 * the user against a cross product no search could ever visit).
 */
constexpr std::size_t kMaxPoints = 1'000'000'000'000ULL;

/** Transform phase of an axis kind; `instantiate` applies phases
 *  in this fixed order regardless of declaration order, so e.g. a
 *  node filter always sees pre-split chiplet names. */
int
phaseOf(AxisKind kind)
{
    switch (kind) {
    case AxisKind::NodeNm: return 0;
    case AxisKind::ChipletCount: return 1;
    case AxisKind::StackCount: return 2;
    case AxisKind::Packaging: return 3;
    default: return 4; // operating-point overrides
    }
}

bool
hasChiplet(const SystemSpec &system, const std::string &name)
{
    for (const auto &chiplet : system.chiplets)
        if (chiplet.name == name)
            return true;
    return false;
}

/** Tower number of a stack group under @p prefix, or -1 when the
 *  group is not `<prefix><decimal>`. */
long
towerNumber(const std::string &group, const std::string &prefix)
{
    if (group.size() <= prefix.size() ||
        group.compare(0, prefix.size(), prefix) != 0)
        return -1;
    long number = 0;
    for (std::size_t i = prefix.size(); i < group.size(); ++i) {
        const char c = group[i];
        if (c < '0' || c > '9')
            return -1;
        number = number * 10 + (c - '0');
    }
    return number;
}

/** Tower count of the `<prefix>` family (0 when absent). */
std::size_t
towerCount(const SystemSpec &system, const std::string &prefix)
{
    long highest = -1;
    for (const auto &chiplet : system.chiplets)
        highest = std::max(
            highest, towerNumber(chiplet.stackGroup, prefix));
    return static_cast<std::size_t>(highest + 1);
}

void
checkToken(const std::string &token, const std::string &what,
           const std::string &context)
{
    requireConfig(!token.empty(),
                  context + ": " + what + " must not be empty");
    requireConfig(token.find('/') == std::string::npos &&
                      token.find('=') == std::string::npos,
                  context + ": " + what + " \"" + token +
                      "\" must not contain '/' or '='");
}

GeneratorAxis
axisFromJson(const json::Value &doc,
             const std::string &generator_context)
{
    rejectUnknownKeys(
        doc, {"axis", "name", "values", "chiplet", "group"},
        generator_context);

    GeneratorAxis axis;
    axis.kind = axisKindFromString(doc.at("axis").asString(),
                                   generator_context);
    axis.name = doc.stringOr("name", toString(axis.kind));
    const std::string context =
        generator_context + ": axis \"" + axis.name + "\"";
    checkToken(axis.name, "axis name", generator_context);

    // Target keys: `chiplet` names the die a node/split axis acts
    // on; `group` names the stack-family prefix a tower-count
    // axis replicates.
    if (doc.contains("chiplet")) {
        requireConfig(axis.kind == AxisKind::NodeNm ||
                          axis.kind == AxisKind::ChipletCount,
                      context + ": \"chiplet\" only applies to "
                                "node_nm / chiplet_count axes");
        axis.chiplet = doc.at("chiplet").asString();
        requireConfig(!axis.chiplet.empty(),
                      context +
                          ": \"chiplet\" must not be empty");
    }
    requireConfig(axis.kind != AxisKind::ChipletCount ||
                      !axis.chiplet.empty(),
                  context +
                      ": chiplet_count needs a \"chiplet\" "
                      "target");
    if (doc.contains("group")) {
        requireConfig(axis.kind == AxisKind::StackCount,
                      context + ": \"group\" only applies to "
                                "stack_count axes");
        axis.groupPrefix = doc.at("group").asString();
        requireConfig(!axis.groupPrefix.empty(),
                      context + ": \"group\" must not be empty");
    }
    requireConfig(axis.kind != AxisKind::StackCount ||
                      !axis.groupPrefix.empty(),
                  context +
                      ": stack_count needs a \"group\" prefix");

    const auto &values = doc.at("values").asArray();
    requireConfig(!values.empty(),
                  context +
                      ": empty axis (needs at least one value)");

    for (const auto &value : values) {
        std::string label;
        if (axis.kind == AxisKind::Packaging) {
            label = value.asString();
            try {
                packagingArchFromString(label);
            } catch (const ConfigError &) {
                throw ConfigError(
                    context +
                    ": unknown packaging architecture \"" +
                    label + "\"");
            }
            checkToken(label, "axis value", context);
        } else {
            const double number = value.asNumber();
            switch (axis.kind) {
            case AxisKind::NodeNm:
                requireConfig(number > 0.0,
                              context +
                                  ": node_nm must be positive");
                break;
            case AxisKind::ChipletCount:
            case AxisKind::StackCount:
                requireConfig(
                    number == std::floor(number),
                    context + ": count must be an integer");
                requireConfig(
                    number >=
                        (axis.kind == AxisKind::ChipletCount
                             ? 1.0
                             : 0.0),
                    context +
                        (axis.kind == AxisKind::ChipletCount
                             ? ": chiplet_count must be >= 1"
                             : ": stack_count must be >= 0"));
                requireConfig(number <= 64.0,
                              context +
                                  ": count must be <= 64");
                break;
            case AxisKind::DutyCycle:
                requireConfig(number > 0.0 && number <= 1.0,
                              context + ": duty_cycle must be "
                                        "in (0, 1]");
                break;
            default:
                requireConfig(number > 0.0,
                              context +
                                  ": value must be positive");
                break;
            }
            axis.numbers.push_back(number);
            label = json::formatNumber(number);
        }

        requireConfig(std::find(axis.labels.begin(),
                                axis.labels.end(),
                                label) == axis.labels.end(),
                      context + ": duplicate axis value \"" +
                          label + "\"");
        axis.labels.push_back(std::move(label));
    }

    return axis;
}

} // namespace

const char *
toString(AxisKind kind)
{
    switch (kind) {
    case AxisKind::NodeNm: return "node_nm";
    case AxisKind::ChipletCount: return "chiplet_count";
    case AxisKind::StackCount: return "stack_count";
    case AxisKind::Packaging: return "packaging";
    case AxisKind::LifetimeYears: return "lifetime_years";
    case AxisKind::DutyCycle: return "duty_cycle";
    case AxisKind::AvgPowerW: return "avg_power_w";
    case AxisKind::UseIntensityGPerKwh:
        return "intensity_g_per_kwh";
    }
    return "unknown";
}

AxisKind
axisKindFromString(const std::string &name,
                   const std::string &context)
{
    if (name == "node_nm")
        return AxisKind::NodeNm;
    if (name == "chiplet_count")
        return AxisKind::ChipletCount;
    if (name == "stack_count")
        return AxisKind::StackCount;
    if (name == "packaging")
        return AxisKind::Packaging;
    if (name == "lifetime_years")
        return AxisKind::LifetimeYears;
    if (name == "duty_cycle")
        return AxisKind::DutyCycle;
    if (name == "avg_power_w")
        return AxisKind::AvgPowerW;
    if (name == "intensity_g_per_kwh")
        return AxisKind::UseIntensityGPerKwh;
    throw ConfigError(
        context + ": unknown axis dimension \"" + name +
        "\" (expected node_nm, chiplet_count, stack_count, "
        "packaging, lifetime_years, duty_cycle, avg_power_w, or "
        "intensity_g_per_kwh)");
}

GeneratorTemplate
generatorFromJson(const json::Value &entry,
                  const std::string &context,
                  const std::string &base_dir)
{
    rejectUnknownKeys(entry,
                      {"name", "description", "architecture",
                       "design_dir", "package", "design",
                       "operational", "axes"},
                      context);

    GeneratorTemplate generator;
    generator.name = entry.at("name").asString();
    requireConfig(!generator.name.empty(),
                  context + ": generator needs a name");
    requireConfig(
        generator.name.find('/') == std::string::npos,
        context + ": generator name \"" + generator.name +
            "\" must not contain '/'");
    generator.context =
        context + ": generator \"" + generator.name + "\"";
    generator.description = entry.stringOr(
        "description", "generator from " + context);

    const bool inline_arch = entry.contains("architecture");
    const bool from_dir = entry.contains("design_dir");
    requireConfig(inline_arch != from_dir,
                  generator.context +
                      " needs exactly one of architecture / "
                      "design_dir");

    if (from_dir) {
        requireConfig(!entry.contains("package") &&
                          !entry.contains("design") &&
                          !entry.contains("operational"),
                      generator.context +
                          ": design_dir generators take their "
                          "knob files from the directory");
        const std::filesystem::path dir(
            entry.at("design_dir").asString());
        const std::string resolved =
            dir.is_absolute()
                ? dir.string()
                : (std::filesystem::path(base_dir) / dir)
                      .string();
        requireConfig(std::filesystem::is_directory(resolved),
                      generator.context +
                          ": not a design directory: " +
                          resolved);
        const std::filesystem::path root(resolved);
        requireConfig(
            std::filesystem::exists(root /
                                    "architecture.json"),
            generator.context +
                ": missing architecture.json in " + resolved);
        // Unlike design_dir *scenarios* (re-read per build), a
        // generator snapshots the directory's documents at load
        // time: every point of the space must transform one
        // fixed base.
        generator.architecture =
            std::make_shared<const json::Value>(json::parseFile(
                (root / "architecture.json").string()));
        auto optional_file =
            [&](const char *file) -> std::shared_ptr<
                                      const json::Value> {
            if (!std::filesystem::exists(root / file))
                return nullptr;
            return std::make_shared<const json::Value>(
                json::parseFile((root / file).string()));
        };
        generator.package = optional_file("packageC.json");
        generator.design = optional_file("designC.json");
        generator.operational =
            optional_file("operationalC.json");
    } else {
        generator.architecture =
            std::make_shared<const json::Value>(
                entry.at("architecture"));
        auto optional_doc =
            [&](const char *key) -> std::shared_ptr<
                                     const json::Value> {
            if (!entry.contains(key))
                return nullptr;
            return std::make_shared<const json::Value>(
                entry.at(key));
        };
        generator.package = optional_doc("package");
        generator.design = optional_doc("design");
        generator.operational = optional_doc("operational");
    }

    // Parse the base once now: axis target validation needs the
    // chiplet list, and a schema-broken base must fail at load
    // time with the generator named (same contract as inline
    // scenario entries).
    const DesignBundle base = designBundleFromJson(
        *generator.architecture, generator.package.get(),
        generator.design.get(), generator.operational.get(),
        TechDb(), generator.context);

    const auto &axis_entries = entry.at("axes").asArray();
    requireConfig(!axis_entries.empty(),
                  generator.context +
                      " needs at least one axis");

    for (const auto &axis_entry : axis_entries) {
        GeneratorAxis axis =
            axisFromJson(axis_entry, generator.context);
        const std::string axis_context =
            generator.context + ": axis \"" + axis.name + "\"";

        for (const auto &other : generator.axes) {
            requireConfig(other.name != axis.name,
                          generator.context +
                              ": duplicate axis name \"" +
                              axis.name + "\"");
            // Two splits of one chiplet (or two counts of one
            // tower family) would compose order-dependently;
            // reject instead.
            requireConfig(
                axis.kind != AxisKind::ChipletCount ||
                    other.kind != AxisKind::ChipletCount ||
                    other.chiplet != axis.chiplet,
                axis_context +
                    ": chiplet \"" + axis.chiplet +
                    "\" already split by axis \"" +
                    other.name + "\"");
            requireConfig(
                axis.kind != AxisKind::StackCount ||
                    other.kind != AxisKind::StackCount ||
                    other.groupPrefix != axis.groupPrefix,
                axis_context +
                    ": stack family \"" + axis.groupPrefix +
                    "\" already counted by axis \"" +
                    other.name + "\"");
        }

        if (!axis.chiplet.empty())
            requireConfig(hasChiplet(base.system, axis.chiplet),
                          axis_context +
                              ": base architecture has no "
                              "chiplet \"" +
                              axis.chiplet + "\"");
        if (axis.kind == AxisKind::StackCount) {
            const std::size_t towers =
                towerCount(base.system, axis.groupPrefix);
            requireConfig(
                towers > 0,
                axis_context +
                    ": base architecture has no stack group "
                    "\"" +
                    axis.groupPrefix + "0\"");
            // The exemplar tower must exist and the family must
            // be contiguous, or replication/trimming would leave
            // holes in the numbering.
            std::size_t found = 0;
            std::vector<bool> present(towers, false);
            for (const auto &chiplet : base.system.chiplets) {
                const long tower = towerNumber(
                    chiplet.stackGroup, axis.groupPrefix);
                if (tower < 0)
                    continue;
                if (!present[static_cast<std::size_t>(tower)]) {
                    present[static_cast<std::size_t>(tower)] =
                        true;
                    ++found;
                }
            }
            requireConfig(found == towers,
                          axis_context +
                              ": stack family \"" +
                              axis.groupPrefix +
                              "\" is not contiguously numbered "
                              "from 0");
        }

        generator.axes.push_back(std::move(axis));
    }

    // Instantiate the first point once so transform-level
    // problems also surface at load time, not mid-search.
    ScenarioSpace space(generator);
    space.instantiate(
        std::vector<std::size_t>(generator.axes.size(), 0),
        TechDb());

    return generator;
}

ScenarioSpace::ScenarioSpace(GeneratorTemplate generator)
    : generator_(std::move(generator))
{
    for (const auto &axis : generator_.axes) {
        requireConfig(axis.size() > 0,
                      generator_.name + ": axis \"" + axis.name +
                          "\": empty axis (needs at least one "
                          "value)");
        requireConfig(axis.size() <= kMaxPoints / size_,
                      generator_.name +
                          ": scenario space exceeds " +
                          std::to_string(kMaxPoints) +
                          " points");
        size_ *= axis.size();
    }
}

std::vector<std::size_t>
ScenarioSpace::indicesAt(std::size_t flat) const
{
    requireModel(flat < size_,
                 "scenario-space flat index out of range");
    std::vector<std::size_t> indices(axisCount(), 0);
    // Odometer order: the last axis varies fastest.
    for (std::size_t i = axisCount(); i-- > 0;) {
        const std::size_t n = generator_.axes[i].size();
        indices[i] = flat % n;
        flat /= n;
    }
    return indices;
}

std::size_t
ScenarioSpace::flatIndex(
    const std::vector<std::size_t> &indices) const
{
    requireModel(indices.size() == axisCount(),
                 "scenario-space index arity mismatch");
    std::size_t flat = 0;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        requireModel(indices[i] < generator_.axes[i].size(),
                     "scenario-space axis index out of range");
        flat = flat * generator_.axes[i].size() + indices[i];
    }
    return flat;
}

std::string
ScenarioSpace::nameAt(
    const std::vector<std::size_t> &indices) const
{
    requireModel(indices.size() == axisCount(),
                 "scenario-space index arity mismatch");
    std::string name = generator_.name;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const auto &axis = generator_.axes[i];
        requireModel(indices[i] < axis.size(),
                     "scenario-space axis index out of range");
        name += '/';
        name += axis.name;
        name += '=';
        name += axis.labels[indices[i]];
    }
    return name;
}

std::string
ScenarioSpace::nameAt(std::size_t flat) const
{
    return nameAt(indicesAt(flat));
}

std::optional<std::vector<std::size_t>>
ScenarioSpace::parseName(const std::string &name) const
{
    std::size_t pos = generator_.name.size();
    if (name.compare(0, pos, generator_.name) != 0)
        return std::nullopt;

    std::vector<std::size_t> indices;
    indices.reserve(axisCount());
    for (const auto &axis : generator_.axes) {
        // Expect "/<axis>=".
        const std::string token = "/" + axis.name + "=";
        if (name.compare(pos, token.size(), token) != 0)
            return std::nullopt;
        pos += token.size();
        const std::size_t slash = name.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? name.size() : slash;
        const std::string label =
            name.substr(pos, end - pos);
        const auto it = std::find(axis.labels.begin(),
                                  axis.labels.end(), label);
        if (it == axis.labels.end())
            return std::nullopt;
        indices.push_back(static_cast<std::size_t>(
            it - axis.labels.begin()));
        pos = end;
    }
    if (pos != name.size())
        return std::nullopt;
    return indices;
}

DesignBundle
ScenarioSpace::instantiate(
    const std::vector<std::size_t> &indices,
    const TechDb &tech) const
{
    requireModel(indices.size() == axisCount(),
                 "scenario-space index arity mismatch");

    DesignBundle bundle = designBundleFromJson(
        *generator_.architecture, generator_.package.get(),
        generator_.design.get(), generator_.operational.get(),
        tech, generator_.context.empty()
                  ? generator_.name
                  : generator_.context);

    // Apply axes phase by phase (nodes, splits, stacks,
    // packaging, operating), declaration order within a phase --
    // so the transform composition is independent of the order
    // axes were declared in.
    for (int phase = 0; phase <= 4; ++phase) {
        for (std::size_t i = 0; i < axisCount(); ++i) {
            const auto &axis = generator_.axes[i];
            if (phaseOf(axis.kind) != phase)
                continue;
            const std::size_t pick = indices[i];
            requireModel(pick < axis.size(),
                         "scenario-space axis index out of "
                         "range");

            switch (axis.kind) {
            case AxisKind::NodeNm: {
                // Retarget keeps transistor content; area
                // re-derives from the density model, matching
                // the explorer's sweep semantics.
                const double node = axis.numbers[pick];
                for (auto &chiplet : bundle.system.chiplets)
                    if (axis.chiplet.empty() ||
                        chiplet.name == axis.chiplet)
                        chiplet.nodeNm = node;
                break;
            }
            case AxisKind::ChipletCount: {
                const auto k = static_cast<std::size_t>(
                    axis.numbers[pick]);
                if (k == 1)
                    break;
                auto &chiplets = bundle.system.chiplets;
                const auto it = std::find_if(
                    chiplets.begin(), chiplets.end(),
                    [&](const Chiplet &c) {
                        return c.name == axis.chiplet;
                    });
                requireConfig(it != chiplets.end(),
                              generator_.name +
                                  ": no chiplet \"" +
                                  axis.chiplet +
                                  "\" to split");
                // Split into k even slices named <name>0 ..
                // <name>(k-1); slices after the first share the
                // first's design effort (the paper's
                // design-reuse pattern for identical twins).
                Chiplet exemplar = *it;
                exemplar.transistorsMtr /=
                    static_cast<double>(k);
                std::vector<Chiplet> slices;
                slices.reserve(k);
                for (std::size_t s = 0; s < k; ++s) {
                    Chiplet slice = exemplar;
                    slice.name =
                        axis.chiplet + std::to_string(s);
                    if (s > 0)
                        slice.reused = true;
                    slices.push_back(std::move(slice));
                }
                const auto at = chiplets.erase(it);
                chiplets.insert(at, slices.begin(),
                                slices.end());
                break;
            }
            case AxisKind::StackCount: {
                const auto k = static_cast<std::size_t>(
                    axis.numbers[pick]);
                auto &chiplets = bundle.system.chiplets;
                const std::size_t have =
                    towerCount(bundle.system,
                               axis.groupPrefix);
                requireConfig(have > 0,
                              generator_.name +
                                  ": no stack group \"" +
                                  axis.groupPrefix +
                                  "0\" to replicate");
                if (k < have) {
                    chiplets.erase(
                        std::remove_if(
                            chiplets.begin(), chiplets.end(),
                            [&](const Chiplet &c) {
                                const long tower =
                                    towerNumber(
                                        c.stackGroup,
                                        axis.groupPrefix);
                                return tower >=
                                       static_cast<long>(k);
                            }),
                        chiplets.end());
                } else if (k > have) {
                    // Replicate the exemplar tower <prefix>0;
                    // clones keep its reuse flags (a second HBM
                    // stack is the same silicon-proven part).
                    const std::string exemplar_group =
                        axis.groupPrefix + "0";
                    std::vector<Chiplet> tiers;
                    std::size_t insert_at = 0;
                    for (std::size_t c = 0;
                         c < chiplets.size(); ++c) {
                        if (towerNumber(
                                chiplets[c].stackGroup,
                                axis.groupPrefix) >= 0)
                            insert_at = c + 1;
                        if (chiplets[c].stackGroup ==
                            exemplar_group)
                            tiers.push_back(chiplets[c]);
                    }
                    std::vector<Chiplet> clones;
                    clones.reserve((k - have) * tiers.size());
                    for (std::size_t tower = have; tower < k;
                         ++tower) {
                        const std::string group =
                            axis.groupPrefix +
                            std::to_string(tower);
                        for (const Chiplet &tier : tiers) {
                            Chiplet clone = tier;
                            clone.stackGroup = group;
                            if (clone.name.compare(
                                    0, exemplar_group.size(),
                                    exemplar_group) == 0)
                                clone.name =
                                    group +
                                    clone.name.substr(
                                        exemplar_group
                                            .size());
                            else
                                clone.name += "-" + group;
                            clones.push_back(
                                std::move(clone));
                        }
                    }
                    chiplets.insert(
                        chiplets.begin() +
                            static_cast<std::ptrdiff_t>(
                                insert_at),
                        clones.begin(), clones.end());
                }
                break;
            }
            case AxisKind::Packaging:
                bundle.config.package.arch =
                    packagingArchFromString(
                        axis.labels[pick]);
                break;
            case AxisKind::LifetimeYears:
                bundle.config.operating.lifetimeYears =
                    axis.numbers[pick];
                break;
            case AxisKind::DutyCycle:
                bundle.config.operating.dutyCycle =
                    axis.numbers[pick];
                break;
            case AxisKind::AvgPowerW:
                bundle.config.operating.avgPowerW =
                    axis.numbers[pick];
                break;
            case AxisKind::UseIntensityGPerKwh:
                bundle.config.operating.useIntensityGPerKwh =
                    axis.numbers[pick];
                break;
            }
        }
    }

    bundle.system.name = nameAt(indices);
    return bundle;
}

} // namespace ecochip
