#include "search/search_strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <set>

#include "support/error.h"

namespace ecochip {

namespace {

constexpr double kInfeasible =
    std::numeric_limits<double>::infinity();

/**
 * Portable PRNG helpers: std::mt19937_64's output sequence is
 * fully specified by the standard, and these mappings avoid the
 * implementation-defined std distributions -- a fixed seed must
 * reproduce bit-identically across standard libraries.
 */
std::size_t
uniformIndex(std::mt19937_64 &rng, std::size_t n)
{
    return n == 0 ? 0 : static_cast<std::size_t>(rng() % n);
}

double
uniformDouble(std::mt19937_64 &rng)
{
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/** Extract one metric from a point's analyses. */
double
metricValue(SearchMetric metric, const CarbonReport &report,
            const CostBreakdown *cost)
{
    switch (metric) {
    case SearchMetric::EmbodiedKg:
        return report.embodiedCo2Kg();
    case SearchMetric::TotalKg:
        return report.totalCo2Kg();
    case SearchMetric::MfgKg:
        return report.mfgCo2Kg;
    case SearchMetric::DesignKg:
        return report.designCo2Kg;
    case SearchMetric::OperationalKg:
        return report.operation.co2Kg;
    case SearchMetric::PackageKg:
        return report.hi.totalCo2Kg();
    case SearchMetric::CostUsd:
        requireModel(cost != nullptr,
                     "cost_usd metric without a cost analysis");
        return cost->totalUsd();
    case SearchMetric::AreaMm2: {
        double area = 0.0;
        for (const auto &chiplet : report.chiplets)
            area += chiplet.areaMm2;
        return area;
    }
    case SearchMetric::YieldMin: {
        double lowest = 1.0;
        for (const auto &chiplet : report.chiplets)
            lowest = std::min(lowest, chiplet.yield);
        return lowest;
    }
    case SearchMetric::PerfProxy: {
        // 7nm-equivalent silicon area: each die's area scaled by
        // (7 / node)^2, so a mm^2 of 7 nm logic counts as one
        // unit and legacy-node silicon counts proportionally
        // less -- a deliberately simple stand-in for delivered
        // compute that rewards both more silicon and newer
        // nodes.
        double proxy = 0.0;
        for (const auto &chiplet : report.chiplets)
            proxy += chiplet.areaMm2 *
                     (7.0 / chiplet.nodeNm) *
                     (7.0 / chiplet.nodeNm);
        return proxy;
    }
    }
    throw ModelError("unhandled search metric");
}

class ExhaustiveStrategy : public SearchStrategy
{
  public:
    void
    run(SearchContext &ctx) override
    {
        const std::size_t total = ctx.space().size();
        const std::size_t chunk = static_cast<std::size_t>(
            std::max(1, ctx.spec().batchSize));
        // Odometer order in batch-size chunks: concatenating the
        // chunks' request-ordered outcomes reproduces one big
        // runBatch over the pre-expanded list byte for byte.
        for (std::size_t start = 0; start < total;
             start += chunk) {
            std::vector<std::size_t> flats;
            flats.reserve(std::min(chunk, total - start));
            for (std::size_t flat = start;
                 flat < std::min(start + chunk, total); ++flat)
                flats.push_back(flat);
            ctx.evaluate(flats);
        }
    }
};

class GreedyStrategy : public SearchStrategy
{
  public:
    void
    run(SearchContext &ctx) override
    {
        const ScenarioSpace &space = ctx.space();
        std::mt19937_64 rng(ctx.spec().strategy.seed);
        const int restarts =
            std::max(1, ctx.spec().strategy.restarts);

        for (int restart = 0; restart < restarts; ++restart) {
            std::size_t current = ctx.evaluateOne(
                uniformIndex(rng, space.size()));

            for (;;) {
                const std::size_t flat =
                    ctx.points()[current].flat;
                const double current_score =
                    ctx.points()[current].score;
                const auto indices = space.indicesAt(flat);

                // +-1 neighbors along every axis, in axis order
                // with -1 before +1 -- the deterministic visit
                // order ties are resolved by.
                std::vector<std::size_t> neighbors;
                for (std::size_t a = 0; a < indices.size();
                     ++a) {
                    const std::size_t n =
                        space.generator().axes[a].size();
                    if (indices[a] > 0) {
                        auto step = indices;
                        --step[a];
                        neighbors.push_back(
                            space.flatIndex(step));
                    }
                    if (indices[a] + 1 < n) {
                        auto step = indices;
                        ++step[a];
                        neighbors.push_back(
                            space.flatIndex(step));
                    }
                }

                const auto slots = ctx.evaluate(neighbors);
                std::size_t best = current;
                double best_score = current_score;
                for (const std::size_t slot : slots) {
                    // Strict improvement, first-wins on ties.
                    if (ctx.points()[slot].score <
                        best_score) {
                        best = slot;
                        best_score = ctx.points()[slot].score;
                    }
                }
                if (best == current)
                    break;
                current = best;
            }
        }
    }
};

class AnnealingStrategy : public SearchStrategy
{
  public:
    void
    run(SearchContext &ctx) override
    {
        const ScenarioSpace &space = ctx.space();
        const StrategySpec &knobs = ctx.spec().strategy;
        std::mt19937_64 rng(knobs.seed);

        std::size_t current = ctx.evaluateOne(
            uniformIndex(rng, space.size()));
        double current_score = ctx.points()[current].score;

        const int steps = std::max(0, knobs.steps);
        for (int step = 0; step < steps; ++step) {
            const double temperature =
                knobs.initialTemp *
                std::pow(knobs.cooling, step);

            // Propose a +-1 move along a random axis, wrapping
            // at the ends so every proposal stays in the space.
            auto indices =
                space.indicesAt(ctx.points()[current].flat);
            const std::size_t axis =
                uniformIndex(rng, indices.size());
            const std::size_t n =
                space.generator().axes[axis].size();
            const bool up = (rng() & 1) != 0;
            indices[axis] =
                (indices[axis] + (up ? 1 : n - 1)) % n;

            const std::size_t candidate =
                ctx.evaluateOne(space.flatIndex(indices));
            const double candidate_score =
                ctx.points()[candidate].score;

            // <= accepts sideways moves -- and, when both are
            // infeasible (+inf), random-walks out instead of
            // evaluating exp(inf - inf).
            bool accept = candidate_score <= current_score;
            if (!accept && temperature > 0.0) {
                const double u = uniformDouble(rng);
                accept = u < std::exp((current_score -
                                       candidate_score) /
                                      temperature);
            }
            if (accept) {
                current = candidate;
                current_score = candidate_score;
            }
        }
    }
};

} // namespace

const char *
toString(SearchMetric metric)
{
    switch (metric) {
    case SearchMetric::EmbodiedKg: return "embodied_kg";
    case SearchMetric::TotalKg: return "total_kg";
    case SearchMetric::MfgKg: return "mfg_kg";
    case SearchMetric::DesignKg: return "design_kg";
    case SearchMetric::OperationalKg: return "operational_kg";
    case SearchMetric::PackageKg: return "package_kg";
    case SearchMetric::CostUsd: return "cost_usd";
    case SearchMetric::AreaMm2: return "area_mm2";
    case SearchMetric::YieldMin: return "yield_min";
    case SearchMetric::PerfProxy: return "perf_proxy";
    }
    return "unknown";
}

SearchMetric
searchMetricFromString(const std::string &name,
                       const std::string &context)
{
    if (name == "embodied_kg")
        return SearchMetric::EmbodiedKg;
    if (name == "total_kg")
        return SearchMetric::TotalKg;
    if (name == "mfg_kg")
        return SearchMetric::MfgKg;
    if (name == "design_kg")
        return SearchMetric::DesignKg;
    if (name == "operational_kg")
        return SearchMetric::OperationalKg;
    if (name == "package_kg")
        return SearchMetric::PackageKg;
    if (name == "cost_usd")
        return SearchMetric::CostUsd;
    if (name == "area_mm2")
        return SearchMetric::AreaMm2;
    if (name == "yield_min")
        return SearchMetric::YieldMin;
    if (name == "perf_proxy")
        return SearchMetric::PerfProxy;
    throw ConfigError(
        context + ": unknown metric \"" + name +
        "\" (expected embodied_kg, total_kg, mfg_kg, "
        "design_kg, operational_kg, package_kg, cost_usd, "
        "area_mm2, yield_min, or perf_proxy)");
}

const char *
toString(StrategyKind kind)
{
    switch (kind) {
    case StrategyKind::Exhaustive: return "exhaustive";
    case StrategyKind::Greedy: return "greedy";
    case StrategyKind::Annealing: return "annealing";
    }
    return "unknown";
}

StrategyKind
strategyKindFromString(const std::string &name,
                       const std::string &context)
{
    if (name == "exhaustive")
        return StrategyKind::Exhaustive;
    if (name == "greedy")
        return StrategyKind::Greedy;
    if (name == "annealing")
        return StrategyKind::Annealing;
    throw ConfigError(context + ": unknown strategy \"" + name +
                      "\" (expected exhaustive, greedy, or "
                      "annealing)");
}

std::vector<SearchMetric>
trackedMetrics(const SearchSpec &spec)
{
    std::vector<SearchMetric> tracked;
    auto track = [&](SearchMetric metric) {
        if (std::find(tracked.begin(), tracked.end(),
                      metric) == tracked.end())
            tracked.push_back(metric);
    };
    for (const auto &objective : spec.objectives)
        track(objective.metric);
    for (const auto &constraint : spec.constraints)
        track(constraint.metric);
    return tracked;
}

SearchContext::SearchContext(const SearchSpec &spec,
                             const ScenarioSpace &space,
                             AnalysisEngine &engine)
    : spec_(spec), space_(space), engine_(engine),
      tracked_(trackedMetrics(spec))
{
    needsCost_ = std::find(tracked_.begin(), tracked_.end(),
                           SearchMetric::CostUsd) !=
                 tracked_.end();
}

std::vector<std::size_t>
SearchContext::evaluate(const std::vector<std::size_t> &flats)
{
    // First occurrence of each unvisited point, in input order.
    std::vector<std::size_t> fresh;
    std::set<std::size_t> queued;
    for (const std::size_t flat : flats) {
        requireModel(flat < space_.size(),
                     "search point out of range");
        if (memo_.count(flat) || queued.count(flat))
            continue;
        queued.insert(flat);
        fresh.push_back(flat);
    }

    if (!fresh.empty()) {
        // One estimate (plus one cost, when a cost metric is
        // tracked) per point -- the exact request sequence
        // `SearchDriver::expand` emits, so the recorded
        // outcomes replay a hand-expanded batch.
        std::vector<AnalysisRequest> batch;
        batch.reserve(fresh.size() * (needsCost_ ? 2 : 1));
        for (const std::size_t flat : fresh) {
            const std::string name = space_.nameAt(flat);
            batch.push_back({ScenarioRef::scenario(name),
                             EstimateSpec{}});
            if (needsCost_) {
                CostSpec cost;
                if (spec_.costParams)
                    cost.params = *spec_.costParams;
                batch.push_back(
                    {ScenarioRef::scenario(name), cost});
            }
        }

        BatchReport report = engine_.runBatch(batch);
        requireModel(report.outcomes.size() == batch.size(),
                     "engine dropped search outcomes");

        const std::size_t stride = needsCost_ ? 2 : 1;
        for (std::size_t i = 0; i < fresh.size(); ++i) {
            const RequestOutcome &estimate =
                report.outcomes[i * stride];
            const RequestOutcome *cost =
                needsCost_ ? &report.outcomes[i * stride + 1]
                           : nullptr;

            EvaluatedPoint point;
            point.flat = fresh[i];
            point.name = space_.nameAt(fresh[i]);
            point.ok =
                estimate.ok() && (!cost || cost->ok());

            if (!point.ok) {
                point.error = !estimate.ok() ? estimate.error
                                             : cost->error;
                point.feasible = false;
                point.score = kInfeasible;
            } else {
                const CarbonReport &carbon =
                    *estimate.result->report;
                const CostBreakdown *dollars =
                    cost ? &*cost->result->cost : nullptr;
                point.metrics.reserve(tracked_.size());
                for (const SearchMetric metric : tracked_)
                    point.metrics.push_back(metricValue(
                        metric, carbon, dollars));

                point.feasible = true;
                for (const auto &constraint :
                     spec_.constraints) {
                    const auto slot = std::find(
                        tracked_.begin(), tracked_.end(),
                        constraint.metric);
                    const double value =
                        point.metrics[static_cast<std::size_t>(
                            slot - tracked_.begin())];
                    if ((constraint.min &&
                         value < *constraint.min) ||
                        (constraint.max &&
                         value > *constraint.max))
                        point.feasible = false;
                }

                if (point.feasible) {
                    point.score = 0.0;
                    for (const auto &objective :
                         spec_.objectives) {
                        const auto slot = std::find(
                            tracked_.begin(), tracked_.end(),
                            objective.metric);
                        const double value = point.metrics
                            [static_cast<std::size_t>(
                                slot - tracked_.begin())];
                        point.score +=
                            objective.weight *
                            (objective.maximize ? -value
                                                : value);
                    }
                } else {
                    point.score = kInfeasible;
                }
            }

            memo_[fresh[i]] = points_.size();
            points_.push_back(std::move(point));
        }

        requests_.insert(requests_.end(), batch.begin(),
                         batch.end());
        for (auto &outcome : report.outcomes)
            outcomes_.push_back(std::move(outcome));
    }

    std::vector<std::size_t> slots;
    slots.reserve(flats.size());
    for (const std::size_t flat : flats)
        slots.push_back(memo_.at(flat));
    return slots;
}

std::size_t
SearchContext::evaluateOne(std::size_t flat)
{
    return evaluate({flat}).front();
}

std::unique_ptr<SearchStrategy>
makeStrategy(const StrategySpec &spec)
{
    switch (spec.kind) {
    case StrategyKind::Exhaustive:
        return std::make_unique<ExhaustiveStrategy>();
    case StrategyKind::Greedy:
        return std::make_unique<GreedyStrategy>();
    case StrategyKind::Annealing:
        return std::make_unique<AnnealingStrategy>();
    }
    throw ModelError("unhandled strategy kind");
}

} // namespace ecochip
