/**
 * @file
 * Design-space search driver: binds a `SearchSpec` to the batch
 * engine and runs its strategy to completion.
 *
 * The driver is a thin conductor -- a generated space is just a
 * big request batch, so searching composes with everything the
 * engine already does: `--engine_threads` parallelism, scenario
 * context dedup, the SoA kernels, and the `--serve` result cache
 * all apply unchanged. Exhaustive search carries a bit-identity
 * contract: its recorded `BatchReport` equals `--batch` over the
 * hand-expanded request list (`expand()`) byte for byte, locked
 * by the search_equivalence CTest.
 */

#ifndef ECOCHIP_SEARCH_SEARCH_DRIVER_H
#define ECOCHIP_SEARCH_SEARCH_DRIVER_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "engine/analysis_engine.h"
#include "search/pareto.h"
#include "search/search_strategy.h"

namespace ecochip {

/** Everything one search run produced. */
struct SearchResult
{
    /** The spec that was run (catalog path already resolved). */
    SearchSpec spec;

    /** Total points of the generator's space. */
    std::size_t spaceSize = 0;

    /** Visited points, in first-evaluation order. */
    std::vector<EvaluatedPoint> evaluated;

    /**
     * Indices into `evaluated` of the feasible, non-dominated
     * points -- the Pareto frontier over the objective vector.
     * Deterministic order (ascending objectives, name-tied).
     */
    std::vector<std::size_t> frontier;

    /**
     * Index into `evaluated` of the best scalarized point (lowest
     * score; first-evaluated wins ties). Empty when no visited
     * point was feasible.
     */
    std::optional<std::size_t> best;

    /** Requests issued, in evaluation order. */
    std::vector<AnalysisRequest> requests;

    /**
     * Outcomes of `requests`, same order -- for exhaustive
     * search, byte-identical (through `writeBatchReportFile`) to
     * `--batch` over `SearchDriver::expand`'s list.
     */
    BatchReport report;
};

/**
 * Runs search specs against an engine configuration.
 *
 * Each `run()` builds a fresh `AnalysisEngine` whose registry is
 * the driver's options registry extended with the spec's catalog
 * (when given), so concurrent runs never share mutable state.
 */
class SearchDriver
{
  public:
    explicit SearchDriver(EngineOptions options = {});

    /**
     * Execute @p spec to completion.
     *
     * @throws ConfigError when the spec is invalid (no
     *         objectives, unknown generator, bad knobs).
     */
    SearchResult run(const SearchSpec &spec);

    /**
     * Hand-expand the spec's space into the exact request list
     * exhaustive search evaluates: every point in odometer
     * order, one estimate (plus one cost when a cost metric is
     * tracked) per point. `--search --expand` writes this list
     * as a `--batch` file; running it reproduces the exhaustive
     * report byte for byte.
     */
    static std::vector<AnalysisRequest>
    expand(const SearchSpec &spec, const ScenarioSpace &space);

    /** Validate spec invariants shared by `run` and the CLI. */
    static void validate(const SearchSpec &spec);

  private:
    EngineOptions options_;
};

} // namespace ecochip

#endif // ECOCHIP_SEARCH_SEARCH_DRIVER_H
