/**
 * @file
 * Design-space search specs and strategies.
 *
 * A `SearchSpec` names a scenario-space generator plus how to
 * search it: a strategy (exhaustive enumeration, greedy
 * hill-climb, or simulated annealing -- all behind one
 * `SearchStrategy` interface), the objectives to optimize
 * (scalarized for the climbers, kept as a vector for Pareto
 * frontier extraction), and constraint predicates that gate
 * feasibility (cost <= X, area <= Y, ...).
 *
 * Every strategy is deterministic: the climbers draw all
 * randomness from one seeded, portable PRNG and evaluate points
 * through the request-ordered batch engine, so a fixed seed is
 * bit-reproducible at any `--engine_threads` count. Specs
 * round-trip through JSON in `io/search_io.h`; the driver wiring
 * them to an `AnalysisEngine` lives in `search_driver.h`.
 */

#ifndef ECOCHIP_SEARCH_SEARCH_STRATEGY_H
#define ECOCHIP_SEARCH_SEARCH_STRATEGY_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "engine/analysis_engine.h"
#include "search/scenario_space.h"

namespace ecochip {

/**
 * The figures of merit a search can optimize or constrain. Carbon
 * metrics read the point's estimate report; `CostUsd` adds a cost
 * analysis per point; the last two derive from the per-chiplet
 * detail.
 */
enum class SearchMetric
{
    EmbodiedKg,     ///< Cemb (kg CO2)
    TotalKg,        ///< Ctot = Cemb + lifetime Cop (kg CO2)
    MfgKg,          ///< Cmfg (kg CO2)
    DesignKg,       ///< amortized Cdes (kg CO2)
    OperationalKg,  ///< lifetime Cop (kg CO2)
    PackageKg,      ///< CHI packaging + bonding (kg CO2)
    CostUsd,        ///< dollar cost per part (totalUsd)
    AreaMm2,        ///< total silicon area (sum of dies, mm^2)
    YieldMin,       ///< worst per-die yield (higher is better)
    PerfProxy,      ///< 7nm-equivalent silicon area (see below)
};

/** Config spelling of a metric ("embodied_kg", ...). */
const char *toString(SearchMetric metric);

/** Parse a metric from its config spelling. */
SearchMetric searchMetricFromString(const std::string &name,
                                    const std::string &context);

/** One optimized figure of merit. */
struct ObjectiveSpec
{
    SearchMetric metric = SearchMetric::EmbodiedKg;

    /** Maximize instead of minimize ("goal": "max"). */
    bool maximize = false;

    /** Scalarization weight (> 0). */
    double weight = 1.0;

    bool operator==(const ObjectiveSpec &) const = default;
};

/** One feasibility predicate (inclusive bounds). */
struct ConstraintSpec
{
    SearchMetric metric = SearchMetric::CostUsd;
    std::optional<double> min;
    std::optional<double> max;

    bool operator==(const ConstraintSpec &) const = default;
};

/** Search algorithm selector. */
enum class StrategyKind
{
    Exhaustive, ///< enumerate the whole space in odometer order
    Greedy,     ///< seeded multi-restart hill-climb
    Annealing,  ///< seeded simulated annealing
};

/** Config spelling of a strategy kind. */
const char *toString(StrategyKind kind);

/** Parse a strategy kind from its config spelling. */
StrategyKind strategyKindFromString(const std::string &name,
                                    const std::string &context);

/** Strategy selection plus its tuning knobs. */
struct StrategySpec
{
    StrategyKind kind = StrategyKind::Exhaustive;

    /** PRNG seed (greedy / annealing). Equal seeds give equal
     *  searches at any engine thread count. */
    std::uint64_t seed = 42;

    /** Greedy: independent restarts from random points. */
    int restarts = 4;

    /** Annealing: proposal steps. */
    int steps = 200;

    /** Annealing: initial temperature (score units). */
    double initialTemp = 1.0;

    /** Annealing: geometric cooling factor in (0, 1]. */
    double cooling = 0.95;

    bool operator==(const StrategySpec &) const = default;
};

/** A complete search specification (`--search SPEC.json`). */
struct SearchSpec
{
    /** Generator template to search (registry key). */
    std::string generator;

    /**
     * Scenario catalog declaring the generator; resolved
     * relative to the spec file by `loadSearchSpecFile`. Empty =
     * the generator is already in the driver's registry.
     */
    std::optional<std::string> catalog;

    StrategySpec strategy;

    /** Optimized metrics (>= 1). */
    std::vector<ObjectiveSpec> objectives;

    /** Feasibility predicates (may be empty). */
    std::vector<ConstraintSpec> constraints;

    /**
     * Points evaluated per engine batch during exhaustive
     * enumeration -- a scheduling knob only; results are
     * batch-size-independent.
     */
    int batchSize = 64;

    /** Cost knobs for `cost_usd` evaluations. */
    std::optional<CostParams> costParams;

    bool operator==(const SearchSpec &) const = default;
};

/**
 * The metrics a spec actually evaluates: objectives then
 * constraints, first occurrence wins. Every `EvaluatedPoint`
 * carries one value per entry, in this order.
 */
std::vector<SearchMetric>
trackedMetrics(const SearchSpec &spec);

/** One visited design point. */
struct EvaluatedPoint
{
    /** Flat index in the scenario space. */
    std::size_t flat = 0;

    /** Derived scenario name. */
    std::string name;

    /** True when every analysis of the point succeeded. */
    bool ok = false;

    /** First analysis error when !ok. */
    std::string error;

    /** Metric values, parallel to `trackedMetrics` (empty when
     *  !ok). */
    std::vector<double> metrics;

    /** True when ok and every constraint holds. */
    bool feasible = false;

    /**
     * Scalarized objective (sum of weight * value, maximized
     * metrics negated); +inf when infeasible or failed, so the
     * climbers never walk into an infeasible region by score.
     */
    double score = 0.0;
};

/**
 * Shared evaluation state of one search run: memoizes visited
 * points by flat index, pumps new points through the engine in
 * request order, and records the exact requests/outcomes so the
 * driver can emit a `BatchReport` equal to a hand-expanded
 * `--batch` over the same points.
 */
class SearchContext
{
  public:
    /**
     * @param spec Search specification (validated by the
     *        driver).
     * @param space The generator's scenario space.
     * @param engine Engine whose registry resolves the space's
     *        derived names.
     */
    SearchContext(const SearchSpec &spec,
                  const ScenarioSpace &space,
                  AnalysisEngine &engine);

    const SearchSpec &spec() const { return spec_; }
    const ScenarioSpace &space() const { return space_; }

    /**
     * Evaluate flat indices as one engine batch (already-visited
     * ones are served from the memo and not re-run). Returns one
     * index into `points()` per input, in input order.
     */
    std::vector<std::size_t>
    evaluate(const std::vector<std::size_t> &flats);

    /** Single-point convenience over `evaluate`. */
    std::size_t evaluateOne(std::size_t flat);

    /** Visited points, in first-evaluation order. */
    const std::vector<EvaluatedPoint> &points() const
    {
        return points_;
    }

    /** Requests issued, in evaluation order. */
    const std::vector<AnalysisRequest> &requests() const
    {
        return requests_;
    }

    /** Outcomes of `requests()`, same order. */
    const std::vector<RequestOutcome> &outcomes() const
    {
        return outcomes_;
    }

  private:
    const SearchSpec &spec_;
    const ScenarioSpace &space_;
    AnalysisEngine &engine_;
    std::vector<SearchMetric> tracked_;
    bool needsCost_ = false;

    std::vector<EvaluatedPoint> points_;
    std::vector<AnalysisRequest> requests_;
    std::vector<RequestOutcome> outcomes_;

    /** flat index -> slot in points_. */
    std::map<std::size_t, std::size_t> memo_;
};

/** One search algorithm; stateless between runs. */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /** Visit points of @p ctx's space until done. */
    virtual void run(SearchContext &ctx) = 0;
};

/** Build the strategy selected by @p spec. */
std::unique_ptr<SearchStrategy>
makeStrategy(const StrategySpec &spec);

} // namespace ecochip

#endif // ECOCHIP_SEARCH_SEARCH_STRATEGY_H
