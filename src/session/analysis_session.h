/**
 * @file
 * Synchronous analysis façade: one cached evaluation context,
 * every analysis as a uniform verb.
 *
 * The preferred entry point for new code is the declarative
 * request API (`session/analysis_request.h`): build
 * `AnalysisRequest` values -- JSON round-trippable through
 * `io/request_io.h` -- and hand them to the thread-pooled
 * `engine/AnalysisEngine` (`submit()` futures, completion-order
 * `runStream()` callbacks, or aggregate `runBatch()`), which
 * deduplicates scenario contexts across requests. Whole batches
 * scale past one process through the shard planner/runner
 * (`engine/shard_planner.h`, `engine/shard_runner.h`): sub-batch
 * files per worker process, reports merged byte-identical to the
 * single-process run. The session remains the right tool for
 * interactive, one-at-a-time use; its verbs are thin adapters
 * that build the equivalent request spec and run it inline
 * through the same `runSpec` executor the engine schedules, so
 * every path returns bit-identical results. The layering and
 * cache-ownership story is documented in `docs/architecture.md`;
 * wire formats in `docs/file_formats.md`.
 *
 * The paper's workflow is always the same shape -- load a design,
 * bind it to a technology database, then run one of several
 * analyses. `ScenarioBuilder` assembles that binding fluently
 * (from the scenario registry, a design directory on disk, or an
 * explicit SystemSpec), and `AnalysisSession` exposes the
 * analyses as verbs (`estimate()`, `sweep()`, `monteCarlo()`,
 * `sensitivity()`, `cost()`) over one immutable
 * `EvaluationContext`. `estimate()`, `sweep()`, and `cost()`
 * share the context's memoized estimator, so per-die
 * manufacturing and whole-system reports computed by one verb
 * are reused by the next (and by `withSystem()` siblings);
 * `monteCarlo()` and `sensitivity()` perturb the inputs per
 * trial/parameter, so they evaluate on purpose-built estimators
 * instead of the shared cache.
 *
 * The hot loops behind `sweep()`, `monteCarlo()`, and
 * `sensitivity()` run through the data-oriented batch kernels in
 * `src/kernels/` (structure-of-arrays trial columns, one
 * precompiled evaluation plan per scenario) and stay bit-identical
 * to the scalar `estimate()` path -- see docs/architecture.md,
 * "Data-oriented evaluation".
 *
 * @code
 *   auto session = ScenarioBuilder().scenario("ga102").build();
 *   auto point = session.estimate();
 *   auto space = session.sweep({7.0, 10.0, 14.0});
 *   auto bands = session.monteCarlo(1000, 42, Parallelism{4});
 *   std::cout << resultMarkdown(space);   // io/result_writer.h
 * @endcode
 */

#ifndef ECOCHIP_SESSION_ANALYSIS_SESSION_H
#define ECOCHIP_SESSION_ANALYSIS_SESSION_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "session/analysis_result.h"
#include "session/scenario_registry.h"

namespace ecochip {

/**
 * The immutable heart of a session: one technology database and
 * one configuration, bound into a shared estimator whose
 * evaluation cache every analysis of every session holding this
 * context reuses. Thread-safe: the estimator's cache is guarded
 * internally.
 */
class EvaluationContext
{
  public:
    /**
     * @param config Estimator configuration.
     * @param tech Technology calibration.
     */
    explicit EvaluationContext(EcoChipConfig config,
                               TechDb tech = TechDb())
        : estimator_(std::move(config), std::move(tech))
    {}

    /** The shared, cache-backed estimator. */
    const EcoChip &estimator() const { return estimator_; }

    /** Technology database in use. */
    const TechDb &tech() const { return estimator_.tech(); }

    /** Configuration in use. */
    const EcoChipConfig &config() const
    {
        return estimator_.config();
    }

  private:
    EcoChip estimator_;
};

/**
 * A system bound to an evaluation context, with every analysis as
 * a verb returning a uniform `AnalysisResult`.
 *
 * Sessions are cheap to copy and to re-target: `withSystem()`
 * yields a sibling session sharing the same context (and thus the
 * same caches) -- the natural shape of a DSE loop.
 */
class AnalysisSession
{
  public:
    /**
     * @param context Shared evaluation context (non-null).
     * @param system System under study.
     */
    AnalysisSession(
        std::shared_ptr<const EvaluationContext> context,
        SystemSpec system);

    /** The shared evaluation context. */
    const EvaluationContext &context() const { return *context_; }

    /** The system under study. */
    const SystemSpec &system() const { return system_; }

    /** Sibling session on the same context (shared caches). */
    AnalysisSession withSystem(SystemSpec system) const;

    /** Point estimate of the full carbon report (Eqs. 1-3). */
    AnalysisResult estimate() const;

    /**
     * Technology-space sweep over every node assignment.
     *
     * @param candidate_nodes_nm Candidate nodes for each chiplet.
     */
    AnalysisResult
    sweep(const std::vector<double> &candidate_nodes_nm) const;

    /** Sweep with per-chiplet candidate lists. */
    AnalysisResult
    sweep(const std::vector<std::vector<double>>
              &candidates_per_chiplet) const;

    /**
     * Monte-Carlo uncertainty bands.
     *
     * @param trials Sample count (>= 2).
     * @param seed PRNG seed; equal seeds give equal reports at
     *        any thread count.
     * @param parallelism Trial batching across worker threads.
     * @param bands Sampling half-widths.
     */
    AnalysisResult
    monteCarlo(int trials, std::uint64_t seed = 42,
               Parallelism parallelism = {},
               UncertaintyBands bands = UncertaintyBands()) const;

    /**
     * One-at-a-time sensitivity over the standard parameter set.
     *
     * @param metric Carbon metric to differentiate.
     * @param delta Relative perturbation.
     */
    AnalysisResult
    sensitivity(CarbonMetric metric = CarbonMetric::Embodied,
                double delta = 0.10) const;

    /** Dollar-cost breakdown under the configured package. */
    AnalysisResult cost(const CostParams &params = CostParams()) const;

  private:
    std::shared_ptr<const EvaluationContext> context_;
    SystemSpec system_;
};

/**
 * Fluent assembly of an `AnalysisSession`.
 *
 * Exactly one system source must be set: a registry `scenario()`,
 * a `designDirectory()` on disk, or an explicit `system()`.
 * Scenario/directory configurations can then be overridden
 * piecemeal (`packaging()`, `operating()`, ...).
 */
class ScenarioBuilder
{
  public:
    ScenarioBuilder() = default;

    /** Use a copy of @p registry instead of the built-in catalog. */
    ScenarioBuilder &registry(ScenarioRegistry registry);

    /** Start from a named scenario. */
    ScenarioBuilder &scenario(const std::string &name);

    /** Start from a design directory (`--design_dir` layout). */
    ScenarioBuilder &designDirectory(const std::string &dir);

    /** Start from an explicit system. */
    ScenarioBuilder &system(SystemSpec system);

    /** Replace the whole configuration. */
    ScenarioBuilder &config(EcoChipConfig config);

    /** Replace the technology calibration. */
    ScenarioBuilder &tech(TechDb tech);

    /** Override the packaging architecture. */
    ScenarioBuilder &packaging(PackagingArch arch);

    /** Override the operating specification. */
    ScenarioBuilder &operating(OperatingSpec spec);

    /** Toggle the Sec. V-C mask-NRE carbon extension. */
    ScenarioBuilder &includeMaskNre(bool on = true);

    /**
     * Build the session.
     *
     * @throws ConfigError unless exactly one system source was
     *         set, or when the scenario/directory is unknown.
     */
    AnalysisSession build() const;

  private:
    /** Custom catalog; the built-in registry when unset. */
    std::optional<ScenarioRegistry> registry_;
    std::optional<std::string> scenarioName_;
    std::optional<std::string> designDir_;
    std::optional<SystemSpec> system_;
    std::optional<EcoChipConfig> config_;
    TechDb tech_;
    std::optional<PackagingArch> packaging_;
    std::optional<OperatingSpec> operating_;
    std::optional<bool> includeMaskNre_;
};

} // namespace ecochip

#endif // ECOCHIP_SESSION_ANALYSIS_SESSION_H
