#include "session/scenario_registry.h"

#include <filesystem>
#include <memory>

#include "core/testcases.h"
#include "support/error.h"

namespace ecochip {

namespace {

ScenarioRegistry
makeBuiltin()
{
    ScenarioRegistry registry;

    registry.add(
        {"ga102",
         "GA102-class GPU, 3 chiplets (7,10,14) nm, RDL fanout",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::ga102ThreeChiplet(
                 tech, 7.0, 10.0, 14.0);
             bundle.config.package.arch =
                 PackagingArch::RdlFanout;
             bundle.config.operating =
                 testcases::ga102Operating();
             return bundle;
         }});

    registry.add(
        {"ga102-mono",
         "GA102-class GPU, monolithic 7 nm baseline",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::ga102Monolithic(tech);
             bundle.config.operating =
                 testcases::ga102Operating();
             return bundle;
         }});

    registry.add(
        {"ga102-hbm",
         "GA102-class GPU with 2x4 HBM memory towers on a "
         "passive interposer",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::ga102Hbm(tech, 2, 4);
             bundle.config.package.arch =
                 PackagingArch::PassiveInterposer;
             bundle.config.operating =
                 testcases::ga102Operating();
             return bundle;
         }});

    registry.add(
        {"a15",
         "A15-class mobile SoC, 3 chiplets (5,7,10) nm, RDL "
         "fanout, battery-rating operation",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::a15ThreeChiplet(
                 tech, 5.0, 7.0, 10.0);
             bundle.config.package.arch =
                 PackagingArch::RdlFanout;
             bundle.config.operating = testcases::a15Operating();
             return bundle;
         }});

    registry.add(
        {"a15-mono",
         "A15-class mobile SoC, monolithic 5 nm baseline",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::a15Monolithic(tech);
             bundle.config.operating = testcases::a15Operating();
             return bundle;
         }});

    registry.add(
        {"emr",
         "Emerald-Rapids-class server CPU, 2 compute dies, "
         "silicon bridges (EMIB)",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::emrTwoChiplet(tech);
             bundle.config.package.arch =
                 PackagingArch::SiliconBridge;
             bundle.config.operating = testcases::emrOperating();
             return bundle;
         }});

    registry.add(
        {"server-4die",
         "Server-class part: 4 EMR-class compute dies + IO hub + "
         "memory-side cache, silicon bridges",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::serverMultiDie(tech, 4);
             bundle.config.package.arch =
                 PackagingArch::SiliconBridge;
             bundle.config.operating =
                 testcases::serverOperating();
             return bundle;
         }});

    registry.add(
        {"hbm-accel",
         "HBM-stacked training accelerator: 7 nm compute die + "
         "4x4 DRAM towers on a passive interposer",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::hbmAccelerator(tech, 4, 4);
             bundle.config.package.arch =
                 PackagingArch::PassiveInterposer;
             bundle.config.operating =
                 testcases::hbmAcceleratorOperating();
             return bundle;
         }});

    registry.add(
        {"fpga-pca",
         "MANOJAVAM-class FPGA PCA accelerator: PE array + "
         "BRAM + transceiver dies, RDL fanout",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::fpgaPcaAccelerator(tech);
             bundle.config.package.arch =
                 PackagingArch::RdlFanout;
             bundle.config.operating =
                 testcases::fpgaPcaOperating();
             return bundle;
         }});

    registry.add(
        {"riscv-manycore64",
         "Sophon-SG2044-class 64-core RISC-V manycore: 4 "
         "cluster dies + IO hub + cache, silicon bridges",
         [](const TechDb &tech) {
             DesignBundle bundle;
             bundle.system = testcases::riscvManycore64(tech);
             bundle.config.package.arch =
                 PackagingArch::SiliconBridge;
             bundle.config.operating =
                 testcases::riscvManycore64Operating();
             return bundle;
         }});

    registry.add(
        {"arvr-2k",
         "AR/VR neural accelerator, 2K MACs with 4 stacked SRAM "
         "tiers (3D)",
         [](const TechDb &tech) {
             const testcases::ArvrPoint point =
                 testcases::arvrAccelerator(tech, "2K", 4);
             DesignBundle bundle;
             bundle.system = point.system;
             bundle.config.package.arch = PackagingArch::Stack3d;
             bundle.config.operating =
                 testcases::arvrOperating(point);
             return bundle;
         }});

    return registry;
}

} // namespace

const ScenarioRegistry &
ScenarioRegistry::builtin()
{
    static const ScenarioRegistry registry = makeBuiltin();
    return registry;
}

void
ScenarioRegistry::add(Scenario scenario)
{
    requireConfig(!scenario.name.empty(),
                  "scenario needs a name");
    requireConfig(static_cast<bool>(scenario.make),
                  "scenario \"" + scenario.name +
                      "\" needs a factory");
    requireConfig(!contains(scenario.name),
                  "scenario \"" + scenario.name +
                      "\" already registered");
    scenarios_.push_back(std::move(scenario));
}

void
ScenarioRegistry::loadFile(const std::string &path)
{
    loadJson(json::parseFile(path), path,
             std::filesystem::path(path)
                 .parent_path()
                 .string());
}

void
ScenarioRegistry::loadJson(const json::Value &doc,
                           const std::string &context,
                           const std::string &base_dir)
{
    rejectUnknownKeys(doc, {"scenarios", "generators"}, context);
    requireConfig(doc.contains("scenarios") ||
                      doc.contains("generators"),
                  context +
                      ": catalog has no scenarios or generators");

    if (doc.contains("generators")) {
        const auto &entries = doc.at("generators").asArray();
        requireConfig(!entries.empty(),
                      context + ": empty generators array");
        for (const auto &entry : entries)
            addGenerator(
                generatorFromJson(entry, context, base_dir));
    }

    if (!doc.contains("scenarios"))
        return;
    const auto &entries = doc.at("scenarios").asArray();
    requireConfig(!entries.empty(),
                  context + ": catalog has no scenarios");

    for (const auto &entry : entries) {
        rejectUnknownKeys(entry,
                          {"name", "description", "architecture",
                           "design_dir", "package", "design",
                           "operational"},
                          context);
        Scenario scenario;
        scenario.name = entry.at("name").asString();
        scenario.description =
            entry.stringOr("description",
                           "user scenario from " + context);
        const std::string entry_context =
            context + ": scenario \"" + scenario.name + "\"";

        const bool inline_arch = entry.contains("architecture");
        const bool from_dir = entry.contains("design_dir");
        requireConfig(inline_arch != from_dir,
                      entry_context +
                          " needs exactly one of architecture / "
                          "design_dir");

        if (from_dir) {
            requireConfig(!entry.contains("package") &&
                              !entry.contains("design") &&
                              !entry.contains("operational"),
                          entry_context +
                              ": design_dir scenarios take their "
                              "knob files from the directory");
            const std::filesystem::path dir(
                entry.at("design_dir").asString());
            const std::string resolved =
                dir.is_absolute()
                    ? dir.string()
                    : (std::filesystem::path(base_dir) / dir)
                          .string();
            // Same fail-at-load contract as inline entries: the
            // directory (and its architecture.json) must exist
            // now; its contents are parsed at instantiate time.
            requireConfig(
                std::filesystem::is_directory(resolved),
                entry_context + ": not a design directory: " +
                    resolved);
            requireConfig(
                std::filesystem::exists(
                    std::filesystem::path(resolved) /
                    "architecture.json"),
                entry_context + ": missing architecture.json "
                                "in " + resolved);
            scenario.make = [resolved](const TechDb &tech) {
                return loadDesignDirectory(resolved, tech);
            };
        } else {
            // Capture the documents by value: the factory must
            // outlive the parsed catalog, and instantiation binds
            // a technology database only at build() time.
            const json::Value arch = entry.at("architecture");
            auto optional_doc =
                [&](const char *key) -> std::shared_ptr<
                                         const json::Value> {
                if (!entry.contains(key))
                    return nullptr;
                return std::make_shared<const json::Value>(
                    entry.at(key));
            };
            const auto pkg = optional_doc("package");
            const auto design = optional_doc("design");
            const auto operational = optional_doc("operational");
            scenario.make = [arch, pkg, design, operational,
                             entry_context](const TechDb &tech) {
                return designBundleFromJson(
                    arch, pkg.get(), design.get(),
                    operational.get(), tech, entry_context);
            };
            // Instantiate once against the default calibration
            // so a schema-broken catalog fails at load time, not
            // at first use (the schema checks are
            // tech-independent; only area inversion numerics
            // depend on the database bound at build() time).
            scenario.make(TechDb());
        }
        add(std::move(scenario));
    }
}

void
ScenarioRegistry::addGenerator(GeneratorTemplate generator)
{
    requireConfig(!generator.name.empty(),
                  "generator needs a name");
    requireConfig(generator.name.find('/') ==
                      std::string::npos,
                  "generator name \"" + generator.name +
                      "\" must not contain '/'");
    requireConfig(!contains(generator.name),
                  "generator \"" + generator.name +
                      "\" collides with a registered scenario");
    for (const auto &other : generators_)
        requireConfig(other.name != generator.name,
                      "generator \"" + generator.name +
                          "\" already registered");
    // Validates axis sizes and the point-count ceiling.
    const ScenarioSpace validated(generator);
    (void)validated;
    generators_.push_back(std::move(generator));
}

const GeneratorTemplate &
ScenarioRegistry::generator(const std::string &name) const
{
    for (const auto &generator : generators_)
        if (generator.name == name)
            return generator;

    std::string available;
    for (const auto &generator : generators_) {
        if (!available.empty())
            available += ", ";
        available += generator.name;
    }
    throw ConfigError("unknown generator \"" + name +
                      "\" (loaded: " +
                      (available.empty() ? "none" : available) +
                      ")");
}

bool
ScenarioRegistry::contains(const std::string &name) const
{
    for (const auto &scenario : scenarios_)
        if (scenario.name == name)
            return true;
    for (const auto &generator : generators_)
        if (ScenarioSpace(generator).parseName(name))
            return true;
    return false;
}

const Scenario &
ScenarioRegistry::get(const std::string &name) const
{
    for (const auto &scenario : scenarios_)
        if (scenario.name == name)
            return scenario;

    std::string available;
    for (const auto &scenario : scenarios_) {
        if (!available.empty())
            available += ", ";
        available += scenario.name;
    }
    std::string message = "unknown scenario \"" + name +
                          "\" (available: " + available + ")";
    if (!generators_.empty()) {
        message += " (generator templates: ";
        bool first = true;
        for (const auto &generator : generators_) {
            if (!first)
                message += ", ";
            first = false;
            message += generator.name + "/...";
        }
        message += ")";
    }
    throw ConfigError(message);
}

DesignBundle
ScenarioRegistry::instantiate(const std::string &name,
                              const TechDb &tech) const
{
    // Derived generator point names resolve lazily -- the space
    // is never materialized into Scenario entries.
    for (const auto &generator : generators_) {
        const ScenarioSpace space(generator);
        if (const auto indices = space.parseName(name))
            return space.instantiate(*indices, tech);
    }
    return get(name).make(tech);
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(scenarios_.size());
    for (const auto &scenario : scenarios_)
        out.push_back(scenario.name);
    return out;
}

} // namespace ecochip
