#include "session/analysis_session.h"

#include <utility>

#include "session/analysis_request.h"
#include "support/error.h"

namespace ecochip {

const char *
toString(AnalysisKind kind)
{
    switch (kind) {
      case AnalysisKind::Estimate: return "estimate";
      case AnalysisKind::Sweep: return "sweep";
      case AnalysisKind::MonteCarlo: return "monte_carlo";
      case AnalysisKind::Sensitivity: return "sensitivity";
      case AnalysisKind::Cost: return "cost";
    }
    return "unknown";
}

const char *
toString(CarbonMetric metric)
{
    switch (metric) {
      case CarbonMetric::Embodied: return "embodied";
      case CarbonMetric::Operational: return "operational";
      case CarbonMetric::Total: return "total";
    }
    return "unknown";
}

AnalysisSession::AnalysisSession(
    std::shared_ptr<const EvaluationContext> context,
    SystemSpec system)
    : context_(std::move(context)), system_(std::move(system))
{
    requireConfig(static_cast<bool>(context_),
                  "session needs an evaluation context");
    requireConfig(!system_.chiplets.empty(),
                  "session system has no chiplets");
}

AnalysisSession
AnalysisSession::withSystem(SystemSpec system) const
{
    return AnalysisSession(context_, std::move(system));
}

// Every verb is a thin adapter: build the declarative spec, run
// it inline through the same executor the AnalysisEngine
// schedules, so the two paths cannot drift apart.

AnalysisResult
AnalysisSession::estimate() const
{
    return runSpec(*this, EstimateSpec{});
}

AnalysisResult
AnalysisSession::sweep(
    const std::vector<double> &candidate_nodes_nm) const
{
    SweepSpec spec;
    spec.nodesNm = candidate_nodes_nm;
    return runSpec(*this, spec);
}

AnalysisResult
AnalysisSession::sweep(
    const std::vector<std::vector<double>>
        &candidates_per_chiplet) const
{
    SweepSpec spec;
    spec.nodesPerChiplet = candidates_per_chiplet;
    return runSpec(*this, spec);
}

AnalysisResult
AnalysisSession::monteCarlo(int trials, std::uint64_t seed,
                            Parallelism parallelism,
                            UncertaintyBands bands) const
{
    MonteCarloSpec spec;
    spec.trials = trials;
    spec.seed = seed;
    spec.threads = parallelism.threads;
    spec.bands = bands;
    return runSpec(*this, spec);
}

AnalysisResult
AnalysisSession::sensitivity(CarbonMetric metric,
                             double delta) const
{
    SensitivitySpec spec;
    spec.metric = metric;
    spec.delta = delta;
    return runSpec(*this, spec);
}

AnalysisResult
AnalysisSession::cost(const CostParams &params) const
{
    CostSpec spec;
    spec.params = params;
    return runSpec(*this, spec);
}

ScenarioBuilder &
ScenarioBuilder::registry(ScenarioRegistry registry)
{
    registry_ = std::move(registry);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::scenario(const std::string &name)
{
    scenarioName_ = name;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::designDirectory(const std::string &dir)
{
    designDir_ = dir;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::system(SystemSpec system)
{
    system_ = std::move(system);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::config(EcoChipConfig config)
{
    config_ = std::move(config);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::tech(TechDb tech)
{
    tech_ = std::move(tech);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::packaging(PackagingArch arch)
{
    packaging_ = arch;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::operating(OperatingSpec spec)
{
    operating_ = spec;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::includeMaskNre(bool on)
{
    includeMaskNre_ = on;
    return *this;
}

AnalysisSession
ScenarioBuilder::build() const
{
    const int sources = (scenarioName_ ? 1 : 0) +
                        (designDir_ ? 1 : 0) +
                        (system_ ? 1 : 0);
    requireConfig(sources == 1,
                  "set exactly one of scenario(), "
                  "designDirectory(), system()");

    SystemSpec system;
    EcoChipConfig config;
    if (scenarioName_) {
        const ScenarioRegistry &registry =
            registry_ ? *registry_ : ScenarioRegistry::builtin();
        DesignBundle bundle =
            registry.instantiate(*scenarioName_, tech_);
        system = std::move(bundle.system);
        config = std::move(bundle.config);
    } else if (designDir_) {
        DesignBundle bundle =
            loadDesignDirectory(*designDir_, tech_);
        system = std::move(bundle.system);
        config = std::move(bundle.config);
    } else {
        system = *system_;
    }

    if (config_)
        config = *config_;
    if (packaging_)
        config.package.arch = *packaging_;
    if (operating_)
        config.operating = *operating_;
    if (includeMaskNre_)
        config.includeMaskNre = *includeMaskNre_;

    auto context = std::make_shared<const EvaluationContext>(
        std::move(config), tech_);
    return AnalysisSession(std::move(context),
                           std::move(system));
}

} // namespace ecochip
