#include "session/analysis_request.h"

#include <utility>

#include "core/explorer.h"
#include "session/analysis_session.h"
#include "support/error.h"

namespace ecochip {

ScenarioRef
ScenarioRef::scenario(std::string name)
{
    ScenarioRef ref;
    ref.kind = Kind::Registry;
    ref.value = std::move(name);
    return ref;
}

ScenarioRef
ScenarioRef::designDirectory(std::string dir)
{
    ScenarioRef ref;
    ref.kind = Kind::DesignDirectory;
    ref.value = std::move(dir);
    return ref;
}

std::string
ScenarioRef::label() const
{
    return (kind == Kind::Registry ? "scenario:" : "dir:") +
           value;
}

AnalysisKind
specKind(const AnalysisSpec &spec)
{
    return std::visit(
        [](const auto &alternative) {
            using Spec = std::decay_t<decltype(alternative)>;
            if constexpr (std::is_same_v<Spec, EstimateSpec>)
                return AnalysisKind::Estimate;
            else if constexpr (std::is_same_v<Spec, SweepSpec>)
                return AnalysisKind::Sweep;
            else if constexpr (std::is_same_v<Spec,
                                              MonteCarloSpec>)
                return AnalysisKind::MonteCarlo;
            else if constexpr (std::is_same_v<Spec,
                                              SensitivitySpec>)
                return AnalysisKind::Sensitivity;
            else
                return AnalysisKind::Cost;
        },
        spec);
}

namespace {

AnalysisResult
runEstimate(const AnalysisSession &session, const EstimateSpec &)
{
    AnalysisResult result;
    result.kind = AnalysisKind::Estimate;
    result.scenario = session.system().name;
    result.detail = "point estimate";
    result.report =
        session.context().estimator().estimate(session.system());
    return result;
}

AnalysisResult
runSweep(const AnalysisSession &session, const SweepSpec &spec)
{
    requireConfig(spec.nodesNm.empty() !=
                      spec.nodesPerChiplet.empty(),
                  "sweep spec needs exactly one of nodes_nm / "
                  "nodes_per_chiplet");
    std::vector<std::vector<double>> expanded;
    const std::vector<std::vector<double>> *candidates =
        &spec.nodesPerChiplet;
    if (spec.nodesPerChiplet.empty()) {
        expanded.assign(session.system().chiplets.size(),
                        spec.nodesNm);
        candidates = &expanded;
    }

    TechSpaceExplorer explorer(session.context().estimator());

    AnalysisResult result;
    result.kind = AnalysisKind::Sweep;
    result.scenario = session.system().name;
    result.points = explorer.sweep(session.system(), *candidates);
    result.detail = std::to_string(result.points.size()) +
                    " node assignments";
    return result;
}

AnalysisResult
runMonteCarlo(const AnalysisSession &session,
              const MonteCarloSpec &spec)
{
    MonteCarloAnalyzer analyzer(session.context().config(),
                                session.context().tech(),
                                spec.bands);

    AnalysisResult result;
    result.kind = AnalysisKind::MonteCarlo;
    result.scenario = session.system().name;
    result.trials = spec.trials;
    result.seed = spec.seed;
    result.detail =
        std::to_string(spec.trials) + " trials, seed " +
        std::to_string(spec.seed) +
        (spec.threads > 1
             ? ", " + std::to_string(spec.threads) + " threads"
             : "");
    result.uncertainty =
        analyzer.run(session.system(), spec.trials, spec.seed,
                     Parallelism{spec.threads});
    return result;
}

AnalysisResult
runSensitivity(const AnalysisSession &session,
               const SensitivitySpec &spec)
{
    SensitivityAnalyzer analyzer(session.context().config(),
                                 session.context().tech());

    AnalysisResult result;
    result.kind = AnalysisKind::Sensitivity;
    result.scenario = session.system().name;
    result.metric = spec.metric;
    result.detail = std::string(toString(spec.metric)) +
                    " elasticities at +/-" +
                    std::to_string(static_cast<int>(
                        spec.delta * 100.0 + 0.5)) +
                    "%";
    result.sensitivity = analyzer.analyze(
        session.system(),
        SensitivityAnalyzer::standardParameters(), spec.metric,
        spec.delta);
    return result;
}

AnalysisResult
runCost(const AnalysisSession &session, const CostSpec &spec)
{
    AnalysisResult result;
    result.kind = AnalysisKind::Cost;
    result.scenario = session.system().name;
    result.detail = "dollar cost per part";
    result.cost = session.context().estimator().cost(
        session.system(), spec.params);
    return result;
}

} // namespace

AnalysisResult
runSpec(const AnalysisSession &session, const AnalysisSpec &spec)
{
    return std::visit(
        [&](const auto &alternative) {
            using Spec = std::decay_t<decltype(alternative)>;
            if constexpr (std::is_same_v<Spec, EstimateSpec>)
                return runEstimate(session, alternative);
            else if constexpr (std::is_same_v<Spec, SweepSpec>)
                return runSweep(session, alternative);
            else if constexpr (std::is_same_v<Spec,
                                              MonteCarloSpec>)
                return runMonteCarlo(session, alternative);
            else if constexpr (std::is_same_v<Spec,
                                              SensitivitySpec>)
                return runSensitivity(session, alternative);
            else
                return runCost(session, alternative);
        },
        spec);
}

CarbonMetric
carbonMetricFromString(const std::string &name)
{
    if (name == "embodied")
        return CarbonMetric::Embodied;
    if (name == "operational")
        return CarbonMetric::Operational;
    if (name == "total")
        return CarbonMetric::Total;
    throw ConfigError("unknown carbon metric \"" + name +
                      "\" (expected embodied, operational, or "
                      "total)");
}

AnalysisKind
analysisKindFromString(const std::string &name)
{
    if (name == "estimate")
        return AnalysisKind::Estimate;
    if (name == "sweep")
        return AnalysisKind::Sweep;
    if (name == "monte_carlo")
        return AnalysisKind::MonteCarlo;
    if (name == "sensitivity")
        return AnalysisKind::Sensitivity;
    if (name == "cost")
        return AnalysisKind::Cost;
    throw ConfigError("unknown analysis kind \"" + name +
                      "\" (expected estimate, sweep, "
                      "monte_carlo, sensitivity, or cost)");
}

} // namespace ecochip
