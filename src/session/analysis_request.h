/**
 * @file
 * Declarative analysis requests: *what* to compute, decoupled from
 * *how* it is scheduled.
 *
 * An `AnalysisRequest` is a value -- a scenario binding plus a
 * tagged spec of one analysis verb -- that can be built in code,
 * round-tripped through JSON (`io/request_io.h`), shipped in batch
 * catalogs, and executed either inline by `AnalysisSession` (whose
 * verbs are thin adapters over `runSpec`) or asynchronously by the
 * thread-pooled `engine/AnalysisEngine`. Executing the same spec
 * through either path yields bit-identical results.
 */

#ifndef ECOCHIP_SESSION_ANALYSIS_REQUEST_H
#define ECOCHIP_SESSION_ANALYSIS_REQUEST_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "analysis/montecarlo.h"
#include "analysis/sensitivity.h"
#include "cost/cost_model.h"
#include "session/analysis_result.h"

namespace ecochip {

class AnalysisSession;

/**
 * The scenario a request binds to: a named entry of a
 * `ScenarioRegistry` or a design directory on disk. Requests with
 * equal bindings share one `EvaluationContext` (and thus one
 * evaluation cache) inside an `AnalysisEngine`.
 */
struct ScenarioRef
{
    enum class Kind
    {
        /** Named scenario resolved against a registry. */
        Registry,

        /** `--design_dir` layout on disk. */
        DesignDirectory,
    };

    Kind kind = Kind::Registry;

    /** Scenario name or directory path, per `kind`. */
    std::string value;

    /** Binding to registry scenario @p name. */
    static ScenarioRef scenario(std::string name);

    /** Binding to design directory @p dir. */
    static ScenarioRef designDirectory(std::string dir);

    /** Unique human-readable key ("scenario:ga102", "dir:..."). */
    std::string label() const;

    bool operator==(const ScenarioRef &) const = default;
};

/** Point estimate of the full carbon report (Eqs. 1-3). */
struct EstimateSpec
{
    bool operator==(const EstimateSpec &) const = default;
};

/**
 * Technology-space sweep. Exactly one of the candidate lists must
 * be non-empty: `nodesNm` applies one list to every chiplet,
 * `nodesPerChiplet` gives each chiplet its own list.
 */
struct SweepSpec
{
    std::vector<double> nodesNm;
    std::vector<std::vector<double>> nodesPerChiplet;

    bool operator==(const SweepSpec &) const = default;
};

/** Monte-Carlo uncertainty bands. */
struct MonteCarloSpec
{
    /** Sample count (>= 2). */
    int trials = 1000;

    /** PRNG seed; equal seeds give equal reports at any thread
     *  count. */
    std::uint64_t seed = 42;

    /** Trial batching across worker threads (inner parallelism,
     *  independent of the engine's request-level pool). */
    int threads = 1;

    /** Sampling half-widths. */
    UncertaintyBands bands;

    bool operator==(const MonteCarloSpec &) const = default;
};

/** One-at-a-time sensitivity over the standard parameter set. */
struct SensitivitySpec
{
    CarbonMetric metric = CarbonMetric::Embodied;

    /** Relative perturbation. */
    double delta = 0.10;

    bool operator==(const SensitivitySpec &) const = default;
};

/** Dollar-cost breakdown under the configured package. */
struct CostSpec
{
    CostParams params;

    bool operator==(const CostSpec &) const = default;
};

/** Tagged union of every analysis verb's arguments. */
using AnalysisSpec =
    std::variant<EstimateSpec, SweepSpec, MonteCarloSpec,
                 SensitivitySpec, CostSpec>;

/** The `AnalysisKind` a spec alternative executes as. */
AnalysisKind specKind(const AnalysisSpec &spec);

/**
 * One declarative unit of work: which scenario, which analysis.
 */
struct AnalysisRequest
{
    /** Scenario binding. */
    ScenarioRef scenario;

    /** Analysis to run against it. */
    AnalysisSpec spec = EstimateSpec{};

    /** Kind tag of `spec`. */
    AnalysisKind kind() const { return specKind(spec); }

    bool operator==(const AnalysisRequest &) const = default;
};

/**
 * Execute a spec against an already-bound session -- the single
 * evaluation path shared by the `AnalysisSession` verbs and the
 * `AnalysisEngine` scheduler.
 *
 * @param session Session holding the scenario's evaluation
 *        context.
 * @param spec Analysis to run.
 * @throws ConfigError on invalid spec arguments.
 */
AnalysisResult runSpec(const AnalysisSession &session,
                       const AnalysisSpec &spec);

/** Parse a lower-snake metric name ("embodied", ...). */
CarbonMetric carbonMetricFromString(const std::string &name);

/** Parse a lower-snake analysis kind name ("estimate", ...). */
AnalysisKind analysisKindFromString(const std::string &name);

} // namespace ecochip

#endif // ECOCHIP_SESSION_ANALYSIS_REQUEST_H
