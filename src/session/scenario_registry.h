/**
 * @file
 * Named scenario registry: every built-in workload as a
 * (system, configuration) factory addressable by name.
 *
 * The paper's workflow always starts from "a design bound to a
 * tech database"; the registry makes those starting points
 * first-class so the CLI (`eco_chip --scenario ga102`), the
 * examples, and downstream DSE loops share one catalog instead of
 * hand-wiring testcase helpers.
 */

#ifndef ECOCHIP_SESSION_SCENARIO_REGISTRY_H
#define ECOCHIP_SESSION_SCENARIO_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "io/config_loader.h"
#include "json/json.h"
#include "search/scenario_space.h"
#include "tech/tech_db.h"

namespace ecochip {

/** One named workload: a system + configuration factory. */
struct Scenario
{
    /** Registry key ("ga102", "server-4die", ...). */
    std::string name;

    /** One-line description for listings. */
    std::string description;

    /**
     * Instantiates the scenario against a technology database.
     * Returns the system and the full estimator configuration
     * (packaging choice, operating spec, model toggles).
     */
    std::function<DesignBundle(const TechDb &)> make;
};

/**
 * Registry of named scenarios.
 *
 * `builtin()` carries the paper's GA102/A15/EMR/ARVR testcases
 * plus the server-class multi-die part and the HBM-stacked
 * accelerator; custom registries can be built up with `add()`.
 */
class ScenarioRegistry
{
  public:
    /** Empty registry (for custom catalogs). */
    ScenarioRegistry() = default;

    /** The built-in catalog (constructed once). */
    static const ScenarioRegistry &builtin();

    /**
     * Register a scenario.
     *
     * @param scenario Must have a unique, non-empty name and a
     *        callable factory.
     */
    void add(Scenario scenario);

    /**
     * Register every scenario of a JSON catalog file, so new
     * workloads (and `--batch` request files naming them) need no
     * recompilation.
     *
     * Schema:
     * @code{.json}
     * {
     *   "scenarios": [
     *     {"name": "my-soc",
     *      "description": "two-chiplet custom part",
     *      "architecture": { ... architecture.json schema ... },
     *      "package": { ... packageC.json schema ... },
     *      "design": { ... designC.json schema ... },
     *      "operational": { ... operationalC.json schema ... }},
     *     {"name": "shipped-ga102",
     *      "design_dir": "../testcases/GA102"}
     *   ]
     * }
     * @endcode
     *
     * Each entry provides exactly one of an inline `architecture`
     * document (with optional knob documents) or a `design_dir`
     * (resolved relative to the catalog file). Unknown keys are
     * rejected with the file and key named.
     *
     * A catalog may also carry a top-level `generators` array of
     * scenario-space templates (`generatorFromJson` schema); the
     * registry then resolves their derived point names
     * (`<generator>/<axis>=<value>/...`) in `contains()` /
     * `instantiate()` without ever materializing the space.
     *
     * @param path Path to the catalog JSON.
     * @throws ConfigError on malformed catalogs or duplicate
     *         names.
     */
    void loadFile(const std::string &path);

    /** Register catalog scenarios from a parsed document. */
    void loadJson(const json::Value &doc,
                  const std::string &context,
                  const std::string &base_dir = ".");

    /**
     * Register a scenario-space generator template. Its derived
     * point names become resolvable; the template itself is
     * listed via `generators()`.
     */
    void addGenerator(GeneratorTemplate generator);

    /** Loaded generator templates, in registration order. */
    const std::vector<GeneratorTemplate> &generators() const
    {
        return generators_;
    }

    /**
     * Lookup a generator template by name.
     *
     * @throws ConfigError listing the loaded generator names when
     *         @p name is unknown.
     */
    const GeneratorTemplate &
    generator(const std::string &name) const;

    /**
     * True when @p name is a registered scenario or a point of a
     * loaded generator's space.
     */
    bool contains(const std::string &name) const;

    /**
     * Lookup an explicitly registered scenario by name. Derived
     * generator points are not materialized as Scenario entries;
     * resolve those through `instantiate()`.
     *
     * @throws ConfigError listing the available names when @p name
     *         is unknown.
     */
    const Scenario &get(const std::string &name) const;

    /**
     * Instantiate a scenario against @p tech. Accepts registered
     * scenario names and derived generator point names
     * (`<generator>/<axis>=<value>/...`).
     */
    DesignBundle instantiate(const std::string &name,
                             const TechDb &tech) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** All scenarios, in registration order. */
    const std::vector<Scenario> &scenarios() const
    {
        return scenarios_;
    }

  private:
    std::vector<Scenario> scenarios_;
    std::vector<GeneratorTemplate> generators_;
};

} // namespace ecochip

#endif // ECOCHIP_SESSION_SCENARIO_REGISTRY_H
