/**
 * @file
 * Tagged result of one `AnalysisSession` verb.
 *
 * Every analysis the paper's workflow runs -- point estimate,
 * node-space sweep, Monte-Carlo bands, sensitivity, dollar cost --
 * returns this one type, so callers render and serialize results
 * through a single path (`io/result_writer.h`) no matter which
 * verb produced them.
 */

#ifndef ECOCHIP_SESSION_ANALYSIS_RESULT_H
#define ECOCHIP_SESSION_ANALYSIS_RESULT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/montecarlo.h"
#include "analysis/sensitivity.h"
#include "core/ecochip.h"
#include "core/explorer.h"
#include "cost/cost_model.h"

namespace ecochip {

/** Which analysis verb produced a result. */
enum class AnalysisKind
{
    Estimate,
    Sweep,
    MonteCarlo,
    Sensitivity,
    Cost,
};

/** Lower-snake name of an analysis kind. */
const char *toString(AnalysisKind kind);

/** Lower-snake name of a carbon metric. */
const char *toString(CarbonMetric metric);

/**
 * The uniform result of one analysis.
 *
 * Exactly the payload matching `kind` is populated; the rest stay
 * empty. `scenario` names the system under study and `detail`
 * summarizes the verb's arguments for report headers.
 */
struct AnalysisResult
{
    AnalysisKind kind = AnalysisKind::Estimate;

    /** System under study (SystemSpec::name). */
    std::string scenario;

    /** One-line description of the verb and its arguments. */
    std::string detail;

    /** Point estimate (`estimate()`). */
    std::optional<CarbonReport> report;

    /** Node-space sweep (`sweep()`), in lexicographic order. */
    std::vector<ExplorationPoint> points;

    /** Carbon distribution bands (`monteCarlo()`). */
    std::optional<UncertaintyReport> uncertainty;

    /** Monte-Carlo trial count (MonteCarlo only). */
    int trials = 0;

    /** Monte-Carlo seed (MonteCarlo only). */
    std::uint64_t seed = 0;

    /** Elasticity rows (`sensitivity()`). */
    std::vector<SensitivityResult> sensitivity;

    /** Differentiated metric (Sensitivity only). */
    CarbonMetric metric = CarbonMetric::Embodied;

    /** Dollar-cost breakdown (`cost()`). */
    std::optional<CostBreakdown> cost;
};

} // namespace ecochip

#endif // ECOCHIP_SESSION_ANALYSIS_RESULT_H
