/**
 * @file
 * Small sample-statistics helper for the uncertainty module.
 */

#ifndef ECOCHIP_SUPPORT_STATS_H
#define ECOCHIP_SUPPORT_STATS_H

#include <vector>

namespace ecochip {

/** Summary statistics of a sample set. */
class SampleStats
{
  public:
    /** Construct from samples (copied and sorted internally). */
    explicit SampleStats(std::vector<double> samples);

    /** Number of samples. */
    std::size_t count() const { return sorted_.size(); }

    /** Arithmetic mean. */
    double mean() const { return mean_; }

    /** Sample standard deviation (n-1 denominator). */
    double stddev() const { return stddev_; }

    /** Smallest sample. */
    double min() const { return sorted_.front(); }

    /** Largest sample. */
    double max() const { return sorted_.back(); }

    /**
     * Linear-interpolation percentile.
     *
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

  private:
    std::vector<double> sorted_;
    double mean_ = 0.0;
    double stddev_ = 0.0;
};

} // namespace ecochip

#endif // ECOCHIP_SUPPORT_STATS_H
