#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace ecochip {

SampleStats::SampleStats(std::vector<double> samples)
    : sorted_(std::move(samples))
{
    requireConfig(!sorted_.empty(),
                  "statistics need at least one sample");
    std::sort(sorted_.begin(), sorted_.end());

    double sum = 0.0;
    for (double v : sorted_)
        sum += v;
    mean_ = sum / static_cast<double>(sorted_.size());

    if (sorted_.size() > 1) {
        double ss = 0.0;
        for (double v : sorted_)
            ss += (v - mean_) * (v - mean_);
        stddev_ = std::sqrt(
            ss / static_cast<double>(sorted_.size() - 1));
    }
}

double
SampleStats::percentile(double p) const
{
    requireConfig(p >= 0.0 && p <= 100.0,
                  "percentile must be in [0, 100]");
    if (sorted_.size() == 1)
        return sorted_.front();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

} // namespace ecochip
