/**
 * @file
 * Piecewise-linear interpolation tables.
 *
 * Nearly every technology parameter in ECO-CHIP (defect density,
 * transistor density, energy per area, EDA productivity, ...) is
 * published for a handful of discrete process nodes. The paper
 * interpolates between published points when a node falls between
 * them; PiecewiseLinear is the single implementation of that idiom.
 */

#ifndef ECOCHIP_SUPPORT_INTERP_H
#define ECOCHIP_SUPPORT_INTERP_H

#include <initializer_list>
#include <utility>
#include <vector>

namespace ecochip {

/**
 * A monotone-x piecewise-linear function y = f(x).
 *
 * Points are sorted by x on construction. Evaluation clamps to the
 * first/last segment value outside the covered range (technology
 * tables saturate rather than extrapolate, matching how the paper
 * treats parameter ranges in Table I).
 */
class PiecewiseLinear
{
  public:
    /** Construct an empty table; points must be added before eval. */
    PiecewiseLinear() = default;

    /**
     * Construct from a list of (x, y) pairs in any order.
     *
     * @param points Sample points; duplicate x values are rejected.
     */
    PiecewiseLinear(std::initializer_list<std::pair<double, double>> points);

    /** Construct from a vector of (x, y) pairs in any order. */
    explicit PiecewiseLinear(
        std::vector<std::pair<double, double>> points);

    /**
     * Add one sample point. Re-sorts internally.
     *
     * @param x Abscissa; must not duplicate an existing point.
     * @param y Ordinate.
     */
    void addPoint(double x, double y);

    /**
     * Evaluate the function at @p x with clamping outside the range.
     *
     * @param x Query abscissa.
     * @return Interpolated (or clamped) ordinate.
     */
    double eval(double x) const;

    /**
     * The resolved segment for a query abscissa: eval(x) computes
     * exactly yLo + t * (yHi - yLo) from these values. Batch
     * evaluators hoist the segment out of per-trial loops so that
     * scaled re-evaluations reproduce eval() bit for bit without
     * re-running the binary search.
     */
    struct Segment
    {
        double yLo; ///< Ordinate of the lower knot (or clamp value).
        double yHi; ///< Ordinate of the upper knot (or clamp value).
        double t;   ///< Interpolation parameter; 0 when clamped.
    };

    /**
     * Resolve the segment eval(x) would interpolate on.
     *
     * @param x Query abscissa.
     * @return The clamped or interior segment at @p x.
     */
    Segment segment(double x) const;

    /** Number of sample points. */
    std::size_t size() const { return points_.size(); }

    /** True when no points have been added. */
    bool empty() const { return points_.empty(); }

    /** Smallest covered abscissa. */
    double minX() const;

    /** Largest covered abscissa. */
    double maxX() const;

    /** Smallest sampled ordinate. */
    double minY() const;

    /** Largest sampled ordinate. */
    double maxY() const;

  private:
    void sortAndValidate();

    std::vector<std::pair<double, double>> points_;
};

/**
 * Ordinary least-squares fit of y = slope * x + intercept.
 *
 * Used by the design-CFP model to build the "near-linear regression
 * model based on productivity for different technology nodes"
 * (paper Sec. III-E).
 */
class LinearRegression
{
  public:
    /**
     * Fit the regression to the given samples.
     *
     * @param points At least two samples with distinct x values.
     */
    explicit LinearRegression(
        const std::vector<std::pair<double, double>> &points);

    /** Fitted slope. */
    double slope() const { return slope_; }

    /** Fitted intercept. */
    double intercept() const { return intercept_; }

    /** Coefficient of determination of the fit. */
    double rSquared() const { return rSquared_; }

    /** Evaluate the fitted line at @p x. */
    double eval(double x) const { return slope_ * x + intercept_; }

  private:
    double slope_ = 0.0;
    double intercept_ = 0.0;
    double rSquared_ = 0.0;
};

} // namespace ecochip

#endif // ECOCHIP_SUPPORT_INTERP_H
