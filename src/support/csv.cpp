#include "support/csv.h"

#include <iomanip>
#include <sstream>

#include "support/table_printer.h"

namespace ecochip {

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
}

void
CsvWriter::writeRow(const std::string &label,
                    const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(TablePrinter::formatNumber(v, precision));
    writeRow(cells);
}

} // namespace ecochip
