/**
 * @file
 * Minimal CSV emission for machine-readable bench output.
 */

#ifndef ECOCHIP_SUPPORT_CSV_H
#define ECOCHIP_SUPPORT_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace ecochip {

/**
 * Streams rows of cells as RFC-4180-style CSV. Cells containing a
 * comma, quote, or newline are quoted and inner quotes doubled.
 */
class CsvWriter
{
  public:
    /**
     * Construct a writer bound to an output stream.
     *
     * @param os Stream that receives the CSV text.
     */
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /**
     * Write one row of string cells.
     *
     * @param cells Cell values, already formatted.
     */
    void writeRow(const std::vector<std::string> &cells);

    /**
     * Write a row whose first cell is a label and remaining cells
     * are doubles.
     */
    void writeRow(const std::string &label,
                  const std::vector<double> &values, int precision = 6);

    /** Escape a single cell per CSV quoting rules. */
    static std::string escape(const std::string &cell);

  private:
    std::ostream &os_;
};

} // namespace ecochip

#endif // ECOCHIP_SUPPORT_CSV_H
