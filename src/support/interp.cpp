#include "support/interp.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace ecochip {

PiecewiseLinear::PiecewiseLinear(
    std::initializer_list<std::pair<double, double>> points)
    : points_(points)
{
    sortAndValidate();
}

PiecewiseLinear::PiecewiseLinear(
    std::vector<std::pair<double, double>> points)
    : points_(std::move(points))
{
    sortAndValidate();
}

void
PiecewiseLinear::sortAndValidate()
{
    std::sort(points_.begin(), points_.end());
    for (std::size_t i = 1; i < points_.size(); ++i) {
        requireConfig(points_[i].first != points_[i - 1].first,
                      "duplicate abscissa in interpolation table");
    }
}

void
PiecewiseLinear::addPoint(double x, double y)
{
    points_.emplace_back(x, y);
    sortAndValidate();
}

double
PiecewiseLinear::eval(double x) const
{
    requireConfig(!points_.empty(),
                  "evaluating an empty interpolation table");
    if (x <= points_.front().first)
        return points_.front().second;
    if (x >= points_.back().first)
        return points_.back().second;

    // Find the first point with abscissa >= x; the preceding point
    // starts the enclosing segment.
    auto hi = std::lower_bound(
        points_.begin(), points_.end(), x,
        [](const auto &p, double v) { return p.first < v; });
    auto lo = hi - 1;
    const double t = (x - lo->first) / (hi->first - lo->first);
    return lo->second + t * (hi->second - lo->second);
}

PiecewiseLinear::Segment
PiecewiseLinear::segment(double x) const
{
    requireConfig(!points_.empty(),
                  "evaluating an empty interpolation table");
    if (x <= points_.front().first)
        return {points_.front().second, points_.front().second, 0.0};
    if (x >= points_.back().first)
        return {points_.back().second, points_.back().second, 0.0};

    auto hi = std::lower_bound(
        points_.begin(), points_.end(), x,
        [](const auto &p, double v) { return p.first < v; });
    auto lo = hi - 1;
    const double t = (x - lo->first) / (hi->first - lo->first);
    return {lo->second, hi->second, t};
}

double
PiecewiseLinear::minX() const
{
    requireConfig(!points_.empty(), "minX of empty table");
    return points_.front().first;
}

double
PiecewiseLinear::maxX() const
{
    requireConfig(!points_.empty(), "maxX of empty table");
    return points_.back().first;
}

double
PiecewiseLinear::minY() const
{
    requireConfig(!points_.empty(), "minY of empty table");
    double best = points_.front().second;
    for (const auto &p : points_)
        best = std::min(best, p.second);
    return best;
}

double
PiecewiseLinear::maxY() const
{
    requireConfig(!points_.empty(), "maxY of empty table");
    double best = points_.front().second;
    for (const auto &p : points_)
        best = std::max(best, p.second);
    return best;
}

LinearRegression::LinearRegression(
    const std::vector<std::pair<double, double>> &points)
{
    requireConfig(points.size() >= 2,
                  "linear regression needs at least two samples");

    const double n = static_cast<double>(points.size());
    double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
    for (const auto &[x, y] : points) {
        sum_x += x;
        sum_y += y;
        sum_xx += x * x;
        sum_xy += x * y;
    }
    const double denom = n * sum_xx - sum_x * sum_x;
    requireConfig(std::abs(denom) > 1e-30,
                  "linear regression needs distinct x values");

    slope_ = (n * sum_xy - sum_x * sum_y) / denom;
    intercept_ = (sum_y - slope_ * sum_x) / n;

    const double mean_y = sum_y / n;
    double ss_res = 0.0, ss_tot = 0.0;
    for (const auto &[x, y] : points) {
        const double fit = eval(x);
        ss_res += (y - fit) * (y - fit);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    rSquared_ = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
}

} // namespace ecochip
