/**
 * @file
 * Self-contained SHA-256 (FIPS 180-4), no external dependencies.
 *
 * The analysis server's persistent result cache
 * (`server/result_cache.h`) is content-addressed: cache entries
 * are named by the SHA-256 of the canonical request text plus the
 * catalog fingerprint, so equal work always lands on the same
 * on-disk object no matter which process computed it. A
 * cryptographic digest keeps accidental collisions out of the
 * question at any cache size; this is not used for security.
 */

#ifndef ECOCHIP_SUPPORT_SHA256_H
#define ECOCHIP_SUPPORT_SHA256_H

#include <array>
#include <cstdint>
#include <string>

namespace ecochip {

/** Incremental SHA-256 digest. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p size bytes at @p data. */
    void update(const void *data, std::size_t size);

    /** Absorb a string's bytes. */
    void update(const std::string &text)
    {
        update(text.data(), text.size());
    }

    /**
     * Finish the digest and return it as 64 lowercase hex
     * characters. The object must not be updated afterwards.
     */
    std::string hexDigest();

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t bufferedBytes_ = 0;
    std::uint64_t totalBytes_ = 0;
};

/** One-shot digest of a string's bytes, as lowercase hex. */
std::string sha256Hex(const std::string &text);

} // namespace ecochip

#endif // ECOCHIP_SUPPORT_SHA256_H
