/**
 * @file
 * Unit conventions and conversion constants.
 *
 * The library stores quantities in the following canonical units and
 * suffixes every variable name with its unit:
 *
 *  - area            : mm^2   (`areaMm2`)        -- die-scale areas
 *  - energy          : kWh    (`energyKwh`)
 *  - carbon          : kg CO2 (`co2Kg`)
 *  - carbon intensity: g CO2 / kWh (`gPerKwh`) as published
 *  - power           : W      (`powerW`)
 *  - time            : h      (`timeH`) unless noted
 *  - length / pitch  : um     (`pitchUm`) for bumps, mm for dies
 *
 * Published per-area fab numbers (EPA, EPLA, Cgas, Cmaterial) are per
 * cm^2; the constants below convert once, at the model boundary.
 */

#ifndef ECOCHIP_SUPPORT_UNITS_H
#define ECOCHIP_SUPPORT_UNITS_H

namespace ecochip::units {

/** mm^2 in one cm^2. */
inline constexpr double kMm2PerCm2 = 100.0;

/** cm^2 in one mm^2. */
inline constexpr double kCm2PerMm2 = 0.01;

/** mm in one um. */
inline constexpr double kMmPerUm = 1e-3;

/** um^2 in one mm^2. */
inline constexpr double kUm2PerMm2 = 1e6;

/** kg in one g. */
inline constexpr double kKgPerG = 1e-3;

/** g in one kg. */
inline constexpr double kGPerKg = 1e3;

/** hours in one year (365 days). */
inline constexpr double kHoursPerYear = 8760.0;

/** kWh in one Wh. */
inline constexpr double kKwhPerWh = 1e-3;

/** kWh per joule. */
inline constexpr double kKwhPerJoule = 1.0 / 3.6e6;

/**
 * Convert a carbon intensity in g CO2/kWh and an energy in kWh into
 * kg CO2.
 *
 * @param intensity_g_per_kwh Carbon intensity of the energy source.
 * @param energy_kwh Energy consumed.
 * @return Emitted carbon in kg CO2-equivalent.
 */
inline constexpr double
carbonKg(double intensity_g_per_kwh, double energy_kwh)
{
    return intensity_g_per_kwh * energy_kwh * kKgPerG;
}

} // namespace ecochip::units

#endif // ECOCHIP_SUPPORT_UNITS_H
