#include "support/error.h"

namespace ecochip {

void
requireConfig(bool condition, const std::string &message)
{
    if (!condition)
        throw ConfigError(message);
}

void
requireConfig(bool condition, const char *message)
{
    if (!condition)
        throw ConfigError(message);
}

void
requireModel(bool condition, const std::string &message)
{
    if (!condition)
        throw ModelError(message);
}

void
requireModel(bool condition, const char *message)
{
    if (!condition)
        throw ModelError(message);
}

} // namespace ecochip
