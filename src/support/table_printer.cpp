#include "support/table_printer.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "support/error.h"

namespace ecochip {

namespace {

/** Heuristic: does this cell look like a number (for alignment)? */
bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    std::size_t i = 0;
    if (cell[0] == '-' || cell[0] == '+')
        i = 1;
    bool saw_digit = false;
    for (; i < cell.size(); ++i) {
        const char c = cell[i];
        if (std::isdigit(static_cast<unsigned char>(c)))
            saw_digit = true;
        else if (c != '.' && c != 'e' && c != 'E' && c != '-' &&
                 c != '+')
            return false;
    }
    return saw_digit;
}

} // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    requireConfig(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    requireConfig(cells.size() == headers_.size(),
                  "table row width does not match header width");
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addRow(const std::vector<double> &cells, int precision)
{
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double v : cells)
        formatted.push_back(formatNumber(v, precision));
    addRow(std::move(formatted));
}

void
TablePrinter::addRow(const std::string &label,
                     const std::vector<double> &cells, int precision)
{
    std::vector<std::string> formatted;
    formatted.reserve(cells.size() + 1);
    formatted.push_back(label);
    for (double v : cells)
        formatted.push_back(formatNumber(v, precision));
    addRow(std::move(formatted));
}

std::string
TablePrinter::formatNumber(double value, int precision)
{
    std::ostringstream oss;
    oss << std::setprecision(precision);
    // Use fixed for mid-range magnitudes, scientific otherwise.
    const double mag = value < 0 ? -value : value;
    if (mag != 0.0 && (mag >= 1e7 || mag < 1e-3))
        oss << std::scientific;
    else
        oss << std::fixed;
    oss << value;
    return oss.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            const int w = static_cast<int>(widths[c]);
            if (looksNumeric(row[c]))
                os << std::setw(w) << std::right << row[c];
            else
                os << std::setw(w) << std::left << row[c];
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace ecochip
