/**
 * @file
 * Deterministic pseudo-random number generation for the
 * uncertainty-quantification module.
 *
 * A SplitMix64 generator is used: tiny, fast, well-distributed,
 * and -- critically for reproducible experiments -- fully
 * deterministic across platforms for a given seed (std::mt19937
 * would also qualify, but distributions like
 * std::uniform_real_distribution are not cross-platform
 * deterministic; these helpers are).
 */

#ifndef ECOCHIP_SUPPORT_RNG_H
#define ECOCHIP_SUPPORT_RNG_H

#include <cstdint>

namespace ecochip {

/** SplitMix64 deterministic PRNG. */
class Rng
{
  public:
    /** @param seed Any value; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        // 53 mantissa bits.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform01();
    }

  private:
    std::uint64_t state_;
};

} // namespace ecochip

#endif // ECOCHIP_SUPPORT_RNG_H
