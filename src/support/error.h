/**
 * @file
 * Error handling primitives for the ECO-CHIP library.
 *
 * Two categories of failure are distinguished, following simulator
 * practice (cf. gem5's fatal/panic split):
 *
 *  - ConfigError: the *user's* fault -- an invalid configuration,
 *    out-of-range parameter, or malformed input file. Callers are
 *    expected to catch these at the tool boundary and report them.
 *  - ModelError: the *library's* fault -- an internal invariant was
 *    violated. These indicate a bug in ECO-CHIP itself.
 */

#ifndef ECOCHIP_SUPPORT_ERROR_H
#define ECOCHIP_SUPPORT_ERROR_H

#include <stdexcept>
#include <string>

namespace ecochip {

/** Base class for every exception thrown by the library. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** Invalid user-supplied configuration or parameter. */
class ConfigError : public Error
{
  public:
    explicit ConfigError(const std::string &message)
        : Error("config error: " + message)
    {}
};

/** Internal invariant violation: a bug in the library. */
class ModelError : public Error
{
  public:
    explicit ModelError(const std::string &message)
        : Error("model error: " + message)
    {}
};

/**
 * Throw a ConfigError unless @p condition holds.
 *
 * @param condition Predicate that must be true for valid input.
 * @param message Human-readable description of the violated rule.
 */
void requireConfig(bool condition, const std::string &message);

/**
 * Literal-message overload: hot loops validate on every call, so
 * the success path must not construct a std::string.
 */
void requireConfig(bool condition, const char *message);

/**
 * Throw a ModelError unless @p condition holds.
 *
 * @param condition Predicate that must be true if the model is sound.
 * @param message Human-readable description of the violated invariant.
 */
void requireModel(bool condition, const std::string &message);

/** Literal-message overload; see requireConfig(bool, const char*). */
void requireModel(bool condition, const char *message);

} // namespace ecochip

#endif // ECOCHIP_SUPPORT_ERROR_H
