/**
 * @file
 * Aligned ASCII table output for bench harnesses and examples.
 *
 * The paper's artifact prints "the underlying raw data within the
 * plot"; TablePrinter is the library's equivalent, producing aligned
 * columns that are easy to diff and eyeball.
 */

#ifndef ECOCHIP_SUPPORT_TABLE_PRINTER_H
#define ECOCHIP_SUPPORT_TABLE_PRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace ecochip {

/**
 * Collects rows of string cells and prints them with per-column
 * alignment. Numeric cells are right-aligned, text left-aligned.
 */
class TablePrinter
{
  public:
    /**
     * Construct with column headers.
     *
     * @param headers One header string per column.
     */
    explicit TablePrinter(std::vector<std::string> headers);

    /**
     * Append a data row.
     *
     * @param cells Must match the number of headers.
     */
    void addRow(std::vector<std::string> cells);

    /**
     * Convenience: append a row of doubles formatted to
     * @p precision significant output digits after the point.
     */
    void addRow(const std::vector<double> &cells, int precision = 4);

    /**
     * Append a mixed row: first cell text, remainder doubles.
     */
    void addRow(const std::string &label,
                const std::vector<double> &cells, int precision = 4);

    /**
     * Render the table.
     *
     * @param os Output stream.
     */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /**
     * Format a double with fixed precision (shared helper so CSV and
     * table output agree).
     */
    static std::string formatNumber(double value, int precision = 4);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ecochip

#endif // ECOCHIP_SUPPORT_TABLE_PRINTER_H
