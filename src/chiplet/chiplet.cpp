#include "chiplet/chiplet.h"

#include "support/error.h"

namespace ecochip {

double
Chiplet::areaMm2(const TechDb &tech) const
{
    return tech.dieAreaMm2(type, nodeNm, transistorsMtr);
}

double
Chiplet::areaAtNodeMm2(const TechDb &tech, double node_nm) const
{
    return tech.dieAreaMm2(type, node_nm, transistorsMtr);
}

Chiplet
Chiplet::fromArea(const std::string &name, DesignType type,
                  double node_nm, double area_mm2,
                  const TechDb &tech)
{
    requireConfig(area_mm2 > 0.0, "block area must be positive");
    Chiplet chiplet;
    chiplet.name = name;
    chiplet.type = type;
    chiplet.nodeNm = node_nm;
    chiplet.transistorsMtr =
        tech.transistorsMtr(type, node_nm, area_mm2);
    return chiplet;
}

double
SystemSpec::totalTransistorsMtr() const
{
    double total = 0.0;
    for (const auto &c : chiplets)
        total += c.transistorsMtr;
    return total;
}

double
SystemSpec::totalSiliconAreaMm2(const TechDb &tech) const
{
    double total = 0.0;
    for (const auto &c : chiplets)
        total += c.areaMm2(tech);
    return total;
}

double
SystemSpec::monolithicNodeNm() const
{
    requireConfig(isMonolithic(),
                  "monolithicNodeNm() on a chiplet-based system");
    requireConfig(!chiplets.empty(), "system has no chiplets");
    const double node = chiplets.front().nodeNm;
    for (const auto &c : chiplets) {
        requireConfig(c.nodeNm == node,
                      "monolithic die blocks must share one node");
    }
    return node;
}

const Chiplet &
SystemSpec::chiplet(const std::string &name) const
{
    for (const auto &c : chiplets)
        if (c.name == name)
            return c;
    throw ConfigError("no chiplet named \"" + name + "\" in system " +
                      this->name);
}

SystemSpec
SystemSpec::withNodes(const std::vector<double> &nodes_nm) const
{
    requireConfig(nodes_nm.size() == chiplets.size(),
                  "node list length must match chiplet count");
    SystemSpec retargeted = *this;
    for (std::size_t i = 0; i < chiplets.size(); ++i) {
        requireConfig(nodes_nm[i] > 0.0, "node must be positive");
        retargeted.chiplets[i].nodeNm = nodes_nm[i];
    }
    return retargeted;
}

} // namespace ecochip
