/**
 * @file
 * Architectural description of chiplets and systems -- the primary
 * input to ECO-CHIP (paper Sec. III-A(1)).
 */

#ifndef ECOCHIP_CHIPLET_CHIPLET_H
#define ECOCHIP_CHIPLET_CHIPLET_H

#include <string>
#include <vector>

#include "tech/design_type.h"
#include "tech/tech_db.h"

namespace ecochip {

/**
 * One die in a heterogeneous system.
 *
 * The functional content is captured as a transistor count; the
 * physical area at any candidate node follows from the area-scaling
 * model (Adie = NT / DT(d, p)), which is what lets the explorer
 * re-target a chiplet to a different node.
 */
struct Chiplet
{
    /** Human-readable block name ("digital", "memory", ...). */
    std::string name;

    /** Functional class selecting the density scaling curve. */
    DesignType type = DesignType::Logic;

    /** Process node this chiplet is implemented in (nm). */
    double nodeNm = 7.0;

    /** Functional content in millions of transistors. */
    double transistorsMtr = 0.0;

    /**
     * True when the chiplet is a pre-designed, silicon-proven IP
     * block whose design CFP is already amortized elsewhere
     * ("reuse"; its Cdes,i is excluded from this system's Cdes).
     */
    bool reused = false;

    /**
     * Vertical stack membership for mixed 2.5D/3D integration
     * (HBM-style): chiplets sharing a non-empty group name are
     * stacked into one tower that occupies a single footprint on
     * the package substrate/interposer and pays TSV/bond carbon
     * between its tiers. Empty = planar placement.
     */
    std::string stackGroup;

    /**
     * Die area at the chiplet's own node.
     *
     * @param tech Technology database with the density curves.
     * @return Area in mm^2.
     */
    double areaMm2(const TechDb &tech) const;

    /** Die area if re-targeted to @p node_nm (mm^2). */
    double areaAtNodeMm2(const TechDb &tech, double node_nm) const;

    /**
     * Build a chiplet from a block's known area at a known node by
     * inverting the area model.
     *
     * @param name Block name.
     * @param type Design type.
     * @param node_nm Node the area was measured at.
     * @param area_mm2 Measured block area.
     * @param tech Technology database.
     */
    static Chiplet fromArea(const std::string &name, DesignType type,
                            double node_nm, double area_mm2,
                            const TechDb &tech);
};

/**
 * A complete system: a set of chiplets (possibly just one, for a
 * monolithic SoC).
 */
struct SystemSpec
{
    /** System name ("GA102", "A15", ...). */
    std::string name;

    /** Constituent dies. A single entry models a monolithic SoC. */
    std::vector<Chiplet> chiplets;

    /**
     * True when all entries in `chiplets` are functional *blocks*
     * of one monolithic die rather than separate dies: they share
     * one process node, are manufactured as one die (yield over
     * the combined area), and carry no HI packaging overhead. This
     * is how the paper's monolithic baselines keep their
     * logic/memory/analog content while living on a single die.
     */
    bool singleDie = false;

    /** True when the system is a single monolithic die. */
    bool
    isMonolithic() const
    {
        return singleDie || chiplets.size() == 1;
    }

    /**
     * Process node of a monolithic die.
     *
     * @throws ConfigError when the system is not monolithic or its
     *         blocks disagree on the node.
     */
    double monolithicNodeNm() const;

    /** Total transistor count across all chiplets (MTr). */
    double totalTransistorsMtr() const;

    /** Sum of die areas at each chiplet's own node (mm^2). */
    double totalSiliconAreaMm2(const TechDb &tech) const;

    /**
     * Lookup a chiplet by name.
     *
     * @throws ConfigError when no chiplet has that name.
     */
    const Chiplet &chiplet(const std::string &name) const;

    /**
     * Return a copy with every chiplet re-targeted to the node in
     * @p nodes_nm (one entry per chiplet, same order). Used by the
     * technology-space explorer.
     */
    SystemSpec withNodes(const std::vector<double> &nodes_nm) const;
};

} // namespace ecochip

#endif // ECOCHIP_CHIPLET_CHIPLET_H
