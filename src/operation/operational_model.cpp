#include "operation/operational_model.h"

#include "support/error.h"
#include "support/units.h"

namespace ecochip {

OperationalModel::OperationalModel(const TechDb &tech,
                                   OperatingSpec spec)
    : tech_(&tech), spec_(spec)
{
    requireConfig(spec.lifetimeYears > 0.0,
                  "lifetime must be positive");
    requireConfig(spec.dutyCycle > 0.0 && spec.dutyCycle <= 1.0,
                  "duty cycle must be in (0, 1]");
    requireConfig(spec.avgFrequencyHz > 0.0,
                  "frequency must be positive");
    requireConfig(spec.switchingActivity > 0.0 &&
                      spec.switchingActivity <= 1.0,
                  "switching activity must be in (0, 1]");
    requireConfig(spec.useIntensityGPerKwh > 0.0,
                  "use-phase carbon intensity must be positive");
    if (spec.avgPowerW)
        requireConfig(*spec.avgPowerW > 0.0,
                      "average power override must be positive");
    if (spec.annualEnergyKwh)
        requireConfig(*spec.annualEnergyKwh > 0.0,
                      "annual energy override must be positive");
}

double
OperationalModel::chipletPowerW(const Chiplet &chiplet) const
{
    const double node = chiplet.nodeNm;
    const double vdd = tech_->supplyVoltageV(node);

    // Leakage: Vdd * Ileak with Ileak proportional to transistor
    // count.
    const double leak_a =
        tech_->leakageMaPerMtr(node) * 1e-3 * chiplet.transistorsMtr;
    const double leak_w = vdd * leak_a;

    // Dynamic: alpha * C * Vdd^2 * f with C the total effective
    // switched capacitance.
    const double cap_f = chiplet.transistorsMtr * 1e6 *
                         tech_->effCapFfPerTransistor(node) * 1e-15;
    const double dyn_w = spec_.switchingActivity * cap_f * vdd *
                         vdd * spec_.avgFrequencyHz;

    return leak_w + dyn_w;
}

double
OperationalModel::systemPowerW(const SystemSpec &system,
                               double extra_power_w) const
{
    requireConfig(extra_power_w >= 0.0,
                  "extra power must be non-negative");
    if (spec_.avgPowerW)
        return *spec_.avgPowerW + extra_power_w;

    double total = 0.0;
    for (const auto &chiplet : system.chiplets)
        total += chipletPowerW(chiplet);
    return total + extra_power_w;
}

OperationalBreakdown
OperationalModel::evaluate(const SystemSpec &system,
                           double extra_power_w) const
{
    OperationalBreakdown out;
    if (spec_.annualEnergyKwh) {
        // Battery-rating path: energy is known directly; HI power
        // overheads still add on top of it.
        const double on_hours_per_year =
            spec_.dutyCycle * units::kHoursPerYear;
        const double extra_kwh_per_year = extra_power_w *
                                          on_hours_per_year *
                                          units::kKwhPerWh;
        out.lifetimeEnergyKwh =
            (*spec_.annualEnergyKwh + extra_kwh_per_year) *
            spec_.lifetimeYears;
        out.avgPowerW =
            *spec_.annualEnergyKwh / units::kKwhPerWh /
                on_hours_per_year +
            extra_power_w;
    } else {
        out.avgPowerW = systemPowerW(system, extra_power_w);
        const double on_hours = spec_.lifetimeYears *
                                units::kHoursPerYear *
                                spec_.dutyCycle;
        out.lifetimeEnergyKwh =
            out.avgPowerW * on_hours * units::kKwhPerWh;
    }
    out.co2Kg = units::carbonKg(spec_.useIntensityGPerKwh,
                                out.lifetimeEnergyKwh);
    return out;
}

} // namespace ecochip
