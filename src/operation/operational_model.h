/**
 * @file
 * Operational-CFP model (paper Sec. III-F, Eqs. 3 and 14).
 */

#ifndef ECOCHIP_OPERATION_OPERATIONAL_MODEL_H
#define ECOCHIP_OPERATION_OPERATIONAL_MODEL_H

#include <optional>

#include "chiplet/chiplet.h"
#include "tech/tech_db.h"

namespace ecochip {

/** Operating specification (paper Sec. III-A(3), Table I). */
struct OperatingSpec
{
    /** Product lifetime in years (Table I: 2 - 5). */
    double lifetimeYears = 2.0;

    /** ON-time fraction TON (Table I: 5% - 20%). */
    double dutyCycle = 0.10;

    /** Average use-case clock frequency (Hz), not max rating. */
    double avgFrequencyHz = 1.0e9;

    /** Average switching activity alpha. */
    double switchingActivity = 0.10;

    /** Carbon intensity of use-phase energy Csrc,use (g/kWh). */
    double useIntensityGPerKwh = 700.0;

    /**
     * Direct average-power override (W). When set, the analytical
     * Eq. 14 power model is bypassed -- used when a power rating
     * or profiling measurement is available (e.g. the GA102's
     * measured average draw).
     */
    std::optional<double> avgPowerW;

    /**
     * Direct annual use-energy override (kWh/year). When set, both
     * the power model and duty cycle are bypassed -- the
     * battery-rating path for mobile devices (Sec. III-F).
     */
    std::optional<double> annualEnergyKwh;
};

/** Operational-energy/carbon breakdown. */
struct OperationalBreakdown
{
    /** Average system power while ON (W). */
    double avgPowerW = 0.0;

    /** Energy over the whole lifetime Euse (kWh). */
    double lifetimeEnergyKwh = 0.0;

    /** Operational carbon over the lifetime (kg CO2). */
    double co2Kg = 0.0;
};

/**
 * Operational-CFP estimator.
 *
 * Implements Eq. 14 per chiplet at its own node:
 *
 *   Euse = TON * (Vdd * Ileak + alpha * C * Vdd^2 * f)
 *
 * with Vdd, leakage, and effective switched capacitance taken from
 * the technology operating-point tables -- chiplets in legacy
 * nodes pay higher supply voltages, the effect that raises Cop for
 * disaggregated systems (Sec. V-A(4)). HI power overheads (NoC,
 * PHY) enter through @p extra_power_w.
 */
class OperationalModel
{
  public:
    /**
     * @param tech Technology database (must outlive the model).
     * @param spec Operating specification.
     */
    explicit OperationalModel(const TechDb &tech,
                              OperatingSpec spec = OperatingSpec());

    /** Operating spec in use. */
    const OperatingSpec &spec() const { return spec_; }

    /** Analytical per-chiplet average power while ON (W). */
    double chipletPowerW(const Chiplet &chiplet) const;

    /**
     * Average system power while ON (W): sum of chiplet powers (or
     * the override) plus @p extra_power_w of HI circuitry.
     */
    double systemPowerW(const SystemSpec &system,
                        double extra_power_w = 0.0) const;

    /**
     * Full breakdown over the configured lifetime.
     *
     * @param system System description.
     * @param extra_power_w NoC/PHY power overhead from packaging.
     */
    OperationalBreakdown evaluate(const SystemSpec &system,
                                  double extra_power_w = 0.0) const;

  private:
    const TechDb *tech_;
    OperatingSpec spec_;
};

} // namespace ecochip

#endif // ECOCHIP_OPERATION_OPERATIONAL_MODEL_H
