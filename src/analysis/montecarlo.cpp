#include "analysis/montecarlo.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/thread_pool.h"
#include "kernels/batch_evaluator.h"
#include "kernels/trial_batch.h"
#include "support/error.h"
#include "support/rng.h"

namespace ecochip {

Parallelism
Parallelism::hardware()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return Parallelism{hw == 0 ? 1 : static_cast<int>(hw)};
}

MonteCarloAnalyzer::MonteCarloAnalyzer(EcoChipConfig config,
                                       TechDb tech,
                                       UncertaintyBands bands)
    : config_(std::move(config)), tech_(std::move(tech)),
      bands_(bands)
{
    requireConfig(
        bands.defectDensity >= 0.0 && bands.defectDensity < 1.0 &&
            bands.epa >= 0.0 && bands.epa < 1.0 &&
            bands.intensity >= 0.0 && bands.intensity < 1.0 &&
            bands.designTime >= 0.0 && bands.designTime < 1.0 &&
            bands.dutyCycle >= 0.0 && bands.dutyCycle < 1.0,
        "uncertainty bands must be in [0, 1)");
}

UncertaintyReport
MonteCarloAnalyzer::run(const SystemSpec &system, int trials,
                        std::uint64_t seed,
                        Parallelism parallelism) const
{
    requireConfig(trials >= 2, "need at least two trials");
    requireConfig(parallelism.threads >= 1,
                  "need at least one worker thread");

    // Draw every trial's input scales serially first: the sample
    // stream depends only on the seed, never on the thread count.
    Rng rng(seed);
    auto scale_band = [&rng](double half_width) {
        return rng.uniform(1.0 - half_width, 1.0 + half_width);
    };
    TrialBatch batch;
    batch.resize(static_cast<std::size_t>(trials));
    for (int trial = 0; trial < trials; ++trial) {
        const double defect_density =
            scale_band(bands_.defectDensity);
        const double epa = scale_band(bands_.epa);
        const double intensity = scale_band(bands_.intensity);
        const double design_time = scale_band(bands_.designTime);
        const double duty_cycle = scale_band(bands_.dutyCycle);

        // One carbon-intensity draw scales the fab, packaging, and
        // design-compute sources together, exactly like the legacy
        // per-trial config mutation did.
        batch.defectDensityScale[trial] = defect_density;
        batch.epaScale[trial] = epa;
        batch.fabIntensityScale[trial] = intensity;
        batch.packageIntensityScale[trial] = intensity;
        batch.designIntensityScale[trial] = intensity;
        batch.sprHoursScale[trial] = design_time;
        batch.dutyCycleScale[trial] = duty_cycle;
        // The legacy path re-interpolated both tables at the
        // standard node anchors; the rebuild flags reproduce that.
        batch.rebuildDefectDensity[trial] = 1;
        batch.rebuildEpa[trial] = 1;
    }

    // All scenario-invariant setup happens once, not per trial.
    const BatchEvaluator evaluator(config_, tech_, system);

    std::vector<double> embodied(trials), operational(trials),
        total(trials);
    auto evaluate_range = [&](int begin, int end) {
        evaluator.evaluateRange(
            batch, static_cast<std::size_t>(begin),
            static_cast<std::size_t>(end), embodied.data(),
            operational.data(), total.data());
    };

    const int workers = std::min(parallelism.threads, trials);
    if (workers <= 1) {
        evaluate_range(0, trials);
    } else {
        // A trial that throws must surface as the same catchable
        // exception the serial path produces, not std::terminate.
        std::exception_ptr failure;
        std::mutex failure_mutex;
        // Contiguous chunks; results land by trial index, so the
        // partition never affects the report.
        const int chunk = (trials + workers - 1) / workers;
        {
            ThreadPool pool(workers);
            for (int w = 0; w < workers; ++w) {
                const int begin = w * chunk;
                const int end = std::min(trials, begin + chunk);
                if (begin >= end)
                    break;
                pool.post([&, begin, end] {
                    try {
                        evaluate_range(begin, end);
                    } catch (...) {
                        std::lock_guard lock(failure_mutex);
                        if (!failure)
                            failure = std::current_exception();
                    }
                });
            }
            // ~ThreadPool drains the queue and joins the workers.
        }
        if (failure)
            std::rethrow_exception(failure);
    }

    return UncertaintyReport{SampleStats(std::move(embodied)),
                             SampleStats(std::move(operational)),
                             SampleStats(std::move(total))};
}

} // namespace ecochip
