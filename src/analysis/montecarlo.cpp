#include "analysis/montecarlo.h"

#include <vector>

#include "support/error.h"
#include "support/rng.h"

namespace ecochip {

MonteCarloAnalyzer::MonteCarloAnalyzer(EcoChipConfig config,
                                       TechDb tech,
                                       UncertaintyBands bands)
    : config_(std::move(config)), tech_(std::move(tech)),
      bands_(bands)
{
    requireConfig(
        bands.defectDensity >= 0.0 && bands.defectDensity < 1.0 &&
            bands.epa >= 0.0 && bands.epa < 1.0 &&
            bands.intensity >= 0.0 && bands.intensity < 1.0 &&
            bands.designTime >= 0.0 && bands.designTime < 1.0 &&
            bands.dutyCycle >= 0.0 && bands.dutyCycle < 1.0,
        "uncertainty bands must be in [0, 1)");
}

UncertaintyReport
MonteCarloAnalyzer::run(const SystemSpec &system, int trials,
                        std::uint64_t seed) const
{
    requireConfig(trials >= 2, "need at least two trials");

    Rng rng(seed);
    std::vector<double> embodied, operational, total;
    embodied.reserve(trials);
    operational.reserve(trials);
    total.reserve(trials);

    auto scale_band = [&rng](double half_width) {
        return rng.uniform(1.0 - half_width, 1.0 + half_width);
    };

    for (int trial = 0; trial < trials; ++trial) {
        EcoChipConfig config = config_;
        TechDb tech = tech_;

        const double d0_scale = scale_band(bands_.defectDensity);
        const double epa_scale = scale_band(bands_.epa);
        std::vector<std::pair<double, double>> d0_points;
        std::vector<std::pair<double, double>> epa_points;
        for (double node : TechDb::standardNodesNm()) {
            d0_points.emplace_back(
                node, d0_scale * tech_.defectDensityPerCm2(node));
            epa_points.emplace_back(
                node, epa_scale * tech_.epaKwhPerCm2(node));
        }
        tech.setDefectDensityTable(PiecewiseLinear(d0_points));
        tech.setEpaTable(PiecewiseLinear(epa_points));

        const double intensity_scale =
            scale_band(bands_.intensity);
        config.fabIntensityGPerKwh *= intensity_scale;
        config.package.intensityGPerKwh *= intensity_scale;
        config.design.intensityGPerKwh *= intensity_scale;

        config.design.sprHoursPerMgate *=
            scale_band(bands_.designTime);
        config.operating.dutyCycle = std::min(
            1.0, config.operating.dutyCycle *
                     scale_band(bands_.dutyCycle));

        EcoChip estimator(std::move(config), std::move(tech));
        const CarbonReport report = estimator.estimate(system);
        embodied.push_back(report.embodiedCo2Kg());
        operational.push_back(report.operation.co2Kg);
        total.push_back(report.totalCo2Kg());
    }

    return UncertaintyReport{SampleStats(std::move(embodied)),
                             SampleStats(std::move(operational)),
                             SampleStats(std::move(total))};
}

} // namespace ecochip
