#include "analysis/montecarlo.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/rng.h"

namespace ecochip {

Parallelism
Parallelism::hardware()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return Parallelism{hw == 0 ? 1 : static_cast<int>(hw)};
}

MonteCarloAnalyzer::MonteCarloAnalyzer(EcoChipConfig config,
                                       TechDb tech,
                                       UncertaintyBands bands)
    : config_(std::move(config)), tech_(std::move(tech)),
      bands_(bands)
{
    requireConfig(
        bands.defectDensity >= 0.0 && bands.defectDensity < 1.0 &&
            bands.epa >= 0.0 && bands.epa < 1.0 &&
            bands.intensity >= 0.0 && bands.intensity < 1.0 &&
            bands.designTime >= 0.0 && bands.designTime < 1.0 &&
            bands.dutyCycle >= 0.0 && bands.dutyCycle < 1.0,
        "uncertainty bands must be in [0, 1)");
}

CarbonReport
MonteCarloAnalyzer::evaluateTrial(const SystemSpec &system,
                                  const TrialScales &scales) const
{
    EcoChipConfig config = config_;
    TechDb tech = tech_;

    std::vector<std::pair<double, double>> d0_points;
    std::vector<std::pair<double, double>> epa_points;
    for (double node : TechDb::standardNodesNm()) {
        d0_points.emplace_back(node,
                               scales.defectDensity *
                                   tech_.defectDensityPerCm2(node));
        epa_points.emplace_back(
            node, scales.epa * tech_.epaKwhPerCm2(node));
    }
    tech.setDefectDensityTable(PiecewiseLinear(d0_points));
    tech.setEpaTable(PiecewiseLinear(epa_points));

    config.fabIntensityGPerKwh *= scales.intensity;
    config.package.intensityGPerKwh *= scales.intensity;
    config.design.intensityGPerKwh *= scales.intensity;

    config.design.sprHoursPerMgate *= scales.designTime;
    config.operating.dutyCycle =
        std::min(1.0, config.operating.dutyCycle *
                          scales.dutyCycle);

    EcoChip estimator(std::move(config), std::move(tech));
    return estimator.estimate(system);
}

UncertaintyReport
MonteCarloAnalyzer::run(const SystemSpec &system, int trials,
                        std::uint64_t seed,
                        Parallelism parallelism) const
{
    requireConfig(trials >= 2, "need at least two trials");
    requireConfig(parallelism.threads >= 1,
                  "need at least one worker thread");

    // Draw every trial's input scales serially first: the sample
    // stream depends only on the seed, never on the thread count.
    Rng rng(seed);
    auto scale_band = [&rng](double half_width) {
        return rng.uniform(1.0 - half_width, 1.0 + half_width);
    };
    std::vector<TrialScales> scales;
    scales.reserve(trials);
    for (int trial = 0; trial < trials; ++trial) {
        TrialScales s;
        s.defectDensity = scale_band(bands_.defectDensity);
        s.epa = scale_band(bands_.epa);
        s.intensity = scale_band(bands_.intensity);
        s.designTime = scale_band(bands_.designTime);
        s.dutyCycle = scale_band(bands_.dutyCycle);
        scales.push_back(s);
    }

    std::vector<double> embodied(trials), operational(trials),
        total(trials);
    auto evaluate_range = [&](int begin, int end) {
        for (int trial = begin; trial < end; ++trial) {
            const CarbonReport report =
                evaluateTrial(system, scales[trial]);
            embodied[trial] = report.embodiedCo2Kg();
            operational[trial] = report.operation.co2Kg;
            total[trial] = report.totalCo2Kg();
        }
    };

    const int workers =
        std::min(parallelism.threads, trials);
    if (workers <= 1) {
        evaluate_range(0, trials);
    } else {
        // A trial that throws must surface as the same catchable
        // exception the serial path produces, not std::terminate.
        std::exception_ptr failure;
        std::mutex failure_mutex;
        auto guarded_range = [&](int begin, int end) {
            try {
                evaluate_range(begin, end);
            } catch (...) {
                std::lock_guard lock(failure_mutex);
                if (!failure)
                    failure = std::current_exception();
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        // Contiguous chunks; results land by trial index, so the
        // partition never affects the report.
        const int chunk = (trials + workers - 1) / workers;
        for (int w = 0; w < workers; ++w) {
            const int begin = w * chunk;
            const int end = std::min(trials, begin + chunk);
            if (begin >= end)
                break;
            pool.emplace_back(guarded_range, begin, end);
        }
        for (auto &worker : pool)
            worker.join();
        if (failure)
            std::rethrow_exception(failure);
    }

    return UncertaintyReport{SampleStats(std::move(embodied)),
                             SampleStats(std::move(operational)),
                             SampleStats(std::move(total))};
}

} // namespace ecochip
