#include "analysis/sensitivity.h"

#include <cmath>

#include "support/error.h"

namespace ecochip {

namespace {

/** Rebuild a node-keyed table with every ordinate scaled. */
PiecewiseLinear
scaledNodeTable(const std::function<double(double)> &eval,
                double scale)
{
    std::vector<std::pair<double, double>> points;
    for (double node : TechDb::standardNodesNm())
        points.emplace_back(node, scale * eval(node));
    return PiecewiseLinear(points);
}

} // namespace

SensitivityAnalyzer::SensitivityAnalyzer(EcoChipConfig config,
                                         TechDb tech)
    : config_(std::move(config)), tech_(std::move(tech))
{
}

std::vector<SensitivityParameter>
SensitivityAnalyzer::standardParameters()
{
    std::vector<SensitivityParameter> params;
    params.push_back(
        {"defect density D0",
         [](EcoChipConfig &, TechDb &tech, double scale) {
             tech.setDefectDensityTable(scaledNodeTable(
                 [&tech](double n) {
                     return tech.defectDensityPerCm2(n);
                 },
                 scale));
         }});
    params.push_back(
        {"fab energy per area EPA",
         [](EcoChipConfig &, TechDb &tech, double scale) {
             tech.setEpaTable(scaledNodeTable(
                 [&tech](double n) {
                     return tech.epaKwhPerCm2(n);
                 },
                 scale));
         }});
    params.push_back(
        {"fab carbon intensity",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.fabIntensityGPerKwh *= scale;
         }});
    params.push_back(
        {"packaging carbon intensity",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.package.intensityGPerKwh *= scale;
         }});
    params.push_back(
        {"design iterations Ndes",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.design.designIterations = std::max(
                 1, static_cast<int>(std::lround(
                        config.design.designIterations * scale)));
         }});
    params.push_back(
        {"chiplet volume NMi",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.design.chipletVolume *= scale;
         }});
    params.push_back(
        {"lifetime",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.operating.lifetimeYears *= scale;
         }});
    params.push_back(
        {"duty cycle TON",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.operating.dutyCycle =
                 std::min(1.0, config.operating.dutyCycle * scale);
         }});
    return params;
}

double
SensitivityAnalyzer::evaluate(const SystemSpec &system,
                              const EcoChipConfig &config,
                              const TechDb &tech,
                              CarbonMetric metric) const
{
    EcoChip estimator(config, tech);
    const CarbonReport report = estimator.estimate(system);
    switch (metric) {
      case CarbonMetric::Embodied:
        return report.embodiedCo2Kg();
      case CarbonMetric::Operational:
        return report.operation.co2Kg;
      case CarbonMetric::Total:
        return report.totalCo2Kg();
    }
    throw ModelError("unhandled carbon metric");
}

std::vector<SensitivityResult>
SensitivityAnalyzer::analyze(
    const SystemSpec &system,
    const std::vector<SensitivityParameter> &parameters,
    CarbonMetric metric, double delta) const
{
    requireConfig(delta > 0.0 && delta < 1.0,
                  "perturbation delta must be in (0, 1)");

    const double base =
        evaluate(system, config_, tech_, metric);
    requireModel(base > 0.0, "baseline metric must be positive");

    std::vector<SensitivityResult> results;
    for (const auto &param : parameters) {
        SensitivityResult row;
        row.name = param.name;
        row.baseValue = base;

        for (double sign : {-1.0, +1.0}) {
            EcoChipConfig config = config_;
            TechDb tech = tech_;
            param.apply(config, tech, 1.0 + sign * delta);
            const double value =
                evaluate(system, config, tech, metric);
            (sign < 0 ? row.lowValue : row.highValue) = value;
        }

        // Central-difference log-log slope.
        row.elasticity =
            (std::log(row.highValue) - std::log(row.lowValue)) /
            (std::log(1.0 + delta) - std::log(1.0 - delta));
        results.push_back(std::move(row));
    }
    return results;
}

} // namespace ecochip
