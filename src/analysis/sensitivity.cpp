#include "analysis/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "kernels/batch_evaluator.h"
#include "kernels/trial_batch.h"
#include "support/error.h"

namespace ecochip {

namespace {

/** Rebuild a node-keyed table with every ordinate scaled. */
PiecewiseLinear
scaledNodeTable(const std::function<double(double)> &eval,
                double scale)
{
    std::vector<std::pair<double, double>> points;
    for (double node : TechDb::standardNodesNm())
        points.emplace_back(node, scale * eval(node));
    return PiecewiseLinear(points);
}

} // namespace

SensitivityAnalyzer::SensitivityAnalyzer(EcoChipConfig config,
                                         TechDb tech)
    : config_(std::move(config)), tech_(std::move(tech))
{
}

std::vector<SensitivityParameter>
SensitivityAnalyzer::standardParameters()
{
    std::vector<SensitivityParameter> params;
    params.push_back(
        {"defect density D0",
         [](EcoChipConfig &, TechDb &tech, double scale) {
             tech.setDefectDensityTable(scaledNodeTable(
                 [&tech](double n) {
                     return tech.defectDensityPerCm2(n);
                 },
                 scale));
         },
         ScaleTarget::DefectDensityTable});
    params.push_back(
        {"fab energy per area EPA",
         [](EcoChipConfig &, TechDb &tech, double scale) {
             tech.setEpaTable(scaledNodeTable(
                 [&tech](double n) {
                     return tech.epaKwhPerCm2(n);
                 },
                 scale));
         },
         ScaleTarget::EpaTable});
    params.push_back(
        {"fab carbon intensity",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.fabIntensityGPerKwh *= scale;
         },
         ScaleTarget::FabIntensity});
    params.push_back(
        {"packaging carbon intensity",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.package.intensityGPerKwh *= scale;
         },
         ScaleTarget::PackageIntensity});
    params.push_back(
        {"design iterations Ndes",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.design.designIterations = std::max(
                 1, static_cast<int>(std::lround(
                        config.design.designIterations * scale)));
         },
         ScaleTarget::DesignIterations});
    params.push_back(
        {"chiplet volume NMi",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.design.chipletVolume *= scale;
         },
         ScaleTarget::ChipletVolume});
    params.push_back(
        {"lifetime",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.operating.lifetimeYears *= scale;
         },
         ScaleTarget::Lifetime});
    params.push_back(
        {"duty cycle TON",
         [](EcoChipConfig &config, TechDb &, double scale) {
             config.operating.dutyCycle =
                 std::min(1.0, config.operating.dutyCycle * scale);
         },
         ScaleTarget::DutyCycle});
    return params;
}

double
SensitivityAnalyzer::evaluate(const SystemSpec &system,
                              const EcoChipConfig &config,
                              const TechDb &tech,
                              CarbonMetric metric) const
{
    EcoChip estimator(config, tech);
    const CarbonReport report = estimator.estimate(system);
    switch (metric) {
      case CarbonMetric::Embodied:
        return report.embodiedCo2Kg();
      case CarbonMetric::Operational:
        return report.operation.co2Kg;
      case CarbonMetric::Total:
        return report.totalCo2Kg();
    }
    throw ModelError("unhandled carbon metric");
}

void
SensitivityAnalyzer::fillTrial(TrialBatch &batch,
                               std::size_t row,
                               ScaleTarget target,
                               double scale) const
{
    switch (target) {
      case ScaleTarget::DefectDensityTable:
        batch.defectDensityScale[row] = scale;
        batch.rebuildDefectDensity[row] = 1;
        break;
      case ScaleTarget::EpaTable:
        batch.epaScale[row] = scale;
        batch.rebuildEpa[row] = 1;
        break;
      case ScaleTarget::FabIntensity:
        batch.fabIntensityScale[row] = scale;
        break;
      case ScaleTarget::PackageIntensity:
        batch.packageIntensityScale[row] = scale;
        break;
      case ScaleTarget::DesignIterations:
        // Same rounded-and-floored integer count the scalar
        // closure writes back into the configuration.
        batch.designIterations[row] =
            static_cast<double>(std::max(
                1, static_cast<int>(std::lround(
                       config_.design.designIterations * scale))));
        break;
      case ScaleTarget::ChipletVolume:
        batch.chipletVolumeScale[row] = scale;
        break;
      case ScaleTarget::Lifetime:
        batch.lifetimeScale[row] = scale;
        break;
      case ScaleTarget::DutyCycle:
        batch.dutyCycleScale[row] = scale;
        break;
    }
}

std::vector<SensitivityResult>
SensitivityAnalyzer::analyze(
    const SystemSpec &system,
    const std::vector<SensitivityParameter> &parameters,
    CarbonMetric metric, double delta) const
{
    requireConfig(delta > 0.0 && delta < 1.0,
                  "perturbation delta must be in (0, 1)");

    // Batched evaluation needs every parameter to declare its
    // kernel column; one opaque closure sends the whole sweep down
    // the legacy scalar path.
    bool batchable = true;
    for (const auto &param : parameters)
        batchable &= param.target.has_value();
    if (!batchable)
        return analyzeScalar(system, parameters, metric, delta);

    // Row 0 is the unperturbed baseline; rows 1 + 2i / 2 + 2i are
    // parameter i at scale (1 - delta) / (1 + delta).
    TrialBatch batch;
    batch.resize(1 + 2 * parameters.size());
    for (std::size_t i = 0; i < parameters.size(); ++i) {
        fillTrial(batch, 1 + 2 * i, *parameters[i].target,
                  1.0 - delta);
        fillTrial(batch, 2 + 2 * i, *parameters[i].target,
                  1.0 + delta);
    }

    const BatchEvaluator evaluator(config_, tech_, system);
    std::vector<double> embodied(batch.size()),
        operational(batch.size()), total(batch.size());
    const double *metrics = nullptr;
    switch (metric) {
      case CarbonMetric::Embodied: metrics = embodied.data(); break;
      case CarbonMetric::Operational:
        metrics = operational.data();
        break;
      case CarbonMetric::Total: metrics = total.data(); break;
    }
    if (!metrics)
        throw ModelError("unhandled carbon metric");

    // Baseline first: its positivity check must fire before any
    // perturbed evaluation, exactly like the scalar path.
    evaluator.evaluateRange(batch, 0, 1, embodied.data(),
                            operational.data(), total.data());
    const double base = metrics[0];
    requireModel(base > 0.0, "baseline metric must be positive");
    evaluator.evaluateRange(batch, 1, batch.size(),
                            embodied.data(), operational.data(),
                            total.data());

    std::vector<SensitivityResult> results;
    results.reserve(parameters.size());
    for (std::size_t i = 0; i < parameters.size(); ++i) {
        SensitivityResult row;
        row.name = parameters[i].name;
        row.baseValue = base;
        row.lowValue = metrics[1 + 2 * i];
        row.highValue = metrics[2 + 2 * i];
        row.elasticity =
            (std::log(row.highValue) - std::log(row.lowValue)) /
            (std::log(1.0 + delta) - std::log(1.0 - delta));
        results.push_back(std::move(row));
    }
    return results;
}

std::vector<SensitivityResult>
SensitivityAnalyzer::analyzeScalar(
    const SystemSpec &system,
    const std::vector<SensitivityParameter> &parameters,
    CarbonMetric metric, double delta) const
{
    const double base =
        evaluate(system, config_, tech_, metric);
    requireModel(base > 0.0, "baseline metric must be positive");

    std::vector<SensitivityResult> results;
    for (const auto &param : parameters) {
        SensitivityResult row;
        row.name = param.name;
        row.baseValue = base;

        for (double sign : {-1.0, +1.0}) {
            EcoChipConfig config = config_;
            TechDb tech = tech_;
            param.apply(config, tech, 1.0 + sign * delta);
            const double value =
                evaluate(system, config, tech, metric);
            (sign < 0 ? row.lowValue : row.highValue) = value;
        }

        // Central-difference log-log slope.
        row.elasticity =
            (std::log(row.highValue) - std::log(row.lowValue)) /
            (std::log(1.0 + delta) - std::log(1.0 - delta));
        results.push_back(std::move(row));
    }
    return results;
}

} // namespace ecochip
