/**
 * @file
 * Monte-Carlo uncertainty quantification of carbon estimates.
 *
 * Table I publishes *ranges*, not point values; industry actors
 * hold the accurate numbers (paper Sec. VII). This module samples
 * the uncertain inputs uniformly within configurable relative
 * bands around the default calibration and reports the resulting
 * carbon distribution -- so a claimed "30% embodied saving" can be
 * stated with confidence bounds.
 *
 * Trials are evaluated through the data-oriented batch kernel
 * (src/kernels/): the sampled scales fill a structure-of-arrays
 * TrialBatch, one BatchEvaluator precomputes every trial-invariant
 * quantity, and worker threads from the shared engine ThreadPool
 * stream contiguous trial ranges through it. Reports stay
 * bit-identical to the legacy copy-the-config-per-trial path for
 * equal seeds, at any thread count.
 */

#ifndef ECOCHIP_ANALYSIS_MONTECARLO_H
#define ECOCHIP_ANALYSIS_MONTECARLO_H

#include <cstdint>

#include "core/ecochip.h"
#include "support/stats.h"

namespace ecochip {

/** Relative half-widths of the sampled input bands. */
struct UncertaintyBands
{
    /** Defect density D0(p): +/- 30%. */
    double defectDensity = 0.30;

    /** Fab energy per area EPA(p): +/- 20%. */
    double epa = 0.20;

    /** Fab / packaging carbon intensity: +/- 15%. */
    double intensity = 0.15;

    /** Design-compute anchor (SP&R hours): +/- 30%. */
    double designTime = 0.30;

    /** Use-phase duty cycle: +/- 25%. */
    double dutyCycle = 0.25;

    bool operator==(const UncertaintyBands &) const = default;
};

/** Distribution summary of one carbon metric. */
struct UncertaintyReport
{
    SampleStats embodied;
    SampleStats operational;
    SampleStats total;
};

/**
 * Trial-batching knob for Monte-Carlo runs.
 *
 * Trials are statistically independent, so they batch across a
 * pool of worker threads; the sampled input scales are always
 * drawn serially from the seed first, which keeps every report
 * bit-identical to the single-threaded run for equal seeds.
 */
struct Parallelism
{
    /** Worker threads (1 = run serially on the caller). */
    int threads = 1;

    /** One worker per hardware thread. */
    static Parallelism hardware();
};

/** Monte-Carlo driver. */
class MonteCarloAnalyzer
{
  public:
    /**
     * @param config Baseline configuration.
     * @param tech Baseline technology calibration.
     * @param bands Sampling half-widths.
     */
    explicit MonteCarloAnalyzer(
        EcoChipConfig config, TechDb tech = TechDb(),
        UncertaintyBands bands = UncertaintyBands());

    /**
     * Run @p trials independent samples.
     *
     * @param system System under study.
     * @param trials Sample count (>= 2).
     * @param seed PRNG seed; equal seeds give equal reports.
     * @param parallelism Trial batching; any thread count yields
     *        the same report as the serial run for equal seeds.
     */
    UncertaintyReport run(const SystemSpec &system, int trials,
                          std::uint64_t seed = 42,
                          Parallelism parallelism = {}) const;

  private:
    EcoChipConfig config_;
    TechDb tech_;
    UncertaintyBands bands_;
};

} // namespace ecochip

#endif // ECOCHIP_ANALYSIS_MONTECARLO_H
