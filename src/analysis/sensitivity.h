/**
 * @file
 * One-at-a-time sensitivity analysis over ECO-CHIP's input
 * parameters.
 *
 * The paper's validation discussion (Sec. VII) emphasizes that
 * ECO-CHIP "can generate numbers as accurate as the accuracy of
 * the input parameters, e.g., design time, yields, and defect
 * densities". This module quantifies that statement: it perturbs
 * each input by a relative amount and reports the elasticity of
 * the chosen carbon metric -- which inputs industry users must
 * pin down first.
 */

#ifndef ECOCHIP_ANALYSIS_SENSITIVITY_H
#define ECOCHIP_ANALYSIS_SENSITIVITY_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/ecochip.h"

namespace ecochip {

struct TrialBatch;

/**
 * Batch-kernel column a standard parameter maps to. Parameters
 * that declare a target are evaluated through the data-oriented
 * BatchEvaluator (one model build for the whole sweep); parameters
 * without one fall back to the per-perturbation scalar path.
 */
enum class ScaleTarget
{
    DefectDensityTable, ///< rebuild D0(p) with scaled ordinates
    EpaTable,           ///< rebuild EPA(p) with scaled ordinates
    FabIntensity,       ///< fab carbon intensity Cmfg,src
    PackageIntensity,   ///< packaging carbon intensity
    DesignIterations,   ///< Ndes (rounded, floored at 1)
    ChipletVolume,      ///< amortization volume NMi
    Lifetime,           ///< product lifetime (years)
    DutyCycle,          ///< TON, clamped to <= 1
};

/** A perturbable input parameter. */
struct SensitivityParameter
{
    /** Display name ("defect density", "EPA", ...). */
    std::string name;

    /**
     * Applies a multiplicative scale to the parameter inside the
     * configuration/technology pair.
     */
    std::function<void(EcoChipConfig &, TechDb &, double scale)>
        apply;

    /**
     * Batch-kernel column equivalent to `apply`; must produce
     * bit-identical estimates when set. Custom parameters may
     * leave it empty to opt out of batched evaluation.
     */
    std::optional<ScaleTarget> target;
};

/** Result row of a sensitivity sweep. */
struct SensitivityResult
{
    std::string name;

    /** Metric at scale (1 - delta). */
    double lowValue = 0.0;

    /** Metric at the unperturbed baseline. */
    double baseValue = 0.0;

    /** Metric at scale (1 + delta). */
    double highValue = 0.0;

    /**
     * Central-difference elasticity
     * d(ln metric) / d(ln parameter).
     */
    double elasticity = 0.0;
};

/** Carbon metric to differentiate. */
enum class CarbonMetric
{
    Embodied,
    Operational,
    Total,
};

/** One-at-a-time sensitivity analyzer. */
class SensitivityAnalyzer
{
  public:
    /**
     * @param config Baseline configuration.
     * @param tech Baseline technology calibration.
     */
    explicit SensitivityAnalyzer(EcoChipConfig config,
                                 TechDb tech = TechDb());

    /**
     * The standard parameter set: defect density, fab EPA, fab
     * carbon intensity, design iterations, chiplet volume,
     * lifetime, duty cycle, packaging carbon intensity.
     */
    static std::vector<SensitivityParameter>
    standardParameters();

    /**
     * Run the sweep.
     *
     * @param system System under study.
     * @param parameters Parameters to perturb.
     * @param metric Carbon metric to differentiate.
     * @param delta Relative perturbation (default 10%).
     */
    std::vector<SensitivityResult>
    analyze(const SystemSpec &system,
            const std::vector<SensitivityParameter> &parameters,
            CarbonMetric metric = CarbonMetric::Embodied,
            double delta = 0.10) const;

  private:
    double evaluate(const SystemSpec &system,
                    const EcoChipConfig &config,
                    const TechDb &tech,
                    CarbonMetric metric) const;

    /** Write one perturbed trial row into the batch. */
    void fillTrial(TrialBatch &batch, std::size_t row,
                   ScaleTarget target, double scale) const;

    /** Legacy copy-the-config path for opaque parameters. */
    std::vector<SensitivityResult> analyzeScalar(
        const SystemSpec &system,
        const std::vector<SensitivityParameter> &parameters,
        CarbonMetric metric, double delta) const;

    EcoChipConfig config_;
    TechDb tech_;
};

} // namespace ecochip

#endif // ECOCHIP_ANALYSIS_SENSITIVITY_H
