/**
 * @file
 * One-at-a-time sensitivity analysis over ECO-CHIP's input
 * parameters.
 *
 * The paper's validation discussion (Sec. VII) emphasizes that
 * ECO-CHIP "can generate numbers as accurate as the accuracy of
 * the input parameters, e.g., design time, yields, and defect
 * densities". This module quantifies that statement: it perturbs
 * each input by a relative amount and reports the elasticity of
 * the chosen carbon metric -- which inputs industry users must
 * pin down first.
 */

#ifndef ECOCHIP_ANALYSIS_SENSITIVITY_H
#define ECOCHIP_ANALYSIS_SENSITIVITY_H

#include <functional>
#include <string>
#include <vector>

#include "core/ecochip.h"

namespace ecochip {

/** A perturbable input parameter. */
struct SensitivityParameter
{
    /** Display name ("defect density", "EPA", ...). */
    std::string name;

    /**
     * Applies a multiplicative scale to the parameter inside the
     * configuration/technology pair.
     */
    std::function<void(EcoChipConfig &, TechDb &, double scale)>
        apply;
};

/** Result row of a sensitivity sweep. */
struct SensitivityResult
{
    std::string name;

    /** Metric at scale (1 - delta). */
    double lowValue = 0.0;

    /** Metric at the unperturbed baseline. */
    double baseValue = 0.0;

    /** Metric at scale (1 + delta). */
    double highValue = 0.0;

    /**
     * Central-difference elasticity
     * d(ln metric) / d(ln parameter).
     */
    double elasticity = 0.0;
};

/** Carbon metric to differentiate. */
enum class CarbonMetric
{
    Embodied,
    Operational,
    Total,
};

/** One-at-a-time sensitivity analyzer. */
class SensitivityAnalyzer
{
  public:
    /**
     * @param config Baseline configuration.
     * @param tech Baseline technology calibration.
     */
    explicit SensitivityAnalyzer(EcoChipConfig config,
                                 TechDb tech = TechDb());

    /**
     * The standard parameter set: defect density, fab EPA, fab
     * carbon intensity, design iterations, chiplet volume,
     * lifetime, duty cycle, packaging carbon intensity.
     */
    static std::vector<SensitivityParameter>
    standardParameters();

    /**
     * Run the sweep.
     *
     * @param system System under study.
     * @param parameters Parameters to perturb.
     * @param metric Carbon metric to differentiate.
     * @param delta Relative perturbation (default 10%).
     */
    std::vector<SensitivityResult>
    analyze(const SystemSpec &system,
            const std::vector<SensitivityParameter> &parameters,
            CarbonMetric metric = CarbonMetric::Embodied,
            double delta = 0.10) const;

  private:
    double evaluate(const SystemSpec &system,
                    const EcoChipConfig &config,
                    const TechDb &tech,
                    CarbonMetric metric) const;

    EcoChipConfig config_;
    TechDb tech_;
};

} // namespace ecochip

#endif // ECOCHIP_ANALYSIS_SENSITIVITY_H
