/**
 * @file
 * Chiplet dollar-cost model (paper Sec. VI(2)).
 *
 * The paper integrates the third-party cost tool of Graening et al.
 * ("Chiplets: How Small is too Small?", DAC 2023). That tool is not
 * available here; this module substitutes a cost model with the
 * same structure -- processed-wafer cost divided by dies-per-wafer
 * and yield, per-architecture assembly costs, and NRE (mask-set)
 * amortization -- using the identical yield numbers as the CFP
 * estimation, as the paper does.
 */

#ifndef ECOCHIP_COST_COST_MODEL_H
#define ECOCHIP_COST_COST_MODEL_H

#include "chiplet/chiplet.h"
#include "package/package_model.h"
#include "tech/tech_db.h"
#include "wafer/wafer_model.h"
#include "yield/yield_model.h"

namespace ecochip {

/** Knobs of the dollar-cost model. */
struct CostParams
{
    /** Organic substrate base cost per cm^2 (USD). */
    double substrateCostPerCm2Usd = 1.0;

    /** Incremental cost of one patterned RDL layer per cm^2. */
    double rdlLayerCostPerCm2Usd = 0.30;

    /** Cost of one silicon bridge, embedded (USD). */
    double bridgeCostUsd = 2.0;

    /** Interposer BEOL layer cost per cm^2 (USD). */
    double interposerLayerCostPerCm2Usd = 0.50;

    /** Die-attach / bonding cost per placed chiplet (USD). */
    double attachCostPerChipletUsd = 1.0;

    /** Per-connection cost of TSV/microbump/bond formation. */
    double costPerBondUsd = 2.0e-6;

    /** Known-good-die test cost per chiplet (USD). */
    double testCostPerChipletUsd = 0.50;

    /** Production volume for NRE amortization. */
    double volume = 100000.0;

    /** Include mask-set NRE in the per-part cost. */
    bool includeNre = true;

    bool operator==(const CostParams &) const = default;
};

/** Per-system cost breakdown (USD per part). */
struct CostBreakdown
{
    /** Silicon die cost: sum of wafer/DPW/Y over chiplets. */
    double dieUsd = 0.0;

    /** Package substrate / interposer / bridge / bond cost. */
    double packageUsd = 0.0;

    /** Assembly: attach + test per chiplet, derated by yield. */
    double assemblyUsd = 0.0;

    /** Amortized mask-set NRE. */
    double nreUsd = 0.0;

    /** Total cost per part (USD). */
    double totalUsd() const
    {
        return dieUsd + packageUsd + assemblyUsd + nreUsd;
    }
};

/** Dollar-cost estimator for chiplet-based systems. */
class CostModel
{
  public:
    /**
     * @param tech Technology database (must outlive the model).
     * @param wafer Wafer geometry (dies per wafer).
     * @param params Cost knobs.
     */
    explicit CostModel(const TechDb &tech,
                       WaferModel wafer = WaferModel(),
                       CostParams params = CostParams());

    /** Parameters in use. */
    const CostParams &params() const { return params_; }

    /**
     * Manufactured cost of one yielded die (USD):
     * wafer cost / DPW / Y.
     */
    double dieCostUsd(const Chiplet &chiplet) const;

    /** Amortized mask-set NRE of one chiplet (USD per part). */
    double nreCostUsd(const Chiplet &chiplet) const;

    /**
     * Full system cost including packaging/assembly.
     *
     * @param system Chiplet set.
     * @param pkg Packaging parameters (selects the assembly cost
     *        structure). Monolithic systems are charged a standard
     *        flip-chip substrate only.
     */
    CostBreakdown systemCost(const SystemSpec &system,
                             const PackageParams &pkg) const;

  private:
    /** Die cost with the area lookup hoisted by the caller. */
    double dieCostUsd(double area_mm2, double node_nm) const;

    const TechDb *tech_;
    WaferModel wafer_;
    YieldModel yieldModel_;
    CostParams params_;
};

} // namespace ecochip

#endif // ECOCHIP_COST_COST_MODEL_H
