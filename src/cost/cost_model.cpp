#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/units.h"

namespace ecochip {

CostModel::CostModel(const TechDb &tech, WaferModel wafer,
                     CostParams params)
    : tech_(&tech), wafer_(wafer), yieldModel_(tech),
      params_(params)
{
    requireConfig(params.volume >= 1.0,
                  "production volume must be at least 1");
}

double
CostModel::dieCostUsd(const Chiplet &chiplet) const
{
    return dieCostUsd(chiplet.areaMm2(*tech_), chiplet.nodeNm);
}

double
CostModel::dieCostUsd(double area_mm2, double node_nm) const
{
    const long dpw = wafer_.diesPerWafer(area_mm2);
    requireConfig(dpw > 0, "die does not fit the wafer");
    const double yield = yieldModel_.dieYield(area_mm2, node_nm);
    return tech_->waferCostUsd(node_nm) /
           (static_cast<double>(dpw) * yield);
}

double
CostModel::nreCostUsd(const Chiplet &chiplet) const
{
    if (chiplet.reused)
        return 0.0; // mask set paid for by previous products
    return tech_->maskSetCostUsd(chiplet.nodeNm) / params_.volume;
}

CostBreakdown
CostModel::systemCost(const SystemSpec &system,
                      const PackageParams &pkg) const
{
    requireConfig(!system.chiplets.empty(),
                  "system has no chiplets");

    CostBreakdown out;
    if (system.isMonolithic()) {
        // One die: silicon cost over the combined area, standard
        // flip-chip substrate, single attach, one mask set.
        double area_mm2 = 0.0;
        for (const auto &block : system.chiplets)
            area_mm2 += block.areaMm2(*tech_);
        const double node = system.monolithicNodeNm();
        const long dpw = wafer_.diesPerWafer(area_mm2);
        requireConfig(dpw > 0, "die does not fit the wafer");
        out.dieUsd = tech_->waferCostUsd(node) /
                     (static_cast<double>(dpw) *
                      yieldModel_.dieYield(area_mm2, node));
        if (params_.includeNre)
            out.nreUsd =
                tech_->maskSetCostUsd(node) / params_.volume;
        out.packageUsd = params_.substrateCostPerCm2Usd * area_mm2 *
                         units::kCm2PerMm2;
        out.assemblyUsd = params_.attachCostPerChipletUsd;
        return out;
    }

    // One logic-density lookup per chiplet; every consumer below
    // (die costs, 3D footprint) reads the hoisted area.
    std::vector<double> areas_mm2;
    areas_mm2.reserve(system.chiplets.size());
    for (const auto &chiplet : system.chiplets)
        areas_mm2.push_back(chiplet.areaMm2(*tech_));

    for (std::size_t i = 0; i < system.chiplets.size(); ++i) {
        const Chiplet &chiplet = system.chiplets[i];
        out.dieUsd += dieCostUsd(areas_mm2[i], chiplet.nodeNm);
        if (params_.includeNre)
            out.nreUsd += nreCostUsd(chiplet);
    }

    const double nc = static_cast<double>(system.chiplets.size());

    out.assemblyUsd = nc * (params_.attachCostPerChipletUsd +
                            params_.testCostPerChipletUsd);

    if (pkg.arch == PackagingArch::Stack3d) {
        double footprint_mm2 = 0.0;
        for (double area_mm2 : areas_mm2)
            footprint_mm2 = std::max(footprint_mm2, area_mm2);
        const double pitch_um = pkg.bondPitchUm();
        const double vias =
            std::floor(footprint_mm2 * units::kUm2PerMm2 /
                       (pitch_um * pitch_um));
        out.packageUsd =
            params_.substrateCostPerCm2Usd * footprint_mm2 *
                units::kCm2PerMm2 +
            vias * (nc - 1.0) * params_.costPerBondUsd;
        return out;
    }

    const FloorplanResult fp =
        Floorplanner(pkg.spacingMm).plan(system, *tech_);
    const double pkg_cm2 = fp.areaMm2() * units::kCm2PerMm2;

    switch (pkg.arch) {
      case PackagingArch::RdlFanout:
        out.packageUsd =
            pkg_cm2 * (params_.substrateCostPerCm2Usd +
                       pkg.rdlLayers *
                           params_.rdlLayerCostPerCm2Usd);
        break;
      case PackagingArch::SiliconBridge: {
        int bridges = 0;
        for (const auto &adj : fp.adjacencies)
            bridges += std::max(
                1, static_cast<int>(std::ceil(
                       adj.overlapMm / pkg.bridgeRangeMm)));
        bridges = std::max(
            bridges, static_cast<int>(system.chiplets.size()) - 1);
        out.packageUsd =
            pkg_cm2 * params_.substrateCostPerCm2Usd +
            bridges * params_.bridgeCostUsd;
        break;
      }
      case PackagingArch::PassiveInterposer:
      case PackagingArch::ActiveInterposer: {
        // The interposer is itself a die from a (legacy-node)
        // wafer; active flavors see full defectivity.
        const long dpw = wafer_.diesPerWafer(fp.areaMm2());
        requireConfig(dpw > 0,
                      "interposer does not fit the wafer");
        const bool active =
            pkg.arch == PackagingArch::ActiveInterposer;
        const double yield =
            active ? yieldModel_.dieYield(fp.areaMm2(),
                                          pkg.interposerNodeNm)
                   : yieldModel_.interposerYield(
                         fp.areaMm2(), pkg.interposerNodeNm);
        // An interposer wafer costs more than a plain logic wafer
        // at the same node: TSV etch/fill, wafer thinning, and
        // carrier handling add ~50%; active interposers pay a
        // further FEOL premium.
        const double wafer_factor = active ? 2.0 : 1.5;
        out.packageUsd =
            wafer_factor *
                tech_->waferCostUsd(pkg.interposerNodeNm) /
                (static_cast<double>(dpw) * yield) +
            pkg_cm2 * params_.substrateCostPerCm2Usd;
        break;
      }
      case PackagingArch::Stack3d:
        throw ModelError("3D handled above");
    }
    return out;
}

} // namespace ecochip
