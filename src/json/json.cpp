#include "json/json.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.h"

namespace ecochip::json {

const char *
typeName(Type type)
{
    switch (type) {
      case Type::Null: return "null";
      case Type::Boolean: return "boolean";
      case Type::Number: return "number";
      case Type::String: return "string";
      case Type::Array: return "array";
      case Type::Object: return "object";
    }
    return "unknown";
}

namespace {

[[noreturn]] void
typeError(Type want, Type got)
{
    throw ConfigError(std::string("JSON type mismatch: expected ") +
                      typeName(want) + ", got " + typeName(got));
}

} // namespace

Value
Value::makeArray()
{
    Value v;
    v.type_ = Type::Array;
    return v;
}

Value
Value::makeArray(std::vector<Value> elements)
{
    Value v;
    v.type_ = Type::Array;
    v.array_ = std::move(elements);
    return v;
}

Value
Value::makeObject()
{
    Value v;
    v.type_ = Type::Object;
    return v;
}

bool
Value::asBoolean() const
{
    if (type_ != Type::Boolean)
        typeError(Type::Boolean, type_);
    return boolean_;
}

double
Value::asNumber() const
{
    if (type_ != Type::Number)
        typeError(Type::Number, type_);
    return number_;
}

std::int64_t
Value::asInteger() const
{
    const double n = asNumber();
    const double rounded = std::round(n);
    requireConfig(std::abs(n - rounded) < 1e-9,
                  "JSON number is not an integer: " +
                      std::to_string(n));
    return static_cast<std::int64_t>(rounded);
}

const std::string &
Value::asString() const
{
    if (type_ != Type::String)
        typeError(Type::String, type_);
    return string_;
}

const std::vector<Value> &
Value::asArray() const
{
    if (type_ != Type::Array)
        typeError(Type::Array, type_);
    return array_;
}

std::vector<Value> &
Value::asArray()
{
    if (type_ != Type::Array)
        typeError(Type::Array, type_);
    return array_;
}

const std::vector<Member> &
Value::members() const
{
    if (type_ != Type::Object)
        typeError(Type::Object, type_);
    return object_;
}

bool
Value::contains(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[name, value] : object_)
        if (name == key)
            return true;
    return false;
}

const Value &
Value::at(const std::string &key) const
{
    if (type_ != Type::Object)
        typeError(Type::Object, type_);
    for (const auto &[name, value] : object_)
        if (name == key)
            return value;
    throw ConfigError("missing JSON key: \"" + key + "\"");
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    return contains(key) ? at(key).asNumber() : fallback;
}

std::string
Value::stringOr(const std::string &key,
                const std::string &fallback) const
{
    return contains(key) ? at(key).asString() : fallback;
}

bool
Value::booleanOr(const std::string &key, bool fallback) const
{
    return contains(key) ? at(key).asBoolean() : fallback;
}

void
Value::set(const std::string &key, Value value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        typeError(Type::Object, type_);
    for (auto &[name, existing] : object_) {
        if (name == key) {
            existing = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

void
Value::append(Value element)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        typeError(Type::Array, type_);
    array_.push_back(std::move(element));
}

std::size_t
Value::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    throw ConfigError("size() on non-container JSON value");
}

const Value &
Value::operator[](std::size_t index) const
{
    const auto &arr = asArray();
    requireConfig(index < arr.size(),
                  "JSON array index out of range");
    return arr[index];
}

bool
Value::operator==(const Value &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Boolean: return boolean_ == other.boolean_;
      case Type::Number: return number_ == other.number_;
      case Type::String: return string_ == other.string_;
      case Type::Array: return array_ == other.array_;
      case Type::Object: return object_ == other.object_;
    }
    return false;
}

void
escapeStringTo(std::string &out, std::string_view s)
{
    out += '"';
    // Copy maximal runs of chars that need no escaping in one
    // append; only '"', '\\', and controls < 0x20 break a run.
    std::size_t run = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const unsigned char c =
            static_cast<unsigned char>(s[i]);
        if (c != '"' && c != '\\' && c >= 0x20)
            continue;
        out.append(s.data() + run, i - run);
        switch (s[i]) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default: {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          }
        }
        run = i + 1;
    }
    out.append(s.data() + run, s.size() - run);
    out += '"';
}

std::string
formatNumber(double n)
{
    if (n == std::floor(n) && std::abs(n) < 1e15) {
        // Integral: print without fraction. Covers -0.0 too,
        // which %.0f spells "-0" and strtod reads back as -0.0.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", n);
        return buf;
    }
    // Shortest round-trip: the spelling is the first precision in
    // {15, 16, 17} whose %g output reads back exactly. Probing
    // all three costs a snprintf+strtod per step, so let
    // std::to_chars (shortest-round-trip by construction) reveal
    // how many significant digits the value needs and emit once.
    char shortest[40];
    const auto conv = std::to_chars(
        shortest, shortest + sizeof(shortest), n);
    int digits = 0;
    bool seen_nonzero = false;
    bool positional = true; // no '.'/exponent: integer spelling
    for (const char *p = shortest; p != conv.ptr; ++p) {
        if (*p == 'e' || *p == '.') {
            positional = false;
            continue;
        }
        if (*p < '0' || *p > '9')
            continue;
        if (*p == '0' && !seen_nonzero)
            continue; // leading zeros are not significant
        seen_nonzero = true;
        ++digits;
    }
    if (positional) // trailing zeros of an integer are positional
        for (const char *p = conv.ptr - 1;
             p != shortest && *p == '0'; --p)
            --digits;
    const int precision = std::clamp(digits, 15, 17);

    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, n);
    if (std::strtod(buf, nullptr) == n)
        return buf;
    // Unreachable in principle; keep the probing loop as the
    // safety net so a platform quirk degrades to slow, not wrong.
    for (int p = 15; p <= 17; ++p) {
        std::snprintf(buf, sizeof(buf), "%.*g", p, n);
        if (std::strtod(buf, nullptr) == n)
            break;
    }
    return buf;
}

double
numberFromToken(std::string_view token, bool *out_of_range)
{
    // strtod needs NUL termination; tokens are short except in
    // adversarial input, where the copy is the least of it.
    const std::string buf(token);
    errno = 0;
    const double value = std::strtod(buf.c_str(), nullptr);
    if (out_of_range)
        *out_of_range = errno == ERANGE &&
                        (value == HUGE_VAL || value == -HUGE_VAL);
    return value;
}

void
Value::dumpTo(std::string &out, bool pretty, int depth) const
{
    const std::string indent =
        pretty ? std::string(4 * (depth + 1), ' ') : "";
    const std::string closing_indent =
        pretty ? std::string(4 * depth, ' ') : "";
    const char *nl = pretty ? "\n" : "";
    const char *colon = pretty ? ": " : ":";

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Boolean:
        out += boolean_ ? "true" : "false";
        break;
      case Type::Number:
        out += formatNumber(number_);
        break;
      case Type::String:
        escapeStringTo(out, string_);
        break;
      case Type::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < array_.size(); ++i) {
            out += indent;
            array_[i].dumpTo(out, pretty, depth + 1);
            if (i + 1 < array_.size())
                out += ',';
            out += nl;
        }
        out += closing_indent;
        out += ']';
        break;
      case Type::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < object_.size(); ++i) {
            out += indent;
            escapeStringTo(out, object_[i].first);
            out += colon;
            object_[i].second.dumpTo(out, pretty, depth + 1);
            if (i + 1 < object_.size())
                out += ',';
            out += nl;
        }
        out += closing_indent;
        out += '}';
        break;
    }
}

std::string
Value::dump(bool pretty) const
{
    std::string out;
    dumpTo(out, pretty, 0);
    return out;
}

namespace {

/**
 * Recursive-descent JSON parser with position tracking for error
 * messages.
 */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        skipWhitespace();
        Value v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw ConfigError("JSON parse error at line " +
                          std::to_string(line) + ", column " +
                          std::to_string(col) + ": " + message);
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek() const
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    advance()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (atEnd() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                // Tolerate //-comments: config files in the wild
                // often carry them.
                while (!atEnd() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    Value
    parseValue()
    {
        skipWhitespace();
        const char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value(parseString());
          case 't': case 'f': return parseBoolean();
          case 'n': return parseNull();
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail("unexpected character");
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Value obj = Value::makeObject();
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            Value v = parseValue();
            if (obj.contains(key))
                fail("duplicate object key: \"" + key + "\"");
            obj.set(key, std::move(v));
            skipWhitespace();
            const char c = advance();
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value arr = Value::makeArray();
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.append(parseValue());
            skipWhitespace();
            const char c = advance();
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (atEnd())
                fail("unterminated string");
            char c = advance();
            if (c == '"')
                return out;
            if (c == '\\') {
                const char esc = advance();
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': out += parseUnicodeEscape(); break;
                  default: fail("invalid escape sequence");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            } else {
                out += c;
            }
        }
    }

    std::string
    parseUnicodeEscape()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = advance();
            code <<= 4;
            if (c >= '0' && c <= '9')
                code += c - '0';
            else if (c >= 'a' && c <= 'f')
                code += c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                code += c - 'A' + 10;
            else
                fail("invalid \\u escape");
        }
        // Encode the code point as UTF-8 (BMP only; surrogate pairs
        // are passed through as two separate escapes, adequate for
        // configuration files).
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (atEnd() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            fail("invalid number");
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (!atEnd() && text_[pos_] == '.') {
            ++pos_;
            if (atEnd() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                fail("digit required after decimal point");
            while (!atEnd() && std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (!atEnd() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (atEnd() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                fail("digit required in exponent");
            while (!atEnd() && std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        bool out_of_range = false;
        const double value = numberFromToken(
            std::string_view(text_).substr(start, pos_ - start),
            &out_of_range);
        if (out_of_range) {
            pos_ = start;
            fail("number out of range");
        }
        return Value(value);
    }

    Value
    parseBoolean()
    {
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return Value(true);
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return Value(false);
        }
        fail("invalid literal");
    }

    Value
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return Value();
        }
        fail("invalid literal");
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

Value
parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    requireConfig(static_cast<bool>(in),
                  "cannot open JSON file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

void
writeFile(const Value &value, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    requireConfig(static_cast<bool>(out),
                  "cannot write JSON file: " + path);
    out << value.dump(true) << '\n';
}

} // namespace ecochip::json
