#include "json/ondemand.h"

#include <cctype>
#include <utility>

#include "support/error.h"

namespace ecochip::json::ondemand {

/*
 * Grammar parity notice: every accept/reject decision below
 * mirrors the DOM Parser in json.cpp -- including its deliberate
 * tolerances (//-comments in whitespace, leading-zero numbers)
 * and its strictures (duplicate keys, raw control characters in
 * strings, out-of-range numbers). Changing either parser without
 * the other breaks the differential fuzz suite.
 */

void
Scanner::fail(const std::string &message) const
{
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
    }
    throw ConfigError("JSON parse error at line " +
                      std::to_string(line) + ", column " +
                      std::to_string(col) + ": " + message);
}

char
Scanner::peek() const
{
    if (atEnd())
        fail("unexpected end of input");
    return text_[pos_];
}

char
Scanner::advance()
{
    const char c = peek();
    ++pos_;
    return c;
}

void
Scanner::expect(char c)
{
    if (atEnd() || text_[pos_] != c)
        fail(std::string("expected '") + c + "'");
    ++pos_;
}

void
Scanner::skipWhitespace()
{
    while (!atEnd()) {
        const char c = text_[pos_];
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
            ++pos_;
        } else if (c == '/' && pos_ + 1 < text_.size() &&
                   text_[pos_ + 1] == '/') {
            while (!atEnd() && text_[pos_] != '\n')
                ++pos_;
        } else {
            break;
        }
    }
}

std::string
Scanner::decodeString()
{
    if (!atEnd() && text_[pos_] == '"') {
        std::string_view content;
        if (fastScanString(content))
            return std::string(content);
    }
    expect('"');
    std::string out;
    while (true) {
        if (atEnd())
            fail("unterminated string");
        const char c = advance();
        if (c == '"')
            return out;
        if (c == '\\') {
            const char esc = advance();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = advance();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += h - 'A' + 10;
                    else
                        fail("invalid \\u escape");
                }
                // BMP-only UTF-8, same as the DOM parser.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 |
                                             (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 |
                                             (code & 0x3F));
                }
                break;
              }
              default: fail("invalid escape sequence");
            }
        } else if (static_cast<unsigned char>(c) < 0x20) {
            fail("raw control character in string");
        } else {
            out += c;
        }
    }
}

bool
Scanner::fastScanString(std::string_view &content)
{
    // Escape-free fast path: one tight scan from the opening
    // quote. On the first backslash the cursor is left untouched
    // and the caller falls back to the decoding loop, so fail
    // positions stay byte-identical to decodeString()'s.
    std::size_t p = pos_ + 1;
    while (p < text_.size()) {
        const unsigned char c =
            static_cast<unsigned char>(text_[p]);
        if (c == '"') {
            content = text_.substr(pos_ + 1, p - pos_ - 1);
            pos_ = p + 1;
            return true;
        }
        if (c == '\\')
            return false;
        if (c < 0x20) {
            // decodeString fails after consuming the offender.
            pos_ = p + 1;
            fail("raw control character in string");
        }
        ++p;
    }
    pos_ = text_.size();
    fail("unterminated string");
}

void
Scanner::skipString()
{
    if (!atEnd() && text_[pos_] == '"') {
        if (std::string_view ignored; fastScanString(ignored))
            return;
    }
    expect('"');
    while (true) {
        if (atEnd())
            fail("unterminated string");
        const char c = advance();
        if (c == '"')
            return;
        if (c == '\\') {
            const char esc = advance();
            switch (esc) {
              case '"': case '\\': case '/': case 'n': case 't':
              case 'r': case 'b': case 'f':
                break;
              case 'u':
                for (int i = 0; i < 4; ++i) {
                    const char h = advance();
                    if (!std::isxdigit(
                            static_cast<unsigned char>(h)))
                        fail("invalid \\u escape");
                }
                break;
              default: fail("invalid escape sequence");
            }
        } else if (static_cast<unsigned char>(c) < 0x20) {
            fail("raw control character in string");
        }
    }
}

std::string_view
Scanner::numberToken()
{
    const std::size_t start = pos_;
    if (!atEnd() && text_[pos_] == '-')
        ++pos_;
    if (atEnd() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number");
    while (!atEnd() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    if (!atEnd() && text_[pos_] == '.') {
        ++pos_;
        if (atEnd() ||
            !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            fail("digit required after decimal point");
        while (!atEnd() &&
               std::isdigit(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
    if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
        ++pos_;
        if (!atEnd() &&
            (text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (atEnd() ||
            !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            fail("digit required in exponent");
        while (!atEnd() &&
               std::isdigit(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
    return text_.substr(start, pos_ - start);
}

/**
 * Conservative overflow screen for a validated number token:
 * false means the value provably fits (integer digits plus the
 * explicit exponent stay far below DBL_MAX's 1.8e308), so the
 * strtod range check can be skipped. Underflow never rejects, so
 * only the overflow side matters.
 */
static bool
mightOverflow(std::string_view token)
{
    std::size_t i = token.front() == '-' ? 1 : 0;
    long int_digits = 0;
    while (i < token.size() && token[i] >= '0' &&
           token[i] <= '9') {
        ++int_digits;
        ++i;
    }
    if (i < token.size() && token[i] == '.') {
        ++i;
        while (i < token.size() && token[i] >= '0' &&
               token[i] <= '9')
            ++i;
    }
    long exponent = 0;
    if (i < token.size() &&
        (token[i] == 'e' || token[i] == 'E')) {
        ++i;
        bool negative = false;
        if (i < token.size() &&
            (token[i] == '+' || token[i] == '-')) {
            negative = token[i] == '-';
            ++i;
        }
        while (i < token.size() && exponent < 100000) {
            exponent = exponent * 10 + (token[i] - '0');
            ++i;
        }
        if (negative)
            return false; // shrinking: can only underflow
    }
    return int_digits + exponent > 305;
}

void
Scanner::skipNumber()
{
    const std::size_t start = pos_;
    const std::string_view token = numberToken();
    if (mightOverflow(token)) {
        bool out_of_range = false;
        numberFromToken(token, &out_of_range);
        if (out_of_range) {
            pos_ = start;
            fail("number out of range");
        }
    }
}

void
Scanner::skipValue()
{
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{': {
        ++pos_;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        // Duplicate detection on decoded names, allocating only
        // for the rare key that actually contains escapes: an
        // escape-free key's raw bytes ARE its decoded form, so
        // raw-span comparison is exact for them.
        struct SkipKey
        {
            std::string_view raw;
            std::string owned;
            bool escaped;
            std::string_view content() const
            {
                return escaped ? std::string_view(owned) : raw;
            }
        };
        std::vector<SkipKey> keys;
        while (true) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected object key string");
            SkipKey entry;
            if (fastScanString(entry.raw)) {
                entry.escaped = false;
            } else {
                entry.owned = decodeString();
                entry.escaped = true;
            }
            for (const auto &seen : keys)
                if (seen.content() == entry.content())
                    fail("duplicate object key: \"" +
                         std::string(entry.content()) + "\"");
            keys.push_back(std::move(entry));
            skipWhitespace();
            expect(':');
            skipValue();
            skipWhitespace();
            const char d = advance();
            if (d == '}')
                return;
            if (d != ',')
                fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        while (true) {
            skipValue();
            skipWhitespace();
            const char d = advance();
            if (d == ']')
                return;
            if (d != ',')
                fail("expected ',' or ']' in array");
        }
      }
      case '"':
        skipString();
        return;
      case 't':
      case 'f':
        boolean();
        return;
      case 'n':
        null();
        return;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
            skipNumber();
            return;
        }
        fail("unexpected character");
    }
}

std::string_view
Scanner::rawValue()
{
    skipWhitespace();
    const std::size_t start = pos_;
    skipValue();
    return text_.substr(start, pos_ - start);
}

Type
Scanner::peekType()
{
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{': return Type::Object;
      case '[': return Type::Array;
      case '"': return Type::String;
      case 't':
      case 'f': return Type::Boolean;
      case 'n': return Type::Null;
      default:
        if (c == '-' || (c >= '0' && c <= '9'))
            return Type::Number;
        fail("unexpected character");
    }
}

bool
Scanner::boolean()
{
    skipWhitespace();
    if (text_.compare(pos_, 4, "true") == 0) {
        pos_ += 4;
        return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
        pos_ += 5;
        return false;
    }
    fail("invalid literal");
}

double
Scanner::number()
{
    skipWhitespace();
    const std::size_t start = pos_;
    const std::string_view token = numberToken();
    bool out_of_range = false;
    const double value = numberFromToken(token, &out_of_range);
    if (out_of_range) {
        pos_ = start;
        fail("number out of range");
    }
    return value;
}

std::string
Scanner::string()
{
    skipWhitespace();
    return decodeString();
}

void
Scanner::null()
{
    skipWhitespace();
    if (text_.compare(pos_, 4, "null") == 0) {
        pos_ += 4;
        return;
    }
    fail("invalid literal");
}

void
Scanner::beginObject()
{
    skipWhitespace();
    expect('{');
    frames_.push_back(Frame{'{', true, {}});
}

bool
Scanner::nextMember(std::string &key)
{
    requireModel(!frames_.empty() && frames_.back().kind == '{',
                 "Scanner: nextMember() outside an object");
    skipWhitespace();
    if (frames_.back().first) {
        frames_.back().first = false;
        if (peek() == '}') {
            ++pos_;
            frames_.pop_back();
            return false;
        }
    } else {
        const char c = advance();
        if (c == '}') {
            frames_.pop_back();
            return false;
        }
        if (c != ',')
            fail("expected ',' or '}' in object");
        skipWhitespace();
    }
    if (peek() != '"')
        fail("expected object key string");
    key = decodeString();
    Frame &frame = frames_.back();
    for (const auto &seen : frame.keys)
        if (seen == key)
            fail("duplicate object key: \"" + key + "\"");
    frame.keys.push_back(key);
    skipWhitespace();
    expect(':');
    return true;
}

void
Scanner::beginArray()
{
    skipWhitespace();
    expect('[');
    frames_.push_back(Frame{'[', true, {}});
}

bool
Scanner::nextElement()
{
    requireModel(!frames_.empty() && frames_.back().kind == '[',
                 "Scanner: nextElement() outside an array");
    skipWhitespace();
    if (frames_.back().first) {
        frames_.back().first = false;
        if (peek() == ']') {
            ++pos_;
            frames_.pop_back();
            return false;
        }
        return true;
    }
    const char c = advance();
    if (c == ']') {
        frames_.pop_back();
        return false;
    }
    if (c != ',')
        fail("expected ',' or ']' in array");
    return true;
}

void
Scanner::expectEnd()
{
    requireModel(frames_.empty(),
                 "Scanner: expectEnd() with open containers");
    skipWhitespace();
    if (!atEnd())
        fail("trailing characters after JSON document");
}

std::optional<std::string_view>
findMember(std::string_view object_text, std::string_view key)
{
    Scanner scanner(object_text);
    scanner.beginObject();
    std::string name;
    while (scanner.nextMember(name)) {
        if (name == key)
            return scanner.rawValue();
        scanner.rawValue();
    }
    return std::nullopt;
}

bool
booleanField(std::string_view object_text, std::string_view key,
             bool fallback)
{
    const auto span = findMember(object_text, key);
    if (!span)
        return fallback;
    Scanner scanner(*span);
    const Type type = scanner.peekType();
    if (type != Type::Boolean)
        throw ConfigError(
            std::string(
                "JSON type mismatch: expected boolean, got ") +
            typeName(type));
    return scanner.boolean();
}

void
reserializeValue(Scanner &in, StreamWriter &out)
{
    switch (in.peekType()) {
      case Type::Null:
        in.null();
        out.null();
        break;
      case Type::Boolean:
        out.boolean(in.boolean());
        break;
      case Type::Number:
        out.number(in.number());
        break;
      case Type::String:
        out.string(in.string());
        break;
      case Type::Array:
        in.beginArray();
        out.beginArray();
        while (in.nextElement())
            reserializeValue(in, out);
        out.endArray();
        break;
      case Type::Object: {
        in.beginObject();
        out.beginObject();
        std::string key;
        while (in.nextMember(key)) {
            out.key(key);
            reserializeValue(in, out);
        }
        out.endObject();
        break;
      }
    }
}

std::string
reserialize(std::string_view text, bool pretty)
{
    Scanner in(text);
    StreamWriter out(pretty);
    reserializeValue(in, out);
    in.expectEnd();
    return out.take();
}

void
validate(std::string_view text)
{
    Scanner scanner(text);
    scanner.rawValue();
    scanner.expectEnd();
}

} // namespace ecochip::json::ondemand
