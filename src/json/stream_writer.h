/**
 * @file
 * Append-only streaming JSON emitter.
 *
 * `StreamWriter` serializes a document as a sequence of
 * begin/end/key/value calls with no intermediate `json::Value`
 * tree -- the output side of the fast wire path (the input side
 * is `json/ondemand.h`). Its output is byte-identical to
 * `Value::dump(pretty)` of the equivalent DOM: the same escaping
 * (`escapeStringTo`), the same number spelling (`formatNumber`),
 * the same 4-space pretty layout with `[]`/`{}` for empty
 * containers and `": "` after keys. The wire-path contract in
 * docs/file_formats.md rests on that identity; `appendValue` plus
 * the differential fuzz suite (tests/test_json_fuzz.cpp) lock it.
 *
 * Scope violations -- a key outside an object, a value where a
 * key is required, unbalanced `end` calls -- throw ModelError:
 * they are caller bugs, not input errors.
 */

#ifndef ECOCHIP_JSON_STREAM_WRITER_H
#define ECOCHIP_JSON_STREAM_WRITER_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.h"

namespace ecochip::json {

class StreamWriter
{
  public:
    /**
     * @param pretty When true, emit the 4-space indented layout
     *        of `Value::dump(true)`; otherwise the compact form.
     */
    explicit StreamWriter(bool pretty = false) : pretty_(pretty) {}

    /** @{ @name Container scopes */
    void beginObject() { openContainer('{'); }
    void endObject() { closeContainer('{', '}'); }
    void beginArray() { openContainer('['); }
    void endArray() { closeContainer('[', ']'); }
    /** @} */

    /**
     * Emit an object member key; exactly one value (or container)
     * must follow before the next key or endObject().
     */
    void key(std::string_view name);

    /** @{ @name Scalar values */
    void null();
    void boolean(bool b);
    void number(double n);
    void string(std::string_view s);
    /** @} */

    /**
     * Splice a pre-serialized JSON value verbatim.
     *
     * @p text must be one complete value with no surrounding
     * whitespace. The span is spliced as-is, so in pretty mode
     * byte-identity with `dump(true)` additionally requires the
     * span itself to carry the right indentation -- transcode
     * compact spans with `ondemand::reserializeValue` instead.
     */
    void raw(std::string_view text);

    /** The document so far (the full document once complete()). */
    const std::string &str() const { return out_; }

    /**
     * Move the finished document out and reset the writer for the
     * next document (the NDJSON line discipline).
     * @throws ModelError when scopes are still open or no root
     *         value has been written.
     */
    std::string take();

    /** True when one root value exists and every scope closed. */
    bool complete() const
    {
        return frames_.empty() && has_root_;
    }

    /** Number of currently open containers. */
    std::size_t depth() const { return frames_.size(); }

  private:
    struct Frame
    {
        char kind;        // '{' or '['
        bool empty;       // open bracket still deferred
        bool key_pending; // object: key emitted, value expected
    };

    void elementPrefix();
    void openContainer(char open);
    void closeContainer(char open, char close);
    void materialize(Frame &frame);
    void indent();

    std::string out_;
    std::vector<Frame> frames_;
    bool pretty_ = false;
    bool has_root_ = false;
};

/**
 * Emit @p value through @p writer. `appendValue(w, v)` produces
 * exactly `v.dump(pretty)` -- the drift lock between the DOM
 * serializer and the streaming writer.
 */
void appendValue(StreamWriter &writer, const Value &value);

} // namespace ecochip::json

#endif // ECOCHIP_JSON_STREAM_WRITER_H
