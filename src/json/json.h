/**
 * @file
 * Self-contained JSON value type, parser, and serializer.
 *
 * The reference ECO-CHIP artifact is driven by JSON configuration
 * files (architecture.json, packageC.json, designC.json,
 * operationalC.json). This module provides the equivalent substrate
 * with no external dependencies: a recursive-descent parser with
 * line/column error reporting and a pretty-printing serializer.
 *
 * Objects preserve insertion order so that serialized configs diff
 * cleanly against their sources.
 */

#ifndef ECOCHIP_JSON_JSON_H
#define ECOCHIP_JSON_JSON_H

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ecochip::json {

class Value;

/** Ordered key/value storage backing JSON objects. */
using Member = std::pair<std::string, Value>;

/** JSON type tags. */
enum class Type
{
    Null,
    Boolean,
    Number,
    String,
    Array,
    Object,
};

/** Human-readable name of a JSON type tag. */
const char *typeName(Type type);

/**
 * A dynamically typed JSON value.
 *
 * Accessors come in two flavors: checked (asNumber() etc., which
 * throw ConfigError on type mismatch -- config files are user input)
 * and interrogative (isNumber() etc.).
 */
class Value
{
  public:
    /** Construct a null value. */
    Value() : type_(Type::Null) {}

    /** Construct a boolean value. */
    Value(bool b) : type_(Type::Boolean), boolean_(b) {}

    /** Construct a number value from a double. */
    Value(double n) : type_(Type::Number), number_(n) {}

    /** Construct a number value from an int. */
    Value(int n) : type_(Type::Number), number_(n) {}

    /** Construct a number value from a long. */
    Value(long n)
        : type_(Type::Number), number_(static_cast<double>(n))
    {}

    /** Construct a string value. */
    Value(std::string s) : type_(Type::String), string_(std::move(s)) {}

    /** Construct a string value from a literal. */
    Value(const char *s) : type_(Type::String), string_(s) {}

    /** Build an empty array value. */
    static Value makeArray();

    /** Build an array from elements. */
    static Value makeArray(std::vector<Value> elements);

    /** Build an empty object value. */
    static Value makeObject();

    /** Type of this value. */
    Type type() const { return type_; }

    /** @{ @name Type predicates */
    bool isNull() const { return type_ == Type::Null; }
    bool isBoolean() const { return type_ == Type::Boolean; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }
    /** @} */

    /** Checked boolean access; throws ConfigError on mismatch. */
    bool asBoolean() const;

    /** Checked numeric access; throws ConfigError on mismatch. */
    double asNumber() const;

    /**
     * Checked integral access; throws ConfigError if the number is
     * not integral within rounding tolerance.
     */
    std::int64_t asInteger() const;

    /** Checked string access; throws ConfigError on mismatch. */
    const std::string &asString() const;

    /** Checked array access; throws ConfigError on mismatch. */
    const std::vector<Value> &asArray() const;

    /** Mutable checked array access. */
    std::vector<Value> &asArray();

    /** Checked object member list; throws ConfigError on mismatch. */
    const std::vector<Member> &members() const;

    /** True when the object has a member named @p key. */
    bool contains(const std::string &key) const;

    /**
     * Checked object member lookup.
     *
     * @param key Member name; missing keys throw ConfigError.
     */
    const Value &at(const std::string &key) const;

    /**
     * Optional lookup: returns @p fallback when the member is
     * missing (but still type-checks when present).
     */
    double numberOr(const std::string &key, double fallback) const;

    /** Optional string lookup with fallback. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Optional boolean lookup with fallback. */
    bool booleanOr(const std::string &key, bool fallback) const;

    /**
     * Insert or overwrite an object member.
     *
     * @param key Member name.
     * @param value Member value.
     */
    void set(const std::string &key, Value value);

    /** Append an element to an array value. */
    void append(Value element);

    /** Element count of an array or member count of an object. */
    std::size_t size() const;

    /** Checked array indexing. */
    const Value &operator[](std::size_t index) const;

    /**
     * Serialize to a JSON string.
     *
     * @param pretty When true, emit 4-space indented output.
     */
    std::string dump(bool pretty = false) const;

    /** Structural equality. */
    bool operator==(const Value &other) const;

  private:
    void dumpTo(std::string &out, bool pretty, int depth) const;

    Type type_;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<Member> object_;
};

/**
 * Format a double exactly as the serializer prints JSON numbers:
 * no fraction for integral values below 1e15, otherwise the
 * shortest `%g` spelling (15, 16, or 17 significant digits) that
 * parses back to the identical bits. The canonical number
 * spelling shared by derived scenario names
 * (`search/scenario_space.h`), serialized documents, and the
 * streaming writer (`json/stream_writer.h`).
 */
std::string formatNumber(double n);

/**
 * Append the JSON string literal for @p s (including the
 * surrounding quotes) to @p out. One escaping routine backs both
 * the DOM serializer and `StreamWriter`, so the two paths cannot
 * disagree on control characters or quoting.
 */
void escapeStringTo(std::string &out, std::string_view s);

/**
 * Decode a lexically valid JSON number token to a double.
 *
 * Shared by the DOM parser and the on-demand scanner so both
 * agree bit-for-bit on every input. Underflow quietly returns the
 * nearest representable value (a denormal or zero); overflow sets
 * @p out_of_range (when non-null) and the caller reports it with
 * its own position context.
 */
double numberFromToken(std::string_view token,
                       bool *out_of_range = nullptr);

/**
 * Parse a JSON document.
 *
 * @param text Complete JSON text.
 * @return The parsed root value.
 * @throws ConfigError with line/column context on malformed input.
 */
Value parse(const std::string &text);

/**
 * Parse the JSON document in a file.
 *
 * @param path Filesystem path to a JSON file.
 */
Value parseFile(const std::string &path);

/**
 * Write a value to a file as pretty-printed JSON.
 *
 * @param value Root value to serialize.
 * @param path Destination path (overwritten).
 */
void writeFile(const Value &value, const std::string &path);

} // namespace ecochip::json

#endif // ECOCHIP_JSON_JSON_H
