#include "json/stream_writer.h"

#include <utility>

#include "support/error.h"

namespace ecochip::json {

/*
 * The open bracket of a container is deferred until its first
 * element (or its end call) so that empty containers come out as
 * the two-character "[]" / "{}" forms the DOM serializer uses,
 * with no newline inside.
 */
void
StreamWriter::materialize(Frame &frame)
{
    frame.empty = false;
    out_ += frame.kind;
    if (pretty_)
        out_ += '\n';
}

void
StreamWriter::indent()
{
    out_.append(4 * frames_.size(), ' ');
}

void
StreamWriter::elementPrefix()
{
    if (frames_.empty()) {
        requireModel(!has_root_,
                     "StreamWriter: second root value");
        has_root_ = true;
        return;
    }
    Frame &frame = frames_.back();
    if (frame.kind == '{') {
        // key() already emitted the member prefix.
        requireModel(frame.key_pending,
                     "StreamWriter: value in object without key");
        frame.key_pending = false;
        return;
    }
    if (frame.empty) {
        materialize(frame);
    } else {
        out_ += ',';
        if (pretty_)
            out_ += '\n';
    }
    if (pretty_)
        indent();
}

void
StreamWriter::key(std::string_view name)
{
    requireModel(!frames_.empty() && frames_.back().kind == '{',
                 "StreamWriter: key() outside an object");
    Frame &frame = frames_.back();
    requireModel(!frame.key_pending,
                 "StreamWriter: key() while a value is pending");
    if (frame.empty) {
        materialize(frame);
    } else {
        out_ += ',';
        if (pretty_)
            out_ += '\n';
    }
    if (pretty_)
        indent();
    escapeStringTo(out_, name);
    out_ += ':';
    if (pretty_)
        out_ += ' ';
    frame.key_pending = true;
}

void
StreamWriter::openContainer(char open)
{
    elementPrefix();
    frames_.push_back(Frame{open, true, false});
}

void
StreamWriter::closeContainer(char open, char close)
{
    requireModel(!frames_.empty() && frames_.back().kind == open,
                 "StreamWriter: mismatched container end");
    requireModel(!frames_.back().key_pending,
                 "StreamWriter: key without value at scope end");
    const bool was_empty = frames_.back().empty;
    frames_.pop_back();
    if (was_empty) {
        out_ += open;
        out_ += close;
        return;
    }
    if (pretty_) {
        out_ += '\n';
        indent();
    }
    out_ += close;
}

void
StreamWriter::null()
{
    elementPrefix();
    out_ += "null";
}

void
StreamWriter::boolean(bool b)
{
    elementPrefix();
    out_ += b ? "true" : "false";
}

void
StreamWriter::number(double n)
{
    elementPrefix();
    out_ += formatNumber(n);
}

void
StreamWriter::string(std::string_view s)
{
    elementPrefix();
    escapeStringTo(out_, s);
}

void
StreamWriter::raw(std::string_view text)
{
    requireModel(!text.empty(),
                 "StreamWriter: raw() with an empty span");
    elementPrefix();
    out_ += text;
}

std::string
StreamWriter::take()
{
    requireModel(complete(),
                 "StreamWriter: take() on an incomplete document");
    std::string document = std::move(out_);
    out_.clear();
    has_root_ = false;
    return document;
}

void
appendValue(StreamWriter &writer, const Value &value)
{
    switch (value.type()) {
      case Type::Null:
        writer.null();
        break;
      case Type::Boolean:
        writer.boolean(value.asBoolean());
        break;
      case Type::Number:
        writer.number(value.asNumber());
        break;
      case Type::String:
        writer.string(value.asString());
        break;
      case Type::Array:
        writer.beginArray();
        for (const auto &element : value.asArray())
            appendValue(writer, element);
        writer.endArray();
        break;
      case Type::Object:
        writer.beginObject();
        for (const auto &[name, member] : value.members()) {
            writer.key(name);
            appendValue(writer, member);
        }
        writer.endObject();
        break;
    }
}

} // namespace ecochip::json
