/**
 * @file
 * Forward-only on-demand JSON scanner.
 *
 * The input side of the fast wire path (the output side is
 * `json/stream_writer.h`), in the spirit of simdjson's lazy
 * on-demand design: seek to a key, iterate an array, yield raw
 * value spans -- without materializing a `json::Value` tree.
 *
 * The scanner accepts and rejects *exactly* the documents the DOM
 * parser (`json::parse`) does: the same grammar including the
 * `//`-comment and leading-zero tolerances, the same duplicate-key
 * rejection, the same BMP-only `\u` decoding, and the same number
 * decoding through `json::numberFromToken`. Errors are
 * `ConfigError`s carrying the identical
 * "JSON parse error at line L, column C: ..." position context.
 * The differential fuzz suite (tests/test_json_fuzz.cpp) holds the
 * two parsers to byte-for-byte agreement.
 */

#ifndef ECOCHIP_JSON_ONDEMAND_H
#define ECOCHIP_JSON_ONDEMAND_H

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.h"
#include "json/stream_writer.h"

namespace ecochip::json::ondemand {

/**
 * Single-pass cursor over one JSON document.
 *
 * The scanner validates as it advances; a value consumed through
 * any of the accessors below is fully checked (strings decode,
 * numbers are range-checked, containers balance, object keys are
 * unique). It never reads past the end of the buffer.
 */
class Scanner
{
  public:
    explicit Scanner(std::string_view text) : text_(text) {}

    /**
     * Consume the next value whole and return its raw span
     * (first byte of the value through its last byte, validated).
     * The span may contain interior whitespace or comments; use
     * `reserializeValue` to emit it canonically.
     */
    std::string_view rawValue();

    /** Type of the next value, without consuming it. */
    Type peekType();

    /** @{ @name Typed scalar reads (consume the next value) */
    bool boolean();
    double number();
    std::string string(); //!< unescaped
    void null();
    /** @} */

    /** Enter the next value, which must be an object. */
    void beginObject();

    /**
     * Advance to the next member of the innermost open object.
     * Returns true with @p key holding the unescaped member name
     * (the cursor then sits on the member's value, which the
     * caller must consume), or false after consuming the
     * closing '}'.
     */
    bool nextMember(std::string &key);

    /** Enter the next value, which must be an array. */
    void beginArray();

    /**
     * True when another element follows (the cursor sits on it;
     * the caller must consume it); false after consuming ']'.
     */
    bool nextElement();

    /** Require only whitespace/comments up to end of input. */
    void expectEnd();

    /** Byte offset of the cursor (for error context). */
    std::size_t offset() const { return pos_; }

    /** Throw ConfigError with line/column at the cursor. */
    [[noreturn]] void fail(const std::string &message) const;

  private:
    struct Frame
    {
        char kind;  // '{' or '['
        bool first; // no element consumed yet
        std::vector<std::string> keys; // duplicate detection
    };

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const;
    char advance();
    void expect(char c);
    void skipWhitespace();
    void skipValue();
    void skipString();
    void skipNumber();
    bool fastScanString(std::string_view &content);
    std::string decodeString();
    std::string_view numberToken();

    std::string_view text_;
    std::size_t pos_ = 0;
    std::vector<Frame> frames_;
};

/**
 * Scan @p object_text (one JSON object document) for member
 * @p key and return its raw value span, or nullopt when absent.
 *
 * Stops scanning at the first match, so members after the hit are
 * not validated -- a deliberate hot-path trade; run the document
 * through `reserialize` when full validation matters.
 */
std::optional<std::string_view>
findMember(std::string_view object_text, std::string_view key);

/**
 * Boolean member lookup with fallback, matching the semantics
 * (and the type-mismatch message) of `Value::booleanOr`.
 */
bool booleanField(std::string_view object_text,
                  std::string_view key, bool fallback);

/**
 * Transcode the next value from @p in canonically into @p out --
 * a fused parse + re-emit that produces exactly what
 * `parse(span).dump(...)` would, with no tree in between.
 */
void reserializeValue(Scanner &in, StreamWriter &out);

/**
 * Canonicalize a whole document: returns exactly
 * `parse(text).dump(pretty)` without materializing the DOM.
 */
std::string reserialize(std::string_view text, bool pretty);

/** Validate @p text as one complete JSON document (scan only). */
void validate(std::string_view text);

} // namespace ecochip::json::ondemand

#endif // ECOCHIP_JSON_ONDEMAND_H
