/**
 * @file
 * NRE (non-recurring engineering) manufacturing carbon -- the
 * extension the paper identifies in Sec. V-C: "Although ECO-CHIP
 * does not split the Cmfg into its NRE and non-NRE components,
 * this will only improve CFP savings."
 *
 * The dominant manufacturing NRE is the photomask set: tens of
 * masks per node, each consuming long e-beam write and inspection
 * runs. Like its dollar cost, the mask set's carbon is paid once
 * per chiplet design and amortized over the number of parts
 * manufactured (NMi) -- so reused chiplets, exactly as with Cdes,
 * contribute no mask carbon to a new system.
 */

#ifndef ECOCHIP_MANUFACTURE_NRE_MODEL_H
#define ECOCHIP_MANUFACTURE_NRE_MODEL_H

#include "chiplet/chiplet.h"
#include "tech/tech_db.h"

namespace ecochip {

/** Mask-set NRE carbon estimator. */
class NreCarbonModel
{
  public:
    /**
     * @param tech Technology database (must outlive the model).
     * @param fab_intensity_g_per_kwh Carbon intensity of the mask
     *        shop's energy.
     * @param chiplet_volume Parts manufactured per chiplet design
     *        (NMi) for amortization.
     */
    explicit NreCarbonModel(const TechDb &tech,
                            double fab_intensity_g_per_kwh = 700.0,
                            double chiplet_volume = 100000.0);

    /**
     * Unamortized carbon of manufacturing one mask set at a node
     * (kg CO2).
     */
    double maskSetCo2Kg(double node_nm) const;

    /**
     * Per-part amortized mask carbon of one chiplet; zero when
     * the chiplet is a reused design.
     */
    double amortizedCo2Kg(const Chiplet &chiplet) const;

    /**
     * Per-part mask-NRE carbon of a system (kg CO2). Monolithic
     * dies pay exactly one mask set at the die's node.
     */
    double systemNreCo2Kg(const SystemSpec &system) const;

  private:
    const TechDb *tech_;
    double fabIntensityGPerKwh_;
    double chipletVolume_;
};

} // namespace ecochip

#endif // ECOCHIP_MANUFACTURE_NRE_MODEL_H
