#include "manufacture/nre_model.h"

#include "support/error.h"
#include "support/units.h"

namespace ecochip {

NreCarbonModel::NreCarbonModel(const TechDb &tech,
                               double fab_intensity_g_per_kwh,
                               double chiplet_volume)
    : tech_(&tech),
      fabIntensityGPerKwh_(fab_intensity_g_per_kwh),
      chipletVolume_(chiplet_volume)
{
    requireConfig(fab_intensity_g_per_kwh > 0.0,
                  "mask-shop carbon intensity must be positive");
    requireConfig(chiplet_volume >= 1.0,
                  "chiplet volume must be at least 1");
}

double
NreCarbonModel::maskSetCo2Kg(double node_nm) const
{
    return units::carbonKg(fabIntensityGPerKwh_,
                           tech_->maskSetEnergyKwh(node_nm));
}

double
NreCarbonModel::amortizedCo2Kg(const Chiplet &chiplet) const
{
    if (chiplet.reused)
        return 0.0; // mask set paid for by previous products
    return maskSetCo2Kg(chiplet.nodeNm) / chipletVolume_;
}

double
NreCarbonModel::systemNreCo2Kg(const SystemSpec &system) const
{
    requireConfig(!system.chiplets.empty(),
                  "system has no chiplets");
    if (system.singleDie) {
        return maskSetCo2Kg(system.monolithicNodeNm()) /
               chipletVolume_;
    }
    double total = 0.0;
    for (const auto &chiplet : system.chiplets)
        total += amortizedCo2Kg(chiplet);
    return total;
}

} // namespace ecochip
