#include "manufacture/mfg_model.h"

#include "support/error.h"
#include "support/units.h"

namespace ecochip {

ManufacturingModel::ManufacturingModel(
    const TechDb &tech, WaferModel wafer,
    double fab_intensity_g_per_kwh, YieldModelKind yield_kind)
    : tech_(&tech), wafer_(wafer), yieldModel_(tech, yield_kind),
      fabIntensityGPerKwh_(fab_intensity_g_per_kwh)
{
    requireConfig(fab_intensity_g_per_kwh > 0.0,
                  "fab carbon intensity must be positive");
}

double
ManufacturingModel::grossCfpaKgPerCm2(double node_nm) const
{
    const double energy_kg_per_cm2 =
        tech_->equipmentDerate(node_nm) *
        fabIntensityGPerKwh_ * units::kKgPerG *
        tech_->epaKwhPerCm2(node_nm);
    return energy_kg_per_cm2 + tech_->cgasKgPerCm2(node_nm) +
           tech_->cmaterialKgPerCm2(node_nm);
}

MfgBreakdown
ManufacturingModel::dieMfg(double area_mm2, double node_nm) const
{
    requireConfig(area_mm2 > 0.0, "die area must be positive");

    MfgBreakdown result;
    result.areaMm2 = area_mm2;
    result.yield = yieldModel_.dieYield(area_mm2, node_nm);
    result.cfpaKgPerCm2 =
        grossCfpaKgPerCm2(node_nm) / result.yield;
    result.dieCo2Kg =
        result.cfpaKgPerCm2 * area_mm2 * units::kCm2PerMm2;

    result.diesPerWafer = wafer_.diesPerWafer(area_mm2);
    // Compose the (allocating) message only on failure; this runs
    // once per die candidate in the sweep/Monte-Carlo hot loops.
    if (result.diesPerWafer <= 0)
        requireConfig(false,
                      "die of " + std::to_string(area_mm2) +
                          " mm^2 does not fit the wafer");
    if (includeWastage_) {
        result.wastedAreaMm2 = wafer_.wastedAreaPerDieMm2(area_mm2);
        result.wastedCo2Kg = tech_->cfpaSiKgPerCm2(node_nm) *
                             result.wastedAreaMm2 *
                             units::kCm2PerMm2;
    }
    return result;
}

MfgBreakdown
ManufacturingModel::chipletMfg(const Chiplet &chiplet) const
{
    return dieMfg(chiplet.areaMm2(*tech_), chiplet.nodeNm);
}

double
ManufacturingModel::systemMfgCo2Kg(const SystemSpec &system) const
{
    requireConfig(!system.chiplets.empty(),
                  "system has no chiplets");
    if (system.singleDie) {
        // Monolithic SoC: the blocks are fabricated as one die --
        // one area, one yield.
        double area_mm2 = 0.0;
        for (const auto &block : system.chiplets)
            area_mm2 += block.areaMm2(*tech_);
        return dieMfg(area_mm2, system.monolithicNodeNm())
            .totalCo2Kg();
    }
    double total = 0.0;
    for (const auto &chiplet : system.chiplets)
        total += chipletMfg(chiplet).totalCo2Kg();
    return total;
}

} // namespace ecochip
