/**
 * @file
 * Manufacturing-CFP model (paper Sec. III-C, Eqs. 5-6).
 */

#ifndef ECOCHIP_MANUFACTURE_MFG_MODEL_H
#define ECOCHIP_MANUFACTURE_MFG_MODEL_H

#include "chiplet/chiplet.h"
#include "tech/carbon_intensity.h"
#include "tech/tech_db.h"
#include "wafer/wafer_model.h"
#include "yield/yield_model.h"

namespace ecochip {

/** Per-chiplet manufacturing result with its contributing terms. */
struct MfgBreakdown
{
    /** Die area at the chiplet's node (mm^2). */
    double areaMm2 = 0.0;

    /** Die yield Y(d, p) from Eq. 4. */
    double yield = 1.0;

    /** Yielded carbon per area, kg CO2/cm^2 (Eq. 6). */
    double cfpaKgPerCm2 = 0.0;

    /** Dies per wafer at this die size (Eq. 7). */
    long diesPerWafer = 0;

    /** Amortized wasted silicon per die, mm^2 (Eq. 8). */
    double wastedAreaMm2 = 0.0;

    /** CFPA * Adie term of Eq. 5 (kg CO2). */
    double dieCo2Kg = 0.0;

    /** CFPA_Si * Awasted term of Eq. 5 (kg CO2). */
    double wastedCo2Kg = 0.0;

    /** Total manufacturing carbon for the chiplet (kg CO2). */
    double totalCo2Kg() const { return dieCo2Kg + wastedCo2Kg; }
};

/**
 * Manufacturing-CFP estimator.
 *
 * Computes, per chiplet,
 *
 *   CFPA   = (eta_eq * Cmfg,src * EPA(p) + Cgas + Cmat) / Y(d, p)
 *   Cmfg,i = CFPA * Adie + CFPA_Si * Awasted
 *
 * and sums over chiplets for the system Cmfg. Wafer-periphery
 * wastage accounting can be disabled to reproduce Fig. 3(b)'s
 * "without wastage" series.
 */
class ManufacturingModel
{
  public:
    /**
     * @param tech Technology database (must outlive the model).
     * @param wafer Wafer geometry; the paper's results use 450 mm.
     * @param fab_intensity_g_per_kwh Carbon intensity of the fab's
     *        energy source Cmfg,src (default: coal, 700 g/kWh).
     * @param yield_kind Die-yield statistics (paper default:
     *        negative binomial, Eq. 4).
     */
    explicit ManufacturingModel(
        const TechDb &tech, WaferModel wafer = WaferModel(),
        double fab_intensity_g_per_kwh =
            carbonIntensityGPerKwh(EnergySource::Coal),
        YieldModelKind yield_kind =
            YieldModelKind::NegativeBinomial);

    /** Die-yield statistics in use. */
    YieldModelKind yieldKind() const { return yieldModel_.kind(); }

    /** Enable/disable wafer-wastage accounting (Fig. 3(b)). */
    void setIncludeWastage(bool include) { includeWastage_ = include; }

    /** True when wafer-periphery wastage is charged to each die. */
    bool includeWastage() const { return includeWastage_; }

    /** Fab energy-source carbon intensity in g CO2/kWh. */
    double fabIntensityGPerKwh() const { return fabIntensityGPerKwh_; }

    /** Wafer geometry in use. */
    const WaferModel &wafer() const { return wafer_; }

    /**
     * Pre-yield carbon per unit area of manufacturing at a node
     * (the numerator of Eq. 6), kg CO2/cm^2.
     */
    double grossCfpaKgPerCm2(double node_nm) const;

    /**
     * Full manufacturing breakdown for one chiplet (Eqs. 4-8).
     *
     * @param chiplet Chiplet description.
     */
    MfgBreakdown chipletMfg(const Chiplet &chiplet) const;

    /**
     * Manufacturing breakdown for an arbitrary die described by
     * (type, node, area) without a Chiplet object -- used by
     * packaging models for interposers.
     */
    MfgBreakdown dieMfg(double area_mm2, double node_nm) const;

    /** System manufacturing CFP: sum of Cmfg,i (kg CO2). */
    double systemMfgCo2Kg(const SystemSpec &system) const;

  private:
    const TechDb *tech_;
    WaferModel wafer_;
    YieldModel yieldModel_;
    double fabIntensityGPerKwh_;
    bool includeWastage_ = true;
};

} // namespace ecochip

#endif // ECOCHIP_MANUFACTURE_MFG_MODEL_H
