/**
 * @file
 * The coordinator's on-disk event formats: per-dispatch NDJSON
 * event files and the checkpoint/resume outcome journal.
 *
 * Both formats are built from the stream-event lines of
 * `io/batch_report_io.h` -- one compact JSON object per line,
 * `{"index": N, "request": ..., "ok": ..., "result"|"error":
 * ...}` -- and differ only in what `index` means:
 *
 *  - **Worker event files** (`<report>.events`, written by
 *    `runShardWorker` next to its report): `index` is the
 *    request's position *within the sub-batch*, emitted in
 *    completion order and flushed per line, so the dynamic
 *    coordinator (`engine/shard_coordinator.h`) can tail the
 *    file and merge outcomes while the worker is still running.
 *
 *  - **The outcome journal** (`journal.ndjson` in the
 *    coordinator's shard directory): `index` is the request's
 *    *original batch* position. The coordinator appends one line
 *    per first-delivered outcome; `--resume` replays the journal
 *    so a killed coordination continues without re-running
 *    finished requests. A SIGKILL can truncate the final line
 *    mid-write, so the reader tolerates (and drops) a trailing
 *    partial line -- any other malformed line is an error.
 *
 * Field-by-field reference: `docs/file_formats.md`.
 */

#ifndef ECOCHIP_IO_EVENT_JOURNAL_IO_H
#define ECOCHIP_IO_EVENT_JOURNAL_IO_H

#include <cstddef>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.h"

namespace ecochip {

/** Event-file path convention for a worker report path. */
std::string eventsPathFor(const std::string &report_path);

/** File name of the outcome journal inside a shard directory. */
std::string coordinatorJournalName();

/**
 * One replayed journal line: the outcome document (without the
 * `index` member, insertion order preserved) and the original
 * batch index it belongs to.
 */
struct JournalEntry
{
    std::size_t index = 0;
    json::Value outcome;
};

/**
 * Split @p event (a parsed stream-event line) into its index and
 * its outcome document -- the event without the `index` member,
 * member order preserved, so reassembled outcomes stay
 * byte-identical to the worker's own report.
 *
 * @throws ConfigError when @p event is not an object with a
 *         non-negative integer `index`.
 */
JournalEntry splitEventDocument(const json::Value &event,
                                const std::string &context);

/**
 * Text twin of `JournalEntry`: the outcome as canonical compact
 * JSON (exactly `parse(line-minus-index).dump(false)` bytes)
 * instead of a DOM -- what the hot merge path consumes.
 */
struct JournalEntryText
{
    std::size_t index = 0;
    std::string outcome;
};

/**
 * Split one stream-event line with the on-demand scanner: no
 * `json::Value` is materialized. The returned outcome document is
 * canonicalized member-by-member, so reassembled reports stay
 * byte-identical to the single-process run even when the worker's
 * line carried non-canonical spacing or number spellings.
 *
 * @throws ConfigError when @p line is malformed JSON or is not an
 *         object with a non-negative integer `index`.
 */
JournalEntryText splitEventLine(std::string_view line,
                                const std::string &context);

/**
 * Append-only writer for the outcome journal. Each appended
 * outcome becomes one compact line, flushed immediately, so the
 * journal survives a SIGKILL of the coordinator with at most the
 * final line truncated.
 */
class EventJournalWriter
{
  public:
    /**
     * Open @p path for writing; @p append keeps existing lines
     * (the resume path), otherwise the file is truncated.
     * @throws ConfigError when the file cannot be opened.
     */
    void open(const std::string &path, bool append);

    /** Append `{"index": index, ...outcome}` as one line. */
    void append(std::size_t index, const json::Value &outcome);

    /**
     * Text-splice overload -- the hot path. @p outcome_text must
     * be one compact JSON object (a canonical outcome document);
     * the index member is spliced in front of its members without
     * parsing anything.
     */
    void append(std::size_t index, std::string_view outcome_text);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
};

/**
 * Replay the journal at @p path. A missing file replays as
 * empty. A trailing line without `\n` that fails to parse is
 * dropped (the coordinator was killed mid-append); any other
 * malformed line throws `ConfigError` naming @p path.
 */
std::vector<JournalEntry>
replayEventJournal(const std::string &path);

/**
 * Scan-only twin of `replayEventJournal`: outcomes come back as
 * canonical compact text spans, never as a DOM -- what `--resume`
 * feeds straight into the incremental merger.
 */
std::vector<JournalEntryText>
replayEventJournalText(const std::string &path);

/**
 * Incremental reader over a growing NDJSON file: each `poll`
 * returns the complete (newline-terminated) lines appended since
 * the last call, never a partially-written line. A missing file
 * polls as empty, so tailing may start before the worker's first
 * write.
 */
class NdjsonTailReader
{
  public:
    NdjsonTailReader() = default;
    explicit NdjsonTailReader(std::string path)
        : path_(std::move(path))
    {
    }

    /** Point the reader at @p path and rewind to the start. */
    void reset(std::string path);

    /** New complete lines since the previous poll. */
    std::vector<std::string> poll();

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::size_t offset_ = 0;
};

} // namespace ecochip

#endif // ECOCHIP_IO_EVENT_JOURNAL_IO_H
