/**
 * @file
 * JSON serialization of design-space search specs and results --
 * the wire format of `eco_chip --search SPEC.json`.
 *
 * A spec document names a generator and how to search it:
 * @code{.json}
 * {
 *   "generator": "fpga-pca-space",
 *   "scenarios": "catalog.json",
 *   "strategy": {"kind": "annealing", "seed": 7,
 *                "steps": 150, "initial_temp": 2.0,
 *                "cooling": 0.93},
 *   "objectives": [
 *     {"metric": "embodied_kg"},
 *     {"metric": "perf_proxy", "goal": "max", "weight": 0.1}
 *   ],
 *   "constraints": [{"metric": "cost_usd", "max": 150.0}],
 *   "batch_size": 64
 * }
 * @endcode
 *
 * The optional `scenarios` catalog (resolved relative to the spec
 * file, exactly like batch files) is where the generator is
 * declared. Unknown keys are rejected with the file and key
 * named, mirroring `request_io.h`; `searchSpecFromJson` /
 * `searchSpecToJson` round-trip losslessly. Field-by-field
 * reference: `docs/search.md`.
 */

#ifndef ECOCHIP_IO_SEARCH_IO_H
#define ECOCHIP_IO_SEARCH_IO_H

#include <string>

#include "json/json.h"
#include "search/search_driver.h"

namespace ecochip {

/** Serialize a search spec to its JSON document. */
json::Value searchSpecToJson(const SearchSpec &spec);

/**
 * Parse a search spec document.
 *
 * @param doc Parsed JSON object.
 * @param context Source label for error messages.
 * @throws ConfigError on unknown keys, missing members, or
 *         out-of-range knobs.
 */
SearchSpec searchSpecFromJson(const json::Value &doc,
                              const std::string &context =
                                  "search spec");

/**
 * Load a spec file (`--search` workflow); the `scenarios`
 * catalog path is resolved relative to the spec file.
 */
SearchSpec loadSearchSpecFile(const std::string &path);

/**
 * Serialize a search result: space/evaluation counts, the best
 * scalarized point, the Pareto frontier (objective vectors
 * included), and every visited point with its metric values in
 * evaluation order. Non-finite scores (infeasible points) are
 * omitted rather than printed, keeping the document valid JSON.
 */
json::Value searchResultToJson(const SearchResult &result);

} // namespace ecochip

#endif // ECOCHIP_IO_SEARCH_IO_H
