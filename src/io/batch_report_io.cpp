#include "io/batch_report_io.h"

#include <fstream>

#include "io/request_io.h"
#include "io/result_writer.h"
#include "support/error.h"

namespace ecochip {

/*
 * appendOutcome / appendStreamEvent / batchReportText are the
 * primary serializers on the wire path; the *ToJson variants
 * parse their output so the DOM view cannot drift from the bytes
 * workers actually write.
 */

namespace {

/** The members shared by outcome documents and stream events. */
void
appendOutcomeMembers(json::StreamWriter &writer,
                     const RequestOutcome &outcome)
{
    writer.key("request");
    appendRequest(writer, outcome.request);
    writer.key("ok");
    writer.boolean(outcome.ok());
    if (outcome.ok()) {
        writer.key("result");
        appendResult(writer, *outcome.result);
    } else {
        writer.key("error");
        writer.string(outcome.error);
    }
}

} // namespace

void
appendOutcome(json::StreamWriter &writer,
              const RequestOutcome &outcome)
{
    writer.beginObject();
    appendOutcomeMembers(writer, outcome);
    writer.endObject();
}

json::Value
outcomeToJson(const RequestOutcome &outcome)
{
    json::StreamWriter writer;
    appendOutcome(writer, outcome);
    return json::parse(writer.take());
}

void
appendStreamEvent(json::StreamWriter &writer, std::size_t index,
                  const RequestOutcome &outcome)
{
    writer.beginObject();
    writer.key("index");
    writer.number(static_cast<double>(index));
    appendOutcomeMembers(writer, outcome);
    writer.endObject();
}

std::string
batchReportText(const BatchReport &report, bool pretty)
{
    json::StreamWriter writer(pretty);
    writer.beginObject();
    writer.key("succeeded");
    writer.number(static_cast<double>(report.succeeded()));
    writer.key("failed");
    writer.number(static_cast<double>(report.failed()));
    writer.key("outcomes");
    writer.beginArray();
    for (const auto &outcome : report.outcomes)
        appendOutcome(writer, outcome);
    writer.endArray();
    writer.endObject();
    return writer.take();
}

json::Value
batchReportToJson(const BatchReport &report)
{
    return json::parse(batchReportText(report, false));
}

void
writeBatchReportFile(const BatchReport &report,
                     const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    requireConfig(static_cast<bool>(out),
                  "cannot write JSON file: " + path);
    out << batchReportText(report, true) << '\n';
}

json::Value
streamEventToJson(std::size_t index,
                  const RequestOutcome &outcome)
{
    return json::parse(streamEventLine(index, outcome));
}

std::string
streamEventLine(std::size_t index, const RequestOutcome &outcome)
{
    json::StreamWriter writer;
    appendStreamEvent(writer, index, outcome);
    return writer.take();
}

} // namespace ecochip
