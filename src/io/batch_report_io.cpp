#include "io/batch_report_io.h"

#include "io/request_io.h"
#include "io/result_writer.h"

namespace ecochip {

json::Value
outcomeToJson(const RequestOutcome &outcome)
{
    json::Value doc = json::Value::makeObject();
    doc.set("request", requestToJson(outcome.request));
    doc.set("ok", outcome.ok());
    if (outcome.ok())
        doc.set("result", resultToJson(*outcome.result));
    else
        doc.set("error", outcome.error);
    return doc;
}

json::Value
batchReportToJson(const BatchReport &report)
{
    json::Value doc = json::Value::makeObject();
    doc.set("succeeded",
            static_cast<double>(report.succeeded()));
    doc.set("failed", static_cast<double>(report.failed()));
    json::Value outcomes = json::Value::makeArray();
    for (const auto &outcome : report.outcomes)
        outcomes.append(outcomeToJson(outcome));
    doc.set("outcomes", std::move(outcomes));
    return doc;
}

void
writeBatchReportFile(const BatchReport &report,
                     const std::string &path)
{
    json::writeFile(batchReportToJson(report), path);
}

json::Value
streamEventToJson(std::size_t index,
                  const RequestOutcome &outcome)
{
    json::Value doc = json::Value::makeObject();
    doc.set("index", static_cast<double>(index));
    const json::Value body = outcomeToJson(outcome);
    for (const auto &member : body.members())
        doc.set(member.first, member.second);
    return doc;
}

std::string
streamEventLine(std::size_t index,
                const RequestOutcome &outcome)
{
    return streamEventToJson(index, outcome).dump(false);
}

} // namespace ecochip
