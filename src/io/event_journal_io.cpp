#include "io/event_journal_io.h"

#include <cmath>
#include <utility>

#include "json/ondemand.h"
#include "json/stream_writer.h"
#include "support/error.h"

namespace ecochip {

std::string
eventsPathFor(const std::string &report_path)
{
    return report_path + ".events";
}

std::string
coordinatorJournalName()
{
    return "journal.ndjson";
}

JournalEntry
splitEventDocument(const json::Value &event,
                   const std::string &context)
{
    requireConfig(event.isObject() && event.contains("index"),
                  context +
                      ": not a stream event (expected an object "
                      "with an \"index\" member)");
    const auto index = event.at("index").asInteger();
    requireConfig(index >= 0,
                  context + ": negative event index " +
                      std::to_string(index));

    JournalEntry entry;
    entry.index = static_cast<std::size_t>(index);
    entry.outcome = json::Value::makeObject();
    for (const auto &member : event.members())
        if (member.first != "index")
            entry.outcome.set(member.first, member.second);
    return entry;
}

JournalEntryText
splitEventLine(std::string_view line, const std::string &context)
{
    json::ondemand::Scanner scanner(line);
    if (scanner.peekType() != json::Type::Object)
        throw ConfigError(
            context +
            ": not a stream event (expected an object "
            "with an \"index\" member)");

    json::StreamWriter writer;
    writer.beginObject();
    scanner.beginObject();
    std::string key;
    bool has_index = false;
    std::size_t index = 0;
    while (scanner.nextMember(key)) {
        if (key == "index") {
            const double n = scanner.number();
            // Same integral tolerance (and message) as the DOM
            // path's Value::asInteger.
            const double rounded = std::round(n);
            requireConfig(std::abs(n - rounded) < 1e-9,
                          "JSON number is not an integer: " +
                              std::to_string(n));
            const auto idx =
                static_cast<std::int64_t>(rounded);
            requireConfig(idx >= 0,
                          context + ": negative event index " +
                              std::to_string(idx));
            index = static_cast<std::size_t>(idx);
            has_index = true;
        } else {
            writer.key(key);
            json::ondemand::reserializeValue(scanner, writer);
        }
    }
    scanner.expectEnd();
    writer.endObject();
    requireConfig(has_index,
                  context +
                      ": not a stream event (expected an object "
                      "with an \"index\" member)");
    return JournalEntryText{index, writer.take()};
}

void
EventJournalWriter::open(const std::string &path, bool append)
{
    path_ = path;
    out_.open(path, append ? (std::ios::out | std::ios::app)
                           : (std::ios::out | std::ios::trunc));
    requireConfig(out_.good(),
                  "cannot open the outcome journal for writing: " +
                      path);
}

void
EventJournalWriter::append(std::size_t index,
                           const json::Value &outcome)
{
    const std::string text = outcome.dump(false);
    append(index, std::string_view(text));
}

void
EventJournalWriter::append(std::size_t index,
                           std::string_view outcome_text)
{
    requireModel(out_.is_open(),
                 "append() on an unopened outcome journal");
    requireModel(outcome_text.size() >= 2 &&
                     outcome_text.front() == '{' &&
                     outcome_text.back() == '}',
                 "append() needs a compact JSON object outcome");
    out_ << "{\"index\":" << index;
    const std::string_view inner =
        outcome_text.substr(1, outcome_text.size() - 2);
    if (!inner.empty())
        out_ << ',' << inner;
    out_ << "}\n";
    out_.flush();
}

std::vector<JournalEntryText>
replayEventJournalText(const std::string &path)
{
    std::vector<JournalEntryText> entries;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return entries; // no journal yet: nothing to replay

    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const bool terminated = nl != std::string::npos;
        const std::string_view line =
            std::string_view(text).substr(
                pos, terminated ? nl - pos
                                : std::string_view::npos);
        pos = terminated ? nl + 1 : text.size();
        ++line_no;
        if (line.empty())
            continue;
        try {
            json::ondemand::validate(line);
        } catch (const std::exception &) {
            // Only the final, unterminated line may be garbage --
            // that is the line a SIGKILL cut mid-append.
            if (!terminated)
                break;
            throw ConfigError(
                path + ": malformed journal line " +
                std::to_string(line_no) +
                " (only a truncated final line is tolerated); "
                "remove the journal or run without --resume");
        }
        entries.push_back(splitEventLine(
            line, path + ": line " + std::to_string(line_no)));
    }
    return entries;
}

std::vector<JournalEntry>
replayEventJournal(const std::string &path)
{
    std::vector<JournalEntry> entries;
    for (auto &entry : replayEventJournalText(path))
        entries.push_back(JournalEntry{
            entry.index, json::parse(entry.outcome)});
    return entries;
}

void
NdjsonTailReader::reset(std::string path)
{
    path_ = std::move(path);
    offset_ = 0;
}

std::vector<std::string>
NdjsonTailReader::poll()
{
    std::vector<std::string> lines;
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return lines;
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    if (end < 0 ||
        static_cast<std::size_t>(end) <= offset_)
        return lines;
    in.seekg(static_cast<std::streamoff>(offset_));
    std::string chunk(static_cast<std::size_t>(end) - offset_,
                      '\0');
    in.read(chunk.data(),
            static_cast<std::streamsize>(chunk.size()));
    chunk.resize(static_cast<std::size_t>(in.gcount()));

    std::size_t pos = 0;
    while (true) {
        const std::size_t nl = chunk.find('\n', pos);
        if (nl == std::string::npos)
            break;
        lines.push_back(chunk.substr(pos, nl - pos));
        pos = nl + 1;
    }
    offset_ += pos; // unterminated tail re-reads next poll
    return lines;
}

} // namespace ecochip
