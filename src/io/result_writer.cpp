#include "io/result_writer.h"

#include <sstream>

#include "io/config_loader.h"
#include "support/table_printer.h"

namespace ecochip {

namespace {

std::string
num(double value, int precision = 3)
{
    return TablePrinter::formatNumber(value, precision);
}

json::Value
explorationPointToJson(const ExplorationPoint &point)
{
    json::Value doc = json::Value::makeObject();
    doc.set("label", point.label());
    json::Value nodes = json::Value::makeArray();
    for (double node : point.nodesNm)
        nodes.append(json::Value(node));
    doc.set("nodes_nm", std::move(nodes));
    doc.set("mfg_co2_kg", point.report.mfgCo2Kg);
    doc.set("hi_co2_kg", point.report.hi.totalCo2Kg());
    doc.set("design_co2_kg", point.report.designCo2Kg);
    doc.set("embodied_co2_kg", point.report.embodiedCo2Kg());
    doc.set("operational_co2_kg", point.report.operation.co2Kg);
    doc.set("total_co2_kg", point.report.totalCo2Kg());
    return doc;
}

json::Value
sensitivityRowToJson(const SensitivityResult &row)
{
    json::Value doc = json::Value::makeObject();
    doc.set("name", row.name);
    doc.set("low", row.lowValue);
    doc.set("base", row.baseValue);
    doc.set("high", row.highValue);
    doc.set("elasticity", row.elasticity);
    return doc;
}

json::Value
costToJson(const CostBreakdown &cost)
{
    json::Value doc = json::Value::makeObject();
    doc.set("die_usd", cost.dieUsd);
    doc.set("package_usd", cost.packageUsd);
    doc.set("assembly_usd", cost.assemblyUsd);
    doc.set("nre_usd", cost.nreUsd);
    doc.set("total_usd", cost.totalUsd());
    return doc;
}

} // namespace

json::Value
sampleStatsToJson(const SampleStats &stats)
{
    json::Value doc = json::Value::makeObject();
    doc.set("count", static_cast<double>(stats.count()));
    doc.set("mean", stats.mean());
    doc.set("stddev", stats.stddev());
    doc.set("min", stats.min());
    doc.set("p5", stats.percentile(5.0));
    doc.set("p50", stats.percentile(50.0));
    doc.set("p95", stats.percentile(95.0));
    doc.set("max", stats.max());
    return doc;
}

json::Value
resultToJson(const AnalysisResult &result)
{
    json::Value doc = json::Value::makeObject();
    doc.set("kind", toString(result.kind));
    doc.set("scenario", result.scenario);
    doc.set("detail", result.detail);

    switch (result.kind) {
      case AnalysisKind::Estimate:
        if (result.report)
            doc.set("report", reportToJson(*result.report));
        break;
      case AnalysisKind::Sweep: {
        json::Value points = json::Value::makeArray();
        for (const auto &point : result.points)
            points.append(explorationPointToJson(point));
        doc.set("sweep", std::move(points));
        if (!result.points.empty()) {
            doc.set("best_embodied",
                    TechSpaceExplorer::bestByEmbodied(
                        result.points)
                        .label());
            doc.set("best_total",
                    TechSpaceExplorer::bestByTotal(result.points)
                        .label());
        }
        break;
      }
      case AnalysisKind::MonteCarlo:
        if (result.uncertainty) {
            json::Value bands = json::Value::makeObject();
            bands.set("trials",
                      static_cast<double>(result.trials));
            bands.set("seed",
                      static_cast<double>(result.seed));
            bands.set("embodied", sampleStatsToJson(
                                      result.uncertainty->embodied));
            bands.set("operational",
                      sampleStatsToJson(
                          result.uncertainty->operational));
            bands.set("total", sampleStatsToJson(
                                   result.uncertainty->total));
            doc.set("uncertainty", std::move(bands));
        }
        break;
      case AnalysisKind::Sensitivity: {
        json::Value rows = json::Value::makeArray();
        for (const auto &row : result.sensitivity)
            rows.append(sensitivityRowToJson(row));
        json::Value payload = json::Value::makeObject();
        payload.set("metric", toString(result.metric));
        payload.set("rows", std::move(rows));
        doc.set("sensitivity", std::move(payload));
        break;
      }
      case AnalysisKind::Cost:
        if (result.cost)
            doc.set("cost", costToJson(*result.cost));
        break;
    }
    return doc;
}

namespace {

void
writeEstimateMarkdown(std::ostream &os,
                      const CarbonReport &report)
{
    os << "## Per-chiplet manufacturing\n\n";
    os << "| chiplet | node (nm) | area (mm^2) | yield | mfg (kg "
          "CO2) | design (kg CO2) |\n";
    os << "|---|---|---|---|---|---|\n";
    for (const auto &c : report.chiplets) {
        os << "| " << c.name << " | " << num(c.nodeNm, 0) << " | "
           << num(c.areaMm2) << " | " << num(c.yield) << " | "
           << num(c.mfgCo2Kg) << " | " << num(c.designCo2Kg)
           << " |\n";
    }

    os << "\n## Carbon breakdown (kg CO2 per part)\n\n";
    os << "| component | kg CO2 |\n|---|---|\n";
    os << "| manufacturing (Cmfg) | " << num(report.mfgCo2Kg)
       << " |\n";
    os << "| package (Cpackage) | "
       << num(report.hi.packageCo2Kg) << " |\n";
    os << "| inter-die comm (Cmfg,comm) | "
       << num(report.hi.routingCo2Kg) << " |\n";
    os << "| design, amortized (Cdes) | "
       << num(report.designCo2Kg) << " |\n";
    if (report.nreCo2Kg > 0.0)
        os << "| mask NRE, amortized | " << num(report.nreCo2Kg)
           << " |\n";
    os << "| **embodied (Cemb)** | "
       << num(report.embodiedCo2Kg()) << " |\n";
    os << "| operational (Cop x lifetime) | "
       << num(report.operation.co2Kg) << " |\n";
    os << "| **total (Ctot)** | " << num(report.totalCo2Kg())
       << " |\n";
}

void
writeSweepMarkdown(std::ostream &os,
                   const std::vector<ExplorationPoint> &points)
{
    os << "## Technology-space sweep\n\n";
    os << "| nodes | Cmfg (kg) | CHI (kg) | Cdes (kg) | Cemb (kg)"
          " | Cop (kg) | Ctot (kg) |\n";
    os << "|---|---|---|---|---|---|---|\n";
    for (const auto &p : points) {
        os << "| " << p.label() << " | " << num(p.report.mfgCo2Kg)
           << " | " << num(p.report.hi.totalCo2Kg()) << " | "
           << num(p.report.designCo2Kg) << " | "
           << num(p.report.embodiedCo2Kg()) << " | "
           << num(p.report.operation.co2Kg) << " | "
           << num(p.report.totalCo2Kg()) << " |\n";
    }
    if (!points.empty()) {
        const auto &best =
            TechSpaceExplorer::bestByEmbodied(points);
        os << "\nLowest embodied CFP: **" << best.label()
           << "** at " << num(best.report.embodiedCo2Kg())
           << " kg CO2\n";
    }
}

void
writeUncertaintyMarkdown(std::ostream &os,
                         const UncertaintyReport &bands)
{
    os << "## Monte-Carlo uncertainty (kg CO2)\n\n";
    os << "| metric | mean | stddev | p5 | p50 | p95 |\n";
    os << "|---|---|---|---|---|---|\n";
    auto row = [&](const char *name, const SampleStats &stats) {
        os << "| " << name << " | " << num(stats.mean()) << " | "
           << num(stats.stddev()) << " | "
           << num(stats.percentile(5.0)) << " | "
           << num(stats.percentile(50.0)) << " | "
           << num(stats.percentile(95.0)) << " |\n";
    };
    row("embodied", bands.embodied);
    row("operational", bands.operational);
    row("total", bands.total);
}

void
writeSensitivityMarkdown(
    std::ostream &os,
    const std::vector<SensitivityResult> &rows)
{
    os << "## Sensitivity\n\n";
    os << "| parameter | low | base | high | elasticity |\n";
    os << "|---|---|---|---|---|\n";
    for (const auto &row : rows) {
        os << "| " << row.name << " | " << num(row.lowValue)
           << " | " << num(row.baseValue) << " | "
           << num(row.highValue) << " | "
           << num(row.elasticity) << " |\n";
    }
}

void
writeCostMarkdown(std::ostream &os, const CostBreakdown &cost)
{
    os << "## Dollar cost per part\n\n";
    os << "| component | USD |\n|---|---|\n";
    os << "| silicon dies | " << num(cost.dieUsd) << " |\n";
    os << "| package | " << num(cost.packageUsd) << " |\n";
    os << "| assembly+test | " << num(cost.assemblyUsd) << " |\n";
    os << "| NRE, amortized | " << num(cost.nreUsd) << " |\n";
    os << "| **total** | " << num(cost.totalUsd()) << " |\n";
}

} // namespace

void
writeResultMarkdown(std::ostream &os, const AnalysisResult &result)
{
    os << "# ECO-CHIP " << toString(result.kind) << ": "
       << result.scenario << "\n\n";
    if (!result.detail.empty())
        os << "- " << result.detail << "\n\n";

    switch (result.kind) {
      case AnalysisKind::Estimate:
        if (result.report)
            writeEstimateMarkdown(os, *result.report);
        break;
      case AnalysisKind::Sweep:
        writeSweepMarkdown(os, result.points);
        break;
      case AnalysisKind::MonteCarlo:
        if (result.uncertainty)
            writeUncertaintyMarkdown(os, *result.uncertainty);
        break;
      case AnalysisKind::Sensitivity:
        writeSensitivityMarkdown(os, result.sensitivity);
        break;
      case AnalysisKind::Cost:
        if (result.cost)
            writeCostMarkdown(os, *result.cost);
        break;
    }
}

std::string
resultMarkdown(const AnalysisResult &result)
{
    std::ostringstream os;
    writeResultMarkdown(os, result);
    return os.str();
}

} // namespace ecochip
