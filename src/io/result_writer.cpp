#include "io/result_writer.h"

#include <sstream>

#include "io/config_loader.h"
#include "support/table_printer.h"

namespace ecochip {

namespace {

std::string
num(double value, int precision = 3)
{
    return TablePrinter::formatNumber(value, precision);
}

/*
 * The append* emitters are the single source of truth for the
 * result wire format; resultToJson/sampleStatsToJson parse their
 * output, so the DOM and streaming serializations cannot drift.
 */

void
appendExplorationPoint(json::StreamWriter &writer,
                       const ExplorationPoint &point)
{
    writer.beginObject();
    writer.key("label");
    writer.string(point.label());
    writer.key("nodes_nm");
    writer.beginArray();
    for (double node : point.nodesNm)
        writer.number(node);
    writer.endArray();
    writer.key("mfg_co2_kg");
    writer.number(point.report.mfgCo2Kg);
    writer.key("hi_co2_kg");
    writer.number(point.report.hi.totalCo2Kg());
    writer.key("design_co2_kg");
    writer.number(point.report.designCo2Kg);
    writer.key("embodied_co2_kg");
    writer.number(point.report.embodiedCo2Kg());
    writer.key("operational_co2_kg");
    writer.number(point.report.operation.co2Kg);
    writer.key("total_co2_kg");
    writer.number(point.report.totalCo2Kg());
    writer.endObject();
}

void
appendSensitivityRow(json::StreamWriter &writer,
                     const SensitivityResult &row)
{
    writer.beginObject();
    writer.key("name");
    writer.string(row.name);
    writer.key("low");
    writer.number(row.lowValue);
    writer.key("base");
    writer.number(row.baseValue);
    writer.key("high");
    writer.number(row.highValue);
    writer.key("elasticity");
    writer.number(row.elasticity);
    writer.endObject();
}

void
appendCost(json::StreamWriter &writer, const CostBreakdown &cost)
{
    writer.beginObject();
    writer.key("die_usd");
    writer.number(cost.dieUsd);
    writer.key("package_usd");
    writer.number(cost.packageUsd);
    writer.key("assembly_usd");
    writer.number(cost.assemblyUsd);
    writer.key("nre_usd");
    writer.number(cost.nreUsd);
    writer.key("total_usd");
    writer.number(cost.totalUsd());
    writer.endObject();
}

} // namespace

void
appendSampleStats(json::StreamWriter &writer,
                  const SampleStats &stats)
{
    writer.beginObject();
    writer.key("count");
    writer.number(static_cast<double>(stats.count()));
    writer.key("mean");
    writer.number(stats.mean());
    writer.key("stddev");
    writer.number(stats.stddev());
    writer.key("min");
    writer.number(stats.min());
    writer.key("p5");
    writer.number(stats.percentile(5.0));
    writer.key("p50");
    writer.number(stats.percentile(50.0));
    writer.key("p95");
    writer.number(stats.percentile(95.0));
    writer.key("max");
    writer.number(stats.max());
    writer.endObject();
}

json::Value
sampleStatsToJson(const SampleStats &stats)
{
    json::StreamWriter writer;
    appendSampleStats(writer, stats);
    return json::parse(writer.take());
}

void
appendResult(json::StreamWriter &writer,
             const AnalysisResult &result)
{
    writer.beginObject();
    writer.key("kind");
    writer.string(toString(result.kind));
    writer.key("scenario");
    writer.string(result.scenario);
    writer.key("detail");
    writer.string(result.detail);

    switch (result.kind) {
      case AnalysisKind::Estimate:
        if (result.report) {
            writer.key("report");
            appendReport(writer, *result.report);
        }
        break;
      case AnalysisKind::Sweep:
        writer.key("sweep");
        writer.beginArray();
        for (const auto &point : result.points)
            appendExplorationPoint(writer, point);
        writer.endArray();
        if (!result.points.empty()) {
            writer.key("best_embodied");
            writer.string(TechSpaceExplorer::bestByEmbodied(
                              result.points)
                              .label());
            writer.key("best_total");
            writer.string(
                TechSpaceExplorer::bestByTotal(result.points)
                    .label());
        }
        break;
      case AnalysisKind::MonteCarlo:
        if (result.uncertainty) {
            writer.key("uncertainty");
            writer.beginObject();
            writer.key("trials");
            writer.number(static_cast<double>(result.trials));
            writer.key("seed");
            writer.number(static_cast<double>(result.seed));
            writer.key("embodied");
            appendSampleStats(writer,
                              result.uncertainty->embodied);
            writer.key("operational");
            appendSampleStats(writer,
                              result.uncertainty->operational);
            writer.key("total");
            appendSampleStats(writer, result.uncertainty->total);
            writer.endObject();
        }
        break;
      case AnalysisKind::Sensitivity:
        writer.key("sensitivity");
        writer.beginObject();
        writer.key("metric");
        writer.string(toString(result.metric));
        writer.key("rows");
        writer.beginArray();
        for (const auto &row : result.sensitivity)
            appendSensitivityRow(writer, row);
        writer.endArray();
        writer.endObject();
        break;
      case AnalysisKind::Cost:
        if (result.cost) {
            writer.key("cost");
            appendCost(writer, *result.cost);
        }
        break;
    }
    writer.endObject();
}

json::Value
resultToJson(const AnalysisResult &result)
{
    json::StreamWriter writer;
    appendResult(writer, result);
    return json::parse(writer.take());
}

namespace {

void
writeEstimateMarkdown(std::ostream &os,
                      const CarbonReport &report)
{
    os << "## Per-chiplet manufacturing\n\n";
    os << "| chiplet | node (nm) | area (mm^2) | yield | mfg (kg "
          "CO2) | design (kg CO2) |\n";
    os << "|---|---|---|---|---|---|\n";
    for (const auto &c : report.chiplets) {
        os << "| " << c.name << " | " << num(c.nodeNm, 0) << " | "
           << num(c.areaMm2) << " | " << num(c.yield) << " | "
           << num(c.mfgCo2Kg) << " | " << num(c.designCo2Kg)
           << " |\n";
    }

    os << "\n## Carbon breakdown (kg CO2 per part)\n\n";
    os << "| component | kg CO2 |\n|---|---|\n";
    os << "| manufacturing (Cmfg) | " << num(report.mfgCo2Kg)
       << " |\n";
    os << "| package (Cpackage) | "
       << num(report.hi.packageCo2Kg) << " |\n";
    os << "| inter-die comm (Cmfg,comm) | "
       << num(report.hi.routingCo2Kg) << " |\n";
    os << "| design, amortized (Cdes) | "
       << num(report.designCo2Kg) << " |\n";
    if (report.nreCo2Kg > 0.0)
        os << "| mask NRE, amortized | " << num(report.nreCo2Kg)
           << " |\n";
    os << "| **embodied (Cemb)** | "
       << num(report.embodiedCo2Kg()) << " |\n";
    os << "| operational (Cop x lifetime) | "
       << num(report.operation.co2Kg) << " |\n";
    os << "| **total (Ctot)** | " << num(report.totalCo2Kg())
       << " |\n";
}

void
writeSweepMarkdown(std::ostream &os,
                   const std::vector<ExplorationPoint> &points)
{
    os << "## Technology-space sweep\n\n";
    os << "| nodes | Cmfg (kg) | CHI (kg) | Cdes (kg) | Cemb (kg)"
          " | Cop (kg) | Ctot (kg) |\n";
    os << "|---|---|---|---|---|---|---|\n";
    for (const auto &p : points) {
        os << "| " << p.label() << " | " << num(p.report.mfgCo2Kg)
           << " | " << num(p.report.hi.totalCo2Kg()) << " | "
           << num(p.report.designCo2Kg) << " | "
           << num(p.report.embodiedCo2Kg()) << " | "
           << num(p.report.operation.co2Kg) << " | "
           << num(p.report.totalCo2Kg()) << " |\n";
    }
    if (!points.empty()) {
        const auto &best =
            TechSpaceExplorer::bestByEmbodied(points);
        os << "\nLowest embodied CFP: **" << best.label()
           << "** at " << num(best.report.embodiedCo2Kg())
           << " kg CO2\n";
    }
}

void
writeUncertaintyMarkdown(std::ostream &os,
                         const UncertaintyReport &bands)
{
    os << "## Monte-Carlo uncertainty (kg CO2)\n\n";
    os << "| metric | mean | stddev | p5 | p50 | p95 |\n";
    os << "|---|---|---|---|---|---|\n";
    auto row = [&](const char *name, const SampleStats &stats) {
        os << "| " << name << " | " << num(stats.mean()) << " | "
           << num(stats.stddev()) << " | "
           << num(stats.percentile(5.0)) << " | "
           << num(stats.percentile(50.0)) << " | "
           << num(stats.percentile(95.0)) << " |\n";
    };
    row("embodied", bands.embodied);
    row("operational", bands.operational);
    row("total", bands.total);
}

void
writeSensitivityMarkdown(
    std::ostream &os,
    const std::vector<SensitivityResult> &rows)
{
    os << "## Sensitivity\n\n";
    os << "| parameter | low | base | high | elasticity |\n";
    os << "|---|---|---|---|---|\n";
    for (const auto &row : rows) {
        os << "| " << row.name << " | " << num(row.lowValue)
           << " | " << num(row.baseValue) << " | "
           << num(row.highValue) << " | "
           << num(row.elasticity) << " |\n";
    }
}

void
writeCostMarkdown(std::ostream &os, const CostBreakdown &cost)
{
    os << "## Dollar cost per part\n\n";
    os << "| component | USD |\n|---|---|\n";
    os << "| silicon dies | " << num(cost.dieUsd) << " |\n";
    os << "| package | " << num(cost.packageUsd) << " |\n";
    os << "| assembly+test | " << num(cost.assemblyUsd) << " |\n";
    os << "| NRE, amortized | " << num(cost.nreUsd) << " |\n";
    os << "| **total** | " << num(cost.totalUsd()) << " |\n";
}

} // namespace

void
writeResultMarkdown(std::ostream &os, const AnalysisResult &result)
{
    os << "# ECO-CHIP " << toString(result.kind) << ": "
       << result.scenario << "\n\n";
    if (!result.detail.empty())
        os << "- " << result.detail << "\n\n";

    switch (result.kind) {
      case AnalysisKind::Estimate:
        if (result.report)
            writeEstimateMarkdown(os, *result.report);
        break;
      case AnalysisKind::Sweep:
        writeSweepMarkdown(os, result.points);
        break;
      case AnalysisKind::MonteCarlo:
        if (result.uncertainty)
            writeUncertaintyMarkdown(os, *result.uncertainty);
        break;
      case AnalysisKind::Sensitivity:
        writeSensitivityMarkdown(os, result.sensitivity);
        break;
      case AnalysisKind::Cost:
        if (result.cost)
            writeCostMarkdown(os, *result.cost);
        break;
    }
}

std::string
resultMarkdown(const AnalysisResult &result)
{
    std::ostringstream os;
    writeResultMarkdown(os, result);
    return os.str();
}

} // namespace ecochip
