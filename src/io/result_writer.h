/**
 * @file
 * Uniform serialization of `AnalysisResult` -- the single
 * JSON/markdown path every session verb's output flows through,
 * no matter which analysis produced it.
 */

#ifndef ECOCHIP_IO_RESULT_WRITER_H
#define ECOCHIP_IO_RESULT_WRITER_H

#include <ostream>
#include <string>

#include "json/json.h"
#include "session/analysis_result.h"

namespace ecochip {

/**
 * Serialize any analysis result to JSON.
 *
 * The document always carries `kind`, `scenario`, and `detail`;
 * the verb-specific payload lands under a key named after the
 * kind (`report`, `sweep`, `uncertainty`, `sensitivity`, `cost`).
 */
json::Value resultToJson(const AnalysisResult &result);

/** Distribution summary of one sampled metric. */
json::Value sampleStatsToJson(const SampleStats &stats);

/**
 * Render any analysis result as a markdown report.
 *
 * @param os Destination stream.
 * @param result Result of any session verb.
 */
void writeResultMarkdown(std::ostream &os,
                         const AnalysisResult &result);

/** Convenience: the markdown report as a string. */
std::string resultMarkdown(const AnalysisResult &result);

} // namespace ecochip

#endif // ECOCHIP_IO_RESULT_WRITER_H
