/**
 * @file
 * Uniform serialization of `AnalysisResult` -- the single
 * JSON/markdown path every session verb's output flows through,
 * no matter which analysis produced it.
 */

#ifndef ECOCHIP_IO_RESULT_WRITER_H
#define ECOCHIP_IO_RESULT_WRITER_H

#include <ostream>
#include <string>

#include "json/json.h"
#include "json/stream_writer.h"
#include "session/analysis_result.h"

namespace ecochip {

/**
 * Emit any analysis result through the streaming writer -- the
 * primary result serializer on the wire path (worker outcome
 * streams, server responses). `resultToJson` is a DOM wrapper
 * over it, so the two cannot drift.
 */
void appendResult(json::StreamWriter &writer,
                  const AnalysisResult &result);

/**
 * Serialize any analysis result to JSON.
 *
 * The document always carries `kind`, `scenario`, and `detail`;
 * the verb-specific payload lands under a key named after the
 * kind (`report`, `sweep`, `uncertainty`, `sensitivity`, `cost`).
 */
json::Value resultToJson(const AnalysisResult &result);

/** Emit the distribution summary of one sampled metric. */
void appendSampleStats(json::StreamWriter &writer,
                       const SampleStats &stats);

/** Distribution summary of one sampled metric. */
json::Value sampleStatsToJson(const SampleStats &stats);

/**
 * Render any analysis result as a markdown report.
 *
 * @param os Destination stream.
 * @param result Result of any session verb.
 */
void writeResultMarkdown(std::ostream &os,
                         const AnalysisResult &result);

/** Convenience: the markdown report as a string. */
std::string resultMarkdown(const AnalysisResult &result);

} // namespace ecochip

#endif // ECOCHIP_IO_RESULT_WRITER_H
