/**
 * @file
 * The `hosts.json` host-manifest wire format -- the input of the
 * multi-host shard coordinator (`engine/shard_coordinator.h`,
 * `eco_chip --coordinate ... --hosts HOSTS.json`).
 *
 * A manifest names the machines a coordinated run may dispatch
 * shards onto:
 * @code{.json}
 * {
 *   "hosts": [
 *     {"name": "alpha", "slots": 2},
 *     {"name": "node-a.cluster", "slots": 8,
 *      "command": "ssh {host} /shared/eco_chip --shard_worker {sub_batch} --json {report} --engine_threads {threads} {scenarios_args}"}
 *   ]
 * }
 * @endcode
 *
 * A host without a `command` runs shards through the local
 * process transport (fork/exec on the coordinating machine); a
 * host with one runs them through the command transport, which
 * expands the `{...}` placeholders and hands the line to
 * `/bin/sh -c`. Field-by-field reference in
 * `docs/file_formats.md`, operator guide in
 * `docs/distributed.md`.
 *
 * Unknown keys, duplicate host names, zero/negative slot counts,
 * and typo'd template placeholders are all rejected at load time
 * with the file and the offending key/name/placeholder named,
 * matching the `config_loader` contract.
 */

#ifndef ECOCHIP_IO_HOST_MANIFEST_IO_H
#define ECOCHIP_IO_HOST_MANIFEST_IO_H

#include <string>
#include <utility>
#include <vector>

#include "json/json.h"

namespace ecochip {

/** One machine a coordinated run may dispatch shards onto. */
struct HostSpec
{
    /** Host name: the scheduling identity (and the `{host}`
     *  placeholder value). Must be unique within a manifest. */
    std::string name;

    /** Shards this host runs concurrently (>= 1). */
    int slots = 1;

    /**
     * Command template for the command transport. Empty: the
     * local process transport runs the shard on the
     * coordinating machine instead. Placeholders (validated at
     * load time): `{host}`, `{worker}`, `{sub_batch}`,
     * `{report}`, `{events}`, `{threads}`,
     * `{scenarios_args}`. `{events}` is the per-dispatch NDJSON
     * event-file path the dynamic coordinator tails (workers
     * invoked as `eco_chip --shard_worker` derive it from the
     * report path on their own, so most templates never need
     * it).
     */
    std::string command;

    /** True when shards run through the local process transport. */
    bool isLocal() const { return command.empty(); }
};

/** A parsed `hosts.json` manifest. */
struct HostManifest
{
    /** Hosts in manifest order (the scheduler's preference
     *  order). */
    std::vector<HostSpec> hosts;

    /** Total shard slots across all hosts -- the coordinated
     *  run's worker-process count (and shard-count request). */
    int totalSlots() const;
};

/**
 * Reject @p command_template unless every `{...}` placeholder is
 * one the dispatcher can expand, naming @p context and the
 * offending placeholder otherwise. Braces are reserved: a bare
 * `{` must open a known placeholder.
 */
void validateCommandTemplate(const std::string &command_template,
                             const std::string &context);

/**
 * Expand a validated command template: each `{name}` is replaced
 * by the matching value in @p values.
 *
 * @param command_template Template (see `validateCommandTemplate`).
 * @param values (placeholder name, replacement) pairs.
 * @throws ConfigError on a placeholder missing from @p values.
 */
std::string expandCommandTemplate(
    const std::string &command_template,
    const std::vector<std::pair<std::string, std::string>>
        &values);

/**
 * Parse a host manifest document.
 *
 * @param doc Parsed `hosts.json` JSON.
 * @param context Source label (file path) for error messages.
 * @throws ConfigError on unknown keys, duplicate host names,
 *         out-of-range slot counts, or invalid command templates.
 */
HostManifest hostManifestFromJson(const json::Value &doc,
                                  const std::string &context =
                                      "hosts.json");

/** Serialize a manifest back to the `hosts.json` schema. */
json::Value hostManifestToJson(const HostManifest &manifest);

/** Load and validate a `hosts.json` file. */
HostManifest loadHostManifest(const std::string &path);

} // namespace ecochip

#endif // ECOCHIP_IO_HOST_MANIFEST_IO_H
