/**
 * @file
 * Human-readable (markdown) carbon report generation.
 */

#ifndef ECOCHIP_IO_REPORT_WRITER_H
#define ECOCHIP_IO_REPORT_WRITER_H

#include <ostream>
#include <string>

#include "core/ecochip.h"

namespace ecochip {

/**
 * Render a full markdown report for one evaluation: the system
 * description, per-chiplet manufacturing detail, the Cemb / Cop /
 * Ctot breakdown, and HI packaging details.
 *
 * @param os Destination stream.
 * @param system The evaluated system.
 * @param report Its carbon report.
 * @param config The configuration used (for context lines).
 */
void writeMarkdownReport(std::ostream &os,
                         const SystemSpec &system,
                         const CarbonReport &report,
                         const EcoChipConfig &config);

/** Convenience: the markdown report as a string. */
std::string markdownReport(const SystemSpec &system,
                           const CarbonReport &report,
                           const EcoChipConfig &config);

} // namespace ecochip

#endif // ECOCHIP_IO_REPORT_WRITER_H
