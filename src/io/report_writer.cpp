#include "io/report_writer.h"

#include <iomanip>
#include <sstream>

#include "support/table_printer.h"

namespace ecochip {

namespace {

std::string
num(double value, int precision = 3)
{
    return TablePrinter::formatNumber(value, precision);
}

std::string
pct(double fraction)
{
    return TablePrinter::formatNumber(100.0 * fraction, 1) + " %";
}

} // namespace

void
writeMarkdownReport(std::ostream &os, const SystemSpec &system,
                    const CarbonReport &report,
                    const EcoChipConfig &config)
{
    os << "# ECO-CHIP carbon report: " << system.name << "\n\n";

    os << "- Integration: "
       << (system.isMonolithic()
               ? std::string("monolithic die")
               : std::string(toString(config.package.arch)) +
                     " package")
       << "\n";
    os << "- Chiplets/blocks: " << system.chiplets.size() << "\n";
    os << "- Wafer: " << config.wafer.diameterMm() << " mm, fab "
       << "energy at " << config.fabIntensityGPerKwh
       << " g CO2/kWh\n";
    os << "- Lifetime: " << config.operating.lifetimeYears
       << " years, duty cycle "
       << pct(config.operating.dutyCycle) << "\n\n";

    os << "## Per-chiplet manufacturing\n\n";
    os << "| chiplet | node (nm) | area (mm^2) | yield | mfg (kg "
          "CO2) | design (kg CO2) |\n";
    os << "|---|---|---|---|---|---|\n";
    for (const auto &c : report.chiplets) {
        os << "| " << c.name << " | " << num(c.nodeNm, 0) << " | "
           << num(c.areaMm2) << " | " << num(c.yield) << " | "
           << num(c.mfgCo2Kg) << " | " << num(c.designCo2Kg)
           << " |\n";
    }

    os << "\n## Carbon breakdown (kg CO2 per part)\n\n";
    os << "| component | kg CO2 | share of total |\n";
    os << "|---|---|---|\n";
    const double total = report.totalCo2Kg();
    auto row = [&](const char *name, double value) {
        os << "| " << name << " | " << num(value) << " | "
           << pct(total > 0.0 ? value / total : 0.0) << " |\n";
    };
    row("manufacturing (Cmfg)", report.mfgCo2Kg);
    row("package (Cpackage)", report.hi.packageCo2Kg);
    row("inter-die comm (Cmfg,comm)", report.hi.routingCo2Kg);
    row("design, amortized (Cdes)", report.designCo2Kg);
    if (report.nreCo2Kg > 0.0)
        row("mask NRE, amortized", report.nreCo2Kg);
    row("operational (lifetime Cop)", report.operation.co2Kg);
    os << "| **embodied (Cemb)** | **"
       << num(report.embodiedCo2Kg()) << "** | **"
       << pct(report.embodiedCo2Kg() / total) << "** |\n";
    os << "| **total (Ctot)** | **" << num(total)
       << "** | 100.0 % |\n";

    if (!system.isMonolithic()) {
        os << "\n## Heterogeneous-integration detail\n\n";
        os << "- Package outline: "
           << num(report.hi.packageAreaMm2) << " mm^2 ("
           << num(report.hi.whitespaceAreaMm2)
           << " mm^2 whitespace)\n";
        os << "- Package yield: " << num(report.hi.packageYield)
           << "\n";
        if (report.hi.bridgeCount > 0)
            os << "- Silicon bridges: " << report.hi.bridgeCount
               << "\n";
        if (report.hi.bondCount > 0)
            os << "- Vertical connections: "
               << num(report.hi.bondCount, 0) << "\n";
        os << "- Added communication silicon: "
           << num(report.hi.commAreaMm2) << " mm^2\n";
        os << "- NoC/PHY power overhead: "
           << num(report.hi.nocPowerW) << " W\n";
    }

    os << "\n## Operation\n\n";
    os << "- Average power while on: "
       << num(report.operation.avgPowerW) << " W\n";
    os << "- Lifetime use energy: "
       << num(report.operation.lifetimeEnergyKwh) << " kWh\n";
}

std::string
markdownReport(const SystemSpec &system, const CarbonReport &report,
               const EcoChipConfig &config)
{
    std::ostringstream oss;
    writeMarkdownReport(oss, system, report, config);
    return oss.str();
}

} // namespace ecochip
