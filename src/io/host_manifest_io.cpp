#include "io/host_manifest_io.h"

#include <set>

#include "io/config_loader.h"
#include "support/error.h"

namespace ecochip {

namespace {

/** Placeholders the shard dispatcher can expand. */
const std::set<std::string> &
allowedPlaceholders()
{
    static const std::set<std::string> names = {
        "host",   "worker",  "sub_batch",      "report",
        "events", "threads", "scenarios_args"};
    return names;
}

/** The allowed-placeholder list for error messages. */
std::string
placeholderList()
{
    std::string out;
    for (const auto &name : allowedPlaceholders()) {
        if (!out.empty())
            out += ", ";
        out += "{" + name + "}";
    }
    return out;
}

} // namespace

int
HostManifest::totalSlots() const
{
    int total = 0;
    for (const auto &host : hosts)
        total += host.slots;
    return total;
}

void
validateCommandTemplate(const std::string &command_template,
                        const std::string &context)
{
    for (std::size_t i = 0; i < command_template.size(); ++i) {
        if (command_template[i] != '{')
            continue;
        const std::size_t close = command_template.find('}', i);
        requireConfig(close != std::string::npos,
                      context +
                          ": unterminated '{' in command "
                          "template");
        const std::string name =
            command_template.substr(i + 1, close - i - 1);
        requireConfig(allowedPlaceholders().count(name) == 1,
                      context +
                          ": unknown command-template "
                          "placeholder \"{" +
                          name + "}\" (allowed: " +
                          placeholderList() + ")");
        i = close;
    }
}

std::string
expandCommandTemplate(
    const std::string &command_template,
    const std::vector<std::pair<std::string, std::string>>
        &values)
{
    std::string out;
    out.reserve(command_template.size());
    for (std::size_t i = 0; i < command_template.size(); ++i) {
        if (command_template[i] != '{') {
            out += command_template[i];
            continue;
        }
        const std::size_t close = command_template.find('}', i);
        requireConfig(close != std::string::npos,
                      "unterminated '{' in command template");
        const std::string name =
            command_template.substr(i + 1, close - i - 1);
        bool found = false;
        for (const auto &[key, value] : values) {
            if (key == name) {
                out += value;
                found = true;
                break;
            }
        }
        requireConfig(found,
                      "command-template placeholder \"{" + name +
                          "}\" has no value in this dispatch");
        i = close;
    }
    return out;
}

HostManifest
hostManifestFromJson(const json::Value &doc,
                     const std::string &context)
{
    requireConfig(doc.isObject(),
                  context +
                      ": host manifest must be a JSON object "
                      "{\"hosts\": [...]}");
    rejectUnknownKeys(doc, {"hosts"}, context);
    requireConfig(doc.contains("hosts"),
                  context + ": missing \"hosts\"");
    const auto &entries = doc.at("hosts").asArray();
    requireConfig(!entries.empty(),
                  context + ": \"hosts\" names no hosts");

    HostManifest manifest;
    std::set<std::string> seen;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const std::string entry_context =
            context + ": hosts[" + std::to_string(i) + "]";
        const json::Value &entry = entries[i];
        requireConfig(entry.isObject(),
                      entry_context + ": must be an object");
        rejectUnknownKeys(entry, {"name", "slots", "command"},
                          entry_context);

        HostSpec host;
        requireConfig(entry.contains("name"),
                      entry_context + ": missing \"name\"");
        host.name = entry.at("name").asString();
        requireConfig(!host.name.empty(),
                      entry_context + ": \"name\" is empty");
        requireConfig(seen.insert(host.name).second,
                      context + ": duplicate host \"" +
                          host.name + "\"");

        if (entry.contains("slots")) {
            const auto slots = entry.at("slots").asInteger();
            requireConfig(
                slots >= 1 && slots <= 4096,
                entry_context + " (\"" + host.name +
                    "\"): \"slots\" must be in [1, 4096], got " +
                    std::to_string(slots));
            host.slots = static_cast<int>(slots);
        }

        if (entry.contains("command")) {
            host.command = entry.at("command").asString();
            requireConfig(
                !host.command.empty(),
                entry_context + " (\"" + host.name +
                    "\"): \"command\" is empty (omit it for "
                    "the local transport)");
            validateCommandTemplate(host.command,
                                    entry_context + " (\"" +
                                        host.name + "\")");
        }

        manifest.hosts.push_back(std::move(host));
    }
    return manifest;
}

json::Value
hostManifestToJson(const HostManifest &manifest)
{
    json::Value hosts = json::Value::makeArray();
    for (const auto &host : manifest.hosts) {
        json::Value entry = json::Value::makeObject();
        entry.set("name", host.name);
        entry.set("slots", host.slots);
        if (!host.command.empty())
            entry.set("command", host.command);
        hosts.append(std::move(entry));
    }
    json::Value doc = json::Value::makeObject();
    doc.set("hosts", std::move(hosts));
    return doc;
}

HostManifest
loadHostManifest(const std::string &path)
{
    return hostManifestFromJson(json::parseFile(path), path);
}

} // namespace ecochip
