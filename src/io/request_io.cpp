#include "io/request_io.h"

#include <filesystem>

#include "io/config_loader.h"
#include "support/error.h"

namespace ecochip {

namespace {

/*
 * The append* emitters below are the single source of truth for
 * the request wire format; every *ToJson sibling parses their
 * output, so the DOM and streaming serializations cannot drift.
 */

void
appendCostParams(json::StreamWriter &writer,
                 const CostParams &params)
{
    writer.beginObject();
    writer.key("substrate_cost_per_cm2_usd");
    writer.number(params.substrateCostPerCm2Usd);
    writer.key("rdl_layer_cost_per_cm2_usd");
    writer.number(params.rdlLayerCostPerCm2Usd);
    writer.key("bridge_cost_usd");
    writer.number(params.bridgeCostUsd);
    writer.key("interposer_layer_cost_per_cm2_usd");
    writer.number(params.interposerLayerCostPerCm2Usd);
    writer.key("attach_cost_per_chiplet_usd");
    writer.number(params.attachCostPerChipletUsd);
    writer.key("cost_per_bond_usd");
    writer.number(params.costPerBondUsd);
    writer.key("test_cost_per_chiplet_usd");
    writer.number(params.testCostPerChipletUsd);
    writer.key("volume");
    writer.number(params.volume);
    writer.key("include_nre");
    writer.boolean(params.includeNre);
    writer.endObject();
}

void
appendUncertaintyBands(json::StreamWriter &writer,
                       const UncertaintyBands &bands)
{
    writer.beginObject();
    writer.key("defect_density");
    writer.number(bands.defectDensity);
    writer.key("epa");
    writer.number(bands.epa);
    writer.key("intensity");
    writer.number(bands.intensity);
    writer.key("design_time");
    writer.number(bands.designTime);
    writer.key("duty_cycle");
    writer.number(bands.dutyCycle);
    writer.endObject();
}

} // namespace

json::Value
costParamsToJson(const CostParams &params)
{
    json::StreamWriter writer;
    appendCostParams(writer, params);
    return json::parse(writer.take());
}

CostParams
costParamsFromJson(const json::Value &doc,
                   const std::string &context)
{
    rejectUnknownKeys(doc,
                      {"substrate_cost_per_cm2_usd",
                       "rdl_layer_cost_per_cm2_usd",
                       "bridge_cost_usd",
                       "interposer_layer_cost_per_cm2_usd",
                       "attach_cost_per_chiplet_usd",
                       "cost_per_bond_usd",
                       "test_cost_per_chiplet_usd", "volume",
                       "include_nre"},
                      context);

    CostParams params;
    params.substrateCostPerCm2Usd =
        doc.numberOr("substrate_cost_per_cm2_usd",
                     params.substrateCostPerCm2Usd);
    params.rdlLayerCostPerCm2Usd =
        doc.numberOr("rdl_layer_cost_per_cm2_usd",
                     params.rdlLayerCostPerCm2Usd);
    params.bridgeCostUsd =
        doc.numberOr("bridge_cost_usd", params.bridgeCostUsd);
    params.interposerLayerCostPerCm2Usd =
        doc.numberOr("interposer_layer_cost_per_cm2_usd",
                     params.interposerLayerCostPerCm2Usd);
    params.attachCostPerChipletUsd =
        doc.numberOr("attach_cost_per_chiplet_usd",
                     params.attachCostPerChipletUsd);
    params.costPerBondUsd =
        doc.numberOr("cost_per_bond_usd", params.costPerBondUsd);
    params.testCostPerChipletUsd =
        doc.numberOr("test_cost_per_chiplet_usd",
                     params.testCostPerChipletUsd);
    params.volume = doc.numberOr("volume", params.volume);
    params.includeNre =
        doc.booleanOr("include_nre", params.includeNre);
    return params;
}

json::Value
uncertaintyBandsToJson(const UncertaintyBands &bands)
{
    json::StreamWriter writer;
    appendUncertaintyBands(writer, bands);
    return json::parse(writer.take());
}

UncertaintyBands
uncertaintyBandsFromJson(const json::Value &doc,
                         const std::string &context)
{
    rejectUnknownKeys(doc,
                      {"defect_density", "epa", "intensity",
                       "design_time", "duty_cycle"},
                      context);

    UncertaintyBands bands;
    bands.defectDensity =
        doc.numberOr("defect_density", bands.defectDensity);
    bands.epa = doc.numberOr("epa", bands.epa);
    bands.intensity = doc.numberOr("intensity", bands.intensity);
    bands.designTime =
        doc.numberOr("design_time", bands.designTime);
    bands.dutyCycle = doc.numberOr("duty_cycle", bands.dutyCycle);
    return bands;
}

namespace {

/** Sanity caps: a fat-fingered huge value must be rejected, not
 *  wrapped modulo 2^32 or allowed to spawn absurd work. */
constexpr std::int64_t kMaxTrials = 100'000'000;
constexpr std::int64_t kMaxThreads = 4096;

void
appendNodes(json::StreamWriter &writer,
            const std::vector<double> &nodes)
{
    writer.beginArray();
    for (double node : nodes)
        writer.number(node);
    writer.endArray();
}

std::vector<double>
nodesFromJson(const json::Value &arr, const std::string &context)
{
    std::vector<double> nodes;
    for (const auto &entry : arr.asArray()) {
        const double node = entry.asNumber();
        requireConfig(node > 0.0,
                      context + ": nodes must be positive");
        nodes.push_back(node);
    }
    return nodes;
}

} // namespace

void
appendRequest(json::StreamWriter &writer,
              const AnalysisRequest &request)
{
    writer.beginObject();
    if (request.scenario.kind == ScenarioRef::Kind::Registry) {
        writer.key("scenario");
        writer.string(request.scenario.value);
    } else {
        writer.key("design_dir");
        writer.string(request.scenario.value);
    }
    writer.key("analysis");
    writer.string(toString(request.kind()));

    std::visit(
        [&](const auto &spec) {
            using Spec = std::decay_t<decltype(spec)>;
            if constexpr (std::is_same_v<Spec, SweepSpec>) {
                if (!spec.nodesNm.empty()) {
                    writer.key("nodes_nm");
                    appendNodes(writer, spec.nodesNm);
                }
                if (!spec.nodesPerChiplet.empty()) {
                    writer.key("nodes_per_chiplet");
                    writer.beginArray();
                    for (const auto &nodes :
                         spec.nodesPerChiplet)
                        appendNodes(writer, nodes);
                    writer.endArray();
                }
            } else if constexpr (std::is_same_v<
                                     Spec, MonteCarloSpec>) {
                // JSON numbers are doubles: a seed above 2^53
                // would come back corrupted, silently breaking
                // the round-trip guarantee. Refuse instead.
                requireConfig(
                    spec.seed <=
                        (std::uint64_t{1} << 53),
                    "monte_carlo seed " +
                        std::to_string(spec.seed) +
                        " exceeds 2^53 and cannot round-trip "
                        "through JSON");
                writer.key("trials");
                writer.number(spec.trials);
                writer.key("seed");
                writer.number(static_cast<double>(spec.seed));
                writer.key("threads");
                writer.number(spec.threads);
                if (!(spec.bands == UncertaintyBands())) {
                    writer.key("bands");
                    appendUncertaintyBands(writer, spec.bands);
                }
            } else if constexpr (std::is_same_v<
                                     Spec, SensitivitySpec>) {
                writer.key("metric");
                writer.string(toString(spec.metric));
                writer.key("delta");
                writer.number(spec.delta);
            } else if constexpr (std::is_same_v<Spec,
                                                CostSpec>) {
                if (!(spec.params == CostParams())) {
                    writer.key("params");
                    appendCostParams(writer, spec.params);
                }
            }
        },
        request.spec);
    writer.endObject();
}

json::Value
requestToJson(const AnalysisRequest &request)
{
    json::StreamWriter writer;
    appendRequest(writer, request);
    return json::parse(writer.take());
}

AnalysisRequest
requestFromJson(const json::Value &doc,
                const std::string &context)
{
    requireConfig(doc.isObject(),
                  context + ": request must be an object");

    AnalysisRequest request;

    const bool has_scenario = doc.contains("scenario");
    const bool has_dir = doc.contains("design_dir");
    requireConfig(has_scenario != has_dir,
                  context + ": set exactly one of scenario / "
                            "design_dir");
    request.scenario =
        has_scenario
            ? ScenarioRef::scenario(
                  doc.at("scenario").asString())
            : ScenarioRef::designDirectory(
                  doc.at("design_dir").asString());

    const AnalysisKind kind = analysisKindFromString(
        doc.stringOr("analysis", "estimate"));
    switch (kind) {
      case AnalysisKind::Estimate: {
        rejectUnknownKeys(
            doc, {"scenario", "design_dir", "analysis"},
            context);
        request.spec = EstimateSpec{};
        break;
      }
      case AnalysisKind::Sweep: {
        rejectUnknownKeys(doc,
                          {"scenario", "design_dir", "analysis",
                           "nodes_nm", "nodes_per_chiplet"},
                          context);
        SweepSpec spec;
        if (doc.contains("nodes_nm"))
            spec.nodesNm =
                nodesFromJson(doc.at("nodes_nm"), context);
        if (doc.contains("nodes_per_chiplet"))
            for (const auto &nodes :
                 doc.at("nodes_per_chiplet").asArray())
                spec.nodesPerChiplet.push_back(
                    nodesFromJson(nodes, context));
        requireConfig(spec.nodesNm.empty() !=
                          spec.nodesPerChiplet.empty(),
                      context +
                          ": sweep needs exactly one of "
                          "nodes_nm / nodes_per_chiplet");
        request.spec = std::move(spec);
        break;
      }
      case AnalysisKind::MonteCarlo: {
        rejectUnknownKeys(doc,
                          {"scenario", "design_dir", "analysis",
                           "trials", "seed", "threads", "bands"},
                          context);
        MonteCarloSpec spec;
        // asInteger rejects non-integral numbers (10.7 must not
        // silently truncate to 10 trials); the range checks run
        // on the int64 before narrowing, so out-of-int values
        // are rejected rather than wrapped.
        if (doc.contains("trials")) {
            const std::int64_t trials =
                doc.at("trials").asInteger();
            requireConfig(trials >= 2 &&
                              trials <= kMaxTrials,
                          context + ": trials must be in [2, " +
                              std::to_string(kMaxTrials) + "]");
            spec.trials = static_cast<int>(trials);
        }
        requireConfig(spec.trials >= 2,
                      context + ": trials must be >= 2");
        if (doc.contains("seed")) {
            const std::int64_t seed =
                doc.at("seed").asInteger();
            requireConfig(seed >= 0,
                          context +
                              ": seed must be non-negative");
            spec.seed = static_cast<std::uint64_t>(seed);
        }
        if (doc.contains("threads")) {
            const std::int64_t threads =
                doc.at("threads").asInteger();
            requireConfig(threads >= 1 &&
                              threads <= kMaxThreads,
                          context + ": threads must be in [1, " +
                              std::to_string(kMaxThreads) + "]");
            spec.threads = static_cast<int>(threads);
        }
        requireConfig(spec.threads >= 1,
                      context + ": threads must be >= 1");
        if (doc.contains("bands"))
            spec.bands = uncertaintyBandsFromJson(
                doc.at("bands"), context + ": bands");
        request.spec = spec;
        break;
      }
      case AnalysisKind::Sensitivity: {
        rejectUnknownKeys(doc,
                          {"scenario", "design_dir", "analysis",
                           "metric", "delta"},
                          context);
        SensitivitySpec spec;
        spec.metric = carbonMetricFromString(
            doc.stringOr("metric", "embodied"));
        spec.delta = doc.numberOr("delta", spec.delta);
        requireConfig(spec.delta > 0.0 && spec.delta < 1.0,
                      context +
                          ": delta must be in (0, 1)");
        request.spec = spec;
        break;
      }
      case AnalysisKind::Cost: {
        rejectUnknownKeys(
            doc,
            {"scenario", "design_dir", "analysis", "params"},
            context);
        CostSpec spec;
        if (doc.contains("params"))
            spec.params = costParamsFromJson(
                doc.at("params"), context + ": params");
        request.spec = spec;
        break;
      }
    }
    return request;
}

std::vector<AnalysisRequest>
requestsFromJson(const json::Value &doc,
                 const std::string &context)
{
    const json::Value *list = &doc;
    if (doc.isObject()) {
        requireConfig(doc.contains("requests"),
                      context + ": batch object needs a "
                                "\"requests\" array");
        list = &doc.at("requests");
    }

    std::vector<AnalysisRequest> requests;
    std::size_t index = 0;
    for (const auto &entry : list->asArray()) {
        requests.push_back(requestFromJson(
            entry,
            context + " #" + std::to_string(index)));
        ++index;
    }
    requireConfig(!requests.empty(),
                  context + ": batch has no requests");
    return requests;
}

json::Value
requestsToJson(const std::vector<AnalysisRequest> &requests)
{
    json::Value arr = json::Value::makeArray();
    for (const auto &request : requests)
        arr.append(requestToJson(request));
    return arr;
}

std::string
canonicalRequestText(const AnalysisRequest &request)
{
    AnalysisRequest normalized = request;
    // Scheduling-only knob: trial batching cannot change a
    // Monte-Carlo result (equal seeds are bit-identical at any
    // thread count), so requests differing only in it must land
    // on the same cache entry.
    if (auto *mc = std::get_if<MonteCarloSpec>(&normalized.spec))
        mc->threads = 1;
    // appendRequest emits members in one fixed order, numbers in
    // one fixed format, and omits defaulted optionals, so its
    // compact output is already canonical -- no DOM needed.
    json::StreamWriter writer;
    appendRequest(writer, normalized);
    return writer.take();
}

BatchFile
loadBatchFile(const std::string &path)
{
    const json::Value doc = json::parseFile(path);

    BatchFile batch;
    if (doc.isObject()) {
        rejectUnknownKeys(doc, {"scenarios", "requests"}, path);
        if (doc.contains("scenarios")) {
            // Catalog paths resolve relative to the batch file so
            // a requests/ directory ships as a self-contained
            // unit.
            const std::filesystem::path catalog(
                doc.at("scenarios").asString());
            batch.scenarioCatalog =
                catalog.is_absolute()
                    ? catalog.string()
                    : (std::filesystem::path(path)
                           .parent_path() /
                       catalog)
                          .string();
        }
    }
    batch.requests = requestsFromJson(doc, path);
    return batch;
}

} // namespace ecochip
