#include "io/request_io.h"

#include <filesystem>

#include "io/config_loader.h"
#include "support/error.h"

namespace ecochip {

json::Value
costParamsToJson(const CostParams &params)
{
    json::Value doc = json::Value::makeObject();
    doc.set("substrate_cost_per_cm2_usd",
            params.substrateCostPerCm2Usd);
    doc.set("rdl_layer_cost_per_cm2_usd",
            params.rdlLayerCostPerCm2Usd);
    doc.set("bridge_cost_usd", params.bridgeCostUsd);
    doc.set("interposer_layer_cost_per_cm2_usd",
            params.interposerLayerCostPerCm2Usd);
    doc.set("attach_cost_per_chiplet_usd",
            params.attachCostPerChipletUsd);
    doc.set("cost_per_bond_usd", params.costPerBondUsd);
    doc.set("test_cost_per_chiplet_usd",
            params.testCostPerChipletUsd);
    doc.set("volume", params.volume);
    doc.set("include_nre", params.includeNre);
    return doc;
}

CostParams
costParamsFromJson(const json::Value &doc,
                   const std::string &context)
{
    rejectUnknownKeys(doc,
                      {"substrate_cost_per_cm2_usd",
                       "rdl_layer_cost_per_cm2_usd",
                       "bridge_cost_usd",
                       "interposer_layer_cost_per_cm2_usd",
                       "attach_cost_per_chiplet_usd",
                       "cost_per_bond_usd",
                       "test_cost_per_chiplet_usd", "volume",
                       "include_nre"},
                      context);

    CostParams params;
    params.substrateCostPerCm2Usd =
        doc.numberOr("substrate_cost_per_cm2_usd",
                     params.substrateCostPerCm2Usd);
    params.rdlLayerCostPerCm2Usd =
        doc.numberOr("rdl_layer_cost_per_cm2_usd",
                     params.rdlLayerCostPerCm2Usd);
    params.bridgeCostUsd =
        doc.numberOr("bridge_cost_usd", params.bridgeCostUsd);
    params.interposerLayerCostPerCm2Usd =
        doc.numberOr("interposer_layer_cost_per_cm2_usd",
                     params.interposerLayerCostPerCm2Usd);
    params.attachCostPerChipletUsd =
        doc.numberOr("attach_cost_per_chiplet_usd",
                     params.attachCostPerChipletUsd);
    params.costPerBondUsd =
        doc.numberOr("cost_per_bond_usd", params.costPerBondUsd);
    params.testCostPerChipletUsd =
        doc.numberOr("test_cost_per_chiplet_usd",
                     params.testCostPerChipletUsd);
    params.volume = doc.numberOr("volume", params.volume);
    params.includeNre =
        doc.booleanOr("include_nre", params.includeNre);
    return params;
}

json::Value
uncertaintyBandsToJson(const UncertaintyBands &bands)
{
    json::Value doc = json::Value::makeObject();
    doc.set("defect_density", bands.defectDensity);
    doc.set("epa", bands.epa);
    doc.set("intensity", bands.intensity);
    doc.set("design_time", bands.designTime);
    doc.set("duty_cycle", bands.dutyCycle);
    return doc;
}

UncertaintyBands
uncertaintyBandsFromJson(const json::Value &doc,
                         const std::string &context)
{
    rejectUnknownKeys(doc,
                      {"defect_density", "epa", "intensity",
                       "design_time", "duty_cycle"},
                      context);

    UncertaintyBands bands;
    bands.defectDensity =
        doc.numberOr("defect_density", bands.defectDensity);
    bands.epa = doc.numberOr("epa", bands.epa);
    bands.intensity = doc.numberOr("intensity", bands.intensity);
    bands.designTime =
        doc.numberOr("design_time", bands.designTime);
    bands.dutyCycle = doc.numberOr("duty_cycle", bands.dutyCycle);
    return bands;
}

namespace {

/** Sanity caps: a fat-fingered huge value must be rejected, not
 *  wrapped modulo 2^32 or allowed to spawn absurd work. */
constexpr std::int64_t kMaxTrials = 100'000'000;
constexpr std::int64_t kMaxThreads = 4096;

json::Value
nodesToJson(const std::vector<double> &nodes)
{
    json::Value arr = json::Value::makeArray();
    for (double node : nodes)
        arr.append(json::Value(node));
    return arr;
}

std::vector<double>
nodesFromJson(const json::Value &arr, const std::string &context)
{
    std::vector<double> nodes;
    for (const auto &entry : arr.asArray()) {
        const double node = entry.asNumber();
        requireConfig(node > 0.0,
                      context + ": nodes must be positive");
        nodes.push_back(node);
    }
    return nodes;
}

} // namespace

json::Value
requestToJson(const AnalysisRequest &request)
{
    json::Value doc = json::Value::makeObject();
    if (request.scenario.kind == ScenarioRef::Kind::Registry)
        doc.set("scenario", request.scenario.value);
    else
        doc.set("design_dir", request.scenario.value);
    doc.set("analysis", toString(request.kind()));

    std::visit(
        [&](const auto &spec) {
            using Spec = std::decay_t<decltype(spec)>;
            if constexpr (std::is_same_v<Spec, SweepSpec>) {
                if (!spec.nodesNm.empty())
                    doc.set("nodes_nm",
                            nodesToJson(spec.nodesNm));
                if (!spec.nodesPerChiplet.empty()) {
                    json::Value lists = json::Value::makeArray();
                    for (const auto &nodes :
                         spec.nodesPerChiplet)
                        lists.append(nodesToJson(nodes));
                    doc.set("nodes_per_chiplet",
                            std::move(lists));
                }
            } else if constexpr (std::is_same_v<
                                     Spec, MonteCarloSpec>) {
                // JSON numbers are doubles: a seed above 2^53
                // would come back corrupted, silently breaking
                // the round-trip guarantee. Refuse instead.
                requireConfig(
                    spec.seed <=
                        (std::uint64_t{1} << 53),
                    "monte_carlo seed " +
                        std::to_string(spec.seed) +
                        " exceeds 2^53 and cannot round-trip "
                        "through JSON");
                doc.set("trials", spec.trials);
                doc.set("seed",
                        static_cast<double>(spec.seed));
                doc.set("threads", spec.threads);
                if (!(spec.bands == UncertaintyBands()))
                    doc.set("bands",
                            uncertaintyBandsToJson(spec.bands));
            } else if constexpr (std::is_same_v<
                                     Spec, SensitivitySpec>) {
                doc.set("metric", toString(spec.metric));
                doc.set("delta", spec.delta);
            } else if constexpr (std::is_same_v<Spec,
                                                CostSpec>) {
                if (!(spec.params == CostParams()))
                    doc.set("params",
                            costParamsToJson(spec.params));
            }
        },
        request.spec);
    return doc;
}

AnalysisRequest
requestFromJson(const json::Value &doc,
                const std::string &context)
{
    requireConfig(doc.isObject(),
                  context + ": request must be an object");

    AnalysisRequest request;

    const bool has_scenario = doc.contains("scenario");
    const bool has_dir = doc.contains("design_dir");
    requireConfig(has_scenario != has_dir,
                  context + ": set exactly one of scenario / "
                            "design_dir");
    request.scenario =
        has_scenario
            ? ScenarioRef::scenario(
                  doc.at("scenario").asString())
            : ScenarioRef::designDirectory(
                  doc.at("design_dir").asString());

    const AnalysisKind kind = analysisKindFromString(
        doc.stringOr("analysis", "estimate"));
    switch (kind) {
      case AnalysisKind::Estimate: {
        rejectUnknownKeys(
            doc, {"scenario", "design_dir", "analysis"},
            context);
        request.spec = EstimateSpec{};
        break;
      }
      case AnalysisKind::Sweep: {
        rejectUnknownKeys(doc,
                          {"scenario", "design_dir", "analysis",
                           "nodes_nm", "nodes_per_chiplet"},
                          context);
        SweepSpec spec;
        if (doc.contains("nodes_nm"))
            spec.nodesNm =
                nodesFromJson(doc.at("nodes_nm"), context);
        if (doc.contains("nodes_per_chiplet"))
            for (const auto &nodes :
                 doc.at("nodes_per_chiplet").asArray())
                spec.nodesPerChiplet.push_back(
                    nodesFromJson(nodes, context));
        requireConfig(spec.nodesNm.empty() !=
                          spec.nodesPerChiplet.empty(),
                      context +
                          ": sweep needs exactly one of "
                          "nodes_nm / nodes_per_chiplet");
        request.spec = std::move(spec);
        break;
      }
      case AnalysisKind::MonteCarlo: {
        rejectUnknownKeys(doc,
                          {"scenario", "design_dir", "analysis",
                           "trials", "seed", "threads", "bands"},
                          context);
        MonteCarloSpec spec;
        // asInteger rejects non-integral numbers (10.7 must not
        // silently truncate to 10 trials); the range checks run
        // on the int64 before narrowing, so out-of-int values
        // are rejected rather than wrapped.
        if (doc.contains("trials")) {
            const std::int64_t trials =
                doc.at("trials").asInteger();
            requireConfig(trials >= 2 &&
                              trials <= kMaxTrials,
                          context + ": trials must be in [2, " +
                              std::to_string(kMaxTrials) + "]");
            spec.trials = static_cast<int>(trials);
        }
        requireConfig(spec.trials >= 2,
                      context + ": trials must be >= 2");
        if (doc.contains("seed")) {
            const std::int64_t seed =
                doc.at("seed").asInteger();
            requireConfig(seed >= 0,
                          context +
                              ": seed must be non-negative");
            spec.seed = static_cast<std::uint64_t>(seed);
        }
        if (doc.contains("threads")) {
            const std::int64_t threads =
                doc.at("threads").asInteger();
            requireConfig(threads >= 1 &&
                              threads <= kMaxThreads,
                          context + ": threads must be in [1, " +
                              std::to_string(kMaxThreads) + "]");
            spec.threads = static_cast<int>(threads);
        }
        requireConfig(spec.threads >= 1,
                      context + ": threads must be >= 1");
        if (doc.contains("bands"))
            spec.bands = uncertaintyBandsFromJson(
                doc.at("bands"), context + ": bands");
        request.spec = spec;
        break;
      }
      case AnalysisKind::Sensitivity: {
        rejectUnknownKeys(doc,
                          {"scenario", "design_dir", "analysis",
                           "metric", "delta"},
                          context);
        SensitivitySpec spec;
        spec.metric = carbonMetricFromString(
            doc.stringOr("metric", "embodied"));
        spec.delta = doc.numberOr("delta", spec.delta);
        requireConfig(spec.delta > 0.0 && spec.delta < 1.0,
                      context +
                          ": delta must be in (0, 1)");
        request.spec = spec;
        break;
      }
      case AnalysisKind::Cost: {
        rejectUnknownKeys(
            doc,
            {"scenario", "design_dir", "analysis", "params"},
            context);
        CostSpec spec;
        if (doc.contains("params"))
            spec.params = costParamsFromJson(
                doc.at("params"), context + ": params");
        request.spec = spec;
        break;
      }
    }
    return request;
}

std::vector<AnalysisRequest>
requestsFromJson(const json::Value &doc,
                 const std::string &context)
{
    const json::Value *list = &doc;
    if (doc.isObject()) {
        requireConfig(doc.contains("requests"),
                      context + ": batch object needs a "
                                "\"requests\" array");
        list = &doc.at("requests");
    }

    std::vector<AnalysisRequest> requests;
    std::size_t index = 0;
    for (const auto &entry : list->asArray()) {
        requests.push_back(requestFromJson(
            entry,
            context + " #" + std::to_string(index)));
        ++index;
    }
    requireConfig(!requests.empty(),
                  context + ": batch has no requests");
    return requests;
}

json::Value
requestsToJson(const std::vector<AnalysisRequest> &requests)
{
    json::Value arr = json::Value::makeArray();
    for (const auto &request : requests)
        arr.append(requestToJson(request));
    return arr;
}

std::string
canonicalRequestText(const AnalysisRequest &request)
{
    AnalysisRequest normalized = request;
    // Scheduling-only knob: trial batching cannot change a
    // Monte-Carlo result (equal seeds are bit-identical at any
    // thread count), so requests differing only in it must land
    // on the same cache entry.
    if (auto *mc = std::get_if<MonteCarloSpec>(&normalized.spec))
        mc->threads = 1;
    // requestToJson emits members in one fixed order, numbers in
    // one fixed format, and omits defaulted optionals, so its
    // compact dump is already canonical.
    return requestToJson(normalized).dump(false);
}

BatchFile
loadBatchFile(const std::string &path)
{
    const json::Value doc = json::parseFile(path);

    BatchFile batch;
    if (doc.isObject()) {
        rejectUnknownKeys(doc, {"scenarios", "requests"}, path);
        if (doc.contains("scenarios")) {
            // Catalog paths resolve relative to the batch file so
            // a requests/ directory ships as a self-contained
            // unit.
            const std::filesystem::path catalog(
                doc.at("scenarios").asString());
            batch.scenarioCatalog =
                catalog.is_absolute()
                    ? catalog.string()
                    : (std::filesystem::path(path)
                           .parent_path() /
                       catalog)
                          .string();
        }
    }
    batch.requests = requestsFromJson(doc, path);
    return batch;
}

} // namespace ecochip
