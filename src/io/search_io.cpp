#include "io/search_io.h"

#include <cmath>
#include <filesystem>

#include "io/config_loader.h"
#include "io/request_io.h"
#include "support/error.h"

namespace ecochip {

namespace {

/** Sanity caps, in the spirit of request_io's trial/thread caps:
 *  fat-fingered values are rejected, not allowed to spawn absurd
 *  work. */
constexpr std::int64_t kMaxRestarts = 4096;
constexpr std::int64_t kMaxSteps = 10'000'000;
constexpr std::int64_t kMaxBatchSize = 65'536;

StrategySpec
strategyFromJson(const json::Value &doc,
                 const std::string &context)
{
    rejectUnknownKeys(doc,
                      {"kind", "seed", "restarts", "steps",
                       "initial_temp", "cooling"},
                      context);

    StrategySpec spec;
    spec.kind = strategyKindFromString(
        doc.stringOr("kind", "exhaustive"), context);
    if (doc.contains("seed")) {
        const std::int64_t seed = doc.at("seed").asInteger();
        requireConfig(seed >= 0,
                      context + ": seed must be non-negative");
        spec.seed = static_cast<std::uint64_t>(seed);
    }
    if (doc.contains("restarts")) {
        const std::int64_t restarts =
            doc.at("restarts").asInteger();
        requireConfig(restarts >= 1 && restarts <= kMaxRestarts,
                      context + ": restarts must be in [1, " +
                          std::to_string(kMaxRestarts) + "]");
        spec.restarts = static_cast<int>(restarts);
    }
    if (doc.contains("steps")) {
        const std::int64_t steps = doc.at("steps").asInteger();
        requireConfig(steps >= 0 && steps <= kMaxSteps,
                      context + ": steps must be in [0, " +
                          std::to_string(kMaxSteps) + "]");
        spec.steps = static_cast<int>(steps);
    }
    spec.initialTemp =
        doc.numberOr("initial_temp", spec.initialTemp);
    requireConfig(spec.initialTemp >= 0.0,
                  context + ": initial_temp must be >= 0");
    spec.cooling = doc.numberOr("cooling", spec.cooling);
    requireConfig(spec.cooling > 0.0 && spec.cooling <= 1.0,
                  context + ": cooling must be in (0, 1]");
    return spec;
}

json::Value
strategyToJson(const StrategySpec &spec)
{
    // Every knob always, in one fixed order: the round trip is
    // lossless whichever strategy is selected.
    json::Value doc = json::Value::makeObject();
    doc.set("kind", toString(spec.kind));
    doc.set("seed", static_cast<double>(spec.seed));
    doc.set("restarts", spec.restarts);
    doc.set("steps", spec.steps);
    doc.set("initial_temp", spec.initialTemp);
    doc.set("cooling", spec.cooling);
    return doc;
}

ObjectiveSpec
objectiveFromJson(const json::Value &doc,
                  const std::string &context)
{
    rejectUnknownKeys(doc, {"metric", "goal", "weight"},
                      context);
    ObjectiveSpec spec;
    spec.metric = searchMetricFromString(
        doc.at("metric").asString(), context);
    const std::string goal = doc.stringOr("goal", "min");
    requireConfig(goal == "min" || goal == "max",
                  context +
                      ": goal must be \"min\" or \"max\"");
    spec.maximize = goal == "max";
    spec.weight = doc.numberOr("weight", spec.weight);
    requireConfig(spec.weight > 0.0,
                  context + ": weight must be positive");
    return spec;
}

ConstraintSpec
constraintFromJson(const json::Value &doc,
                   const std::string &context)
{
    rejectUnknownKeys(doc, {"metric", "min", "max"}, context);
    ConstraintSpec spec;
    spec.metric = searchMetricFromString(
        doc.at("metric").asString(), context);
    if (doc.contains("min"))
        spec.min = doc.at("min").asNumber();
    if (doc.contains("max"))
        spec.max = doc.at("max").asNumber();
    requireConfig(spec.min || spec.max,
                  context +
                      ": constraint needs a min or a max");
    requireConfig(!spec.min || !spec.max ||
                      *spec.min <= *spec.max,
                  context + ": constraint min exceeds max");
    return spec;
}

/** Metric values of one point as an ordered JSON object. */
json::Value
metricsToJson(const EvaluatedPoint &point,
              const std::vector<SearchMetric> &tracked)
{
    json::Value doc = json::Value::makeObject();
    for (std::size_t i = 0; i < tracked.size(); ++i)
        doc.set(toString(tracked[i]), point.metrics[i]);
    return doc;
}

} // namespace

json::Value
searchSpecToJson(const SearchSpec &spec)
{
    json::Value doc = json::Value::makeObject();
    doc.set("generator", spec.generator);
    if (spec.catalog)
        doc.set("scenarios", *spec.catalog);
    doc.set("strategy", strategyToJson(spec.strategy));

    json::Value objectives = json::Value::makeArray();
    for (const auto &objective : spec.objectives) {
        json::Value entry = json::Value::makeObject();
        entry.set("metric", toString(objective.metric));
        entry.set("goal",
                  objective.maximize ? "max" : "min");
        entry.set("weight", objective.weight);
        objectives.append(std::move(entry));
    }
    doc.set("objectives", std::move(objectives));

    if (!spec.constraints.empty()) {
        json::Value constraints = json::Value::makeArray();
        for (const auto &constraint : spec.constraints) {
            json::Value entry = json::Value::makeObject();
            entry.set("metric", toString(constraint.metric));
            if (constraint.min)
                entry.set("min", *constraint.min);
            if (constraint.max)
                entry.set("max", *constraint.max);
            constraints.append(std::move(entry));
        }
        doc.set("constraints", std::move(constraints));
    }

    doc.set("batch_size", spec.batchSize);
    if (spec.costParams)
        doc.set("cost_params",
                costParamsToJson(*spec.costParams));
    return doc;
}

SearchSpec
searchSpecFromJson(const json::Value &doc,
                   const std::string &context)
{
    rejectUnknownKeys(doc,
                      {"generator", "scenarios", "strategy",
                       "objectives", "constraints",
                       "batch_size", "cost_params"},
                      context);

    SearchSpec spec;
    spec.generator = doc.at("generator").asString();
    requireConfig(!spec.generator.empty(),
                  context + ": generator must not be empty");
    if (doc.contains("scenarios"))
        spec.catalog = doc.at("scenarios").asString();
    if (doc.contains("strategy"))
        spec.strategy = strategyFromJson(
            doc.at("strategy"), context + ": strategy");

    const auto &objectives = doc.at("objectives").asArray();
    requireConfig(!objectives.empty(),
                  context +
                      ": needs at least one objective");
    std::size_t index = 0;
    for (const auto &entry : objectives) {
        spec.objectives.push_back(objectiveFromJson(
            entry, context + ": objective #" +
                       std::to_string(index)));
        ++index;
    }

    if (doc.contains("constraints")) {
        index = 0;
        for (const auto &entry :
             doc.at("constraints").asArray()) {
            spec.constraints.push_back(constraintFromJson(
                entry, context + ": constraint #" +
                           std::to_string(index)));
            ++index;
        }
    }

    if (doc.contains("batch_size")) {
        const std::int64_t batch =
            doc.at("batch_size").asInteger();
        requireConfig(batch >= 1 && batch <= kMaxBatchSize,
                      context +
                          ": batch_size must be in [1, " +
                          std::to_string(kMaxBatchSize) + "]");
        spec.batchSize = static_cast<int>(batch);
    }

    if (doc.contains("cost_params"))
        spec.costParams = costParamsFromJson(
            doc.at("cost_params"),
            context + ": cost_params");

    return spec;
}

SearchSpec
loadSearchSpecFile(const std::string &path)
{
    SearchSpec spec =
        searchSpecFromJson(json::parseFile(path), path);
    if (spec.catalog) {
        // Catalog paths resolve relative to the spec file, so a
        // searches/ directory ships as a self-contained unit
        // (same rule as batch files).
        const std::filesystem::path catalog(*spec.catalog);
        if (!catalog.is_absolute())
            spec.catalog = (std::filesystem::path(path)
                                .parent_path() /
                            catalog)
                               .string();
    }
    return spec;
}

json::Value
searchResultToJson(const SearchResult &result)
{
    const auto tracked = trackedMetrics(result.spec);

    json::Value doc = json::Value::makeObject();
    doc.set("generator", result.spec.generator);
    doc.set("strategy", toString(result.spec.strategy.kind));
    doc.set("seed",
            static_cast<double>(result.spec.strategy.seed));
    doc.set("space_size",
            static_cast<double>(result.spaceSize));
    doc.set("evaluations",
            static_cast<double>(result.evaluated.size()));

    if (result.best) {
        const EvaluatedPoint &best =
            result.evaluated[*result.best];
        json::Value entry = json::Value::makeObject();
        entry.set("scenario", best.name);
        entry.set("score", best.score);
        entry.set("metrics", metricsToJson(best, tracked));
        doc.set("best", std::move(entry));
    } else {
        doc.set("best", json::Value());
    }

    json::Value frontier = json::Value::makeArray();
    for (const std::size_t slot : result.frontier) {
        const EvaluatedPoint &point = result.evaluated[slot];
        json::Value entry = json::Value::makeObject();
        entry.set("scenario", point.name);
        entry.set("metrics", metricsToJson(point, tracked));
        frontier.append(std::move(entry));
    }
    doc.set("frontier", std::move(frontier));

    json::Value points = json::Value::makeArray();
    for (const EvaluatedPoint &point : result.evaluated) {
        json::Value entry = json::Value::makeObject();
        entry.set("scenario", point.name);
        entry.set("ok", point.ok);
        entry.set("feasible", point.feasible);
        // +inf (infeasible/failed) has no JSON spelling; the
        // feasible flag already says why the score is absent.
        if (std::isfinite(point.score))
            entry.set("score", point.score);
        if (!point.ok)
            entry.set("error", point.error);
        else
            entry.set("metrics",
                      metricsToJson(point, tracked));
        points.append(std::move(entry));
    }
    doc.set("points", std::move(points));
    return doc;
}

} // namespace ecochip
