/**
 * @file
 * JSON configuration loading and report serialization.
 *
 * Mirrors the reference artifact's input layout: a design directory
 * holds `architecture.json` (chiplets + packaging choice),
 * `packageC.json` (packaging knobs), `designC.json` (design-CFP
 * knobs), and `operationalC.json` (operating spec). Any file may be
 * omitted, in which case the paper defaults apply.
 */

#ifndef ECOCHIP_IO_CONFIG_LOADER_H
#define ECOCHIP_IO_CONFIG_LOADER_H

#include <initializer_list>
#include <string>

#include "core/ecochip.h"
#include "json/json.h"
#include "json/stream_writer.h"

namespace ecochip {

/**
 * Reject members of @p doc outside a schema's @p known key set
 * with a ConfigError naming @p context and the offending key -- a
 * typo'd field must fail loudly instead of silently loading as a
 * default. Non-object values pass (their type errors surface at
 * the checked accessors).
 */
void rejectUnknownKeys(const json::Value &doc,
                       std::initializer_list<const char *> known,
                       const std::string &context);

/**
 * Parse a SystemSpec from an `architecture.json` document.
 *
 * Schema:
 * @code{.json}
 * {
 *   "name": "GA102-3c",
 *   "monolithic": false,
 *   "chiplets": [
 *     {"name": "digital", "type": "logic", "node_nm": 7,
 *      "area_mm2": 500.0},
 *     {"name": "memory", "type": "memory", "node_nm": 10,
 *      "transistors_mtr": 6800.0, "reused": true}
 *   ]
 * }
 * @endcode
 *
 * Each chiplet provides either `area_mm2` (interpreted at its
 * `node_nm` via the area model) or `transistors_mtr` directly.
 * Optional keys: `reused` (design CFP amortized elsewhere) and
 * `stack_group` (vertical tower membership for mixed 2.5D/3D).
 *
 * Unknown keys are rejected (ConfigError naming the offending key
 * and @p context), so a typo'd field can never silently load as a
 * default. The same holds for every loader below.
 *
 * @param doc Parsed JSON document.
 * @param tech Technology database for area inversion.
 * @param context Source label (file path) for error messages.
 */
SystemSpec systemFromJson(const json::Value &doc,
                          const TechDb &tech,
                          const std::string &context =
                              "architecture.json");

/** Serialize a SystemSpec back to the architecture schema. */
json::Value systemToJson(const SystemSpec &system);

/**
 * Parse PackageParams from a `packageC.json` document; missing
 * keys keep their defaults, unknown keys are rejected.
 */
PackageParams packageParamsFromJson(const json::Value &doc,
                                    const std::string &context =
                                        "packageC.json");

/** Serialize PackageParams to the packageC schema. */
json::Value packageParamsToJson(const PackageParams &params);

/** Parse DesignParams from a `designC.json` document. */
DesignParams designParamsFromJson(const json::Value &doc,
                                  const std::string &context =
                                      "designC.json");

/** Serialize DesignParams. */
json::Value designParamsToJson(const DesignParams &params);

/** Parse an OperatingSpec from an `operationalC.json` document. */
OperatingSpec operatingSpecFromJson(const json::Value &doc,
                                    const std::string &context =
                                        "operationalC.json");

/** Serialize an OperatingSpec. */
json::Value operatingSpecToJson(const OperatingSpec &spec);

/** A fully loaded design directory. */
struct DesignBundle
{
    SystemSpec system;
    EcoChipConfig config;
};

/**
 * Assemble a DesignBundle from already-parsed documents -- the
 * shared core of `loadDesignDirectory` and JSON scenario catalogs
 * (`ScenarioRegistry::loadFile`). The architecture document is
 * required and may carry the `packaging` / `yield_model` config
 * shortcuts; the other documents are optional (null pointers keep
 * the paper defaults).
 *
 * @param arch Architecture document.
 * @param package Optional packageC document.
 * @param design Optional designC document.
 * @param operational Optional operationalC document.
 * @param tech Technology database.
 * @param context Source label for error messages.
 * @param package_context Label for @p package errors; empty
 *        derives "<context>: package". Likewise the next two.
 */
DesignBundle designBundleFromJson(
    const json::Value &arch, const json::Value *package,
    const json::Value *design, const json::Value *operational,
    const TechDb &tech, const std::string &context,
    const std::string &package_context = "",
    const std::string &design_context = "",
    const std::string &operational_context = "");

/**
 * Load a design directory (the `--design_dir` workflow of the
 * reference tool): reads `architecture.json` (required) and the
 * optional `packageC.json`, `designC.json`, `operationalC.json`.
 *
 * @param dir Directory path.
 * @param tech Technology database.
 */
DesignBundle loadDesignDirectory(const std::string &dir,
                                 const TechDb &tech);

/**
 * Emit a CarbonReport through the streaming writer -- the primary
 * report serializer; `reportToJson` wraps it, so the DOM and
 * streaming paths cannot drift.
 */
void appendReport(json::StreamWriter &writer,
                  const CarbonReport &report);

/** Serialize a CarbonReport (for tool output / regression files). */
json::Value reportToJson(const CarbonReport &report);

/**
 * Load a node-list file (the artifact's `node_list.txt`): one node
 * per line in nm, with optional "nm" suffix; blank lines and
 * '#'-comments ignored.
 *
 * @param path Path to the node list.
 * @return Nodes in file order.
 */
std::vector<double> loadNodeList(const std::string &path);

} // namespace ecochip

#endif // ECOCHIP_IO_CONFIG_LOADER_H
