/**
 * @file
 * JSON configuration loading and report serialization.
 *
 * Mirrors the reference artifact's input layout: a design directory
 * holds `architecture.json` (chiplets + packaging choice),
 * `packageC.json` (packaging knobs), `designC.json` (design-CFP
 * knobs), and `operationalC.json` (operating spec). Any file may be
 * omitted, in which case the paper defaults apply.
 */

#ifndef ECOCHIP_IO_CONFIG_LOADER_H
#define ECOCHIP_IO_CONFIG_LOADER_H

#include <string>

#include "core/ecochip.h"
#include "json/json.h"

namespace ecochip {

/**
 * Parse a SystemSpec from an `architecture.json` document.
 *
 * Schema:
 * @code{.json}
 * {
 *   "name": "GA102-3c",
 *   "monolithic": false,
 *   "chiplets": [
 *     {"name": "digital", "type": "logic", "node_nm": 7,
 *      "area_mm2": 500.0},
 *     {"name": "memory", "type": "memory", "node_nm": 10,
 *      "transistors_mtr": 6800.0, "reused": true}
 *   ]
 * }
 * @endcode
 *
 * Each chiplet provides either `area_mm2` (interpreted at its
 * `node_nm` via the area model) or `transistors_mtr` directly.
 * Optional keys: `reused` (design CFP amortized elsewhere) and
 * `stack_group` (vertical tower membership for mixed 2.5D/3D).
 *
 * @param doc Parsed JSON document.
 * @param tech Technology database for area inversion.
 */
SystemSpec systemFromJson(const json::Value &doc,
                          const TechDb &tech);

/** Serialize a SystemSpec back to the architecture schema. */
json::Value systemToJson(const SystemSpec &system);

/**
 * Parse PackageParams from a `packageC.json` document; missing
 * keys keep their defaults.
 */
PackageParams packageParamsFromJson(const json::Value &doc);

/** Serialize PackageParams to the packageC schema. */
json::Value packageParamsToJson(const PackageParams &params);

/** Parse DesignParams from a `designC.json` document. */
DesignParams designParamsFromJson(const json::Value &doc);

/** Serialize DesignParams. */
json::Value designParamsToJson(const DesignParams &params);

/** Parse an OperatingSpec from an `operationalC.json` document. */
OperatingSpec operatingSpecFromJson(const json::Value &doc);

/** Serialize an OperatingSpec. */
json::Value operatingSpecToJson(const OperatingSpec &spec);

/** A fully loaded design directory. */
struct DesignBundle
{
    SystemSpec system;
    EcoChipConfig config;
};

/**
 * Load a design directory (the `--design_dir` workflow of the
 * reference tool): reads `architecture.json` (required) and the
 * optional `packageC.json`, `designC.json`, `operationalC.json`.
 *
 * @param dir Directory path.
 * @param tech Technology database.
 */
DesignBundle loadDesignDirectory(const std::string &dir,
                                 const TechDb &tech);

/** Serialize a CarbonReport (for tool output / regression files). */
json::Value reportToJson(const CarbonReport &report);

/**
 * Load a node-list file (the artifact's `node_list.txt`): one node
 * per line in nm, with optional "nm" suffix; blank lines and
 * '#'-comments ignored.
 *
 * @param path Path to the node list.
 * @return Nodes in file order.
 */
std::vector<double> loadNodeList(const std::string &path);

} // namespace ecochip

#endif // ECOCHIP_IO_CONFIG_LOADER_H
