/**
 * @file
 * JSON serialization of `BatchReport` and the NDJSON stream
 * format -- the wire formats of the batch engine's output side,
 * mirroring `io/request_io.h` on the input side.
 *
 * Two formats live here (field-by-field reference in
 * `docs/file_formats.md`):
 *
 *  - **BatchReport JSON** (`--batch --json`, `--shard_worker`
 *    reports, `--shard` merged output): one object
 *    `{"succeeded": N, "failed": M, "outcomes": [...]}` whose
 *    outcomes sit in request order. Shard workers write this
 *    format to disk and the shard merge step reassembles the
 *    per-shard documents into one report that is byte-identical
 *    to the single-process run.
 *
 *  - **NDJSON stream events** (`--batch --stream`): one compact
 *    JSON object per line, emitted in completion order as worker
 *    threads finish. Each line carries the outcome plus the
 *    request's original batch `index`, so consumers can reorder
 *    or join against the input file.
 */

#ifndef ECOCHIP_IO_BATCH_REPORT_IO_H
#define ECOCHIP_IO_BATCH_REPORT_IO_H

#include <cstddef>
#include <string>

#include "engine/analysis_engine.h"
#include "json/json.h"
#include "json/stream_writer.h"

namespace ecochip {

/**
 * Emit one outcome through the streaming writer -- the primary
 * outcome serializer (shard workers and the server stream every
 * completion through it, no DOM). `outcomeToJson` wraps it.
 */
void appendOutcome(json::StreamWriter &writer,
                   const RequestOutcome &outcome);

/**
 * Serialize one outcome:
 * `{"request": ..., "ok": bool, "result": ...}` on success,
 * `{"request": ..., "ok": false, "error": "..."}` on failure.
 */
json::Value outcomeToJson(const RequestOutcome &outcome);

/**
 * Emit one NDJSON stream event -- the outcome document with the
 * request's batch `index` prepended -- through the writer.
 */
void appendStreamEvent(json::StreamWriter &writer,
                       std::size_t index,
                       const RequestOutcome &outcome);

/**
 * The whole report as one document, compact or pretty -- exactly
 * the bytes of `batchReportToJson(report).dump(pretty)`, emitted
 * with no intermediate DOM.
 */
std::string batchReportText(const BatchReport &report,
                            bool pretty);

/**
 * Serialize a whole report:
 * `{"succeeded": N, "failed": M, "outcomes": [...]}` with the
 * outcomes in request order.
 */
json::Value batchReportToJson(const BatchReport &report);

/** Write `batchReportToJson` pretty-printed to @p path. */
void writeBatchReportFile(const BatchReport &report,
                          const std::string &path);

/**
 * One NDJSON stream event: the outcome document of
 * `outcomeToJson` with the request's batch `index` prepended.
 */
json::Value streamEventToJson(std::size_t index,
                              const RequestOutcome &outcome);

/**
 * The event as one compact NDJSON line (no trailing newline --
 * the stream writer owns the line discipline).
 */
std::string streamEventLine(std::size_t index,
                            const RequestOutcome &outcome);

} // namespace ecochip

#endif // ECOCHIP_IO_BATCH_REPORT_IO_H
