/**
 * @file
 * JSON serialization of declarative `AnalysisRequest`s -- the wire
 * format of the batch engine (`eco_chip --batch requests.json`).
 *
 * A request document names its scenario binding and analysis:
 * @code{.json}
 * {
 *   "scenario": "ga102",          // or "design_dir": "path"
 *   "analysis": "monte_carlo",
 *   "trials": 1000, "seed": 42, "threads": 4
 * }
 * @endcode
 *
 * A batch file is either a top-level array of requests or an
 * object `{"scenarios": "catalog.json", "requests": [...]}` whose
 * optional catalog (resolved relative to the batch file) is loaded
 * into the scenario registry first, so batches can name
 * user-defined workloads without recompilation.
 *
 * Unknown keys are rejected with the offending key named, exactly
 * like the design-directory loaders in `config_loader.h`.
 */

#ifndef ECOCHIP_IO_REQUEST_IO_H
#define ECOCHIP_IO_REQUEST_IO_H

#include <optional>
#include <string>
#include <vector>

#include "json/json.h"
#include "json/stream_writer.h"
#include "session/analysis_request.h"

namespace ecochip {

/**
 * Emit one request document through the streaming writer -- the
 * primary request serializer; `requestToJson` is a DOM wrapper
 * over it, so the two cannot drift.
 */
void appendRequest(json::StreamWriter &writer,
                   const AnalysisRequest &request);

/** Serialize one request to its JSON document. */
json::Value requestToJson(const AnalysisRequest &request);

/**
 * Parse one request document.
 *
 * @param doc Parsed JSON object.
 * @param context Source label for error messages.
 * @throws ConfigError on unknown keys, missing binding, or
 *         malformed spec arguments.
 */
AnalysisRequest requestFromJson(const json::Value &doc,
                                const std::string &context =
                                    "request");

/**
 * Parse a request list: a top-level array, or the `requests`
 * member of a batch object.
 */
std::vector<AnalysisRequest>
requestsFromJson(const json::Value &doc,
                 const std::string &context = "requests");

/** Serialize a request list to a top-level array. */
json::Value requestsToJson(
    const std::vector<AnalysisRequest> &requests);

/**
 * Canonical text of one request -- the single serialization that
 * request hashing (the analysis server's content-addressed result
 * cache, `server/result_cache.h`) routes through.
 *
 * Two requests that parse to the same `AnalysisRequest` always
 * canonicalize to the same bytes, however their source JSON was
 * spelled: member order is fixed by construction, numbers print
 * through one fixed format, defaulted optional members are
 * omitted, and scheduling-only knobs that cannot change the
 * result (`MonteCarloSpec::threads` -- results are bit-identical
 * at any thread count) are normalized away. Locked by the
 * round-trip tests in `tests/test_server.cpp`.
 */
std::string canonicalRequestText(const AnalysisRequest &request);

/** A parsed batch file. */
struct BatchFile
{
    /** Requests in file order. */
    std::vector<AnalysisRequest> requests;

    /**
     * Path of the scenario catalog the batch names (already
     * resolved relative to the batch file), when one is given.
     */
    std::optional<std::string> scenarioCatalog;
};

/**
 * Load a batch file (`--batch` workflow).
 *
 * @param path Path to the requests JSON.
 */
BatchFile loadBatchFile(const std::string &path);

/** Serialize CostParams (the `cost` spec's `params` member). */
json::Value costParamsToJson(const CostParams &params);

/** Parse CostParams; missing keys keep their defaults. */
CostParams costParamsFromJson(const json::Value &doc,
                              const std::string &context =
                                  "cost params");

/** Serialize Monte-Carlo sampling bands. */
json::Value
uncertaintyBandsToJson(const UncertaintyBands &bands);

/** Parse Monte-Carlo sampling bands. */
UncertaintyBands
uncertaintyBandsFromJson(const json::Value &doc,
                         const std::string &context = "bands");

} // namespace ecochip

#endif // ECOCHIP_IO_REQUEST_IO_H
