#include "io/config_loader.h"

#include <filesystem>
#include <fstream>
#include <optional>

#include "support/error.h"

namespace ecochip {

void
rejectUnknownKeys(const json::Value &doc,
                  std::initializer_list<const char *> known,
                  const std::string &context)
{
    if (!doc.isObject())
        return;
    for (const auto &[key, value] : doc.members()) {
        bool recognized = false;
        for (const char *candidate : known)
            recognized |= key == candidate;
        if (!recognized) {
            std::string expected;
            for (const char *candidate : known) {
                if (!expected.empty())
                    expected += ", ";
                expected += candidate;
            }
            throw ConfigError(context + ": unknown key \"" + key +
                              "\" (expected one of: " + expected +
                              ")");
        }
    }
}

SystemSpec
systemFromJson(const json::Value &doc, const TechDb &tech,
               const std::string &context)
{
    // `packaging` / `yield_model` are config shortcuts consumed by
    // designBundleFromJson on the same document.
    rejectUnknownKeys(doc,
                      {"name", "monolithic", "chiplets",
                       "packaging", "yield_model"},
                      context);

    SystemSpec system;
    system.name = doc.stringOr("name", "unnamed");
    system.singleDie = doc.booleanOr("monolithic", false);

    const auto &chiplets = doc.at("chiplets").asArray();
    requireConfig(!chiplets.empty(),
                  "architecture has no chiplets");
    for (const auto &entry : chiplets) {
        rejectUnknownKeys(entry,
                          {"name", "type", "node_nm", "area_mm2",
                           "transistors_mtr", "reused",
                           "stack_group"},
                          context + ": chiplet");
        Chiplet chiplet;
        chiplet.name = entry.at("name").asString();
        chiplet.type =
            designTypeFromString(entry.stringOr("type", "logic"));
        chiplet.nodeNm = entry.at("node_nm").asNumber();
        requireConfig(chiplet.nodeNm > 0.0,
                      "chiplet node must be positive");
        chiplet.reused = entry.booleanOr("reused", false);
        chiplet.stackGroup = entry.stringOr("stack_group", "");

        const bool has_area = entry.contains("area_mm2");
        const bool has_transistors =
            entry.contains("transistors_mtr");
        requireConfig(has_area != has_transistors,
                      "chiplet \"" + chiplet.name +
                          "\" needs exactly one of area_mm2 / "
                          "transistors_mtr");
        if (has_area) {
            chiplet.transistorsMtr = tech.transistorsMtr(
                chiplet.type, chiplet.nodeNm,
                entry.at("area_mm2").asNumber());
        } else {
            chiplet.transistorsMtr =
                entry.at("transistors_mtr").asNumber();
            requireConfig(chiplet.transistorsMtr > 0.0,
                          "transistor count must be positive");
        }
        system.chiplets.push_back(std::move(chiplet));
    }
    return system;
}

json::Value
systemToJson(const SystemSpec &system)
{
    json::Value doc = json::Value::makeObject();
    doc.set("name", system.name);
    doc.set("monolithic", system.singleDie);
    json::Value chiplets = json::Value::makeArray();
    for (const auto &chiplet : system.chiplets) {
        json::Value entry = json::Value::makeObject();
        entry.set("name", chiplet.name);
        entry.set("type", toString(chiplet.type));
        entry.set("node_nm", chiplet.nodeNm);
        entry.set("transistors_mtr", chiplet.transistorsMtr);
        entry.set("reused", chiplet.reused);
        if (!chiplet.stackGroup.empty())
            entry.set("stack_group", chiplet.stackGroup);
        chiplets.append(std::move(entry));
    }
    doc.set("chiplets", std::move(chiplets));
    return doc;
}

PackageParams
packageParamsFromJson(const json::Value &doc,
                      const std::string &context)
{
    rejectUnknownKeys(
        doc,
        {"arch", "intensity_g_per_kwh", "spacing_mm",
         "rdl_layers", "rdl_node_nm", "substrate_base_layers",
         "bridge_layers", "bridge_node_nm", "bridge_range_mm",
         "bridge_area_mm2", "bridge_embed_yield",
         "interposer_node_nm", "interposer_beol_layers",
         "repeater_area_fraction", "bond_type", "tsv_pitch_um",
         "microbump_pitch_um", "hybrid_bond_pitch_um",
         "tsv_fail_probability", "microbump_fail_probability",
         "hybrid_bond_fail_probability", "tier_assembly_yield",
         "bond_process_node_nm", "router", "noc_flit_rate_hz"},
        context);

    PackageParams params;
    if (doc.contains("arch"))
        params.arch =
            packagingArchFromString(doc.at("arch").asString());
    params.intensityGPerKwh =
        doc.numberOr("intensity_g_per_kwh", params.intensityGPerKwh);
    params.spacingMm = doc.numberOr("spacing_mm", params.spacingMm);
    params.rdlLayers = static_cast<int>(
        doc.numberOr("rdl_layers", params.rdlLayers));
    params.rdlNodeNm = doc.numberOr("rdl_node_nm", params.rdlNodeNm);
    params.substrateBaseLayers = static_cast<int>(doc.numberOr(
        "substrate_base_layers", params.substrateBaseLayers));
    params.bridgeLayers = static_cast<int>(
        doc.numberOr("bridge_layers", params.bridgeLayers));
    params.bridgeNodeNm =
        doc.numberOr("bridge_node_nm", params.bridgeNodeNm);
    params.bridgeRangeMm =
        doc.numberOr("bridge_range_mm", params.bridgeRangeMm);
    params.bridgeAreaMm2 =
        doc.numberOr("bridge_area_mm2", params.bridgeAreaMm2);
    params.bridgeEmbedYield =
        doc.numberOr("bridge_embed_yield", params.bridgeEmbedYield);
    params.interposerNodeNm =
        doc.numberOr("interposer_node_nm", params.interposerNodeNm);
    params.interposerBeolLayers = static_cast<int>(doc.numberOr(
        "interposer_beol_layers", params.interposerBeolLayers));
    params.repeaterAreaFraction = doc.numberOr(
        "repeater_area_fraction", params.repeaterAreaFraction);
    if (doc.contains("bond_type"))
        params.bondType =
            bondTypeFromString(doc.at("bond_type").asString());
    params.tsvPitchUm =
        doc.numberOr("tsv_pitch_um", params.tsvPitchUm);
    params.microbumpPitchUm =
        doc.numberOr("microbump_pitch_um", params.microbumpPitchUm);
    params.hybridBondPitchUm = doc.numberOr(
        "hybrid_bond_pitch_um", params.hybridBondPitchUm);
    params.tsvFailProbability = doc.numberOr(
        "tsv_fail_probability", params.tsvFailProbability);
    params.microbumpFailProbability =
        doc.numberOr("microbump_fail_probability",
                     params.microbumpFailProbability);
    params.hybridBondFailProbability =
        doc.numberOr("hybrid_bond_fail_probability",
                     params.hybridBondFailProbability);
    params.tierAssemblyYield = doc.numberOr(
        "tier_assembly_yield", params.tierAssemblyYield);
    params.bondProcessNodeNm = doc.numberOr(
        "bond_process_node_nm", params.bondProcessNodeNm);
    if (doc.contains("router")) {
        const auto &router = doc.at("router");
        rejectUnknownKeys(router,
                          {"ports", "flit_width_bits",
                           "buffers_per_vc", "virtual_channels"},
                          context + ": router");
        params.router.ports = static_cast<int>(
            router.numberOr("ports", params.router.ports));
        params.router.flitWidthBits =
            static_cast<int>(router.numberOr(
                "flit_width_bits", params.router.flitWidthBits));
        params.router.buffersPerVc =
            static_cast<int>(router.numberOr(
                "buffers_per_vc", params.router.buffersPerVc));
        params.router.virtualChannels =
            static_cast<int>(router.numberOr(
                "virtual_channels",
                params.router.virtualChannels));
    }
    params.nocFlitRateHz =
        doc.numberOr("noc_flit_rate_hz", params.nocFlitRateHz);
    return params;
}

json::Value
packageParamsToJson(const PackageParams &params)
{
    json::Value doc = json::Value::makeObject();
    doc.set("arch", toString(params.arch));
    doc.set("intensity_g_per_kwh", params.intensityGPerKwh);
    doc.set("spacing_mm", params.spacingMm);
    doc.set("rdl_layers", params.rdlLayers);
    doc.set("rdl_node_nm", params.rdlNodeNm);
    doc.set("substrate_base_layers", params.substrateBaseLayers);
    doc.set("bridge_layers", params.bridgeLayers);
    doc.set("bridge_node_nm", params.bridgeNodeNm);
    doc.set("bridge_range_mm", params.bridgeRangeMm);
    doc.set("bridge_area_mm2", params.bridgeAreaMm2);
    doc.set("bridge_embed_yield", params.bridgeEmbedYield);
    doc.set("interposer_node_nm", params.interposerNodeNm);
    doc.set("interposer_beol_layers", params.interposerBeolLayers);
    doc.set("repeater_area_fraction", params.repeaterAreaFraction);
    doc.set("bond_type", toString(params.bondType));
    doc.set("tsv_pitch_um", params.tsvPitchUm);
    doc.set("microbump_pitch_um", params.microbumpPitchUm);
    doc.set("hybrid_bond_pitch_um", params.hybridBondPitchUm);
    doc.set("tsv_fail_probability", params.tsvFailProbability);
    doc.set("microbump_fail_probability",
            params.microbumpFailProbability);
    doc.set("hybrid_bond_fail_probability",
            params.hybridBondFailProbability);
    doc.set("tier_assembly_yield", params.tierAssemblyYield);
    doc.set("bond_process_node_nm", params.bondProcessNodeNm);
    json::Value router = json::Value::makeObject();
    router.set("ports", params.router.ports);
    router.set("flit_width_bits", params.router.flitWidthBits);
    router.set("buffers_per_vc", params.router.buffersPerVc);
    router.set("virtual_channels", params.router.virtualChannels);
    doc.set("router", std::move(router));
    doc.set("noc_flit_rate_hz", params.nocFlitRateHz);
    return doc;
}

DesignParams
designParamsFromJson(const json::Value &doc,
                     const std::string &context)
{
    rejectUnknownKeys(doc,
                      {"pdes_w", "design_iterations",
                       "intensity_g_per_kwh",
                       "spr_hours_per_mgate", "analyze_fraction",
                       "verif_multiple", "gates_per_transistor",
                       "chiplet_volume", "system_volume"},
                      context);

    DesignParams params;
    params.pdesW = doc.numberOr("pdes_w", params.pdesW);
    params.designIterations = static_cast<int>(doc.numberOr(
        "design_iterations", params.designIterations));
    params.intensityGPerKwh =
        doc.numberOr("intensity_g_per_kwh", params.intensityGPerKwh);
    params.sprHoursPerMgate = doc.numberOr(
        "spr_hours_per_mgate", params.sprHoursPerMgate);
    params.analyzeFraction =
        doc.numberOr("analyze_fraction", params.analyzeFraction);
    params.verifMultiple =
        doc.numberOr("verif_multiple", params.verifMultiple);
    params.gatesPerTransistor = doc.numberOr(
        "gates_per_transistor", params.gatesPerTransistor);
    params.chipletVolume =
        doc.numberOr("chiplet_volume", params.chipletVolume);
    params.systemVolume =
        doc.numberOr("system_volume", params.systemVolume);
    return params;
}

json::Value
designParamsToJson(const DesignParams &params)
{
    json::Value doc = json::Value::makeObject();
    doc.set("pdes_w", params.pdesW);
    doc.set("design_iterations", params.designIterations);
    doc.set("intensity_g_per_kwh", params.intensityGPerKwh);
    doc.set("spr_hours_per_mgate", params.sprHoursPerMgate);
    doc.set("analyze_fraction", params.analyzeFraction);
    doc.set("verif_multiple", params.verifMultiple);
    doc.set("gates_per_transistor", params.gatesPerTransistor);
    doc.set("chiplet_volume", params.chipletVolume);
    doc.set("system_volume", params.systemVolume);
    return doc;
}

OperatingSpec
operatingSpecFromJson(const json::Value &doc,
                      const std::string &context)
{
    rejectUnknownKeys(doc,
                      {"lifetime_years", "duty_cycle",
                       "avg_frequency_hz", "switching_activity",
                       "intensity_g_per_kwh", "avg_power_w",
                       "annual_energy_kwh"},
                      context);

    OperatingSpec spec;
    spec.lifetimeYears =
        doc.numberOr("lifetime_years", spec.lifetimeYears);
    spec.dutyCycle = doc.numberOr("duty_cycle", spec.dutyCycle);
    spec.avgFrequencyHz =
        doc.numberOr("avg_frequency_hz", spec.avgFrequencyHz);
    spec.switchingActivity = doc.numberOr("switching_activity",
                                          spec.switchingActivity);
    spec.useIntensityGPerKwh = doc.numberOr(
        "intensity_g_per_kwh", spec.useIntensityGPerKwh);
    if (doc.contains("avg_power_w"))
        spec.avgPowerW = doc.at("avg_power_w").asNumber();
    if (doc.contains("annual_energy_kwh"))
        spec.annualEnergyKwh =
            doc.at("annual_energy_kwh").asNumber();
    return spec;
}

json::Value
operatingSpecToJson(const OperatingSpec &spec)
{
    json::Value doc = json::Value::makeObject();
    doc.set("lifetime_years", spec.lifetimeYears);
    doc.set("duty_cycle", spec.dutyCycle);
    doc.set("avg_frequency_hz", spec.avgFrequencyHz);
    doc.set("switching_activity", spec.switchingActivity);
    doc.set("intensity_g_per_kwh", spec.useIntensityGPerKwh);
    if (spec.avgPowerW)
        doc.set("avg_power_w", *spec.avgPowerW);
    if (spec.annualEnergyKwh)
        doc.set("annual_energy_kwh", *spec.annualEnergyKwh);
    return doc;
}

DesignBundle
designBundleFromJson(const json::Value &arch,
                     const json::Value *package,
                     const json::Value *design,
                     const json::Value *operational,
                     const TechDb &tech,
                     const std::string &context,
                     const std::string &package_context,
                     const std::string &design_context,
                     const std::string &operational_context)
{
    DesignBundle bundle;
    bundle.system = systemFromJson(arch, tech, context);

    if (arch.contains("packaging")) {
        bundle.config.package.arch = packagingArchFromString(
            arch.at("packaging").asString());
    }
    if (arch.contains("yield_model")) {
        bundle.config.yieldModel = yieldModelKindFromString(
            arch.at("yield_model").asString());
    }

    if (package) {
        PackageParams params = packageParamsFromJson(
            *package, package_context.empty()
                          ? context + ": package"
                          : package_context);
        // The architecture's packaging choice wins over the knob
        // file's `arch`, matching the reference tool.
        if (arch.contains("packaging"))
            params.arch = bundle.config.package.arch;
        bundle.config.package = params;
    }

    if (design)
        bundle.config.design = designParamsFromJson(
            *design, design_context.empty()
                         ? context + ": design"
                         : design_context);

    if (operational)
        bundle.config.operating = operatingSpecFromJson(
            *operational, operational_context.empty()
                              ? context + ": operational"
                              : operational_context);

    return bundle;
}

DesignBundle
loadDesignDirectory(const std::string &dir, const TechDb &tech)
{
    namespace fs = std::filesystem;
    const fs::path root(dir);
    requireConfig(fs::is_directory(root),
                  "not a design directory: " + dir);

    const fs::path arch_path = root / "architecture.json";
    requireConfig(fs::exists(arch_path),
                  "missing architecture.json in " + dir);

    const json::Value arch_doc =
        json::parseFile(arch_path.string());

    auto optional_doc =
        [&](const char *name) -> std::optional<json::Value> {
        const fs::path path = root / name;
        if (!fs::exists(path))
            return std::nullopt;
        return json::parseFile(path.string());
    };
    const auto pkg_doc = optional_doc("packageC.json");
    const auto design_doc = optional_doc("designC.json");
    const auto op_doc = optional_doc("operationalC.json");

    // Exact file paths as contexts, so a typo'd key names the
    // file that holds it.
    return designBundleFromJson(
        arch_doc, pkg_doc ? &*pkg_doc : nullptr,
        design_doc ? &*design_doc : nullptr,
        op_doc ? &*op_doc : nullptr, tech, arch_path.string(),
        (root / "packageC.json").string(),
        (root / "designC.json").string(),
        (root / "operationalC.json").string());
}

void
appendReport(json::StreamWriter &writer,
             const CarbonReport &report)
{
    writer.beginObject();
    writer.key("mfg_co2_kg");
    writer.number(report.mfgCo2Kg);
    writer.key("design_co2_kg");
    writer.number(report.designCo2Kg);
    writer.key("nre_co2_kg");
    writer.number(report.nreCo2Kg);

    writer.key("hi");
    writer.beginObject();
    writer.key("package_co2_kg");
    writer.number(report.hi.packageCo2Kg);
    writer.key("routing_co2_kg");
    writer.number(report.hi.routingCo2Kg);
    writer.key("package_area_mm2");
    writer.number(report.hi.packageAreaMm2);
    writer.key("whitespace_area_mm2");
    writer.number(report.hi.whitespaceAreaMm2);
    writer.key("package_yield");
    writer.number(report.hi.packageYield);
    writer.key("bridge_count");
    writer.number(report.hi.bridgeCount);
    writer.key("bond_count");
    writer.number(report.hi.bondCount);
    writer.key("noc_power_w");
    writer.number(report.hi.nocPowerW);
    writer.endObject();

    writer.key("operational");
    writer.beginObject();
    writer.key("avg_power_w");
    writer.number(report.operation.avgPowerW);
    writer.key("lifetime_energy_kwh");
    writer.number(report.operation.lifetimeEnergyKwh);
    writer.key("co2_kg");
    writer.number(report.operation.co2Kg);
    writer.endObject();

    writer.key("embodied_co2_kg");
    writer.number(report.embodiedCo2Kg());
    writer.key("total_co2_kg");
    writer.number(report.totalCo2Kg());

    writer.key("chiplets");
    writer.beginArray();
    for (const auto &cr : report.chiplets) {
        writer.beginObject();
        writer.key("name");
        writer.string(cr.name);
        writer.key("node_nm");
        writer.number(cr.nodeNm);
        writer.key("area_mm2");
        writer.number(cr.areaMm2);
        writer.key("yield");
        writer.number(cr.yield);
        writer.key("mfg_co2_kg");
        writer.number(cr.mfgCo2Kg);
        writer.key("design_co2_kg");
        writer.number(cr.designCo2Kg);
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
}

json::Value
reportToJson(const CarbonReport &report)
{
    json::StreamWriter writer;
    appendReport(writer, report);
    return json::parse(writer.take());
}

std::vector<double>
loadNodeList(const std::string &path)
{
    std::ifstream in(path);
    requireConfig(static_cast<bool>(in),
                  "cannot open node list: " + path);

    std::vector<double> nodes;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and whitespace.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::size_t begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos)
            continue;
        std::size_t end = line.find_last_not_of(" \t\r");
        std::string token = line.substr(begin, end - begin + 1);
        // Optional "nm" suffix.
        if (token.size() > 2 &&
            token.compare(token.size() - 2, 2, "nm") == 0)
            token.resize(token.size() - 2);
        try {
            std::size_t consumed = 0;
            const double node = std::stod(token, &consumed);
            requireConfig(consumed == token.size() && node > 0.0,
                          "invalid node");
            nodes.push_back(node);
        } catch (const std::exception &) {
            throw ConfigError("node list " + path + " line " +
                              std::to_string(line_no) +
                              ": invalid node \"" + token + "\"");
        }
    }
    requireConfig(!nodes.empty(),
                  "node list " + path + " is empty");
    return nodes;
}

} // namespace ecochip
