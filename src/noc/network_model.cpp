#include "noc/network_model.h"

#include <cmath>

#include "support/error.h"

namespace ecochip {

NetworkModel::NetworkModel(const TechDb &tech,
                           RouterParams params)
    : tech_(&tech), router_(tech, params), params_(params)
{
}

NetworkEstimate
NetworkModel::meshEstimate(int chiplet_count, double node_nm,
                           double clock_hz,
                           double injection_rate_flits_hz) const
{
    requireConfig(chiplet_count >= 1,
                  "mesh needs at least one chiplet");
    requireConfig(clock_hz > 0.0, "clock must be positive");
    requireConfig(injection_rate_flits_hz >= 0.0,
                  "injection rate must be non-negative");

    NetworkEstimate out;

    // Near-square factorization: columns = ceil(sqrt(n)).
    out.columns = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(chiplet_count))));
    out.rows = (chiplet_count + out.columns - 1) / out.columns;

    // Average Manhattan distance on a k-node line is
    // (k^2 - 1) / (3k); sum the two dimensions.
    auto avg_line = [](int k) {
        return k > 1 ? (static_cast<double>(k) * k - 1.0) /
                           (3.0 * k)
                     : 0.0;
    };
    out.avgHops = avg_line(out.columns) + avg_line(out.rows);

    const double cycle_ns = 1e9 / clock_hz;
    out.perHopLatencyNs =
        (kRouterPipelineCycles + kLinkCycles) * cycle_ns;
    // Zero-load latency: source router + avgHops hops.
    out.avgLatencyNs =
        (out.avgHops + 1.0) * out.perHopLatencyNs;

    // Bisection: links crossing the narrower cut, one flit-width
    // channel per link per direction.
    const int cut_links = std::min(out.columns, out.rows);
    out.bisectionBandwidthGbps =
        2.0 * cut_links * params_.flitWidthBits * clock_hz / 1e9;

    out.networkPowerW =
        chiplet_count *
        router_.powerW(node_nm, injection_rate_flits_hz);
    return out;
}

} // namespace ecochip
