/**
 * @file
 * Analytical NoC router area/power model (paper Sec. III-D(2)).
 *
 * The paper delegates router power to ORION 3.0 and router area to
 * Stow et al.'s network-on-interposer tables, then linearly rescales
 * across technology nodes. Neither third-party tool is available
 * here, so this module substitutes an analytical model with the
 * same microarchitectural knobs (port count, flit width, buffer
 * depth, virtual channels): transistor counts for the buffer,
 * crossbar, and allocator stages are converted to area via the
 * logic density curve DT(logic, p) and to power via the technology
 * operating-point tables. This preserves the behaviour the paper
 * depends on: router overheads are small relative to chiplet areas,
 * and a router in an advanced node is much smaller than the same
 * router in the interposer's legacy node.
 */

#ifndef ECOCHIP_NOC_ROUTER_MODEL_H
#define ECOCHIP_NOC_ROUTER_MODEL_H

#include "tech/tech_db.h"

namespace ecochip {

/** Microarchitectural parameters of a NoC router. */
struct RouterParams
{
    /** Bidirectional port count (Table I-era NoI: 4-6). */
    int ports = 5;

    /** Flit width in bits (Table I: 512). */
    int flitWidthBits = 512;

    /** Buffer depth per virtual channel, in flits. */
    int buffersPerVc = 4;

    /** Virtual channels per port. */
    int virtualChannels = 4;
};

/**
 * Analytical router estimator.
 *
 * Transistor budget:
 *  - input buffers: P * V * B * W * 6T SRAM bits
 *  - crossbar:      P^2 * W * 12T per crosspoint bit (mux tree)
 *  - VC allocator:  P^2 * V^2 * 10T
 *  - switch alloc:  P^2 * V * 10T
 *  - output stage:  P * W * 8T drivers
 */
class RouterModel
{
  public:
    /**
     * @param tech Technology database (must outlive the model).
     * @param params Router microarchitecture.
     */
    explicit RouterModel(const TechDb &tech,
                         RouterParams params = RouterParams());

    /** Router parameters in use. */
    const RouterParams &params() const { return params_; }

    /** Estimated router transistor count in millions. */
    double transistorsMtr() const;

    /**
     * Router area when implemented at @p node_nm (mm^2), via the
     * logic density curve.
     */
    double areaMm2(double node_nm) const;

    /**
     * Dynamic energy to move one flit through the router (nJ):
     * buffer write + read, crossbar traversal, and arbitration.
     */
    double energyPerFlitNj(double node_nm) const;

    /** Router leakage power at @p node_nm (W). */
    double leakagePowerW(double node_nm) const;

    /**
     * Average router power (W), ORION-style:
     *   P = flit_rate * E_flit + P_leak
     *
     * @param node_nm Implementation node.
     * @param flit_rate_hz Average accepted flits per second.
     */
    double powerW(double node_nm, double flit_rate_hz) const;

  private:
    const TechDb *tech_;
    RouterParams params_;
};

/**
 * Die-to-die PHY interface model for RDL-fanout and bridge (EMIB)
 * packages: "typically designed as IPs and have small additional
 * areas when compared to the chiplets" (Sec. III-D(2)).
 */
class PhyModel
{
  public:
    /**
     * @param tech Technology database (must outlive the model).
     * @param lane_bits Parallel interface width in bits.
     */
    explicit PhyModel(const TechDb &tech, int lane_bits = 512);

    /** Interface width in bits. */
    int laneBits() const { return laneBits_; }

    /** PHY macro transistor count (MTr). */
    double transistorsMtr() const;

    /** PHY macro area at @p node_nm (mm^2). */
    double areaMm2(double node_nm) const;

    /** Average PHY power at @p node_nm and bit rate (W). */
    double powerW(double node_nm, double bit_rate_hz) const;

  private:
    const TechDb *tech_;
    int laneBits_;
};

} // namespace ecochip

#endif // ECOCHIP_NOC_ROUTER_MODEL_H
