/**
 * @file
 * Inter-die network performance estimator.
 *
 * The paper stops at CFP: "estimating the performance overheads of
 * the chiplet-based GA102 ... requires modeling the performance of
 * inter-die communication and router overheads, which is beyond
 * the scope of ECO-CHIP" (Sec. VI(1)). This module supplies the
 * missing first-order model for a 2D-mesh network-on-interposer:
 * average hop count, per-hop latency from the router pipeline, and
 * bisection bandwidth -- enough to extend the carbon-delay product
 * analysis of Fig. 13 to arbitrary disaggregations.
 */

#ifndef ECOCHIP_NOC_NETWORK_MODEL_H
#define ECOCHIP_NOC_NETWORK_MODEL_H

#include "noc/router_model.h"
#include "tech/tech_db.h"

namespace ecochip {

/** First-order performance estimate of a chiplet mesh. */
struct NetworkEstimate
{
    /** Mesh dimensions (columns x rows). */
    int columns = 1;
    int rows = 1;

    /** Average router-to-router Manhattan hop count. */
    double avgHops = 0.0;

    /** Latency of one hop (router pipeline + link), ns. */
    double perHopLatencyNs = 0.0;

    /** Average end-to-end zero-load packet latency, ns. */
    double avgLatencyNs = 0.0;

    /** Bisection bandwidth, Gbit/s. */
    double bisectionBandwidthGbps = 0.0;

    /** Total network power at the given injection rate, W. */
    double networkPowerW = 0.0;
};

/** 2D-mesh network estimator. */
class NetworkModel
{
  public:
    /** Router pipeline depth in cycles (RC/VA/SA/ST). */
    static constexpr int kRouterPipelineCycles = 3;

    /** Link traversal cycles between adjacent chiplets. */
    static constexpr int kLinkCycles = 1;

    /**
     * @param tech Technology database (must outlive the model).
     * @param params Router microarchitecture.
     */
    explicit NetworkModel(const TechDb &tech,
                          RouterParams params = RouterParams());

    /**
     * Estimate a near-square 2D mesh over @p chiplet_count nodes.
     *
     * @param chiplet_count Nodes in the mesh (>= 1).
     * @param node_nm Node the routers are implemented in.
     * @param clock_hz Network clock.
     * @param injection_rate_flits_hz Average accepted flits per
     *        router per second, for the power estimate.
     */
    NetworkEstimate
    meshEstimate(int chiplet_count, double node_nm,
                 double clock_hz,
                 double injection_rate_flits_hz = 1.0e9) const;

  private:
    const TechDb *tech_;
    RouterModel router_;
    RouterParams params_;
};

} // namespace ecochip

#endif // ECOCHIP_NOC_NETWORK_MODEL_H
