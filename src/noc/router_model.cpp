#include "noc/router_model.h"

#include "support/error.h"

namespace ecochip {

namespace {

/** Transistors per buffered SRAM bit. */
constexpr double kBufferBitTransistors = 6.0;

/** Transistors per crossbar crosspoint bit (mux tree share). */
constexpr double kCrossbarBitTransistors = 12.0;

/** Transistors per allocator arbitration cell. */
constexpr double kAllocatorCellTransistors = 10.0;

/** Transistors per output driver bit. */
constexpr double kOutputBitTransistors = 8.0;

/** Fraction of router transistors toggling per flit traversal. */
constexpr double kFlitActivity = 0.25;

} // namespace

RouterModel::RouterModel(const TechDb &tech, RouterParams params)
    : tech_(&tech), params_(params)
{
    requireConfig(params.ports >= 2, "router needs >= 2 ports");
    requireConfig(params.flitWidthBits > 0,
                  "flit width must be positive");
    requireConfig(params.buffersPerVc > 0,
                  "buffer depth must be positive");
    requireConfig(params.virtualChannels > 0,
                  "virtual channel count must be positive");
}

double
RouterModel::transistorsMtr() const
{
    const double p = params_.ports;
    const double w = params_.flitWidthBits;
    const double v = params_.virtualChannels;
    const double b = params_.buffersPerVc;

    const double buffers = p * v * b * w * kBufferBitTransistors;
    const double crossbar = p * p * w * kCrossbarBitTransistors;
    const double vc_alloc = p * p * v * v * kAllocatorCellTransistors;
    const double sw_alloc = p * p * v * kAllocatorCellTransistors;
    const double outputs = p * w * kOutputBitTransistors;

    return (buffers + crossbar + vc_alloc + sw_alloc + outputs) /
           1e6;
}

double
RouterModel::areaMm2(double node_nm) const
{
    return tech_->dieAreaMm2(DesignType::Logic, node_nm,
                             transistorsMtr());
}

double
RouterModel::energyPerFlitNj(double node_nm) const
{
    // A flit traversal toggles the buffer bits it occupies (write +
    // read), one crossbar column, and the arbitration logic --
    // modeled as kFlitActivity of the router's switched
    // capacitance.
    const double vdd = tech_->supplyVoltageV(node_nm);
    const double cap_f = transistorsMtr() * 1e6 *
                         tech_->effCapFfPerTransistor(node_nm) *
                         1e-15;
    const double energy_j = kFlitActivity * cap_f * vdd * vdd;
    return energy_j * 1e9;
}

double
RouterModel::leakagePowerW(double node_nm) const
{
    const double vdd = tech_->supplyVoltageV(node_nm);
    const double leak_a =
        tech_->leakageMaPerMtr(node_nm) * 1e-3 * transistorsMtr();
    return leak_a * vdd;
}

double
RouterModel::powerW(double node_nm, double flit_rate_hz) const
{
    requireConfig(flit_rate_hz >= 0.0,
                  "flit rate must be non-negative");
    return flit_rate_hz * energyPerFlitNj(node_nm) * 1e-9 +
           leakagePowerW(node_nm);
}

PhyModel::PhyModel(const TechDb &tech, int lane_bits)
    : tech_(&tech), laneBits_(lane_bits)
{
    requireConfig(lane_bits > 0, "PHY width must be positive");
}

double
PhyModel::transistorsMtr() const
{
    // Parallel die-to-die PHYs (UCIe/AIB class) spend a few
    // hundred transistors per data bit on TX/RX lanes, clocking,
    // and training logic -- a notch below a full NoC router.
    constexpr double transistors_per_bit = 600.0;
    return laneBits_ * transistors_per_bit / 1e6;
}

double
PhyModel::areaMm2(double node_nm) const
{
    return tech_->dieAreaMm2(DesignType::Logic, node_nm,
                             transistorsMtr());
}

double
PhyModel::powerW(double node_nm, double bit_rate_hz) const
{
    requireConfig(bit_rate_hz >= 0.0,
                  "bit rate must be non-negative");
    // ~0.5 pJ/bit class short-reach links, scaled by the node's
    // V^2 relative to the 7 nm operating point.
    const double vdd = tech_->supplyVoltageV(node_nm);
    const double vdd_ref = tech_->supplyVoltageV(7.0);
    const double pj_per_bit =
        0.5 * (vdd * vdd) / (vdd_ref * vdd_ref);
    const double dynamic_w = bit_rate_hz * pj_per_bit * 1e-12;
    const double leak_w = tech_->leakageMaPerMtr(node_nm) * 1e-3 *
                          transistorsMtr() * vdd;
    return dynamic_w + leak_w;
}

} // namespace ecochip
