#include "server/result_cache.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "io/request_io.h"
#include "json/ondemand.h"
#include "support/error.h"
#include "support/sha256.h"

namespace ecochip {

namespace {

namespace fs = std::filesystem;

/**
 * Fold the bytes of a design directory's JSON configs into a
 * digest, file names included, in sorted order -- editing any
 * config (or adding/removing one) must change every cache key
 * bound to the directory.
 */
void
updateWithDesignDir(Sha256 &digest, const std::string &dir)
{
    std::vector<fs::path> configs;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->path().extension() == ".json")
            configs.push_back(it->path());
    }
    std::sort(configs.begin(), configs.end());
    for (const auto &path : configs) {
        digest.update(path.filename().string());
        digest.update("\0", 1);
        std::ifstream in(path, std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        digest.update(bytes.str());
        digest.update("\0", 1);
    }
}

} // namespace

std::string
resultCacheKey(const AnalysisRequest &request,
               const std::string &catalog_fingerprint)
{
    Sha256 digest;
    digest.update(canonicalRequestText(request));
    digest.update("\n");
    digest.update(catalog_fingerprint);
    if (request.scenario.kind ==
        ScenarioRef::Kind::DesignDirectory) {
        digest.update("\n");
        updateWithDesignDir(digest, request.scenario.value);
    }
    return digest.hexDigest();
}

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(std::move(options))
{
    requireConfig(!options_.directory.empty(),
                  "result cache needs a directory");
    fs::create_directories(fs::path(options_.directory) /
                           "objects");
    loadIndex();
}

std::string
ResultCache::objectPath(const std::string &key) const
{
    return (fs::path(options_.directory) / "objects" /
            key.substr(0, 2) / (key + ".json"))
        .string();
}

void
ResultCache::loadIndex()
{
    const std::string index_path =
        (fs::path(options_.directory) / "index.json").string();

    // The index is advisory: it restores LRU order across
    // restarts, but the objects are the truth. A missing or
    // corrupt index (crash before flushIndex) falls back to a
    // scan of the object tree.
    if (fs::exists(index_path)) {
        try {
            const json::Value doc = json::parseFile(index_path);
            for (const auto &entry :
                 doc.at("entries").asArray()) {
                const std::string key =
                    entry.at("key").asString();
                const auto tick = static_cast<std::uint64_t>(
                    entry.at("tick").asInteger());
                if (fs::exists(objectPath(key))) {
                    lastUse_[key] = tick;
                    tick_ = std::max(tick_, tick + 1);
                }
            }
        } catch (const std::exception &) {
            lastUse_.clear();
        }
    }
    if (lastUse_.empty()) {
        std::error_code ec;
        for (fs::recursive_directory_iterator
                 it(fs::path(options_.directory) / "objects",
                    ec),
             end;
             !ec && it != end; it.increment(ec)) {
            if (!it->is_regular_file(ec))
                continue;
            const std::string name = it->path().stem().string();
            if (name.size() == 64)
                lastUse_[name] = tick_++;
        }
    }
    stats_.entries = lastUse_.size();
    evictDownTo(options_.maxEntries);
    // Entries dropped while reconciling a shrunken maxEntries
    // are housekeeping, not served evictions.
    stats_.evictions = 0;
}

std::optional<json::Value>
ResultCache::lookup(const std::string &key)
{
    if (auto text = lookupText(key))
        return json::parse(*text);
    return std::nullopt;
}

std::optional<std::string>
ResultCache::lookupText(const std::string &key)
{
    const auto it = lastUse_.find(key);
    if (it == lastUse_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    try {
        std::ifstream in(objectPath(key), std::ios::binary);
        requireConfig(static_cast<bool>(in),
                      "cannot open JSON file: " +
                          objectPath(key));
        std::ostringstream bytes;
        bytes << in.rdbuf();
        // One scan validates the object and canonicalizes it --
        // no DOM on the warm path.
        std::string result =
            json::ondemand::reserialize(bytes.str(), false);
        it->second = tick_++;
        ++stats_.hits;
        return result;
    } catch (const std::exception &) {
        // Truncated or corrupt object: evict and recompute.
        std::error_code ec;
        fs::remove(objectPath(key), ec);
        lastUse_.erase(it);
        stats_.entries = lastUse_.size();
        ++stats_.misses;
        return std::nullopt;
    }
}

void
ResultCache::store(const std::string &key,
                   const json::Value &result)
{
    storeText(key, result.dump(false));
}

void
ResultCache::storeText(const std::string &key,
                       std::string_view result_text)
{
    const fs::path path = objectPath(key);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);

    // Write-then-rename: a crash mid-write leaves a stray .tmp,
    // never a truncated object under its final name.
    const fs::path tmp = path.string() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        requireModel(static_cast<bool>(out),
                     "cannot write cache object " +
                         tmp.string());
        out << result_text << "\n";
    }
    fs::rename(tmp, path);

    lastUse_[key] = tick_++;
    stats_.entries = lastUse_.size();
    evictDownTo(options_.maxEntries);
}

void
ResultCache::evictDownTo(std::size_t max_entries)
{
    if (max_entries == 0)
        return;
    while (lastUse_.size() > max_entries) {
        auto oldest = lastUse_.begin();
        for (auto it = lastUse_.begin(); it != lastUse_.end();
             ++it)
            if (it->second < oldest->second)
                oldest = it;
        std::error_code ec;
        fs::remove(objectPath(oldest->first), ec);
        lastUse_.erase(oldest);
        ++stats_.evictions;
    }
    stats_.entries = lastUse_.size();
}

void
ResultCache::flushIndex()
{
    json::Value doc = json::Value::makeObject();
    doc.set("version", 1);
    json::Value entries = json::Value::makeArray();
    for (const auto &[key, tick] : lastUse_) {
        json::Value entry = json::Value::makeObject();
        entry.set("key", key);
        entry.set("tick", static_cast<double>(tick));
        entries.append(std::move(entry));
    }
    doc.set("entries", std::move(entries));
    json::writeFile(
        doc,
        (fs::path(options_.directory) / "index.json").string());
}

} // namespace ecochip
