#include "server/analysis_server.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "engine/analysis_engine.h"
#include "io/batch_report_io.h"
#include "io/request_io.h"
#include "io/result_writer.h"
#include "json/stream_writer.h"
#include "support/error.h"
#include "support/sha256.h"

#if defined(__unix__) || defined(__APPLE__)
#define ECOCHIP_SERVER_HAS_SOCKETS 1
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define ECOCHIP_SERVER_HAS_SOCKETS 0
#endif

namespace ecochip {

namespace {

/**
 * Versioned so a future change to the result schema or the
 * evaluation models can invalidate every cached entry by bumping
 * one string instead of asking operators to wipe cache
 * directories.
 */
constexpr const char *kCacheSchemaVersion =
    "ecochip-result-cache-v1";

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    requireConfig(static_cast<bool>(in),
                  "cannot read catalog file: " + path);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

std::string
computeCatalogFingerprint(const ScenarioRegistry &registry,
                          const std::string &scenarios_path)
{
    Sha256 digest;
    digest.update(kCacheSchemaVersion);
    for (const auto &name : registry.names()) {
        digest.update("\n");
        digest.update(name);
    }
    // Generator templates resolve derived scenario names, so a
    // changed generator set must invalidate cached results too.
    for (const auto &generator : registry.generators()) {
        digest.update("\ngenerator ");
        digest.update(generator.name);
    }
    if (!scenarios_path.empty()) {
        digest.update("\n--scenarios\n");
        digest.update(fileBytes(scenarios_path));
    }
    return digest.hexDigest();
}

} // namespace

#if ECOCHIP_SERVER_HAS_SOCKETS

namespace {

/** Wake-pipe write end the signal handlers poke; see run(). */
std::atomic<int> g_signal_wake_fd{-1};

extern "C" void
ecochipServerSignalHandler(int)
{
    const int fd = g_signal_wake_fd.load();
    if (fd >= 0) {
        const char byte = 'S';
        // Best effort: a full pipe already guarantees a wakeup.
        [[maybe_unused]] const auto n = write(fd, &byte, 1);
    }
}

void
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/**
 * The stream-event document of one outcome, spliced from
 * pre-serialized compact parts through the streaming writer so a
 * cache hit (stored result text) and a fresh evaluation
 * (appendResult) travel through one code path with no DOM --
 * member order matches `streamEventToJson` exactly. On success
 * @p payload is raw result JSON; on failure it is the error
 * message (emitted as a JSON string).
 */
std::string
eventLine(std::size_t index, std::string_view request_echo,
          bool ok, std::string_view payload)
{
    json::StreamWriter writer;
    writer.beginObject();
    writer.key("index");
    writer.number(static_cast<double>(index));
    writer.key("request");
    writer.raw(request_echo);
    writer.key("ok");
    writer.boolean(ok);
    if (ok) {
        writer.key("result");
        writer.raw(payload);
    } else {
        writer.key("error");
        writer.string(payload);
    }
    writer.endObject();
    return writer.take();
}

/** Error event for a line that never became a request. */
std::string
errorLine(std::size_t index, const std::string &message)
{
    json::StreamWriter writer;
    writer.beginObject();
    writer.key("index");
    writer.number(static_cast<double>(index));
    writer.key("ok");
    writer.boolean(false);
    writer.key("error");
    writer.string(message);
    writer.endObject();
    return writer.take();
}

} // namespace

struct AnalysisServer::Impl
{
    ServerOptions options;
    std::string fingerprint;
    std::optional<ResultCache> cache;
    std::unique_ptr<AnalysisEngine> engine;

    int listenFd = -1;
    int wakeRead = -1;
    int wakeWrite = -1;
    bool boundSocket = false;

    struct Connection
    {
        std::uint64_t id = 0;
        std::string inbuf;
        std::string outbuf;

        /** Per-connection request counter (the `index` of every
         *  response event, control verbs excluded). */
        std::size_t nextIndex = 0;

        /** Peer closed its write side; serve what was read. */
        bool eof = false;
    };
    std::map<int, Connection> conns;
    std::uint64_t nextConnId = 1;

    struct PendingJob
    {
        int fd = -1;
        std::uint64_t connId = 0;
        std::size_t index = 0;
        std::string requestEchoText;
        std::string cacheKey;
        std::future<AnalysisResult> future;
    };
    std::vector<PendingJob> jobs;

    ServerStats stats;
    std::atomic<bool> stopRequested{false};
    bool stopping = false;

    void closeConnection(int fd)
    {
        close(fd);
        conns.erase(fd);
    }

    /** True when @p conn still has a response on the way. */
    bool hasPendingJob(int fd, std::uint64_t id) const
    {
        for (const auto &job : jobs)
            if (job.fd == fd && job.connId == id)
                return true;
        return false;
    }

    void handleLine(int fd, Connection &conn,
                    const std::string &line);
    void completeFinishedJobs();
    void flushConnection(int fd, Connection &conn);
};

AnalysisServer::AnalysisServer(ServerOptions options)
    : impl_(std::make_unique<Impl>())
{
    impl_->options = std::move(options);
    ServerOptions &opts = impl_->options;

    requireConfig(!opts.socketPath.empty(),
                  "--serve needs a --socket path");
    requireConfig(opts.engineThreads >= 1,
                  "engine threads must be >= 1");

    sockaddr_un addr{};
    requireConfig(
        opts.socketPath.size() < sizeof(addr.sun_path),
        "socket path is too long for a Unix-domain socket: " +
            opts.socketPath);

    ScenarioRegistry registry = opts.registry;
    if (!opts.scenariosPath.empty())
        registry.loadFile(opts.scenariosPath);
    impl_->fingerprint = computeCatalogFingerprint(
        registry, opts.scenariosPath);

    if (!opts.cacheDir.empty())
        impl_->cache.emplace(ResultCacheOptions{
            opts.cacheDir, opts.cacheMaxEntries});

    EngineOptions engine_options;
    engine_options.threads = opts.engineThreads;
    engine_options.registry = std::move(registry);
    impl_->engine = std::make_unique<AnalysisEngine>(
        std::move(engine_options));

    // A leftover socket file from a dead server must not block
    // restarts, but a *live* server on the path is an operator
    // error -- probe with a connect before replacing it.
    if (std::filesystem::exists(opts.socketPath)) {
        const int probe = socket(AF_UNIX, SOCK_STREAM, 0);
        requireModel(probe >= 0, "socket() failed");
        sockaddr_un probe_addr{};
        probe_addr.sun_family = AF_UNIX;
        std::strncpy(probe_addr.sun_path,
                     opts.socketPath.c_str(),
                     sizeof(probe_addr.sun_path) - 1);
        const int connected = connect(
            probe,
            reinterpret_cast<const sockaddr *>(&probe_addr),
            sizeof(probe_addr));
        close(probe);
        requireConfig(connected != 0,
                      "a server is already listening on " +
                          opts.socketPath);
        std::error_code ec;
        std::filesystem::remove(opts.socketPath, ec);
    }

    impl_->listenFd = socket(AF_UNIX, SOCK_STREAM, 0);
    requireModel(impl_->listenFd >= 0, "socket() failed");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (bind(impl_->listenFd,
             reinterpret_cast<const sockaddr *>(&addr),
             sizeof(addr)) != 0) {
        const int err = errno;
        close(impl_->listenFd);
        impl_->listenFd = -1;
        throw ConfigError("cannot bind " + opts.socketPath +
                          ": " + std::strerror(err));
    }
    impl_->boundSocket = true;
    if (listen(impl_->listenFd, 64) != 0) {
        const int err = errno;
        throw ConfigError("cannot listen on " +
                          opts.socketPath + ": " +
                          std::strerror(err));
    }
    setNonBlocking(impl_->listenFd);

    int pipe_fds[2];
    requireModel(pipe(pipe_fds) == 0, "pipe() failed");
    impl_->wakeRead = pipe_fds[0];
    impl_->wakeWrite = pipe_fds[1];
    setNonBlocking(impl_->wakeRead);
    setNonBlocking(impl_->wakeWrite);

    if (opts.installSignalHandlers) {
        g_signal_wake_fd.store(impl_->wakeWrite);
        std::signal(SIGTERM, ecochipServerSignalHandler);
        std::signal(SIGINT, ecochipServerSignalHandler);
        // Writes go through send(MSG_NOSIGNAL), but ignore
        // SIGPIPE anyway so no stray stdio write can kill the
        // daemon when a client vanishes.
        std::signal(SIGPIPE, SIG_IGN);
    }
}

AnalysisServer::~AnalysisServer()
{
    if (!impl_)
        return;
    if (impl_->options.installSignalHandlers)
        g_signal_wake_fd.store(-1);
    for (const auto &[fd, conn] : impl_->conns)
        close(fd);
    if (impl_->listenFd >= 0)
        close(impl_->listenFd);
    if (impl_->wakeRead >= 0)
        close(impl_->wakeRead);
    if (impl_->wakeWrite >= 0)
        close(impl_->wakeWrite);
    if (impl_->boundSocket) {
        std::error_code ec;
        std::filesystem::remove(impl_->options.socketPath, ec);
    }
}

const std::string &
AnalysisServer::socketPath() const
{
    return impl_->options.socketPath;
}

const std::string &
AnalysisServer::catalogFingerprint() const
{
    return impl_->fingerprint;
}

ServerStats
AnalysisServer::stats() const
{
    ServerStats stats = impl_->stats;
    if (impl_->cache)
        stats.cache = impl_->cache->stats();
    stats.contexts = impl_->engine->contextCount();
    return stats;
}

void
AnalysisServer::requestStop()
{
    impl_->stopRequested.store(true);
    const char byte = 'Q';
    [[maybe_unused]] const auto n =
        write(impl_->wakeWrite, &byte, 1);
}

void
AnalysisServer::Impl::handleLine(int fd, Connection &conn,
                                 const std::string &line)
{
    if (line.empty())
        return;

    json::Value doc;
    try {
        doc = json::parse(line);
    } catch (const std::exception &e) {
        ++stats.malformed;
        conn.outbuf +=
            errorLine(conn.nextIndex++, e.what()) + "\n";
        return;
    }

    // Control verbs: answered inline, no request index consumed.
    if (doc.isObject() && doc.contains("control")) {
        std::string verb;
        try {
            verb = doc.at("control").asString();
        } catch (const std::exception &) {
            verb = "";
        }
        json::Value reply = json::Value::makeObject();
        reply.set("control", verb);
        if (verb == "stats") {
            reply.set("served",
                      static_cast<double>(stats.served));
            reply.set("failed",
                      static_cast<double>(stats.failed));
            reply.set("malformed",
                      static_cast<double>(stats.malformed));
            reply.set("connections",
                      static_cast<double>(stats.connections));
            reply.set("contexts",
                      static_cast<double>(
                          engine->contextCount()));
            reply.set("cache_enabled",
                      static_cast<bool>(cache));
            const ResultCacheStats cache_stats =
                cache ? cache->stats() : ResultCacheStats{};
            reply.set("hits",
                      static_cast<double>(cache_stats.hits));
            reply.set("misses",
                      static_cast<double>(cache_stats.misses));
            reply.set("evictions", static_cast<double>(
                                       cache_stats.evictions));
            reply.set("entries",
                      static_cast<double>(cache_stats.entries));
        } else if (verb == "shutdown") {
            reply.set("draining", true);
            stopRequested.store(true);
        } else {
            ++stats.malformed;
            reply.set("error",
                      "unknown control verb; known verbs: "
                      "stats, shutdown");
        }
        conn.outbuf += reply.dump(false) + "\n";
        return;
    }

    const std::size_t index = conn.nextIndex++;
    AnalysisRequest request;
    try {
        request = requestFromJson(
            doc, "request #" + std::to_string(index));
    } catch (const std::exception &e) {
        ++stats.malformed;
        conn.outbuf += errorLine(index, e.what()) + "\n";
        return;
    }

    json::StreamWriter echo_writer;
    appendRequest(echo_writer, request);
    const std::string echo = echo_writer.take();
    std::string key;
    if (cache) {
        key = resultCacheKey(request, fingerprint);
        if (auto stored = cache->lookupText(key)) {
            ++stats.served;
            conn.outbuf +=
                eventLine(index, echo, true, *stored) + "\n";
            return;
        }
    }

    PendingJob job;
    job.fd = fd;
    job.connId = conn.id;
    job.index = index;
    job.requestEchoText = echo;
    job.cacheKey = std::move(key);
    job.future = engine->submit(std::move(request));
    jobs.push_back(std::move(job));
}

void
AnalysisServer::Impl::completeFinishedJobs()
{
    for (std::size_t j = 0; j < jobs.size();) {
        PendingJob &job = jobs[j];
        if (job.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
            ++j;
            continue;
        }

        bool ok = true;
        std::string payload;
        try {
            const AnalysisResult result = job.future.get();
            json::StreamWriter writer;
            appendResult(writer, result);
            payload = writer.take();
        } catch (const std::exception &e) {
            ok = false;
            payload = e.what();
        } catch (...) {
            ok = false;
            payload = "unknown error";
        }

        ++stats.served;
        if (!ok)
            ++stats.failed;
        if (ok && cache && !job.cacheKey.empty())
            cache->storeText(job.cacheKey, payload);

        // Deliver only if the connection that asked is still the
        // one on this fd (ids guard against fd reuse); a gone
        // client's work still warmed the caches above.
        const auto it = conns.find(job.fd);
        if (it != conns.end() && it->second.id == job.connId)
            it->second.outbuf +=
                eventLine(job.index, job.requestEchoText, ok,
                          payload) +
                "\n";

        jobs.erase(jobs.begin() +
                   static_cast<std::ptrdiff_t>(j));
    }
}

void
AnalysisServer::Impl::flushConnection(int fd, Connection &conn)
{
    while (!conn.outbuf.empty()) {
        const auto sent =
            send(fd, conn.outbuf.data(), conn.outbuf.size(),
                 MSG_NOSIGNAL);
        if (sent > 0) {
            conn.outbuf.erase(0,
                              static_cast<std::size_t>(sent));
            continue;
        }
        if (sent < 0 && (errno == EAGAIN ||
                         errno == EWOULDBLOCK))
            return; // socket full; POLLOUT will retry
        // Peer vanished: drop the connection. Its pending jobs
        // finish and warm the cache; delivery is skipped by the
        // id check in completeFinishedJobs.
        closeConnection(fd);
        return;
    }
}

void
AnalysisServer::run()
{
    Impl &impl = *impl_;

    while (true) {
        if (impl.stopRequested.load() && !impl.stopping) {
            impl.stopping = true;
            // Stop accepting; connected clients keep their
            // in-flight answers, new connects fail fast.
            if (impl.listenFd >= 0) {
                close(impl.listenFd);
                impl.listenFd = -1;
            }
        }

        impl.completeFinishedJobs();

        // Drain-time cleanup: a connection with nothing queued
        // and nothing pending has been fully served.
        std::vector<int> done;
        for (auto &[fd, conn] : impl.conns) {
            const bool drained =
                conn.outbuf.empty() &&
                !impl.hasPendingJob(fd, conn.id);
            if (drained && (impl.stopping || conn.eof))
                done.push_back(fd);
        }
        for (const int fd : done)
            impl.closeConnection(fd);

        if (impl.stopping && impl.jobs.empty() &&
            impl.conns.empty())
            break;

        std::vector<pollfd> fds;
        fds.push_back({impl.wakeRead, POLLIN, 0});
        if (!impl.stopping && impl.listenFd >= 0)
            fds.push_back({impl.listenFd, POLLIN, 0});
        for (auto &[fd, conn] : impl.conns) {
            short events = 0;
            if (!impl.stopping && !conn.eof)
                events |= POLLIN;
            if (!conn.outbuf.empty())
                events |= POLLOUT;
            if (events != 0)
                fds.push_back({fd, events, 0});
        }

        // Busy-ish 1 ms tick only while futures are in flight;
        // otherwise sleep until a socket or the wake pipe stirs.
        const int timeout_ms = impl.jobs.empty() ? -1 : 1;
        const int ready =
            poll(fds.data(),
                 static_cast<nfds_t>(fds.size()), timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            throw ModelError(std::string("poll() failed: ") +
                             std::strerror(errno));
        }

        for (const pollfd &entry : fds) {
            if (entry.revents == 0)
                continue;

            if (entry.fd == impl.wakeRead) {
                char buf[64];
                while (read(impl.wakeRead, buf, sizeof(buf)) >
                       0) {
                }
                impl.stopRequested.store(true);
                continue;
            }

            if (entry.fd == impl.listenFd) {
                while (true) {
                    const int conn_fd =
                        accept(impl.listenFd, nullptr, nullptr);
                    if (conn_fd < 0)
                        break;
                    setNonBlocking(conn_fd);
                    Impl::Connection conn;
                    conn.id = impl.nextConnId++;
                    impl.conns.emplace(conn_fd,
                                       std::move(conn));
                    ++impl.stats.connections;
                }
                continue;
            }

            auto it = impl.conns.find(entry.fd);
            if (it == impl.conns.end())
                continue;
            Impl::Connection &conn = it->second;

            if (entry.revents & (POLLIN | POLLHUP | POLLERR)) {
                char buf[65536];
                while (true) {
                    const auto got =
                        read(entry.fd, buf, sizeof(buf));
                    if (got > 0) {
                        conn.inbuf.append(
                            buf, static_cast<std::size_t>(got));
                        continue;
                    }
                    // EOF and hard errors (ECONNRESET) both end
                    // the read side; EAGAIN just means drained.
                    if (got == 0 ||
                        (errno != EAGAIN && errno != EWOULDBLOCK))
                        conn.eof = true;
                    break;
                }
                // Parse every complete line; partial tail waits
                // for more bytes. Each line is isolated: a
                // malformed one answers an error event and the
                // loop moves on.
                std::size_t start = 0;
                while (true) {
                    const std::size_t nl =
                        conn.inbuf.find('\n', start);
                    if (nl == std::string::npos)
                        break;
                    std::string line = conn.inbuf.substr(
                        start, nl - start);
                    if (!line.empty() && line.back() == '\r')
                        line.pop_back();
                    start = nl + 1;
                    impl.handleLine(entry.fd, conn, line);
                    // The line may have dropped the connection.
                    if (impl.conns.find(entry.fd) ==
                        impl.conns.end())
                        break;
                }
                if (impl.conns.find(entry.fd) !=
                    impl.conns.end())
                    conn.inbuf.erase(0, start);
                else
                    continue;
            }

            if (!conn.outbuf.empty())
                impl.flushConnection(entry.fd, conn);
        }
    }

    if (impl.cache)
        impl.cache->flushIndex();
}

int
runAnalysisServer(ServerOptions options)
{
    AnalysisServer server(std::move(options));
    std::cout << "serving on " << server.socketPath()
              << std::endl;
    server.run();
    const ServerStats stats = server.stats();
    std::cout << "drained: " << stats.served
              << " request(s) served (" << stats.failed
              << " failed, " << stats.malformed
              << " malformed) across " << stats.connections
              << " connection(s); cache " << stats.cache.hits
              << " hit(s) / " << stats.cache.misses
              << " miss(es) / " << stats.cache.evictions
              << " eviction(s); " << stats.contexts
              << " warm context(s)" << std::endl;
    return 0;
}

#else // !ECOCHIP_SERVER_HAS_SOCKETS

struct AnalysisServer::Impl
{
    ServerOptions options;
    std::string fingerprint;
};

namespace {

[[noreturn]] void
throwNoSockets()
{
    throw ConfigError(
        "the analysis server requires a POSIX platform "
        "(Unix-domain sockets)");
}

} // namespace

AnalysisServer::AnalysisServer(ServerOptions)
{
    throwNoSockets();
}

AnalysisServer::~AnalysisServer() = default;

void
AnalysisServer::run()
{
    throwNoSockets();
}

void
AnalysisServer::requestStop()
{
    throwNoSockets();
}

const std::string &
AnalysisServer::socketPath() const
{
    throwNoSockets();
}

const std::string &
AnalysisServer::catalogFingerprint() const
{
    throwNoSockets();
}

ServerStats
AnalysisServer::stats() const
{
    throwNoSockets();
}

int
runAnalysisServer(ServerOptions)
{
    throwNoSockets();
}

#endif // ECOCHIP_SERVER_HAS_SOCKETS

} // namespace ecochip
