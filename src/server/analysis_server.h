/**
 * @file
 * Always-on analysis server: `eco_chip --serve --socket PATH`.
 *
 * Everything else in the repo is batch-shaped -- load, run, exit
 * -- so every invocation rebuilds its `EvaluationContext`s and
 * recomputes from scratch. The server is the long-lived
 * counterpart: one process listens on a Unix-domain socket,
 * accepts `AnalysisRequest` documents as NDJSON lines (the same
 * wire shapes as `io/batch_report_io.h` -- one request line in,
 * one outcome line out), and services them on a shared
 * `AnalysisEngine`, so the `sessionFor` context cache and the
 * kernel-plan `EvalCache` stay warm across requests and across
 * clients.
 *
 * On top of the warm in-process caches sits a content-addressed
 * persistent result cache (`server/result_cache.h`): a request
 * whose key (SHA-256 of its canonical text + the catalog
 * fingerprint) is already stored answers in O(lookup), and the
 * cached response is byte-identical to a freshly evaluated one.
 *
 * The accept/dispatch/respond loop is single-threaded, following
 * the event-loop skeleton of `engine/shard_coordinator.h`:
 * connections are polled, complete lines are parsed and either
 * answered from the cache or submitted to the engine pool, and
 * finished futures are written back as stream-event lines in
 * completion order (the per-connection `index` maps a line back
 * to its request, exactly like `--batch --stream`). A malformed
 * line yields an error event on its connection and never kills
 * the daemon; a disconnected client's in-flight work still
 * completes and warms the cache.
 *
 * Wire protocol (field-by-field in `docs/serving.md`):
 *
 *  - request line: one `requests.json` request object
 *    (`io/request_io.h`), or a control document
 *    `{"control": "stats"}` / `{"control": "shutdown"}`;
 *  - response line: the NDJSON stream event
 *    `{"index": i, "request": ..., "ok": ..., "result"|"error":
 *    ...}`, or the control verb's reply document.
 *
 * Shutdown is graceful on SIGTERM/SIGINT (when handlers are
 * installed) or the `shutdown` verb: the listener closes,
 * in-flight requests drain, buffered responses flush, and the
 * cache index is written. CLI surface: `docs/cli.md`; operator
 * guide: `docs/serving.md`.
 */

#ifndef ECOCHIP_SERVER_ANALYSIS_SERVER_H
#define ECOCHIP_SERVER_ANALYSIS_SERVER_H

#include <cstdint>
#include <memory>
#include <string>

#include "server/result_cache.h"
#include "session/scenario_registry.h"

namespace ecochip {

/** How `AnalysisServer` listens, evaluates, and caches. */
struct ServerOptions
{
    /** Unix-domain socket path to bind (stale socket files from
     *  a dead server are replaced; a live one is an error). */
    std::string socketPath;

    /** Engine worker threads (>= 1). */
    int engineThreads = 1;

    /** Scenario catalog served requests resolve against. */
    ScenarioRegistry registry = ScenarioRegistry::builtin();

    /** Extra scenario catalog file loaded into the registry and
     *  folded into the catalog fingerprint (may be empty). */
    std::string scenariosPath;

    /** Persistent result cache directory; empty disables the
     *  on-disk cache (every request evaluates). */
    std::string cacheDir;

    /** Cache entries kept before LRU eviction; 0 = unbounded. */
    std::size_t cacheMaxEntries = 0;

    /** Install SIGTERM/SIGINT handlers that trigger the graceful
     *  drain (the CLI path; library users call requestStop). */
    bool installSignalHandlers = false;
};

/** Counters the `stats` control verb reports. */
struct ServerStats
{
    /** Analysis requests answered (cache hits included). */
    std::uint64_t served = 0;

    /** Served requests whose outcome carried an error. */
    std::uint64_t failed = 0;

    /** Request lines that did not parse. */
    std::uint64_t malformed = 0;

    /** Connections accepted over the server's lifetime. */
    std::uint64_t connections = 0;

    /** Result-cache counters (all zero when disabled). */
    ResultCacheStats cache;

    /** Warm evaluation contexts (`AnalysisEngine` bindings). */
    std::uint64_t contexts = 0;
};

/**
 * The long-lived daemon behind `eco_chip --serve`. Construct,
 * then `run()` -- which blocks until a stop is requested and the
 * drain completes. `requestStop()` may be called from any thread
 * (or, via the installed handlers, from a signal context).
 */
class AnalysisServer
{
  public:
    /**
     * Bind the socket, open the cache, and build the engine --
     * everything that can fail on bad configuration fails here,
     * before the caller daemonizes.
     *
     * @throws ConfigError on an unusable socket path, a live
     *         server on it, or a bad catalog/cache directory.
     */
    explicit AnalysisServer(ServerOptions options);

    ~AnalysisServer();

    AnalysisServer(const AnalysisServer &) = delete;
    AnalysisServer &operator=(const AnalysisServer &) = delete;

    /** Serve until stopped; returns after the graceful drain. */
    void run();

    /** Begin the graceful drain (thread- and signal-safe). */
    void requestStop();

    /** The bound socket path. */
    const std::string &socketPath() const;

    /**
     * Fingerprint of everything outside a request that can
     * change its answer: a schema version, the registry's
     * scenario names, and the bytes of the extra catalog file.
     * Half of every cache key (see `resultCacheKey`).
     */
    const std::string &catalogFingerprint() const;

    /** Counters so far (stable between `run()` calls). */
    ServerStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * CLI entry point of `--serve`: construct the server, install
 * the signal handlers when asked, run, and report the drain on
 * stdout. Returns the process exit code.
 */
int runAnalysisServer(ServerOptions options);

} // namespace ecochip

#endif // ECOCHIP_SERVER_ANALYSIS_SERVER_H
