/**
 * @file
 * Line-oriented client of the analysis server
 * (`server/analysis_server.h`): connect to the daemon's
 * Unix-domain socket, write NDJSON request lines, read NDJSON
 * response lines.
 *
 * This is the half the CLI's `--connect` mode and the server
 * tests are built on. It is deliberately thin -- framing only, no
 * request/response interpretation beyond the two control verbs --
 * so the wire shapes stay owned by `io/batch_report_io.h` and
 * `io/request_io.h`.
 *
 * Responses arrive in completion order, not submission order;
 * callers match them back to requests via the `index` member of
 * each event line (see `docs/serving.md`).
 */

#ifndef ECOCHIP_SERVER_SERVER_CLIENT_H
#define ECOCHIP_SERVER_SERVER_CLIENT_H

#include <string>

#include "json/json.h"

namespace ecochip {

/** One connected NDJSON session with an analysis server. */
class ServerClient
{
  public:
    /**
     * Connect to the server listening on @p socket_path.
     * @throws ConfigError when nothing accepts the connection
     *         (no daemon, stale socket, wrong path).
     */
    explicit ServerClient(const std::string &socket_path);

    ~ServerClient();

    ServerClient(ServerClient &&other) noexcept;
    ServerClient &operator=(ServerClient &&other) noexcept;
    ServerClient(const ServerClient &) = delete;
    ServerClient &operator=(const ServerClient &) = delete;

    /** Write @p line plus the terminating newline. */
    void sendLine(const std::string &line);

    /**
     * The next response line (newline stripped), blocking until
     * one arrives.
     * @throws ModelError if the server closes the connection
     *         first.
     */
    std::string readLine();

    /** sendLine + readLine -- for control verbs and other
     *  strictly request/reply exchanges. */
    std::string roundTrip(const std::string &line);

    /** The parsed reply of `{"control": "stats"}`. */
    json::Value stats();

    /** Send `{"control": "shutdown"}` and wait for the ack. */
    void shutdownServer();

    /**
     * Poll @p socket_path until a connect succeeds or
     * @p timeout_seconds elapse -- absorbs the startup race when
     * the daemon was just forked. Returns whether a server
     * answered.
     */
    static bool waitForServer(const std::string &socket_path,
                              double timeout_seconds);

  private:
    int fd_ = -1;
    std::string inbuf_;
};

} // namespace ecochip

#endif // ECOCHIP_SERVER_SERVER_CLIENT_H
