#include "server/server_client.h"

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define ECOCHIP_CLIENT_HAS_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define ECOCHIP_CLIENT_HAS_SOCKETS 0
#endif

namespace ecochip {

#if ECOCHIP_CLIENT_HAS_SOCKETS

namespace {

/** Blocking connect to a Unix-domain socket; -1 on failure. */
int
connectTo(const std::string &socket_path)
{
    sockaddr_un addr{};
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(addr.sun_path))
        return -1;
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    return fd;
}

} // namespace

ServerClient::ServerClient(const std::string &socket_path)
    : fd_(connectTo(socket_path))
{
    requireConfig(fd_ >= 0,
                  "cannot connect to analysis server on " +
                      socket_path);
}

ServerClient::~ServerClient()
{
    if (fd_ >= 0)
        close(fd_);
}

ServerClient::ServerClient(ServerClient &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      inbuf_(std::move(other.inbuf_))
{
}

ServerClient &
ServerClient::operator=(ServerClient &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        inbuf_ = std::move(other.inbuf_);
    }
    return *this;
}

void
ServerClient::sendLine(const std::string &line)
{
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const auto n =
            send(fd_, framed.data() + sent,
                 framed.size() - sent, MSG_NOSIGNAL);
        requireModel(n > 0,
                     "analysis server connection lost while "
                     "sending");
        sent += static_cast<std::size_t>(n);
    }
}

std::string
ServerClient::readLine()
{
    while (true) {
        const std::size_t nl = inbuf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = inbuf_.substr(0, nl);
            inbuf_.erase(0, nl + 1);
            return line;
        }
        char buf[65536];
        const auto got = read(fd_, buf, sizeof(buf));
        requireModel(got > 0,
                     "analysis server closed the connection "
                     "before answering");
        inbuf_.append(buf, static_cast<std::size_t>(got));
    }
}

std::string
ServerClient::roundTrip(const std::string &line)
{
    sendLine(line);
    return readLine();
}

json::Value
ServerClient::stats()
{
    return json::parse(roundTrip("{\"control\": \"stats\"}"));
}

void
ServerClient::shutdownServer()
{
    roundTrip("{\"control\": \"shutdown\"}");
}

bool
ServerClient::waitForServer(const std::string &socket_path,
                            double timeout_seconds)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    while (true) {
        const int fd = connectTo(socket_path);
        if (fd >= 0) {
            close(fd);
            return true;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }
}

#else // !ECOCHIP_CLIENT_HAS_SOCKETS

namespace {

[[noreturn]] void
throwNoSockets()
{
    throw ConfigError(
        "the analysis server client requires a POSIX platform "
        "(Unix-domain sockets)");
}

} // namespace

ServerClient::ServerClient(const std::string &)
{
    throwNoSockets();
}

ServerClient::~ServerClient() = default;

ServerClient::ServerClient(ServerClient &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      inbuf_(std::move(other.inbuf_))
{
}

ServerClient &
ServerClient::operator=(ServerClient &&other) noexcept
{
    fd_ = std::exchange(other.fd_, -1);
    inbuf_ = std::move(other.inbuf_);
    return *this;
}

void
ServerClient::sendLine(const std::string &)
{
    throwNoSockets();
}

std::string
ServerClient::readLine()
{
    throwNoSockets();
}

std::string
ServerClient::roundTrip(const std::string &)
{
    throwNoSockets();
}

json::Value
ServerClient::stats()
{
    throwNoSockets();
}

void
ServerClient::shutdownServer()
{
    throwNoSockets();
}

bool
ServerClient::waitForServer(const std::string &, double)
{
    return false;
}

#endif // ECOCHIP_CLIENT_HAS_SOCKETS

} // namespace ecochip
