/**
 * @file
 * Content-addressed persistent result cache of the analysis
 * server (`server/analysis_server.h`).
 *
 * The serve-vs-rebuild economics the server exists for only pay
 * off when repeated questions stop costing evaluations: a cache
 * entry is the serialized `AnalysisResult` JSON of one request,
 * addressed by the SHA-256 of the request's canonical text
 * (`io/request_io.h`, `canonicalRequestText`) plus the serving
 * catalog's fingerprint, so a repeated query is O(lookup) and the
 * served response is byte-identical whether it came from the
 * cache or from a fresh evaluation.
 *
 * On-disk layout under the cache directory (see
 * `docs/serving.md`):
 *
 *     <dir>/objects/<aa>/<64-hex-key>.json   one result each
 *     <dir>/index.json                       LRU index, flushed
 *                                            on shutdown
 *
 * where `<aa>` is the key's first two hex characters (keeps any
 * one directory small). Every object file is written to a
 * temporary name and renamed into place, so readers never see a
 * half-written entry. A corrupt or truncated object (machine
 * crash, manual tampering) is treated as a miss, evicted, and
 * recomputed -- never a crash.
 *
 * The cache is single-owner: exactly one server process owns one
 * cache directory (the server's event loop serializes access, so
 * the class itself takes no locks).
 */

#ifndef ECOCHIP_SERVER_RESULT_CACHE_H
#define ECOCHIP_SERVER_RESULT_CACHE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "json/json.h"
#include "session/analysis_request.h"

namespace ecochip {

/** Sizing and placement of a `ResultCache`. */
struct ResultCacheOptions
{
    /** Cache directory (created if needed). */
    std::string directory;

    /** Entries kept before LRU eviction; 0 = unbounded. */
    std::size_t maxEntries = 0;
};

/** Hit/miss/eviction counters of one server run. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    /** Entries currently indexed. */
    std::uint64_t entries = 0;
};

/**
 * The cache key of @p request under @p catalog_fingerprint: 64
 * lowercase hex characters, stable across processes and runs.
 *
 * The fingerprint covers everything outside the request that can
 * change its answer -- the serving registry's catalog (see
 * `AnalysisServer::catalogFingerprint`). Design-directory
 * bindings additionally fold the bytes of the directory's JSON
 * configs into the key, so editing a config on disk changes the
 * key instead of serving a stale result.
 */
std::string resultCacheKey(const AnalysisRequest &request,
                           const std::string &catalog_fingerprint);

/** Persistent, LRU-bounded result store. Not thread-safe. */
class ResultCache
{
  public:
    /**
     * Open (or create) the cache at
     * `ResultCacheOptions::directory` and load its index. A
     * missing or corrupt index is rebuilt by scanning the object
     * tree, so a crash before `flushIndex` loses recency order,
     * not entries.
     */
    explicit ResultCache(ResultCacheOptions options);

    /**
     * The stored result document for @p key, or nullopt.
     * Counts one hit or one miss; a present-but-unreadable entry
     * (truncated file, corrupt JSON) is evicted and counts as a
     * miss, so callers always recompute instead of failing.
     */
    std::optional<json::Value> lookup(const std::string &key);

    /**
     * Text twin of `lookup` -- the warm path. The stored object
     * is validated and canonicalized by the on-demand scanner
     * (never parsed into a DOM) and returned as compact JSON,
     * byte-identical to `lookup(key)->dump(false)`. Same
     * hit/miss/evict-on-corruption accounting.
     */
    std::optional<std::string>
    lookupText(const std::string &key);

    /**
     * Store @p result under @p key (compact JSON, written
     * atomically), then evict least-recently-used entries down
     * to `maxEntries`.
     */
    void store(const std::string &key,
               const json::Value &result);

    /**
     * Text twin of `store`: @p result_text must be one compact
     * JSON result document (the streaming serializers produce
     * exactly that); it is written as-is, no DOM round trip.
     */
    void storeText(const std::string &key,
                   std::string_view result_text);

    /** Write the LRU index to `<dir>/index.json`. */
    void flushIndex();

    /** Counters since this cache was opened. */
    const ResultCacheStats &stats() const { return stats_; }

  private:
    std::string objectPath(const std::string &key) const;
    void evictDownTo(std::size_t max_entries);
    void loadIndex();

    ResultCacheOptions options_;
    ResultCacheStats stats_;

    /** key -> last-use tick (monotonic per run). */
    std::map<std::string, std::uint64_t> lastUse_;
    std::uint64_t tick_ = 0;
};

} // namespace ecochip

#endif // ECOCHIP_SERVER_RESULT_CACHE_H
