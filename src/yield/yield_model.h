/**
 * @file
 * Yield models (paper Eq. 4 and package assembly yields).
 */

#ifndef ECOCHIP_YIELD_YIELD_MODEL_H
#define ECOCHIP_YIELD_YIELD_MODEL_H

#include <cmath>
#include <string>
#include <vector>

#include "tech/tech_db.h"

namespace ecochip {

/**
 * Negative-binomial die yield (Eq. 4):
 *
 *   Y = (1 + A * D0 / alpha)^-alpha
 *
 * @param area_cm2 Die area in cm^2.
 * @param d0_per_cm2 Defect density in defects per cm^2.
 * @param alpha Defect clustering parameter.
 * @return Yield in (0, 1].
 */
double negativeBinomialYield(double area_cm2, double d0_per_cm2,
                             double alpha);

/**
 * Classical alternatives surveyed by the paper's yield reference
 * (Cunningham, "The use and evaluation of yield models in
 * integrated circuit manufacturing"). All take the same (A, D0)
 * arguments; the negative binomial is the paper's default.
 */
enum class YieldModelKind
{
    NegativeBinomial, ///< Eq. 4, the paper's model
    Poisson,          ///< Y = exp(-A D0)
    Murphy,           ///< Y = ((1 - exp(-A D0)) / (A D0))^2
    Seeds,            ///< Y = 1 / (1 + A D0)
};

/** Printable name of a yield model kind. */
const char *toString(YieldModelKind kind);

/** Parse ("negative_binomial" | "poisson" | "murphy" | "seeds"). */
YieldModelKind yieldModelKindFromString(const std::string &name);

/** Poisson-statistics die yield. */
double poissonYield(double area_cm2, double d0_per_cm2);

/** Murphy's bose-einstein-averaged die yield. */
double murphyYield(double area_cm2, double d0_per_cm2);

/** Seeds' exponential-defect-density die yield. */
double seedsYield(double area_cm2, double d0_per_cm2);

/**
 * Dispatch on the model kind (alpha only used by the negative
 * binomial).
 */
double dieYield(YieldModelKind kind, double area_cm2,
                double d0_per_cm2, double alpha);

/**
 * @{ @name Unchecked yield kernels
 *
 * Bit-identical to the checked functions above -- same expression
 * trees, same special cases -- with the argument validation
 * hoisted out. Batch evaluators validate inputs once per plan and
 * then call these in per-trial hot loops.
 */
inline double
negativeBinomialYieldFast(double area_cm2, double d0_per_cm2,
                          double alpha)
{
    return std::pow(1.0 + area_cm2 * d0_per_cm2 / alpha, -alpha);
}

inline double
poissonYieldFast(double area_cm2, double d0_per_cm2)
{
    return std::exp(-area_cm2 * d0_per_cm2);
}

inline double
murphyYieldFast(double area_cm2, double d0_per_cm2)
{
    const double x = area_cm2 * d0_per_cm2;
    if (x < 1e-12)
        return 1.0;
    const double term = (1.0 - std::exp(-x)) / x;
    return term * term;
}

inline double
seedsYieldFast(double area_cm2, double d0_per_cm2)
{
    return 1.0 / (1.0 + area_cm2 * d0_per_cm2);
}

inline double
dieYieldFast(YieldModelKind kind, double area_cm2,
             double d0_per_cm2, double alpha)
{
    switch (kind) {
      case YieldModelKind::NegativeBinomial:
        return negativeBinomialYieldFast(area_cm2, d0_per_cm2,
                                         alpha);
      case YieldModelKind::Poisson:
        return poissonYieldFast(area_cm2, d0_per_cm2);
      case YieldModelKind::Murphy:
        return murphyYieldFast(area_cm2, d0_per_cm2);
      case YieldModelKind::Seeds:
        return seedsYieldFast(area_cm2, d0_per_cm2);
    }
    return negativeBinomialYieldFast(area_cm2, d0_per_cm2, alpha);
}
/** @} */

/**
 * Poisson-limit yield of an assembly with @p connections independent
 * bonds each failing with probability @p fail_probability:
 * Y = exp(-n * p). Used for TSV/microbump/hybrid-bond stacks
 * (Eq. 11's Y(3D, p)).
 */
double bondArrayYield(double connections, double fail_probability);

/** Product of independent yields (package yield across tiers). */
double compoundYield(const std::vector<double> &yields);

/**
 * Convenience facade binding the yield equations to a technology
 * database.
 */
class YieldModel
{
  public:
    /**
     * @param tech Technology database supplying D0(p) and alpha.
     *        Must outlive the model.
     * @param kind Statistical yield model (paper default:
     *        negative binomial).
     */
    explicit YieldModel(
        const TechDb &tech,
        YieldModelKind kind = YieldModelKind::NegativeBinomial)
        : tech_(&tech), kind_(kind)
    {}

    /** Yield statistics in use. */
    YieldModelKind kind() const { return kind_; }

    /**
     * Yield of a silicon die (Eq. 4 with full D0(p)).
     *
     * @param area_mm2 Die area in mm^2.
     * @param node_nm Process node in nm.
     */
    double dieYield(double area_mm2, double node_nm) const;

    /** Yield of coarse RDL layers over the package substrate. */
    double rdlYield(double area_mm2, double node_nm) const;

    /** Yield of fine-pitch silicon-bridge metal layers. */
    double bridgeYield(double area_mm2, double node_nm) const;

    /** Yield of interposer BEOL layers. */
    double interposerYield(double area_mm2, double node_nm) const;

  private:
    const TechDb *tech_;
    YieldModelKind kind_;
};

} // namespace ecochip

#endif // ECOCHIP_YIELD_YIELD_MODEL_H
