#include "yield/yield_model.h"

#include <cmath>

#include "support/error.h"
#include "support/units.h"

namespace ecochip {

double
negativeBinomialYield(double area_cm2, double d0_per_cm2,
                      double alpha)
{
    requireConfig(area_cm2 >= 0.0, "die area must be non-negative");
    requireConfig(d0_per_cm2 >= 0.0,
                  "defect density must be non-negative");
    requireConfig(alpha > 0.0, "clustering alpha must be positive");
    return std::pow(1.0 + area_cm2 * d0_per_cm2 / alpha, -alpha);
}

double
bondArrayYield(double connections, double fail_probability)
{
    requireConfig(connections >= 0.0,
                  "connection count must be non-negative");
    requireConfig(fail_probability >= 0.0 && fail_probability < 1.0,
                  "bond failure probability must be in [0, 1)");
    return std::exp(-connections * fail_probability);
}

const char *
toString(YieldModelKind kind)
{
    switch (kind) {
      case YieldModelKind::NegativeBinomial:
        return "negative_binomial";
      case YieldModelKind::Poisson: return "poisson";
      case YieldModelKind::Murphy: return "murphy";
      case YieldModelKind::Seeds: return "seeds";
    }
    return "unknown";
}

YieldModelKind
yieldModelKindFromString(const std::string &name)
{
    if (name == "negative_binomial" || name == "nb")
        return YieldModelKind::NegativeBinomial;
    if (name == "poisson")
        return YieldModelKind::Poisson;
    if (name == "murphy")
        return YieldModelKind::Murphy;
    if (name == "seeds")
        return YieldModelKind::Seeds;
    throw ConfigError("unknown yield model: \"" + name + "\"");
}

double
poissonYield(double area_cm2, double d0_per_cm2)
{
    requireConfig(area_cm2 >= 0.0, "die area must be non-negative");
    requireConfig(d0_per_cm2 >= 0.0,
                  "defect density must be non-negative");
    return std::exp(-area_cm2 * d0_per_cm2);
}

double
murphyYield(double area_cm2, double d0_per_cm2)
{
    requireConfig(area_cm2 >= 0.0, "die area must be non-negative");
    requireConfig(d0_per_cm2 >= 0.0,
                  "defect density must be non-negative");
    const double x = area_cm2 * d0_per_cm2;
    if (x < 1e-12)
        return 1.0;
    const double term = (1.0 - std::exp(-x)) / x;
    return term * term;
}

double
seedsYield(double area_cm2, double d0_per_cm2)
{
    requireConfig(area_cm2 >= 0.0, "die area must be non-negative");
    requireConfig(d0_per_cm2 >= 0.0,
                  "defect density must be non-negative");
    return 1.0 / (1.0 + area_cm2 * d0_per_cm2);
}

double
dieYield(YieldModelKind kind, double area_cm2, double d0_per_cm2,
         double alpha)
{
    switch (kind) {
      case YieldModelKind::NegativeBinomial:
        return negativeBinomialYield(area_cm2, d0_per_cm2, alpha);
      case YieldModelKind::Poisson:
        return poissonYield(area_cm2, d0_per_cm2);
      case YieldModelKind::Murphy:
        return murphyYield(area_cm2, d0_per_cm2);
      case YieldModelKind::Seeds:
        return seedsYield(area_cm2, d0_per_cm2);
    }
    throw ModelError("unhandled yield model kind");
}

double
compoundYield(const std::vector<double> &yields)
{
    double product = 1.0;
    for (double y : yields) {
        requireConfig(y > 0.0 && y <= 1.0,
                      "component yield must be in (0, 1]");
        product *= y;
    }
    return product;
}

double
YieldModel::dieYield(double area_mm2, double node_nm) const
{
    return ecochip::dieYield(kind_,
                             area_mm2 * units::kCm2PerMm2,
                             tech_->defectDensityPerCm2(node_nm),
                             tech_->clusteringAlpha());
}

double
YieldModel::rdlYield(double area_mm2, double node_nm) const
{
    return negativeBinomialYield(
        area_mm2 * units::kCm2PerMm2,
        tech_->rdlDefectDensityPerCm2(node_nm),
        tech_->clusteringAlpha());
}

double
YieldModel::bridgeYield(double area_mm2, double node_nm) const
{
    return negativeBinomialYield(
        area_mm2 * units::kCm2PerMm2,
        tech_->bridgeDefectDensityPerCm2(node_nm),
        tech_->clusteringAlpha());
}

double
YieldModel::interposerYield(double area_mm2, double node_nm) const
{
    return negativeBinomialYield(
        area_mm2 * units::kCm2PerMm2,
        tech_->interposerDefectDensityPerCm2(node_nm),
        tech_->clusteringAlpha());
}

} // namespace ecochip
