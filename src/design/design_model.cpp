#include "design/design_model.h"

#include <algorithm>

#include "support/error.h"
#include "support/units.h"

namespace ecochip {

DesignModel::DesignModel(const TechDb &tech, DesignParams params)
    : tech_(&tech), params_(params),
      etaFit_(tech.edaProductivitySamples())
{
    requireConfig(params.pdesW > 0.0,
                  "design compute power must be positive");
    requireConfig(params.designIterations > 0,
                  "design iteration count must be positive");
    requireConfig(params.intensityGPerKwh > 0.0,
                  "design carbon intensity must be positive");
    requireConfig(params.sprHoursPerMgate > 0.0,
                  "SP&R anchor must be positive");
    requireConfig(params.gatesPerTransistor > 0.0,
                  "gates per transistor must be positive");
    requireConfig(params.chipletVolume >= 1.0,
                  "chiplet volume must be at least 1");
    requireConfig(params.systemVolume >= 1.0,
                  "system volume must be at least 1");
}

double
DesignModel::edaProductivityFit(double node_nm) const
{
    return std::clamp(etaFit_.eval(node_nm), 0.05, 1.0);
}

double
DesignModel::gateCountMgates(const Chiplet &chiplet) const
{
    return chiplet.transistorsMtr * params_.gatesPerTransistor;
}

double
DesignModel::hoursToCo2Kg(double hours) const
{
    const double energy_kwh =
        hours * params_.pdesW * units::kKwhPerWh;
    return units::carbonKg(params_.intensityGPerKwh, energy_kwh);
}

double
DesignModel::singleIterationCo2Kg(const Chiplet &chiplet) const
{
    // One SP&R pass plus its analysis, scaled by EDA productivity
    // at the target node.
    const double spr =
        params_.sprHoursPerMgate * gateCountMgates(chiplet);
    const double hours = spr * (1.0 + params_.analyzeFraction) /
                         edaProductivityFit(chiplet.nodeNm);
    return hoursToCo2Kg(hours);
}

double
DesignModel::designHours(double gates_mgates, double node_nm) const
{
    const double spr = params_.sprHoursPerMgate * gates_mgates;
    const double analyze = params_.analyzeFraction * spr;
    // Eq. 13: iterate SP&R + analysis, derated by eta_EDA, with
    // verification as a multiple of the iterative effort.
    const double iterative = (spr + analyze) *
                             params_.designIterations /
                             edaProductivityFit(node_nm);
    const double verif = params_.verifMultiple * iterative;
    return verif + iterative;
}

DesignBreakdown
DesignModel::chipletDesign(const Chiplet &chiplet) const
{
    DesignBreakdown out;
    const double gates = gateCountMgates(chiplet);
    out.sprHours = params_.sprHoursPerMgate * gates;
    out.totalHours = designHours(gates, chiplet.nodeNm);
    out.co2Kg = hoursToCo2Kg(out.totalHours);
    out.amortizedCo2Kg = out.co2Kg / params_.chipletVolume;
    return out;
}

double
DesignModel::systemDesignCo2Kg(const SystemSpec &system,
                               double comm_transistors_mtr,
                               double comm_node_nm) const
{
    return systemDesignCo2Kg(
        system, comm_transistors_mtr, comm_node_nm,
        [this](const Chiplet &chiplet) {
            return chipletDesign(chiplet);
        });
}

double
DesignModel::systemDesignCo2Kg(
    const SystemSpec &system, double comm_transistors_mtr,
    double comm_node_nm,
    const std::function<DesignBreakdown(const Chiplet &)>
        &chiplet_design) const
{
    double per_part = 0.0;
    for (const auto &chiplet : system.chiplets) {
        if (chiplet.reused)
            continue; // pre-designed IP: Cdes already amortized
        per_part += chiplet_design(chiplet).amortizedCo2Kg;
    }
    if (comm_transistors_mtr > 0.0) {
        const double comm_gates =
            comm_transistors_mtr * params_.gatesPerTransistor;
        const double comm_co2 =
            hoursToCo2Kg(designHours(comm_gates, comm_node_nm));
        per_part += comm_co2 / params_.systemVolume;
    }
    return per_part;
}

} // namespace ecochip
