/**
 * @file
 * Design-CFP model (paper Sec. III-E, Eqs. 12-13).
 *
 * Design carbon comes from the CPU compute burned by EDA tools
 * across synthesis/place-and-route (SP&R) iterations, analysis, and
 * verification. It is amortized across the number of chiplets
 * manufactured (NMi) and systems built (NS) -- the mechanism behind
 * the "reuse" savings of Sec. V-C.
 */

#ifndef ECOCHIP_DESIGN_DESIGN_MODEL_H
#define ECOCHIP_DESIGN_DESIGN_MODEL_H

#include <functional>

#include "chiplet/chiplet.h"
#include "support/interp.h"
#include "tech/tech_db.h"

namespace ecochip {

/** Knobs of the design-CFP model (Table I defaults). */
struct DesignParams
{
    /** Power of one design-compute CPU, W (Table I: 10 W). */
    double pdesW = 10.0;

    /** Design iterations Ndes (Table I: 100). */
    int designIterations = 100;

    /** Carbon intensity of design-compute energy, g CO2/kWh. */
    double intensityGPerKwh = 700.0;

    /**
     * SP&R compute anchor: the paper measures 24 CPU-hours for a
     * 700k-gate design in a commercial 7 nm flow, i.e. ~34.3
     * CPU-hours per million gates.
     */
    double sprHoursPerMgate = 24.0 / 0.7;

    /** tanalyze as a fraction of tSP&R per iteration. */
    double analyzeFraction = 0.25;

    /**
     * tverif as a multiple of all iterative SP&R+analysis time;
     * verification dominates ~80% of product development time
     * (Sec. V-A(2)), hence 4x.
     */
    double verifMultiple = 4.0;

    /** Logic gates per transistor (GA102: 4.5B gates, Sec. V-A). */
    double gatesPerTransistor = 0.1;

    /** Chiplets of each type manufactured, NMi. */
    double chipletVolume = 100000.0;

    /** Systems manufactured, NS. */
    double systemVolume = 100000.0;
};

/** Per-chiplet design-carbon breakdown. */
struct DesignBreakdown
{
    /** Single SP&R run compute time (CPU-hours). */
    double sprHours = 0.0;

    /** Total design compute time tdes,i (CPU-hours, Eq. 13). */
    double totalHours = 0.0;

    /** Unamortized design carbon Cdes,i (kg CO2). */
    double co2Kg = 0.0;

    /** Cdes,i / NMi: amortized per part (kg CO2). */
    double amortizedCo2Kg = 0.0;
};

/**
 * Design-CFP estimator.
 *
 * Implements Eq. 13 with the EDA-productivity factor eta_EDA(p)
 * obtained from a near-linear regression over the technology
 * database's productivity samples (the paper's regression over
 * [23]), and Eq. 12's amortization over NMi/NS. Chiplets marked
 * `reused` contribute no design carbon: their design was paid for
 * by previous products.
 */
class DesignModel
{
  public:
    /**
     * @param tech Technology database (must outlive the model).
     * @param params Design-model knobs.
     */
    explicit DesignModel(const TechDb &tech,
                         DesignParams params = DesignParams());

    /** Parameters in use. */
    const DesignParams &params() const { return params_; }

    /**
     * Regressed EDA productivity at a node, clamped to (0, 1].
     */
    double edaProductivityFit(double node_nm) const;

    /** Logic-gate count of a chiplet (millions of gates). */
    double gateCountMgates(const Chiplet &chiplet) const;

    /**
     * Single-SP&R-iteration carbon for a chiplet (kg CO2): the
     * quantity plotted in Fig. 7(b).
     */
    double singleIterationCo2Kg(const Chiplet &chiplet) const;

    /** Full per-chiplet design breakdown (Eq. 13). */
    DesignBreakdown chipletDesign(const Chiplet &chiplet) const;

    /**
     * System design CFP per part (Eq. 12):
     *   Cdes = sum_i Cdes,i / NMi + Cdes,comm / NS
     *
     * @param system Chiplet set; `reused` chiplets are skipped.
     * @param comm_transistors_mtr Router/PHY IP content whose
     *        design is charged once per system (Cdes,comm).
     * @param comm_node_nm Node the communication IP is designed in.
     */
    double systemDesignCo2Kg(const SystemSpec &system,
                             double comm_transistors_mtr = 0.0,
                             double comm_node_nm = 65.0) const;

    /**
     * Eq. 12 with an injected per-chiplet evaluator -- the hook
     * cache-backed callers (EcoChip's evaluation cache) use to
     * memoize `chipletDesign` without duplicating the
     * amortization loop.
     *
     * @param chiplet_design Evaluator for one chiplet's design
     *        breakdown; must agree with `chipletDesign()`.
     */
    double systemDesignCo2Kg(
        const SystemSpec &system, double comm_transistors_mtr,
        double comm_node_nm,
        const std::function<DesignBreakdown(const Chiplet &)>
            &chiplet_design) const;

  private:
    /** Eq. 13 total design hours for a gate count at a node. */
    double designHours(double gates_mgates, double node_nm) const;

    /** Convert compute hours to kg CO2. */
    double hoursToCo2Kg(double hours) const;

    const TechDb *tech_;
    DesignParams params_;
    LinearRegression etaFit_;
};

} // namespace ecochip

#endif // ECOCHIP_DESIGN_DESIGN_MODEL_H
