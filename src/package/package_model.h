/**
 * @file
 * HI-oriented CFP overhead model (paper Sec. III-D): package
 * manufacturing/assembly (Cpackage), whitespace (Cwhitespace,
 * folded into the package area), and inter-die communication
 * (Cmfg,comm) for the five packaging architectures.
 */

#ifndef ECOCHIP_PACKAGE_PACKAGE_MODEL_H
#define ECOCHIP_PACKAGE_PACKAGE_MODEL_H

#include "chiplet/chiplet.h"
#include "floorplan/floorplan.h"
#include "manufacture/mfg_model.h"
#include "noc/router_model.h"
#include "package/package_params.h"
#include "yield/yield_model.h"

namespace ecochip {

/** All HI overheads of one package evaluation. */
struct HiResult
{
    /** Package manufacturing/assembly carbon Cpackage (kg CO2). */
    double packageCo2Kg = 0.0;

    /**
     * Inter-die communication carbon Cmfg,comm (kg CO2): the
     * *additional* chiplet manufacturing carbon from PHY/router
     * area (including its yield degradation), or the active
     * interposer's router FEOL.
     */
    double routingCo2Kg = 0.0;

    /** Package substrate / interposer outline area (mm^2). */
    double packageAreaMm2 = 0.0;

    /** Whitespace inside the outline (mm^2). */
    double whitespaceAreaMm2 = 0.0;

    /** Assembly/package yield dividing the package carbon. */
    double packageYield = 1.0;

    /** Number of silicon bridges (EMIB only). */
    int bridgeCount = 0;

    /** Total TSV/microbump/hybrid-bond count (3D or stacks). */
    double bondCount = 0.0;

    /** Carbon of vertical bonds inside stack groups (kg CO2). */
    double stackBondCo2Kg = 0.0;

    /** Total added communication silicon (PHY or routers), mm^2. */
    double commAreaMm2 = 0.0;

    /** Operational power overhead of the NoC/PHY circuitry (W). */
    double nocPowerW = 0.0;

    /** Total HI carbon CHI = Cpackage + Cmfg,comm (kg CO2). */
    double totalCo2Kg() const { return packageCo2Kg + routingCo2Kg; }
};

/**
 * Evaluator for HI packaging overheads.
 *
 * The model implements:
 *  - Eq. 9 for RDL fanout (and the organic base substrate of the
 *    bridge/interposer packages),
 *  - Eq. 10 for silicon bridges, with the bridge count derived from
 *    the floorplan's adjacent-edge overlaps and the EMIB range,
 *  - interposer models on a per-layer, per-area basis; the active
 *    interposer additionally pays full-die FEOL on its router and
 *    repeater regions and sees full silicon defectivity,
 *  - Eq. 11 for 3D stacks with a dense through-stack via grid at
 *    the minimum pitch of the selected bond type.
 *
 * Communication overheads follow Sec. III-D(2): PHY macros are
 * added to the chiplets for RDL/EMIB; NoC routers are added to the
 * chiplets for passive interposers and 3D (advanced node, small),
 * or to the interposer itself for active interposers (legacy node,
 * larger).
 */
class PackageModel
{
  public:
    /**
     * @param tech Technology database (must outlive the model).
     * @param mfg Manufacturing model used to charge added
     *        communication area at chiplet nodes.
     * @param params Packaging knobs.
     */
    PackageModel(const TechDb &tech, const ManufacturingModel &mfg,
                 PackageParams params = PackageParams());

    /** Parameters in use. */
    const PackageParams &params() const { return params_; }

    /**
     * Evaluate all HI overheads for a system.
     *
     * Monolithic systems (one die) have no HI overhead and return a
     * zero result, matching the paper's monolithic baselines.
     *
     * @param system Chiplet-based system description.
     */
    HiResult evaluate(const SystemSpec &system) const;

    /**
     * The floorplan the evaluation is based on (also useful for
     * callers that want placements/adjacencies).
     */
    FloorplanResult floorplan(const SystemSpec &system) const;

  private:
    /** Eq. 9-style per-layer patterning carbon over an area. */
    double layeredPatterningCo2Kg(int layers,
                                  double epla_kwh_per_cm2,
                                  double area_mm2,
                                  double yield) const;

    /** Organic base substrate of bridge/interposer packages. */
    double baseSubstrateCo2Kg(double area_mm2) const;

    /**
     * Extra chiplet manufacturing carbon from adding
     * @p added_area_mm2 of communication silicon to a chiplet
     * (captures the yield degradation of the grown die).
     */
    double addedAreaCo2Kg(const Chiplet &chiplet,
                          double added_area_mm2) const;

    void evaluateRdl(const SystemSpec &system,
                     const FloorplanResult &fp, HiResult &out) const;
    void evaluateBridge(const SystemSpec &system,
                        const FloorplanResult &fp,
                        HiResult &out) const;
    void evaluateInterposer(const SystemSpec &system,
                            const FloorplanResult &fp, bool active,
                            HiResult &out) const;
    void evaluate3d(const SystemSpec &system, HiResult &out) const;

    /** PHY-per-chiplet communication overhead (RDL/EMIB). */
    void addPhyOverheads(const SystemSpec &system,
                         HiResult &out) const;

    /**
     * Bond carbon and yield of one vertical stack of tiers;
     * accumulates bond count into @p out and returns the carbon.
     */
    double stackBondCo2Kg(const std::vector<const Chiplet *> &tiers,
                          HiResult &out) const;

    /** Router-per-chiplet communication overhead (passive/3D). */
    void addChipletRouterOverheads(const SystemSpec &system,
                                   HiResult &out) const;

    const TechDb *tech_;
    const ManufacturingModel *mfg_;
    YieldModel yieldModel_;
    PackageParams params_;
    RouterModel router_;
    PhyModel phy_;
};

} // namespace ecochip

#endif // ECOCHIP_PACKAGE_PACKAGE_MODEL_H
