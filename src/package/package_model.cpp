#include "package/package_model.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/units.h"

namespace ecochip {

PackageModel::PackageModel(const TechDb &tech,
                           const ManufacturingModel &mfg,
                           PackageParams params)
    : tech_(&tech), mfg_(&mfg), yieldModel_(tech),
      params_(std::move(params)), router_(tech, params_.router),
      phy_(tech, params_.router.flitWidthBits)
{
    requireConfig(params_.intensityGPerKwh > 0.0,
                  "package carbon intensity must be positive");
    requireConfig(params_.rdlLayers > 0,
                  "RDL layer count must be positive");
    requireConfig(params_.bridgeLayers > 0,
                  "bridge layer count must be positive");
    requireConfig(params_.bridgeRangeMm > 0.0,
                  "bridge range must be positive");
    requireConfig(params_.bridgeAreaMm2 > 0.0,
                  "bridge area must be positive");
    requireConfig(params_.bridgeEmbedYield > 0.0 &&
                      params_.bridgeEmbedYield <= 1.0,
                  "bridge embed yield must be in (0, 1]");
    requireConfig(params_.interposerBeolLayers > 0,
                  "interposer BEOL layer count must be positive");
    requireConfig(params_.repeaterAreaFraction >= 0.0 &&
                      params_.repeaterAreaFraction < 1.0,
                  "repeater area fraction must be in [0, 1)");
    requireConfig(params_.bondPitchUm() > 0.0,
                  "bond pitch must be positive");
    requireConfig(params_.tierAssemblyYield > 0.0 &&
                      params_.tierAssemblyYield <= 1.0,
                  "tier assembly yield must be in (0, 1]");
}

FloorplanResult
PackageModel::floorplan(const SystemSpec &system) const
{
    return Floorplanner(params_.spacingMm)
        .plan(planarBoxes(system, *tech_));
}

double
PackageModel::stackBondCo2Kg(
    const std::vector<const Chiplet *> &tiers,
    HiResult &out) const
{
    requireModel(tiers.size() >= 2,
                 "stack needs at least two tiers");
    double footprint_mm2 = 0.0;
    for (const Chiplet *tier : tiers)
        footprint_mm2 =
            std::max(footprint_mm2, tier->areaMm2(*tech_));

    const int nt = static_cast<int>(tiers.size());
    const double pitch_um = params_.bondPitchUm();
    const double vias = std::floor(
        footprint_mm2 * units::kUm2PerMm2 / (pitch_um * pitch_um));

    const double bond_events = vias * (nt - 1);
    const double yield =
        bondArrayYield(bond_events,
                       params_.bondFailProbability()) *
        std::pow(params_.tierAssemblyYield, nt - 1);

    const double energy_kwh = vias * params_.bondEnergyFactor() *
                              tech_->energyPerTsvKwh(
                                  params_.bondProcessNodeNm);

    out.bondCount += vias;
    out.packageYield *= yield;
    return units::carbonKg(params_.intensityGPerKwh,
                           energy_kwh) /
           yield;
}

double
PackageModel::layeredPatterningCo2Kg(int layers,
                                     double epla_kwh_per_cm2,
                                     double area_mm2,
                                     double yield) const
{
    requireModel(yield > 0.0 && yield <= 1.0,
                 "package layer yield out of range");
    const double area_cm2 = area_mm2 * units::kCm2PerMm2;
    const double energy_kwh = layers * epla_kwh_per_cm2 * area_cm2;
    return units::carbonKg(params_.intensityGPerKwh, energy_kwh) /
           yield;
}

double
PackageModel::baseSubstrateCo2Kg(double area_mm2) const
{
    const double yield =
        yieldModel_.rdlYield(area_mm2, params_.rdlNodeNm);
    return layeredPatterningCo2Kg(
        params_.substrateBaseLayers,
        tech_->eplaRdlKwhPerCm2(params_.rdlNodeNm), area_mm2, yield);
}

double
PackageModel::addedAreaCo2Kg(const Chiplet &chiplet,
                             double added_area_mm2) const
{
    if (added_area_mm2 <= 0.0)
        return 0.0;
    const double base_area = chiplet.areaMm2(*tech_);
    const double grown =
        mfg_->dieMfg(base_area + added_area_mm2, chiplet.nodeNm)
            .totalCo2Kg();
    const double bare =
        mfg_->dieMfg(base_area, chiplet.nodeNm).totalCo2Kg();
    return grown - bare;
}

void
PackageModel::addPhyOverheads(const SystemSpec &system,
                              HiResult &out) const
{
    const double bit_rate_hz =
        params_.nocFlitRateHz * params_.router.flitWidthBits;
    for (const auto &chiplet : system.chiplets) {
        const double phy_area = phy_.areaMm2(chiplet.nodeNm);
        out.routingCo2Kg += addedAreaCo2Kg(chiplet, phy_area);
        out.commAreaMm2 += phy_area;
        out.nocPowerW += phy_.powerW(chiplet.nodeNm, bit_rate_hz);
    }
}

void
PackageModel::addChipletRouterOverheads(const SystemSpec &system,
                                        HiResult &out) const
{
    for (const auto &chiplet : system.chiplets) {
        const double router_area = router_.areaMm2(chiplet.nodeNm);
        out.routingCo2Kg += addedAreaCo2Kg(chiplet, router_area);
        out.commAreaMm2 += router_area;
        out.nocPowerW +=
            router_.powerW(chiplet.nodeNm, params_.nocFlitRateHz);
    }
}

void
PackageModel::evaluateRdl(const SystemSpec &system,
                          const FloorplanResult &fp,
                          HiResult &out) const
{
    const double pkg_area = fp.areaMm2();
    const double yield =
        yieldModel_.rdlYield(pkg_area, params_.rdlNodeNm);

    out.packageCo2Kg = layeredPatterningCo2Kg(
        params_.rdlLayers,
        tech_->eplaRdlKwhPerCm2(params_.rdlNodeNm), pkg_area, yield);
    out.packageYield = yield;
    addPhyOverheads(system, out);
}

void
PackageModel::evaluateBridge(const SystemSpec &system,
                             const FloorplanResult &fp,
                             HiResult &out) const
{
    // Bridge count: one bridge per `range` of overlapping edge on
    // each adjacent pair; an additional bridge when the shared edge
    // exceeds the range (Sec. III-D(1b)). The spanning-tree lower
    // bound keeps every chiplet connected even when bounding-box
    // whitespace hides an abutment from the adjacency extraction.
    int bridges = 0;
    for (const auto &adj : fp.adjacencies) {
        bridges += std::max(
            1, static_cast<int>(
                   std::ceil(adj.overlapMm / params_.bridgeRangeMm)));
    }
    bridges = std::max(
        bridges, static_cast<int>(system.chiplets.size()) - 1);
    out.bridgeCount = bridges;

    const double bridge_yield = yieldModel_.bridgeYield(
        params_.bridgeAreaMm2, params_.bridgeNodeNm);
    const double per_bridge = layeredPatterningCo2Kg(
        params_.bridgeLayers,
        tech_->eplaBridgeKwhPerCm2(params_.bridgeNodeNm),
        params_.bridgeAreaMm2, bridge_yield);

    // Embedding each bridge into its substrate cavity risks the
    // whole substrate; the embed yield compounds per bridge.
    const double embed_yield =
        std::pow(params_.bridgeEmbedYield, bridges);
    const double substrate = baseSubstrateCo2Kg(fp.areaMm2());

    out.packageCo2Kg =
        (substrate + bridges * per_bridge) / embed_yield;
    out.packageYield = embed_yield * std::pow(bridge_yield, bridges);
    addPhyOverheads(system, out);
}

void
PackageModel::evaluateInterposer(const SystemSpec &system,
                                 const FloorplanResult &fp,
                                 bool active, HiResult &out) const
{
    const double node = params_.interposerNodeNm;
    const double area_mm2 = fp.areaMm2();

    // The interposer is an additional large silicon die: its BEOL
    // spans the whole outline, and the die consumes real wafer area
    // (periphery wastage included when the mfg model charges it).
    const double beol_yield =
        active ? yieldModel_.dieYield(area_mm2, node)
               : yieldModel_.interposerYield(area_mm2, node);
    const double beol = layeredPatterningCo2Kg(
        params_.interposerBeolLayers,
        tech_->eplaInterposerKwhPerCm2(node), area_mm2, beol_yield);

    const double wasted_mm2 =
        mfg_->includeWastage()
            ? mfg_->wafer().wastedAreaPerDieMm2(area_mm2)
            : 0.0;
    const double wastage = tech_->cfpaSiKgPerCm2(node) *
                           wasted_mm2 * units::kCm2PerMm2;

    out.packageCo2Kg =
        beol + wastage + baseSubstrateCo2Kg(area_mm2);
    out.packageYield = beol_yield;

    if (active) {
        // Routers move into the interposer (legacy node, larger
        // area than the chiplet-resident routers of the passive
        // flavor), plus FEOL under the repeater regions.
        const double router_area =
            router_.areaMm2(node) *
            static_cast<double>(system.chiplets.size());
        const double repeater_area =
            params_.repeaterAreaFraction * area_mm2;
        const double feol_cfpa =
            mfg_->grossCfpaKgPerCm2(node) / beol_yield;

        out.routingCo2Kg =
            feol_cfpa * router_area * units::kCm2PerMm2;
        out.packageCo2Kg +=
            feol_cfpa * repeater_area * units::kCm2PerMm2;
        out.commAreaMm2 = router_area;
        out.nocPowerW =
            router_.powerW(node, params_.nocFlitRateHz) *
            static_cast<double>(system.chiplets.size());
    } else {
        // Passive interposers cannot host logic: router modules
        // live inside the chiplets, in the chiplets' (advanced)
        // nodes (Sec. III-D(2)).
        addChipletRouterOverheads(system, out);
    }
}

void
PackageModel::evaluate3d(const SystemSpec &system,
                         HiResult &out) const
{
    // The whole system is one tower: footprint set by the largest
    // tier; a dense grid of through-stack connections at the
    // minimum pitch maximizes inter-tier bandwidth
    // (Sec. III-D(1e)).
    double footprint_mm2 = 0.0;
    std::vector<const Chiplet *> tiers;
    for (const auto &chiplet : system.chiplets) {
        footprint_mm2 =
            std::max(footprint_mm2, chiplet.areaMm2(*tech_));
        tiers.push_back(&chiplet);
    }

    const double bonds = stackBondCo2Kg(tiers, out);
    out.stackBondCo2Kg = bonds;
    out.packageCo2Kg = bonds + baseSubstrateCo2Kg(footprint_mm2);
    out.packageAreaMm2 = footprint_mm2;
    out.whitespaceAreaMm2 = 0.0;

    addChipletRouterOverheads(system, out);
}

HiResult
PackageModel::evaluate(const SystemSpec &system) const
{
    requireConfig(!system.chiplets.empty(),
                  "system has no chiplets");
    HiResult out;
    if (system.isMonolithic()) {
        // Monolithic baselines carry no HI-related packaging
        // overheads (Sec. V-A(1)).
        return out;
    }

    if (params_.arch == PackagingArch::Stack3d) {
        evaluate3d(system, out);
        return out;
    }

    const FloorplanResult fp = floorplan(system);
    out.packageAreaMm2 = fp.areaMm2();
    out.whitespaceAreaMm2 = fp.whitespaceAreaMm2;

    switch (params_.arch) {
      case PackagingArch::RdlFanout:
        evaluateRdl(system, fp, out);
        break;
      case PackagingArch::SiliconBridge:
        evaluateBridge(system, fp, out);
        break;
      case PackagingArch::PassiveInterposer:
        evaluateInterposer(system, fp, false, out);
        break;
      case PackagingArch::ActiveInterposer:
        evaluateInterposer(system, fp, true, out);
        break;
      case PackagingArch::Stack3d:
        throw ModelError("3D handled above");
    }

    // Mixed 2.5D/3D: bond carbon of every vertical stack group
    // (HBM-style towers) on top of the planar package.
    std::vector<std::string> groups;
    for (const auto &chiplet : system.chiplets) {
        if (chiplet.stackGroup.empty())
            continue;
        bool seen = false;
        for (const auto &group : groups)
            seen |= group == chiplet.stackGroup;
        if (!seen)
            groups.push_back(chiplet.stackGroup);
    }
    for (const auto &group : groups) {
        std::vector<const Chiplet *> tiers;
        for (const auto &chiplet : system.chiplets)
            if (chiplet.stackGroup == group)
                tiers.push_back(&chiplet);
        if (tiers.size() < 2)
            requireConfig(false, "stack group \"" + group +
                                     "\" needs at least two tiers");
        out.stackBondCo2Kg += stackBondCo2Kg(tiers, out);
    }
    out.packageCo2Kg += out.stackBondCo2Kg;
    return out;
}

} // namespace ecochip
