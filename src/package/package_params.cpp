#include "package/package_params.h"

#include "support/error.h"

namespace ecochip {

const char *
toString(PackagingArch arch)
{
    switch (arch) {
      case PackagingArch::RdlFanout: return "rdl_fanout";
      case PackagingArch::SiliconBridge: return "silicon_bridge";
      case PackagingArch::PassiveInterposer:
        return "passive_interposer";
      case PackagingArch::ActiveInterposer:
        return "active_interposer";
      case PackagingArch::Stack3d: return "3d";
    }
    return "unknown";
}

PackagingArch
packagingArchFromString(const std::string &name)
{
    if (name == "rdl_fanout" || name == "rdl" || name == "fanout")
        return PackagingArch::RdlFanout;
    if (name == "silicon_bridge" || name == "emib" || name == "lsi")
        return PackagingArch::SiliconBridge;
    if (name == "passive_interposer" || name == "passive")
        return PackagingArch::PassiveInterposer;
    if (name == "active_interposer" || name == "active")
        return PackagingArch::ActiveInterposer;
    if (name == "3d" || name == "stack3d" || name == "3d_stack")
        return PackagingArch::Stack3d;
    throw ConfigError("unknown packaging architecture: \"" + name +
                      "\"");
}

const char *
toString(BondType type)
{
    switch (type) {
      case BondType::Tsv: return "tsv";
      case BondType::Microbump: return "microbump";
      case BondType::HybridBond: return "hybrid";
    }
    return "unknown";
}

BondType
bondTypeFromString(const std::string &name)
{
    if (name == "tsv")
        return BondType::Tsv;
    if (name == "microbump" || name == "ubump")
        return BondType::Microbump;
    if (name == "hybrid" || name == "hybrid_bond")
        return BondType::HybridBond;
    throw ConfigError("unknown bond type: \"" + name + "\"");
}

double
PackageParams::bondPitchUm() const
{
    switch (bondType) {
      case BondType::Tsv: return tsvPitchUm;
      case BondType::Microbump: return microbumpPitchUm;
      case BondType::HybridBond: return hybridBondPitchUm;
    }
    throw ModelError("unhandled bond type");
}

double
PackageParams::bondEnergyFactor() const
{
    switch (bondType) {
      case BondType::Tsv: return 1.0;
      case BondType::Microbump: return 0.4;
      case BondType::HybridBond: return 0.01;
    }
    throw ModelError("unhandled bond type");
}

double
PackageParams::bondFailProbability() const
{
    switch (bondType) {
      case BondType::Tsv: return tsvFailProbability;
      case BondType::Microbump: return microbumpFailProbability;
      case BondType::HybridBond: return hybridBondFailProbability;
    }
    throw ModelError("unhandled bond type");
}

} // namespace ecochip
