/**
 * @file
 * Packaging-architecture taxonomy and parameters (paper Sec. II-B,
 * Sec. III-A(2), Table I).
 */

#ifndef ECOCHIP_PACKAGE_PACKAGE_PARAMS_H
#define ECOCHIP_PACKAGE_PACKAGE_PARAMS_H

#include <string>

#include "noc/router_model.h"

namespace ecochip {

/** The four advanced packaging/integration families of Sec. II-B
 *  (interposers split into passive and active). */
enum class PackagingArch
{
    RdlFanout,         ///< RDL fanout on EMC substrate (Fig. 4(a))
    SiliconBridge,     ///< EMIB / LSI bridges (Fig. 4(b))
    PassiveInterposer, ///< 2.5D, BEOL-only interposer (Fig. 4(c))
    ActiveInterposer,  ///< 2.5D, FEOL+BEOL interposer (Fig. 4(c))
    Stack3d,           ///< 3D stacking, TSV/ubump/bond (Fig. 4(d))
};

/** Printable name of a packaging architecture. */
const char *toString(PackagingArch arch);

/**
 * Parse a packaging architecture from its config spelling
 * ("rdl_fanout", "silicon_bridge", "passive_interposer",
 * "active_interposer", "3d").
 */
PackagingArch packagingArchFromString(const std::string &name);

/** Vertical interconnect family for 3D integration. */
enum class BondType
{
    Tsv,        ///< through-silicon vias (F2B stacking)
    Microbump,  ///< microbumps (F2F stacking)
    HybridBond, ///< direct bumpless Cu-Cu bonding
};

/** Printable name of a bond type. */
const char *toString(BondType type);

/** Parse a bond type ("tsv" | "microbump" | "hybrid"). */
BondType bondTypeFromString(const std::string &name);

/**
 * All packaging knobs, defaulted to the paper's setup (Sec. IV:
 * packaging interconnect in 65 nm, Table I ranges).
 */
struct PackageParams
{
    /** Selected architecture. */
    PackagingArch arch = PackagingArch::RdlFanout;

    /** Packaging-fab energy carbon intensity Cpkg,src (g/kWh). */
    double intensityGPerKwh = 700.0;

    /** Inter-chiplet spacing on the substrate (mm). */
    double spacingMm = 0.5;

    /** @{ @name RDL fanout (Eq. 9) */
    /** RDL metal layer count L_RDL (Table I: 3 - 9). */
    int rdlLayers = 6;
    /** RDL patterning node (Table I: 22 - 65 nm). */
    double rdlNodeNm = 65.0;
    /** @} */

    /**
     * Build-up organic substrate layer count under bridge and
     * interposer packages (modeled as coarse RDL layers).
     */
    int substrateBaseLayers = 3;

    /** @{ @name Silicon bridge / EMIB (Eq. 10) */
    /** Metal layers per bridge L_bridge (Table I: 3 - 4). */
    int bridgeLayers = 4;
    /** Bridge patterning node (Table I: 22 - 65 nm). */
    double bridgeNodeNm = 65.0;
    /** Reach of one bridge along a die edge (EMIB spec: 2 mm). */
    double bridgeRangeMm = 2.0;
    /** Silicon area of one bridge (EMIB spec: 2x2 mm^2). */
    double bridgeAreaMm2 = 4.0;
    /** Yield of embedding one bridge into the substrate cavity. */
    double bridgeEmbedYield = 0.98;
    /** @} */

    /** @{ @name 2.5D interposers */
    /** Interposer node (Table I: 22 - 65 nm). */
    double interposerNodeNm = 65.0;
    /** Interposer BEOL layer count. */
    int interposerBeolLayers = 4;
    /**
     * Fraction of an active interposer's area occupied by repeater
     * FEOL beyond the NoC routers.
     */
    double repeaterAreaFraction = 0.02;
    /** @} */

    /** @{ @name 3D stacking (Eq. 11) */
    /** Vertical interconnect family. */
    BondType bondType = BondType::Microbump;
    /** TSV pitch (Table I: 10 - 45 um). */
    double tsvPitchUm = 25.0;
    /** Microbump pitch (Table I: 10 - 45 um). */
    double microbumpPitchUm = 25.0;
    /** Hybrid-bond pitch (Table I: 1 - 10 um). */
    double hybridBondPitchUm = 5.0;
    /** Per-TSV misalignment/void failure probability. */
    double tsvFailProbability = 1.0e-7;
    /** Per-microbump failure probability. */
    double microbumpFailProbability = 1.0e-7;
    /**
     * Per-hybrid-bond failure probability. Wafer-level Cu-Cu
     * bonding is orders of magnitude more reliable per connection
     * than discrete bumps, which is what makes its 1 - 10 um
     * pitches viable at all.
     */
    double hybridBondFailProbability = 1.0e-9;
    /** Mechanical assembly yield per stacked tier. */
    double tierAssemblyYield = 0.99;
    /** Node whose via/bump process energy is charged (nm). */
    double bondProcessNodeNm = 65.0;
    /** @} */

    /** @{ @name Inter-die communication (Sec. III-D(2)) */
    /** NoC router microarchitecture (Table I: 512-bit flits). */
    RouterParams router;
    /** Average flit rate per router for NoC power (flits/s). */
    double nocFlitRateHz = 1.0e9;
    /** @} */

    /** Pitch of the selected bond type (um). */
    double bondPitchUm() const;

    /** Per-connection failure probability of the selected type. */
    double bondFailProbability() const;

    /**
     * Energy scale of the selected bond type relative to the
     * TechDb per-TSV energy. TSVs pay full etch/fill/reveal cost
     * per via; microbumps are cheaper; hybrid bonds are formed by
     * blanket wafer bonding + CMP, so their per-connection energy
     * is tiny even at 10^8 connections.
     */
    double bondEnergyFactor() const;
};

} // namespace ecochip

#endif // ECOCHIP_PACKAGE_PACKAGE_PARAMS_H
