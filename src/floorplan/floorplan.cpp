#include "floorplan/floorplan.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "support/error.h"

namespace ecochip {

double
FloorplanResult::whitespaceFraction() const
{
    const double outline = areaMm2();
    return outline > 0.0 ? whitespaceAreaMm2 / outline : 0.0;
}

const Placement &
FloorplanResult::placement(const std::string &name) const
{
    for (const auto &p : placements)
        if (p.name == name)
            return p;
    throw ConfigError("no placement for chiplet \"" + name + "\"");
}

Floorplanner::Floorplanner(double spacing_mm)
    : spacingMm_(spacing_mm)
{
    requireConfig(spacing_mm >= 0.0,
                  "chiplet spacing must be non-negative");
}

void
Floorplanner::setAspectCandidates(std::vector<double> candidates)
{
    requireConfig(!candidates.empty(),
                  "aspect candidate list must be non-empty");
    for (double r : candidates)
        requireConfig(r > 0.0,
                      "aspect candidates must be positive");
    aspectCandidates_ = std::move(candidates);
}

namespace {

/**
 * One realization of a slicing sub-tree: its bounding box plus the
 * child realizations and cut direction that produce it.
 */
struct Shape
{
    double widthMm = 0.0;
    double heightMm = 0.0;
    int leftChoice = -1;  ///< index into left child's curve
    int rightChoice = -1; ///< index into right child's curve
    bool horizontalCut = false;

    double areaMm2() const { return widthMm * heightMm; }
};

/** Slicing-tree node with its non-dominated shape curve. */
struct SliceNode
{
    int boxIndex = -1; ///< leaf payload

    std::unique_ptr<SliceNode> left;
    std::unique_ptr<SliceNode> right;

    /** Non-dominated realizations, sorted by increasing width. */
    std::vector<Shape> shapes;

    bool isLeaf() const { return !left && !right; }
};

/**
 * Build the slicing tree: greedy area-balanced 2-way partition of
 * the decreasing-area visit order, recursively to single-chiplet
 * leaves.
 */
std::unique_ptr<SliceNode>
buildTree(const std::vector<int> &indices,
          const std::vector<ChipletBox> &boxes)
{
    auto node = std::make_unique<SliceNode>();
    if (indices.size() == 1) {
        node->boxIndex = indices.front();
        return node;
    }

    std::vector<int> group_a, group_b;
    double weight_a = 0.0, weight_b = 0.0;
    for (int idx : indices) {
        const double area = boxes[idx].areaMm2;
        if (weight_a <= weight_b) {
            group_a.push_back(idx);
            weight_a += area;
        } else {
            group_b.push_back(idx);
            weight_b += area;
        }
    }
    node->left = buildTree(group_a, boxes);
    node->right = buildTree(group_b, boxes);
    return node;
}

/**
 * Keep only the Pareto frontier of shapes (no other shape is both
 * narrower and shorter), sorted by increasing width. The
 * comparator is a total order -- bounding box first, then child
 * choices -- so the surviving representative of equal-box shapes
 * is canonical: a function of the shape multiset, independent of
 * enumeration order (std::sort is unstable) and of whether the
 * dominated entries interleaved between them were enumerated at
 * all (the combine cutoff skips some).
 */
std::vector<Shape>
pruneDominated(std::vector<Shape> shapes)
{
    std::sort(shapes.begin(), shapes.end(),
              [](const Shape &a, const Shape &b) {
                  if (a.widthMm != b.widthMm)
                      return a.widthMm < b.widthMm;
                  if (a.heightMm != b.heightMm)
                      return a.heightMm < b.heightMm;
                  if (a.horizontalCut != b.horizontalCut)
                      return a.horizontalCut;
                  if (a.leftChoice != b.leftChoice)
                      return a.leftChoice < b.leftChoice;
                  return a.rightChoice < b.rightChoice;
              });
    std::vector<Shape> frontier;
    for (const Shape &shape : shapes) {
        if (!frontier.empty() &&
            shape.heightMm >= frontier.back().heightMm - 1e-12)
            continue; // dominated (wider and not shorter)
        frontier.push_back(shape);
    }
    return frontier;
}

/** Cap the curve length to bound combine cost. */
std::vector<Shape>
thinCurve(std::vector<Shape> shapes, std::size_t max_size)
{
    if (shapes.size() <= max_size)
        return shapes;
    std::vector<Shape> thinned;
    const double step = static_cast<double>(shapes.size() - 1) /
                        static_cast<double>(max_size - 1);
    for (std::size_t i = 0; i < max_size; ++i) {
        thinned.push_back(
            shapes[static_cast<std::size_t>(i * step + 0.5)]);
    }
    return thinned;
}

/** Build each node's shape curve bottom-up (Stockmeyer-style). */
void
shapeTree(SliceNode &node, const std::vector<ChipletBox> &boxes,
          const std::vector<double> &aspect_candidates,
          double spacing_mm, bool exhaustive_combine)
{
    constexpr std::size_t max_curve = 16;

    if (node.isLeaf()) {
        const auto &box = boxes[node.boxIndex];
        // A pinned aspect ratio restricts the leaf to that shape
        // and its rotation; the default leaves the planner free
        // over its candidate set (each plus rotation).
        std::vector<double> ratios;
        if (box.aspectRatio != 1.0) {
            ratios = {box.aspectRatio, 1.0 / box.aspectRatio};
        } else {
            for (double r : aspect_candidates) {
                ratios.push_back(r);
                ratios.push_back(1.0 / r);
            }
        }
        std::vector<Shape> shapes;
        for (double r : ratios) {
            Shape s;
            s.widthMm = std::sqrt(box.areaMm2 * r);
            s.heightMm = std::sqrt(box.areaMm2 / r);
            shapes.push_back(s);
        }
        node.shapes =
            thinCurve(pruneDominated(std::move(shapes)),
                      max_curve);
        return;
    }

    shapeTree(*node.left, boxes, aspect_candidates, spacing_mm,
              exhaustive_combine);
    shapeTree(*node.right, boxes, aspect_candidates, spacing_mm,
              exhaustive_combine);

    // Child curves are non-dominated: sorted by strictly
    // increasing width, strictly decreasing height. That orders a
    // lower bound on each cut's bounding box, which prunes most of
    // the pair enumeration without touching the frontier:
    //
    //  - Horizontal cut (side by side): the combined height is at
    //    least ls.height. Once the right child is no taller than
    //    the left (rs.height <= ls.height), every wider right
    //    shape yields the same height at strictly greater width --
    //    dominated by the first such pairing. Emit it and stop.
    //  - Vertical cut (stacked): symmetric on widths; scan the
    //    right curve in decreasing width and stop after the first
    //    right shape no wider than the left.
    //
    // Every skipped pair is strictly dominated by an emitted one,
    // so pruneDominated() returns the identical frontier and the
    // plan is bit-identical to the exhaustive enumeration.
    std::vector<Shape> shapes;
    const auto &left = node.left->shapes;
    const auto &right = node.right->shapes;
    for (std::size_t li = 0; li < left.size(); ++li) {
        const Shape &ls = left[li];

        // Horizontal cut: children side by side.
        for (std::size_t ri = 0; ri < right.size(); ++ri) {
            const Shape &rs = right[ri];
            Shape h;
            h.widthMm = ls.widthMm + spacing_mm + rs.widthMm;
            h.heightMm = std::max(ls.heightMm, rs.heightMm);
            h.leftChoice = static_cast<int>(li);
            h.rightChoice = static_cast<int>(ri);
            h.horizontalCut = true;
            shapes.push_back(h);
            if (!exhaustive_combine &&
                rs.heightMm <= ls.heightMm)
                break;
        }

        // Vertical cut: children stacked.
        for (std::size_t k = right.size(); k-- > 0;) {
            const Shape &rs = right[k];
            Shape v;
            v.widthMm = std::max(ls.widthMm, rs.widthMm);
            v.heightMm = ls.heightMm + spacing_mm + rs.heightMm;
            v.leftChoice = static_cast<int>(li);
            v.rightChoice = static_cast<int>(k);
            v.horizontalCut = false;
            shapes.push_back(v);
            if (!exhaustive_combine && rs.widthMm <= ls.widthMm)
                break;
        }
    }
    node.shapes =
        thinCurve(pruneDominated(std::move(shapes)), max_curve);
}

/** Index of the minimum-area shape (width as tie-break). */
int
bestShape(const std::vector<Shape> &shapes)
{
    requireModel(!shapes.empty(), "empty shape curve");
    int best = 0;
    for (std::size_t i = 1; i < shapes.size(); ++i) {
        if (shapes[i].areaMm2() <
            shapes[best].areaMm2() - 1e-12)
            best = static_cast<int>(i);
    }
    return best;
}

/** Assign coordinates top-down from the chosen realizations. */
void
placeTree(const SliceNode &node, int shape_index,
          const std::vector<ChipletBox> &boxes, double x_mm,
          double y_mm, double spacing_mm,
          std::vector<Placement> &out)
{
    const Shape &shape = node.shapes[shape_index];
    if (node.isLeaf()) {
        const auto &box = boxes[node.boxIndex];
        out.push_back({box.name, x_mm, y_mm, shape.widthMm,
                       shape.heightMm});
        return;
    }
    const Shape &ls = node.left->shapes[shape.leftChoice];
    if (shape.horizontalCut) {
        placeTree(*node.left, shape.leftChoice, boxes, x_mm, y_mm,
                  spacing_mm, out);
        placeTree(*node.right, shape.rightChoice, boxes,
                  x_mm + ls.widthMm + spacing_mm, y_mm,
                  spacing_mm, out);
    } else {
        placeTree(*node.left, shape.leftChoice, boxes, x_mm, y_mm,
                  spacing_mm, out);
        placeTree(*node.right, shape.rightChoice, boxes, x_mm,
                  y_mm + ls.heightMm + spacing_mm, spacing_mm,
                  out);
    }
}

/** 1-D overlap of [a0, a1] and [b0, b1]. */
double
rangeOverlap(double a0, double a1, double b0, double b1)
{
    return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

/**
 * Extract abutting pairs: chiplets whose rectangles face each other
 * across at most the spacing gap (plus tolerance) and overlap along
 * the facing edge.
 */
std::vector<Adjacency>
extractAdjacencies(const std::vector<Placement> &placements,
                   double spacing_mm)
{
    const double gap_limit = spacing_mm + 1e-6;
    std::vector<Adjacency> adjacencies;
    for (std::size_t i = 0; i < placements.size(); ++i) {
        for (std::size_t j = i + 1; j < placements.size(); ++j) {
            const auto &a = placements[i];
            const auto &b = placements[j];

            const double ax1 = a.xMm + a.widthMm;
            const double ay1 = a.yMm + a.heightMm;
            const double bx1 = b.xMm + b.widthMm;
            const double by1 = b.yMm + b.heightMm;

            const double x_gap =
                std::max(b.xMm - ax1, a.xMm - bx1);
            const double y_gap =
                std::max(b.yMm - ay1, a.yMm - by1);

            double overlap = 0.0;
            if (x_gap >= 0.0 && x_gap <= gap_limit && y_gap < 0.0) {
                overlap = rangeOverlap(a.yMm, ay1, b.yMm, by1);
            } else if (y_gap >= 0.0 && y_gap <= gap_limit &&
                       x_gap < 0.0) {
                overlap = rangeOverlap(a.xMm, ax1, b.xMm, bx1);
            }
            if (overlap > 1e-9)
                adjacencies.push_back({a.name, b.name, overlap});
        }
    }
    return adjacencies;
}

} // namespace

FloorplanResult
Floorplanner::plan(const std::vector<ChipletBox> &boxes) const
{
    requireConfig(!boxes.empty(),
                  "floorplan needs at least one chiplet");
    for (const auto &box : boxes) {
        requireConfig(box.areaMm2 > 0.0,
                      "chiplet \"" + box.name +
                          "\" must have positive area");
        requireConfig(box.aspectRatio > 0.0,
                      "chiplet \"" + box.name +
                          "\" must have positive aspect ratio");
    }

    // Stable decreasing-area visit order (name-tiebreak keeps the
    // plan deterministic for equal areas).
    std::vector<int> order(boxes.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (boxes[a].areaMm2 != boxes[b].areaMm2)
            return boxes[a].areaMm2 > boxes[b].areaMm2;
        return boxes[a].name < boxes[b].name;
    });

    auto root = buildTree(order, boxes);
    shapeTree(*root, boxes, aspectCandidates_, spacingMm_,
              exhaustiveCombine_);
    const int root_choice = bestShape(root->shapes);

    FloorplanResult result;
    result.widthMm = root->shapes[root_choice].widthMm;
    result.heightMm = root->shapes[root_choice].heightMm;
    placeTree(*root, root_choice, boxes, 0.0, 0.0, spacingMm_,
              result.placements);

    for (const auto &box : boxes)
        result.chipletAreaMm2 += box.areaMm2;
    result.whitespaceAreaMm2 =
        result.areaMm2() - result.chipletAreaMm2;
    result.adjacencies =
        extractAdjacencies(result.placements, spacingMm_);
    return result;
}

FloorplanResult
Floorplanner::plan(const SystemSpec &system, const TechDb &tech) const
{
    return plan(planarBoxes(system, tech));
}

std::vector<ChipletBox>
planarBoxes(const SystemSpec &system, const TechDb &tech)
{
    std::vector<ChipletBox> boxes;
    std::vector<std::string> seen_groups;
    for (const auto &chiplet : system.chiplets) {
        if (chiplet.stackGroup.empty()) {
            boxes.push_back(
                {chiplet.name, chiplet.areaMm2(tech), 1.0});
            continue;
        }
        bool seen = false;
        for (const auto &group : seen_groups)
            seen |= group == chiplet.stackGroup;
        if (seen)
            continue;
        seen_groups.push_back(chiplet.stackGroup);
        double footprint = 0.0;
        for (const auto &member : system.chiplets)
            if (member.stackGroup == chiplet.stackGroup)
                footprint =
                    std::max(footprint, member.areaMm2(tech));
        boxes.push_back({chiplet.stackGroup, footprint, 1.0});
    }
    return boxes;
}

} // namespace ecochip
