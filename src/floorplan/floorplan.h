/**
 * @file
 * Whitespace / system-area estimation via a recursive-bipartition
 * slicing floorplan (paper Sec. III-D(3)).
 *
 * The algorithm follows the paper: chiplets are sorted in decreasing
 * area and greedily assigned to the lighter of two partitions
 * (area-balanced 2-way split); each partition is then bipartitioned
 * recursively until it holds a single chiplet, forming a full binary
 * tree whose leaves are chiplets. Processing the tree bottom-up
 * combines sub-partition bounding boxes -- accounting for chiplet
 * spacing and dimension imbalance -- into the package
 * substrate/interposer outline, and identifies chiplet-to-chiplet
 * interfaces for silicon bridges and NoC routers.
 */

#ifndef ECOCHIP_FLOORPLAN_FLOORPLAN_H
#define ECOCHIP_FLOORPLAN_FLOORPLAN_H

#include <string>
#include <vector>

#include "chiplet/chiplet.h"

namespace ecochip {

/** Input to the floorplanner: a named rectangle to place. */
struct ChipletBox
{
    /** Chiplet name carried through to placements/adjacencies. */
    std::string name;

    /** Die area in mm^2. */
    double areaMm2 = 0.0;

    /**
     * Width/height ratio of the die outline. The default 1.0
     * leaves the choice to the planner's aspect candidates; any
     * other value pins the die to that ratio (and its rotation).
     */
    double aspectRatio = 1.0;
};

/** Placed rectangle in the package coordinate frame (mm). */
struct Placement
{
    std::string name;
    double xMm = 0.0; ///< lower-left corner x
    double yMm = 0.0; ///< lower-left corner y
    double widthMm = 0.0;
    double heightMm = 0.0;
};

/** A pair of chiplets with abutting (spacing-separated) edges. */
struct Adjacency
{
    std::string first;
    std::string second;

    /** Length of the shared (overlapping) edge in mm. */
    double overlapMm = 0.0;
};

/** Output of the floorplanner. */
struct FloorplanResult
{
    /** Package/interposer outline (mm). */
    double widthMm = 0.0;
    double heightMm = 0.0;

    /** Outline area (mm^2). */
    double areaMm2() const { return widthMm * heightMm; }

    /** Sum of the placed chiplet areas (mm^2). */
    double chipletAreaMm2 = 0.0;

    /** Outline area minus chiplet area (mm^2). */
    double whitespaceAreaMm2 = 0.0;

    /** Whitespace as a fraction of the outline area. */
    double whitespaceFraction() const;

    /** Placed chiplet rectangles. */
    std::vector<Placement> placements;

    /** Abutting chiplet pairs (bridge/router sites). */
    std::vector<Adjacency> adjacencies;

    /** Lookup a placement by chiplet name. */
    const Placement &placement(const std::string &name) const;
};

/**
 * Deterministic slicing floorplanner.
 *
 * Determinism matters: the whitespace it reports feeds Apackage in
 * Eq. 9 and the interposer area, so results must be reproducible
 * run-to-run.
 */
class Floorplanner
{
  public:
    /** Default inter-chiplet spacing (Table I: 0.1 - 1 mm). */
    static constexpr double kDefaultSpacingMm = 0.5;

    /**
     * @param spacing_mm Minimum spacing between chiplets and between
     *        sub-partitions (assembly keep-out).
     */
    explicit Floorplanner(double spacing_mm = kDefaultSpacingMm);

    /** Configured chiplet spacing in mm. */
    double spacingMm() const { return spacingMm_; }

    /**
     * Disable the dominance lower-bound cutoff in the slicing
     * search and enumerate every child-shape pair when combining
     * sub-floorplans. The cutoff never changes the result (it only
     * skips realizations whose bounding box is provably dominated
     * by an already-enumerated one, so the non-dominated frontier
     * is identical); the exhaustive mode exists to measure the
     * before/after cost in `bench_perf`.
     */
    void setExhaustiveCombine(bool on) { exhaustiveCombine_ = on; }

    /** True when the combine enumeration is exhaustive. */
    bool exhaustiveCombine() const { return exhaustiveCombine_; }

    /**
     * Aspect ratios the planner may choose for each chiplet whose
     * box does not pin one explicitly (paper Sec. III-D(3):
     * processing a leaf "involves setting the orientation and
     * aspect ratio of the chiplet"). The plan keeps, per slicing
     * node, the full non-dominated shape curve (Stockmeyer-style)
     * and picks the minimum-area realization at the root.
     *
     * @param candidates Non-empty list of width/height ratios;
     *        each also contributes its rotated (1/r) form.
     */
    void setAspectCandidates(std::vector<double> candidates);

    /** Aspect candidates in use. */
    const std::vector<double> &
    aspectCandidates() const
    {
        return aspectCandidates_;
    }

    /**
     * Floorplan a set of chiplet boxes.
     *
     * @param boxes One entry per chiplet; at least one required.
     * @return Outline, whitespace, placements, and adjacencies.
     */
    FloorplanResult plan(const std::vector<ChipletBox> &boxes) const;

    /**
     * Convenience: floorplan a SystemSpec by deriving each
     * chiplet's box from the area-scaling model. Stack groups
     * (mixed 2.5D/3D towers) occupy one footprint box each.
     */
    FloorplanResult plan(const SystemSpec &system,
                         const TechDb &tech) const;

  private:
    double spacingMm_;
    bool exhaustiveCombine_ = false;
    std::vector<double> aspectCandidates_ = {1.0};
};

/**
 * Boxes for the planar floorplan of a system: planar chiplets one
 * box each; every vertical stack group one box at the group's
 * footprint (its widest tier).
 *
 * @param system System description.
 * @param tech Technology database for the area model.
 */
std::vector<ChipletBox> planarBoxes(const SystemSpec &system,
                                    const TechDb &tech);

} // namespace ecochip

#endif // ECOCHIP_FLOORPLAN_FLOORPLAN_H
