/**
 * @file
 * Per-node technology parameter database.
 *
 * Every analytical expression in the paper is parameterized by the
 * process node p. This database realizes Table I: each parameter is
 * a piecewise-linear table keyed by node (nm) with anchor points at
 * {3, 5, 7, 10, 14, 22, 28, 40, 65} nm, interpolated for
 * intermediate nodes and clamped outside the range.
 *
 * All published per-area fab numbers are stored per cm^2 exactly as
 * in Table I; query helpers convert at the boundary where needed.
 */

#ifndef ECOCHIP_TECH_TECH_DB_H
#define ECOCHIP_TECH_TECH_DB_H

#include <vector>

#include "support/interp.h"
#include "tech/design_type.h"

namespace ecochip {

/**
 * Technology database with the paper's default calibration.
 *
 * The defaults realize the Table I ranges:
 *  - D0: 0.07 - 0.3 /cm^2 (older nodes lower)
 *  - DT: 5 - 150 MTr/mm^2 (three curves, logic fastest)
 *  - EPA: 0.8 - 3.5 kWh/cm^2
 *  - Cgas: 0.1 - 0.5 kg CO2/cm^2; Cmaterial: 0.5 kg CO2/cm^2
 *  - eta_eq, eta_EDA in (0, 1]
 *  - EPLA (RDL / bridge / interposer): 0.05 - 0.35 kWh/cm^2/layer
 *
 * All tables may be overridden for calibration studies.
 */
class TechDb
{
  public:
    /** Construct with the paper-default calibration. */
    TechDb();

    /** Default node anchors present in every table. */
    static const std::vector<double> &standardNodesNm();

    /**
     * Random (clustered) defect density D0(p).
     *
     * @param node_nm Process node in nm.
     * @return Defects per cm^2.
     */
    double defectDensityPerCm2(double node_nm) const;

    /** Negative-binomial clustering parameter alpha (Table I: 3). */
    double clusteringAlpha() const { return clusteringAlpha_; }

    /**
     * Transistor density DT(d, p) for a design type.
     *
     * @param type Logic / Memory / Analog.
     * @param node_nm Process node in nm.
     * @return Density in MTr per mm^2.
     */
    double transistorDensityMtrPerMm2(DesignType type,
                                      double node_nm) const;

    /**
     * Area-scaling model (paper Sec. III-C(1)):
     * Adie(d, p) = NT / DT(d, p).
     *
     * @param type Design type selecting the density curve.
     * @param node_nm Target node in nm.
     * @param transistors_mtr Transistor count in millions.
     * @return Die area in mm^2.
     */
    double dieAreaMm2(DesignType type, double node_nm,
                      double transistors_mtr) const;

    /**
     * Inverse of the area model: transistor count for a block of
     * known area at a known node.
     *
     * @return Transistor count in millions.
     */
    double transistorsMtr(DesignType type, double node_nm,
                          double area_mm2) const;

    /** Fab energy per unit area EPA(p), kWh per cm^2. */
    double epaKwhPerCm2(double node_nm) const;

    /** Direct GHG process emissions Cgas(p), kg CO2 per cm^2. */
    double cgasKgPerCm2(double node_nm) const;

    /** Material sourcing footprint, kg CO2 per cm^2. */
    double cmaterialKgPerCm2(double node_nm) const;

    /**
     * Raw-silicon footprint used for wasted wafer periphery, kg CO2
     * per cm^2 (CFPA_Si in Eq. 5). Wasted silicon sees material and
     * base wafer processing cost but not the die's patterning
     * energy.
     */
    double cfpaSiKgPerCm2(double node_nm) const;

    /**
     * Process-equipment energy-efficiency derate eta_eq(p) in
     * (0, 1]; mature nodes run on more efficient equipment.
     */
    double equipmentDerate(double node_nm) const;

    /**
     * EDA productivity factor eta_EDA(p) in (0, 1]; mature nodes
     * design faster (Eq. 13 divides by this).
     */
    double edaProductivity(double node_nm) const;

    /**
     * Anchor samples of the eta_EDA curve, for the design model's
     * near-linear regression (paper Sec. III-E).
     */
    std::vector<std::pair<double, double>> edaProductivitySamples()
        const;

    /** Energy per RDL metal layer per area, kWh/cm^2/layer. */
    double eplaRdlKwhPerCm2(double node_nm) const;

    /**
     * Energy per silicon-bridge metal layer per area (ultra-fine
     * L/S lower-metal patterning), kWh/cm^2/layer.
     */
    double eplaBridgeKwhPerCm2(double node_nm) const;

    /** Energy per interposer BEOL layer per area, kWh/cm^2/layer. */
    double eplaInterposerKwhPerCm2(double node_nm) const;

    /**
     * Energy to pattern/manufacture one TSV, microbump, or hybrid
     * bond, in kWh per connection (EPA_TSV,bump,bond in Eq. 11).
     */
    double energyPerTsvKwh(double node_nm) const;

    /**
     * Effective defect density seen by coarse RDL layers (large
     * L/S; derated D0).
     */
    double rdlDefectDensityPerCm2(double node_nm) const;

    /**
     * Effective defect density seen by fine-pitch bridge layers
     * (full D0; "EMIB yields lower than RDL", Sec. II-C).
     */
    double bridgeDefectDensityPerCm2(double node_nm) const;

    /** Effective defect density of interposer BEOL layers. */
    double interposerDefectDensityPerCm2(double node_nm) const;

    /**
     * Derate factor applied to D0(p) by the coarse RDL layers;
     * rdlDefectDensityPerCm2(p) == rdlDefectDerate() * D0(p). Batch
     * evaluators hoist the factor so scaled D0 tables stay bit-
     * identical to per-trial table rebuilds.
     */
    double rdlDefectDerate() const { return rdlDefectDerate_; }

    /** Derate factor applied to D0(p) by interposer BEOL layers. */
    double interposerDefectDerate() const
    {
        return interposerDefectDerate_;
    }

    /** Nominal supply voltage Vdd(p) in volts. */
    double supplyVoltageV(double node_nm) const;

    /** Effective switched capacitance per transistor, fF. */
    double effCapFfPerTransistor(double node_nm) const;

    /** Leakage current per million transistors, mA. */
    double leakageMaPerMtr(double node_nm) const;

    /** 300 mm-equivalent processed wafer cost in USD. */
    double waferCostUsd(double node_nm) const;

    /** Photomask-set NRE cost in USD. */
    double maskSetCostUsd(double node_nm) const;

    /**
     * Energy to manufacture one full photomask set (e-beam write,
     * inspection, repair) in kWh -- the NRE manufacturing-carbon
     * extension of Sec. V-C.
     */
    double maskSetEnergyKwh(double node_nm) const;

    /** @{ @name Calibration overrides */
    void setDefectDensityTable(PiecewiseLinear table);
    void setClusteringAlpha(double alpha);
    void setTransistorDensityTable(DesignType type,
                                   PiecewiseLinear table);
    void setEpaTable(PiecewiseLinear table);
    /** @} */

  private:
    const PiecewiseLinear &densityTable(DesignType type) const;

    PiecewiseLinear defectDensity_;
    double clusteringAlpha_;
    PiecewiseLinear densityLogic_;
    PiecewiseLinear densityMemory_;
    PiecewiseLinear densityAnalog_;
    PiecewiseLinear epa_;
    PiecewiseLinear cgas_;
    double cmaterialKgPerCm2_;
    PiecewiseLinear equipmentDerate_;
    PiecewiseLinear edaProductivity_;
    PiecewiseLinear eplaRdl_;
    PiecewiseLinear eplaBridge_;
    PiecewiseLinear eplaInterposer_;
    PiecewiseLinear energyPerTsv_;
    PiecewiseLinear supplyVoltage_;
    PiecewiseLinear effCap_;
    PiecewiseLinear leakage_;
    PiecewiseLinear waferCost_;
    PiecewiseLinear maskSetCost_;
    PiecewiseLinear maskSetEnergy_;
    double rdlDefectDerate_;
    double interposerDefectDerate_;
};

} // namespace ecochip

#endif // ECOCHIP_TECH_TECH_DB_H
