#include "tech/tech_db.h"

#include "support/error.h"

namespace ecochip {

const std::vector<double> &
TechDb::standardNodesNm()
{
    static const std::vector<double> nodes = {
        3.0, 5.0, 7.0, 10.0, 14.0, 22.0, 28.0, 40.0, 65.0};
    return nodes;
}

TechDb::TechDb()
    // Defect density D0(p): Table I range 0.07 - 0.3 /cm^2; legacy
    // nodes have matured to lower defectivity (Fig. 6(a)).
    : defectDensity_({{3.0, 0.30}, {5.0, 0.25}, {7.0, 0.20},
                      {10.0, 0.15}, {14.0, 0.12}, {22.0, 0.10},
                      {28.0, 0.09}, {40.0, 0.08}, {65.0, 0.07}}),
      clusteringAlpha_(3.0),
      // Transistor density curves (MTr/mm^2). Logic rides the full
      // scaling curve; SRAM flattens at advanced nodes; analog
      // barely scales (Sec. II-A(2)).
      densityLogic_({{3.0, 150.0}, {5.0, 127.0}, {7.0, 91.0},
                     {10.0, 52.0}, {14.0, 29.0}, {22.0, 16.0},
                     {28.0, 11.0}, {40.0, 7.5}, {65.0, 5.0}}),
      densityMemory_({{3.0, 105.0}, {5.0, 98.0}, {7.0, 85.0},
                      {10.0, 70.0}, {14.0, 64.0}, {22.0, 33.0},
                      {28.0, 24.0}, {40.0, 15.0}, {65.0, 10.0}}),
      densityAnalog_({{3.0, 9.7}, {5.0, 9.5}, {7.0, 9.0},
                      {10.0, 8.5}, {14.0, 7.0}, {22.0, 6.5},
                      {28.0, 6.0}, {40.0, 5.2}, {65.0, 4.5}}),
      // Manufacturing energy per area (kWh/cm^2): EUV-heavy
      // advanced nodes cost the most (Table I: 0.8 - 3.5).
      epa_({{3.0, 3.5}, {5.0, 3.0}, {7.0, 2.6}, {10.0, 2.1},
            {14.0, 1.8}, {22.0, 1.4}, {28.0, 1.2}, {40.0, 1.0},
            {65.0, 0.8}}),
      // Direct process GHG emissions (kg CO2/cm^2): 0.1 - 0.5.
      cgas_({{3.0, 0.50}, {5.0, 0.42}, {7.0, 0.35}, {10.0, 0.28},
             {14.0, 0.22}, {22.0, 0.18}, {28.0, 0.15}, {40.0, 0.12},
             {65.0, 0.10}}),
      cmaterialKgPerCm2_(0.5),
      // Equipment-efficiency derate eta_eq(p): mature nodes run on
      // the latest, most efficient litho equipment (Sec. III-C(3)).
      equipmentDerate_({{3.0, 1.0}, {5.0, 0.975}, {7.0, 0.95},
                        {10.0, 0.90}, {14.0, 0.875}, {22.0, 0.85},
                        {28.0, 0.825}, {40.0, 0.80}, {65.0, 0.75}}),
      // EDA productivity eta_EDA(p): latest tools finish a design
      // fastest on mature nodes (Sec. II-A(2), Sec. III-E).
      edaProductivity_({{3.0, 0.40}, {5.0, 0.45}, {7.0, 0.55},
                        {10.0, 0.65}, {14.0, 0.75}, {22.0, 0.85},
                        {28.0, 0.90}, {40.0, 0.95}, {65.0, 1.0}}),
      // Packaging energy-per-layer-per-area tables
      // (kWh/cm^2/layer). RDL is coarse (6/6 - 10/10 um L/S);
      // bridges are ultra-fine (2 um L/S) lower-metal patterning;
      // interposer BEOL sits in between (Table I ranges).
      eplaRdl_({{22.0, 0.20}, {28.0, 0.17}, {40.0, 0.12},
                {65.0, 0.05}}),
      eplaBridge_({{22.0, 0.35}, {28.0, 0.30}, {40.0, 0.22},
                   {65.0, 0.10}}),
      eplaInterposer_({{22.0, 0.30}, {28.0, 0.25}, {40.0, 0.18},
                       {65.0, 0.08}}),
      // Energy per TSV / microbump / hybrid-bond connection (kWh).
      // Via etch + fill + reveal dominates; finer nodes pay more
      // per connection.
      energyPerTsv_({{22.0, 1.2e-5}, {28.0, 1.0e-5}, {40.0, 7.5e-6},
                     {65.0, 5.0e-6}}),
      // Operating-point tables for the operational-CFP model.
      supplyVoltage_({{3.0, 0.65}, {5.0, 0.70}, {7.0, 0.75},
                      {10.0, 0.80}, {14.0, 0.85}, {22.0, 0.90},
                      {28.0, 1.00}, {40.0, 1.10}, {65.0, 1.20}}),
      effCap_({{3.0, 0.040}, {5.0, 0.048}, {7.0, 0.059},
               {10.0, 0.075}, {14.0, 0.100}, {22.0, 0.140},
               {28.0, 0.180}, {40.0, 0.250}, {65.0, 0.350}}),
      leakage_({{3.0, 1.00}, {5.0, 0.80}, {7.0, 0.62}, {10.0, 0.50},
                {14.0, 0.40}, {22.0, 0.30}, {28.0, 0.25},
                {40.0, 0.20}, {65.0, 0.15}}),
      // Processed-wafer and mask-set costs (USD) for the dollar
      // cost model (Sec. VI(2)).
      waferCost_({{3.0, 20000.0}, {5.0, 17000.0}, {7.0, 9300.0},
                  {10.0, 6000.0}, {14.0, 5000.0}, {22.0, 3500.0},
                  {28.0, 3000.0}, {40.0, 2600.0}, {65.0, 2000.0}}),
      maskSetCost_({{3.0, 2.0e7}, {5.0, 1.6e7}, {7.0, 1.0e7},
                    {10.0, 6.0e6}, {14.0, 4.0e6}, {22.0, 2.0e6},
                    {28.0, 1.5e6}, {40.0, 1.0e6}, {65.0, 5.0e5}}),
      // Mask-set manufacturing energy (kWh): more layers and far
      // longer e-beam write times at advanced nodes.
      maskSetEnergy_({{3.0, 3.5e4}, {5.0, 2.8e4}, {7.0, 2.0e4},
                      {10.0, 1.4e4}, {14.0, 1.0e4}, {22.0, 6.0e3},
                      {28.0, 4.5e3}, {40.0, 3.0e3},
                      {65.0, 2.0e3}}),
      // Coarse RDL features tolerate most defects; fine bridge
      // layers see full silicon defectivity.
      rdlDefectDerate_(0.2),
      interposerDefectDerate_(0.5)
{
}

double
TechDb::defectDensityPerCm2(double node_nm) const
{
    requireConfig(node_nm > 0.0, "node must be positive");
    return defectDensity_.eval(node_nm);
}

const PiecewiseLinear &
TechDb::densityTable(DesignType type) const
{
    switch (type) {
      case DesignType::Logic: return densityLogic_;
      case DesignType::Memory: return densityMemory_;
      case DesignType::Analog: return densityAnalog_;
    }
    throw ModelError("unhandled design type");
}

double
TechDb::transistorDensityMtrPerMm2(DesignType type,
                                   double node_nm) const
{
    requireConfig(node_nm > 0.0, "node must be positive");
    return densityTable(type).eval(node_nm);
}

double
TechDb::dieAreaMm2(DesignType type, double node_nm,
                   double transistors_mtr) const
{
    requireConfig(transistors_mtr >= 0.0,
                  "transistor count must be non-negative");
    return transistors_mtr /
           transistorDensityMtrPerMm2(type, node_nm);
}

double
TechDb::transistorsMtr(DesignType type, double node_nm,
                       double area_mm2) const
{
    requireConfig(area_mm2 >= 0.0, "area must be non-negative");
    return area_mm2 * transistorDensityMtrPerMm2(type, node_nm);
}

double
TechDb::epaKwhPerCm2(double node_nm) const
{
    return epa_.eval(node_nm);
}

double
TechDb::cgasKgPerCm2(double node_nm) const
{
    return cgas_.eval(node_nm);
}

double
TechDb::cmaterialKgPerCm2(double) const
{
    return cmaterialKgPerCm2_;
}

double
TechDb::cfpaSiKgPerCm2(double node_nm) const
{
    // Wasted periphery silicon is fully processed wafer area that
    // yields no dies: it carries the material footprint plus the
    // blanket (non-patterning) share of fab energy, taken as 30% of
    // EPA.
    return cmaterialKgPerCm2_ + 0.3 * cgas_.eval(node_nm);
}

double
TechDb::equipmentDerate(double node_nm) const
{
    return equipmentDerate_.eval(node_nm);
}

double
TechDb::edaProductivity(double node_nm) const
{
    return edaProductivity_.eval(node_nm);
}

std::vector<std::pair<double, double>>
TechDb::edaProductivitySamples() const
{
    std::vector<std::pair<double, double>> samples;
    for (double node : standardNodesNm())
        samples.emplace_back(node, edaProductivity_.eval(node));
    return samples;
}

double
TechDb::eplaRdlKwhPerCm2(double node_nm) const
{
    return eplaRdl_.eval(node_nm);
}

double
TechDb::eplaBridgeKwhPerCm2(double node_nm) const
{
    return eplaBridge_.eval(node_nm);
}

double
TechDb::eplaInterposerKwhPerCm2(double node_nm) const
{
    return eplaInterposer_.eval(node_nm);
}

double
TechDb::energyPerTsvKwh(double node_nm) const
{
    return energyPerTsv_.eval(node_nm);
}

double
TechDb::rdlDefectDensityPerCm2(double node_nm) const
{
    return rdlDefectDerate_ * defectDensityPerCm2(node_nm);
}

double
TechDb::bridgeDefectDensityPerCm2(double node_nm) const
{
    return defectDensityPerCm2(node_nm);
}

double
TechDb::interposerDefectDensityPerCm2(double node_nm) const
{
    return interposerDefectDerate_ * defectDensityPerCm2(node_nm);
}

double
TechDb::supplyVoltageV(double node_nm) const
{
    return supplyVoltage_.eval(node_nm);
}

double
TechDb::effCapFfPerTransistor(double node_nm) const
{
    return effCap_.eval(node_nm);
}

double
TechDb::leakageMaPerMtr(double node_nm) const
{
    return leakage_.eval(node_nm);
}

double
TechDb::waferCostUsd(double node_nm) const
{
    return waferCost_.eval(node_nm);
}

double
TechDb::maskSetCostUsd(double node_nm) const
{
    return maskSetCost_.eval(node_nm);
}

double
TechDb::maskSetEnergyKwh(double node_nm) const
{
    return maskSetEnergy_.eval(node_nm);
}

void
TechDb::setDefectDensityTable(PiecewiseLinear table)
{
    requireConfig(!table.empty(), "defect density table is empty");
    defectDensity_ = std::move(table);
}

void
TechDb::setClusteringAlpha(double alpha)
{
    requireConfig(alpha > 0.0, "clustering alpha must be positive");
    clusteringAlpha_ = alpha;
}

void
TechDb::setTransistorDensityTable(DesignType type,
                                  PiecewiseLinear table)
{
    requireConfig(!table.empty(), "density table is empty");
    switch (type) {
      case DesignType::Logic:
        densityLogic_ = std::move(table);
        return;
      case DesignType::Memory:
        densityMemory_ = std::move(table);
        return;
      case DesignType::Analog:
        densityAnalog_ = std::move(table);
        return;
    }
    throw ModelError("unhandled design type");
}

void
TechDb::setEpaTable(PiecewiseLinear table)
{
    requireConfig(!table.empty(), "EPA table is empty");
    epa_ = std::move(table);
}

} // namespace ecochip
