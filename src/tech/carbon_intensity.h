/**
 * @file
 * Carbon intensity of energy sources.
 *
 * Both embodied (fab energy) and operational (use-phase energy)
 * carbon are obtained by multiplying an energy with the carbon
 * intensity of the source powering it (paper Table I: 30 - 700 g
 * CO2/kWh). This module provides the published per-source values.
 */

#ifndef ECOCHIP_TECH_CARBON_INTENSITY_H
#define ECOCHIP_TECH_CARBON_INTENSITY_H

#include <string>
#include <utility>
#include <vector>

namespace ecochip {

/** Energy sources supported by the intensity database. */
enum class EnergySource
{
    Coal,
    Gas,
    Biomass,
    Solar,
    Geothermal,
    Hydro,
    Nuclear,
    Wind,
};

/**
 * Published carbon intensity of an energy source.
 *
 * @param source Energy source.
 * @return Intensity in g CO2 per kWh.
 */
double carbonIntensityGPerKwh(EnergySource source);

/** Printable name of an energy source. */
const char *toString(EnergySource source);

/**
 * Carbon intensity of a weighted mix of sources (a regional grid
 * profile or a fab's PPA portfolio).
 *
 * @param mix (source, weight) pairs; weights need not sum to one
 *        (they are normalized) but must be non-negative with a
 *        positive sum.
 * @return Weighted intensity in g CO2 per kWh.
 */
double mixedIntensityGPerKwh(
    const std::vector<std::pair<EnergySource, double>> &mix);

/**
 * Parse an energy source from its config-file spelling.
 *
 * @param name Lowercase source name, e.g. "coal", "wind".
 * @throws ConfigError on unknown spellings.
 */
EnergySource energySourceFromString(const std::string &name);

} // namespace ecochip

#endif // ECOCHIP_TECH_CARBON_INTENSITY_H
