#include "tech/design_type.h"

#include "support/error.h"

namespace ecochip {

const char *
toString(DesignType type)
{
    switch (type) {
      case DesignType::Logic: return "logic";
      case DesignType::Memory: return "memory";
      case DesignType::Analog: return "analog";
    }
    return "unknown";
}

DesignType
designTypeFromString(const std::string &name)
{
    if (name == "logic" || name == "digital")
        return DesignType::Logic;
    if (name == "memory" || name == "sram")
        return DesignType::Memory;
    if (name == "analog" || name == "io")
        return DesignType::Analog;
    throw ConfigError("unknown design type: \"" + name + "\"");
}

} // namespace ecochip
