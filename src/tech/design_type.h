/**
 * @file
 * Design-type taxonomy used by the area-scaling models.
 *
 * The paper (Sec. III-C(1)) uses three different transistor-density
 * scaling curves because logic, memory (SRAM), and analog blocks
 * scale at very different rates across technology nodes -- the core
 * reason technology "mix and match" saves carbon.
 */

#ifndef ECOCHIP_TECH_DESIGN_TYPE_H
#define ECOCHIP_TECH_DESIGN_TYPE_H

#include <string>

namespace ecochip {

/** Functional class of a die or block, selecting its density curve. */
enum class DesignType
{
    Logic,  ///< digital standard-cell logic; scales fastest
    Memory, ///< SRAM arrays; scaling slows at advanced nodes
    Analog, ///< analog / IO / PHY; barely scales
};

/** Printable name of a design type. */
const char *toString(DesignType type);

/**
 * Parse a design type from its lowercase config-file spelling
 * ("logic" | "memory" | "analog").
 *
 * @param name Spelling from a configuration file.
 * @throws ConfigError on unknown spellings.
 */
DesignType designTypeFromString(const std::string &name);

} // namespace ecochip

#endif // ECOCHIP_TECH_DESIGN_TYPE_H
