#include "tech/carbon_intensity.h"

#include "support/error.h"

namespace ecochip {

double
carbonIntensityGPerKwh(EnergySource source)
{
    // Values consistent with the ACT calibration the paper builds
    // on; the Table I range is 30 - 700 g CO2/kWh.
    switch (source) {
      case EnergySource::Coal: return 700.0;
      case EnergySource::Gas: return 450.0;
      case EnergySource::Biomass: return 230.0;
      case EnergySource::Solar: return 41.0;
      case EnergySource::Geothermal: return 38.0;
      case EnergySource::Hydro: return 24.0;
      case EnergySource::Nuclear: return 12.0;
      case EnergySource::Wind: return 11.0;
    }
    throw ModelError("unhandled energy source");
}

const char *
toString(EnergySource source)
{
    switch (source) {
      case EnergySource::Coal: return "coal";
      case EnergySource::Gas: return "gas";
      case EnergySource::Biomass: return "biomass";
      case EnergySource::Solar: return "solar";
      case EnergySource::Geothermal: return "geothermal";
      case EnergySource::Hydro: return "hydro";
      case EnergySource::Nuclear: return "nuclear";
      case EnergySource::Wind: return "wind";
    }
    return "unknown";
}

double
mixedIntensityGPerKwh(
    const std::vector<std::pair<EnergySource, double>> &mix)
{
    requireConfig(!mix.empty(), "energy mix is empty");
    double weighted = 0.0, weight_sum = 0.0;
    for (const auto &[source, weight] : mix) {
        requireConfig(weight >= 0.0,
                      "energy mix weights must be non-negative");
        weighted += weight * carbonIntensityGPerKwh(source);
        weight_sum += weight;
    }
    requireConfig(weight_sum > 0.0,
                  "energy mix weights must sum to a positive "
                  "value");
    return weighted / weight_sum;
}

EnergySource
energySourceFromString(const std::string &name)
{
    if (name == "coal") return EnergySource::Coal;
    if (name == "gas") return EnergySource::Gas;
    if (name == "biomass") return EnergySource::Biomass;
    if (name == "solar") return EnergySource::Solar;
    if (name == "geothermal") return EnergySource::Geothermal;
    if (name == "hydro") return EnergySource::Hydro;
    if (name == "nuclear") return EnergySource::Nuclear;
    if (name == "wind") return EnergySource::Wind;
    throw ConfigError("unknown energy source: \"" + name + "\"");
}

} // namespace ecochip
