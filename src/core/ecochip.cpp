#include "core/ecochip.h"

#include "manufacture/nre_model.h"
#include "noc/router_model.h"
#include "support/error.h"

namespace ecochip {

EcoChip::EcoChip(EcoChipConfig config, TechDb tech)
    : tech_(std::move(tech)), config_(std::move(config))
{
}

void
EcoChip::setConfig(EcoChipConfig config)
{
    config_ = std::move(config);
}

CarbonReport
EcoChip::estimate(const SystemSpec &system) const
{
    requireConfig(!system.chiplets.empty(),
                  "system has no chiplets");

    ManufacturingModel mfg(tech_, config_.wafer,
                           config_.fabIntensityGPerKwh,
                           config_.yieldModel);
    mfg.setIncludeWastage(config_.includeWastage);

    CarbonReport report;
    report.mfgCo2Kg = mfg.systemMfgCo2Kg(system);

    PackageModel pkg(tech_, mfg, config_.package);
    report.hi = pkg.evaluate(system);

    // Design carbon: the communication IP (routers or PHYs, one
    // per chiplet) is designed once per system and amortized over
    // NS (Eq. 12's Cdes,comm term).
    DesignModel design(tech_, config_.design);
    double comm_mtr = 0.0;
    double comm_node_nm = config_.package.interposerNodeNm;
    if (!system.isMonolithic()) {
        const double nc =
            static_cast<double>(system.chiplets.size());
        switch (config_.package.arch) {
          case PackagingArch::RdlFanout:
          case PackagingArch::SiliconBridge:
            comm_mtr =
                PhyModel(tech_,
                         config_.package.router.flitWidthBits)
                    .transistorsMtr() *
                nc;
            comm_node_nm = system.chiplets.front().nodeNm;
            break;
          case PackagingArch::PassiveInterposer:
          case PackagingArch::Stack3d:
            comm_mtr = RouterModel(tech_, config_.package.router)
                           .transistorsMtr() *
                       nc;
            comm_node_nm = system.chiplets.front().nodeNm;
            break;
          case PackagingArch::ActiveInterposer:
            comm_mtr = RouterModel(tech_, config_.package.router)
                           .transistorsMtr() *
                       nc;
            comm_node_nm = config_.package.interposerNodeNm;
            break;
        }
    }
    report.designCo2Kg =
        design.systemDesignCo2Kg(system, comm_mtr, comm_node_nm);

    if (config_.includeMaskNre) {
        report.nreCo2Kg =
            NreCarbonModel(tech_, config_.fabIntensityGPerKwh,
                           config_.design.chipletVolume)
                .systemNreCo2Kg(system);
    }

    OperationalModel operation(tech_, config_.operating);
    report.operation =
        operation.evaluate(system, report.hi.nocPowerW);

    // Per-chiplet detail. For a monolithic die the blocks are
    // reported individually but manufactured as one die, so the
    // block-level mfg numbers are proportional area shares.
    if (system.singleDie) {
        const double node = system.monolithicNodeNm();
        double total_area = 0.0;
        for (const auto &block : system.chiplets)
            total_area += block.areaMm2(tech_);
        const MfgBreakdown die = mfg.dieMfg(total_area, node);
        for (const auto &block : system.chiplets) {
            const double share =
                block.areaMm2(tech_) / total_area;
            ChipletReport cr;
            cr.name = block.name;
            cr.nodeNm = node;
            cr.areaMm2 = block.areaMm2(tech_);
            cr.yield = die.yield;
            cr.mfgCo2Kg = share * die.totalCo2Kg();
            cr.designCo2Kg =
                block.reused
                    ? 0.0
                    : design.chipletDesign(block).amortizedCo2Kg;
            report.chiplets.push_back(cr);
        }
    } else {
        for (const auto &chiplet : system.chiplets) {
            const MfgBreakdown breakdown = mfg.chipletMfg(chiplet);
            ChipletReport cr;
            cr.name = chiplet.name;
            cr.nodeNm = chiplet.nodeNm;
            cr.areaMm2 = breakdown.areaMm2;
            cr.yield = breakdown.yield;
            cr.mfgCo2Kg = breakdown.totalCo2Kg();
            cr.designCo2Kg =
                chiplet.reused
                    ? 0.0
                    : design.chipletDesign(chiplet).amortizedCo2Kg;
            report.chiplets.push_back(cr);
        }
    }
    return report;
}

double
EcoChip::actEmbodiedCo2Kg(const SystemSpec &system) const
{
    return ActModel(tech_, config_.fabIntensityGPerKwh)
        .embodiedCo2Kg(system);
}

CostBreakdown
EcoChip::cost(const SystemSpec &system) const
{
    return cost(system, CostParams());
}

CostBreakdown
EcoChip::cost(const SystemSpec &system,
              const CostParams &cost_params) const
{
    return CostModel(tech_, config_.wafer, cost_params)
        .systemCost(system, config_.package);
}

} // namespace ecochip
