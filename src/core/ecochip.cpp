#include "core/ecochip.h"

#include <cstring>

#include "manufacture/nre_model.h"
#include "noc/router_model.h"
#include "support/error.h"

namespace ecochip {

std::string
EcoChip::reportKeyPrefix(const SystemSpec &system)
{
    CacheKey key;
    key.tag('R').add(system.singleDie).add(system.name);
    for (const auto &c : system.chiplets) {
        key.add(c.name)
            .add(static_cast<int>(c.type))
            .add(c.transistorsMtr)
            .add(c.reused)
            .add(c.stackGroup);
    }
    return std::move(key).str();
}

std::string
EcoChip::reportKey(const SystemSpec &system)
{
    std::string key = reportKeyPrefix(system);
    key.reserve(key.size() +
                system.chiplets.size() * sizeof(double));
    for (const auto &c : system.chiplets) {
        char raw[sizeof(double)];
        std::memcpy(raw, &c.nodeNm, sizeof(double));
        key.append(raw, sizeof(double));
    }
    return key;
}

EcoChip::EcoChip(EcoChipConfig config, TechDb tech)
    : tech_(std::move(tech)), config_(std::move(config)),
      cache_(std::make_shared<EvalCache>())
{
}

void
EcoChip::setConfig(EcoChipConfig config)
{
    config_ = std::move(config);
    // Memoized values are bound to the old configuration; detach
    // from any sharers and start clean.
    cache_ = std::make_shared<EvalCache>();
}

MfgBreakdown
EcoChip::cachedDieMfg(const ManufacturingModel &mfg,
                      double area_mm2, double node_nm) const
{
    const std::string key =
        CacheKey().tag('M').add(area_mm2).add(node_nm).str();
    MfgBreakdown out;
    if (cache_->mfg.find(key, out))
        return out;
    out = mfg.dieMfg(area_mm2, node_nm);
    cache_->mfg.store(key, out);
    return out;
}

DesignBreakdown
EcoChip::cachedChipletDesign(const DesignModel &design,
                             const Chiplet &chiplet) const
{
    const std::string key = CacheKey()
                                .tag('D')
                                .add(static_cast<int>(chiplet.type))
                                .add(chiplet.nodeNm)
                                .add(chiplet.transistorsMtr)
                                .str();
    DesignBreakdown out;
    if (cache_->design.find(key, out))
        return out;
    out = design.chipletDesign(chiplet);
    cache_->design.store(key, out);
    return out;
}

CarbonReport
EcoChip::estimate(const SystemSpec &system) const
{
    requireConfig(!system.chiplets.empty(),
                  "system has no chiplets");

    const std::string report_key = reportKey(system);
    {
        CarbonReport cached;
        if (cache_->report.find(report_key, cached))
            return cached;
    }

    ManufacturingModel mfg(tech_, config_.wafer,
                           config_.fabIntensityGPerKwh,
                           config_.yieldModel);
    mfg.setIncludeWastage(config_.includeWastage);

    CarbonReport report;
    if (system.singleDie) {
        double area_mm2 = 0.0;
        for (const auto &block : system.chiplets)
            area_mm2 += block.areaMm2(tech_);
        report.mfgCo2Kg =
            cachedDieMfg(mfg, area_mm2, system.monolithicNodeNm())
                .totalCo2Kg();
    } else {
        double total = 0.0;
        for (const auto &chiplet : system.chiplets)
            total += cachedDieMfg(mfg, chiplet.areaMm2(tech_),
                                  chiplet.nodeNm)
                         .totalCo2Kg();
        report.mfgCo2Kg = total;
    }

    PackageModel pkg(tech_, mfg, config_.package);
    report.hi = pkg.evaluate(system);

    // Design carbon: the communication IP (routers or PHYs, one
    // per chiplet) is designed once per system and amortized over
    // NS (Eq. 12's Cdes,comm term).
    DesignModel design(tech_, config_.design);
    double comm_mtr = 0.0;
    double comm_node_nm = config_.package.interposerNodeNm;
    if (!system.isMonolithic()) {
        const double nc =
            static_cast<double>(system.chiplets.size());
        switch (config_.package.arch) {
          case PackagingArch::RdlFanout:
          case PackagingArch::SiliconBridge:
            comm_mtr =
                PhyModel(tech_,
                         config_.package.router.flitWidthBits)
                    .transistorsMtr() *
                nc;
            comm_node_nm = system.chiplets.front().nodeNm;
            break;
          case PackagingArch::PassiveInterposer:
          case PackagingArch::Stack3d:
            comm_mtr = RouterModel(tech_, config_.package.router)
                           .transistorsMtr() *
                       nc;
            comm_node_nm = system.chiplets.front().nodeNm;
            break;
          case PackagingArch::ActiveInterposer:
            comm_mtr = RouterModel(tech_, config_.package.router)
                           .transistorsMtr() *
                       nc;
            comm_node_nm = config_.package.interposerNodeNm;
            break;
        }
    }
    report.designCo2Kg = design.systemDesignCo2Kg(
        system, comm_mtr, comm_node_nm,
        [&](const Chiplet &chiplet) {
            return cachedChipletDesign(design, chiplet);
        });

    if (config_.includeMaskNre) {
        report.nreCo2Kg =
            NreCarbonModel(tech_, config_.fabIntensityGPerKwh,
                           config_.design.chipletVolume)
                .systemNreCo2Kg(system);
    }

    OperationalModel operation(tech_, config_.operating);
    report.operation =
        operation.evaluate(system, report.hi.nocPowerW);

    // Per-chiplet detail. For a monolithic die the blocks are
    // reported individually but manufactured as one die, so the
    // block-level mfg numbers are proportional area shares.
    if (system.singleDie) {
        const double node = system.monolithicNodeNm();
        double total_area = 0.0;
        for (const auto &block : system.chiplets)
            total_area += block.areaMm2(tech_);
        const MfgBreakdown die =
            cachedDieMfg(mfg, total_area, node);
        for (const auto &block : system.chiplets) {
            const double share =
                block.areaMm2(tech_) / total_area;
            ChipletReport cr;
            cr.name = block.name;
            cr.nodeNm = node;
            cr.areaMm2 = block.areaMm2(tech_);
            cr.yield = die.yield;
            cr.mfgCo2Kg = share * die.totalCo2Kg();
            cr.designCo2Kg =
                block.reused
                    ? 0.0
                    : cachedChipletDesign(design, block)
                          .amortizedCo2Kg;
            report.chiplets.push_back(cr);
        }
    } else {
        for (const auto &chiplet : system.chiplets) {
            const MfgBreakdown breakdown = cachedDieMfg(
                mfg, chiplet.areaMm2(tech_), chiplet.nodeNm);
            ChipletReport cr;
            cr.name = chiplet.name;
            cr.nodeNm = chiplet.nodeNm;
            cr.areaMm2 = breakdown.areaMm2;
            cr.yield = breakdown.yield;
            cr.mfgCo2Kg = breakdown.totalCo2Kg();
            cr.designCo2Kg =
                chiplet.reused
                    ? 0.0
                    : cachedChipletDesign(design, chiplet)
                          .amortizedCo2Kg;
            report.chiplets.push_back(cr);
        }
    }
    cache_->report.store(report_key, report);
    return report;
}

double
EcoChip::actEmbodiedCo2Kg(const SystemSpec &system) const
{
    return ActModel(tech_, config_.fabIntensityGPerKwh)
        .embodiedCo2Kg(system);
}

CostBreakdown
EcoChip::cost(const SystemSpec &system) const
{
    return cost(system, CostParams());
}

CostBreakdown
EcoChip::cost(const SystemSpec &system,
              const CostParams &cost_params) const
{
    return CostModel(tech_, config_.wafer, cost_params)
        .systemCost(system, config_.package);
}

} // namespace ecochip
