/**
 * @file
 * Shared evaluation cache for the estimator hot path.
 *
 * Technology-space sweeps, Monte-Carlo bands, and DSE loops
 * re-evaluate the same (node, area) points thousands of times; the
 * tech-db interpolation chain dominates the profile. A CacheKey
 * encodes the exact inputs of a sub-evaluation bit-exactly, and a
 * MemoTable memoizes its result behind a reader/writer lock so one
 * estimator can be shared by every analysis of a session (and by
 * concurrent sweep threads) without recomputation.
 *
 * Memoized values are reused only under the exact same technology
 * database and configuration: EcoChip drops its cache whenever its
 * configuration is replaced, and never exposes mutable access to
 * its TechDb.
 */

#ifndef ECOCHIP_CORE_EVAL_CACHE_H
#define ECOCHIP_CORE_EVAL_CACHE_H

#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ecochip {

/**
 * Bit-exact binary key for memoized evaluations.
 *
 * Doubles are appended as their raw IEEE-754 bytes, so two keys
 * compare equal exactly when every input is bit-identical -- no
 * epsilon surprises, no formatting cost.
 */
class CacheKey
{
  public:
    /** Tag byte separating key families in one table. */
    CacheKey &
    tag(char c)
    {
        buf_.push_back(c);
        return *this;
    }

    /** Append a double bit-exactly. */
    CacheKey &
    add(double v)
    {
        char raw[sizeof(double)];
        std::memcpy(raw, &v, sizeof(double));
        buf_.append(raw, sizeof(double));
        return *this;
    }

    /** Append an integer. */
    CacheKey &
    add(int v)
    {
        char raw[sizeof(int)];
        std::memcpy(raw, &v, sizeof(int));
        buf_.append(raw, sizeof(int));
        return *this;
    }

    /** Append a bool. */
    CacheKey &
    add(bool v)
    {
        buf_.push_back(v ? '\1' : '\0');
        return *this;
    }

    /** Append a length-prefixed string. */
    CacheKey &
    add(std::string_view s)
    {
        add(static_cast<int>(s.size()));
        buf_.append(s.data(), s.size());
        return *this;
    }

    /** The accumulated key. */
    std::string
    str() &&
    {
        return std::move(buf_);
    }

    /** The accumulated key (copying overload). */
    const std::string &
    str() const &
    {
        return buf_;
    }

  private:
    std::string buf_;
};

/**
 * Bounded thread-safe memoization table.
 *
 * Lookups take a shared lock, insertions an exclusive one; when
 * the table reaches its capacity it is cleared wholesale (sweep
 * working sets are tiny, so eviction sophistication buys nothing).
 */
template <typename V> class MemoTable
{
  public:
    /** @param max_entries Clear-threshold for the table. */
    explicit MemoTable(std::size_t max_entries = 1u << 14)
        : maxEntries_(max_entries)
    {}

    MemoTable(const MemoTable &) = delete;
    MemoTable &operator=(const MemoTable &) = delete;

    /**
     * Look up a memoized value.
     *
     * @param key Exact evaluation key.
     * @param out Filled with the value on a hit.
     * @return True on a hit.
     */
    bool
    find(const std::string &key, V &out) const
    {
        std::shared_lock lock(mutex_);
        const auto it = map_.find(key);
        if (it == map_.end())
            return false;
        out = it->second;
        return true;
    }

    /** Memoize @p value under @p key. */
    void
    store(std::string key, V value)
    {
        std::unique_lock lock(mutex_);
        if (map_.size() >= maxEntries_)
            map_.clear();
        map_.emplace(std::move(key), std::move(value));
    }

    /** Drop every entry. */
    void
    clear()
    {
        std::unique_lock lock(mutex_);
        map_.clear();
    }

    /** Current entry count. */
    std::size_t
    size() const
    {
        std::shared_lock lock(mutex_);
        return map_.size();
    }

  private:
    std::size_t maxEntries_;
    mutable std::shared_mutex mutex_;
    std::unordered_map<std::string, V> map_;
};

} // namespace ecochip

#endif // ECOCHIP_CORE_EVAL_CACHE_H
