/**
 * @file
 * Carbon-aware disaggregation optimizer -- automates the design
 * and architecture space exploration of the paper's Sec. VI: for a
 * monolithic SoC described by its block areas, enumerate chiplet
 * counts, node assignments, and packaging architectures, and rank
 * the configurations by carbon.
 */

#ifndef ECOCHIP_CORE_OPTIMIZER_H
#define ECOCHIP_CORE_OPTIMIZER_H

#include <string>
#include <vector>

#include "core/disaggregate.h"
#include "core/ecochip.h"

namespace ecochip {

/** Search-space definition for the optimizer. */
struct DisaggregationSpace
{
    /** Candidate nodes for the digital chiplets (nm). */
    std::vector<double> digitalNodesNm = {7.0};

    /** Candidate nodes for the memory chiplet (nm). */
    std::vector<double> memoryNodesNm = {7.0, 10.0, 14.0};

    /** Candidate nodes for the analog chiplet (nm). */
    std::vector<double> analogNodesNm = {7.0, 10.0, 14.0};

    /** Candidate digital-split counts (1 = no split). */
    std::vector<int> digitalSplits = {1, 2, 3, 4};

    /** Candidate packaging architectures. */
    std::vector<PackagingArch> architectures = {
        PackagingArch::RdlFanout, PackagingArch::SiliconBridge};

    /** Include the monolithic baseline in the ranking. */
    bool includeMonolith = true;

    /** Monolith node (nm) when included. */
    double monolithNodeNm = 7.0;
};

/** One evaluated disaggregation configuration. */
struct DisaggregationPoint
{
    /** The evaluated system. */
    SystemSpec system;

    /** Packaging architecture used. */
    PackagingArch arch = PackagingArch::RdlFanout;

    /** Digital split count (0 for the monolith row). */
    int digitalSplit = 0;

    /** (digital, memory, analog) nodes. */
    double digitalNodeNm = 0.0;
    double memoryNodeNm = 0.0;
    double analogNodeNm = 0.0;

    /** Full carbon report. */
    CarbonReport report;

    /** Human-readable configuration label. */
    std::string label() const;
};

/**
 * Exhaustive disaggregation optimizer.
 *
 * The search space for realistic sweeps is small (a few hundred
 * points at microseconds each), so exhaustive enumeration is both
 * exact and fast -- no heuristic needed.
 */
class DisaggregationOptimizer
{
  public:
    /**
     * @param config Base estimator configuration; the packaging
     *        architecture field is overridden per point.
     * @param tech Technology calibration.
     */
    explicit DisaggregationOptimizer(
        EcoChipConfig config = EcoChipConfig(),
        TechDb tech = TechDb());

    /**
     * Evaluate every configuration in the space.
     *
     * @param blocks Monolithic SoC block breakdown.
     * @param space Search-space definition.
     * @return All evaluated points, in enumeration order.
     */
    std::vector<DisaggregationPoint>
    enumerate(const SocBlocks &blocks,
              const DisaggregationSpace &space) const;

    /** Point with the lowest embodied carbon. */
    static const DisaggregationPoint &
    bestByEmbodied(const std::vector<DisaggregationPoint> &points);

    /** Point with the lowest total carbon. */
    static const DisaggregationPoint &
    bestByTotal(const std::vector<DisaggregationPoint> &points);

  private:
    EcoChipConfig config_;
    TechDb tech_;
};

} // namespace ecochip

#endif // ECOCHIP_CORE_OPTIMIZER_H
