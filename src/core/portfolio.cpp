#include "core/portfolio.h"

#include <map>
#include <tuple>

#include "design/design_model.h"
#include "manufacture/nre_model.h"
#include "support/error.h"

namespace ecochip {

namespace {

/** Identity key of a chiplet design. */
using DesignKey = std::tuple<std::string, DesignType, double,
                             double>;

DesignKey
keyOf(const Chiplet &chiplet)
{
    return {chiplet.name, chiplet.type, chiplet.nodeNm,
            chiplet.transistorsMtr};
}

} // namespace

PortfolioAnalyzer::PortfolioAnalyzer(EcoChipConfig config,
                                     TechDb tech)
    : config_(std::move(config)), tech_(std::move(tech))
{
}

PortfolioResult
PortfolioAnalyzer::analyze(
    const std::vector<Product> &products) const
{
    requireConfig(!products.empty(), "portfolio has no products");
    for (const auto &product : products) {
        requireConfig(!product.system.chiplets.empty(),
                      "product \"" + product.system.name +
                          "\" has no chiplets");
        requireConfig(product.volume >= 1.0,
                      "product volume must be at least 1");
    }

    // Pass 1: combined *die* manufacturing volume of every
    // distinct design across the portfolio (Eq. 12's NMi).
    // Multiple instances inside one product (e.g. twin compute
    // dies) each add a manufactured die per product unit.
    std::map<DesignKey, double> design_volume;
    for (const auto &product : products)
        for (const auto &chiplet : product.system.chiplets)
            design_volume[keyOf(chiplet)] += product.volume;

    DesignModel design(tech_, config_.design);
    NreCarbonModel nre(tech_, config_.fabIntensityGPerKwh, 1.0);

    // One-time (unamortized) carbon of each design.
    std::map<DesignKey, double> design_once_co2;
    for (const auto &product : products) {
        for (const auto &chiplet : product.system.chiplets) {
            const DesignKey key = keyOf(chiplet);
            if (design_once_co2.count(key))
                continue;
            Chiplet fresh = chiplet;
            fresh.reused = false;
            double once = design.chipletDesign(fresh).co2Kg;
            if (config_.includeMaskNre)
                once += nre.maskSetCo2Kg(fresh.nodeNm);
            design_once_co2[key] = once;
        }
    }

    // Pass 2: per-product reports with the shared amortization
    // substituted for the estimator's per-product one.
    PortfolioResult result;
    result.distinctDesigns =
        static_cast<int>(design_volume.size());

    double savings = 0.0;
    for (const auto &product : products) {
        EcoChipConfig config = config_;
        config.operating = product.operating;
        // Design carbon is replaced below; disable the built-in
        // mask-NRE path so it is not double counted (the shared
        // one-time carbon already folds masks in when enabled).
        config.includeMaskNre = false;
        EcoChip estimator(config, tech_);

        // `reused` flags are portfolio-derived here: strip them so
        // the estimator's own design term can be discarded
        // cleanly.
        SystemSpec system = product.system;

        CarbonReport report = estimator.estimate(system);

        // Shared vs. isolated per-part design carbon, following
        // Eq. 12: every die instance contributes Cdes,i / NMi,
        // with NMi the design's die volume. Under isolation the
        // design's dies come from this product alone.
        std::map<DesignKey, int> instances_here;
        for (const auto &chiplet : system.chiplets) {
            result.totalInstances += 1;
            instances_here[keyOf(chiplet)] += 1;
        }
        double shared = 0.0, isolated = 0.0;
        for (const auto &[key, count] : instances_here) {
            shared += count * design_once_co2[key] /
                      design_volume[key];
            isolated += count * design_once_co2[key] /
                        (count * product.volume);
        }

        report.designCo2Kg = shared;
        report.nreCo2Kg = 0.0;

        ProductResult pr;
        pr.name = product.system.name;
        pr.sharedDesignCo2Kg = shared;
        pr.isolatedDesignCo2Kg = isolated;
        pr.report = report;
        result.products.push_back(std::move(pr));

        result.fleetCo2Kg +=
            product.volume * report.totalCo2Kg();
        savings += product.volume * (isolated - shared);
    }
    result.designSharingSavingsCo2Kg = savings;
    return result;
}

} // namespace ecochip
