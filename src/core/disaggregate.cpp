#include "core/disaggregate.h"

#include "support/error.h"

namespace ecochip {

namespace {

/** Derive the three block chiplets at the reference node. */
std::vector<Chiplet>
blockChiplets(const SocBlocks &blocks, const TechDb &tech)
{
    requireConfig(blocks.logicAreaMm2 > 0.0,
                  "logic block area must be positive");
    requireConfig(blocks.memoryAreaMm2 >= 0.0,
                  "memory block area must be non-negative");
    requireConfig(blocks.analogAreaMm2 >= 0.0,
                  "analog block area must be non-negative");

    std::vector<Chiplet> chiplets;
    chiplets.push_back(Chiplet::fromArea(
        "digital", DesignType::Logic, blocks.refNodeNm,
        blocks.logicAreaMm2, tech));
    if (blocks.memoryAreaMm2 > 0.0) {
        chiplets.push_back(Chiplet::fromArea(
            "memory", DesignType::Memory, blocks.refNodeNm,
            blocks.memoryAreaMm2, tech));
    }
    if (blocks.analogAreaMm2 > 0.0) {
        chiplets.push_back(Chiplet::fromArea(
            "analog", DesignType::Analog, blocks.refNodeNm,
            blocks.analogAreaMm2, tech));
    }
    return chiplets;
}

} // namespace

SystemSpec
makeMonolithic(const std::string &name, const SocBlocks &blocks,
               const TechDb &tech, double node_nm)
{
    SystemSpec system;
    system.name = name;
    system.chiplets = blockChiplets(blocks, tech);
    for (auto &block : system.chiplets)
        block.nodeNm = node_nm;
    system.singleDie = true;
    return system;
}

SystemSpec
makeThreeChiplet(const std::string &name, const SocBlocks &blocks,
                 const TechDb &tech, double digital_nm,
                 double memory_nm, double analog_nm)
{
    SystemSpec system;
    system.name = name;
    system.chiplets = blockChiplets(blocks, tech);
    for (auto &chiplet : system.chiplets) {
        if (chiplet.type == DesignType::Logic)
            chiplet.nodeNm = digital_nm;
        else if (chiplet.type == DesignType::Memory)
            chiplet.nodeNm = memory_nm;
        else
            chiplet.nodeNm = analog_nm;
    }
    return system;
}

SystemSpec
makeDigitalSplit(const std::string &name, const SocBlocks &blocks,
                 const TechDb &tech, int digital_count,
                 double digital_nm, double memory_nm,
                 double analog_nm)
{
    requireConfig(digital_count >= 1,
                  "digital split count must be at least 1");
    SystemSpec three = makeThreeChiplet(
        name, blocks, tech, digital_nm, memory_nm, analog_nm);

    SystemSpec system;
    system.name = name;
    const Chiplet &digital = three.chiplet("digital");
    for (int i = 0; i < digital_count; ++i) {
        Chiplet slice = digital;
        slice.name = "digital" + std::to_string(i);
        slice.transistorsMtr =
            digital.transistorsMtr / digital_count;
        // Identical slices share one design and one mask set:
        // only the first instance carries NRE/design carbon.
        slice.reused = i > 0;
        system.chiplets.push_back(slice);
    }
    for (const auto &chiplet : three.chiplets)
        if (chiplet.type != DesignType::Logic)
            system.chiplets.push_back(chiplet);
    return system;
}

SystemSpec
makeUniformSplit(const std::string &name, double area_mm2,
                 double node_nm, int count, const TechDb &tech)
{
    requireConfig(area_mm2 > 0.0, "block area must be positive");
    requireConfig(count >= 1, "split count must be at least 1");

    SystemSpec system;
    system.name = name;
    for (int i = 0; i < count; ++i) {
        Chiplet slice = Chiplet::fromArea(
            "slice" + std::to_string(i), DesignType::Logic, node_nm,
            area_mm2 / count, tech);
        // Equal slices are one design instantiated `count` times.
        slice.reused = i > 0;
        system.chiplets.push_back(slice);
    }
    if (count == 1)
        system.singleDie = true;
    return system;
}

} // namespace ecochip
