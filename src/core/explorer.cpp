#include "core/explorer.h"

#include <algorithm>
#include <cmath>

#include "kernels/sweep_evaluator.h"
#include "support/error.h"

namespace ecochip {

std::string
ExplorationPoint::label() const
{
    std::string out = "(";
    for (std::size_t i = 0; i < nodesNm.size(); ++i) {
        if (i)
            out += ",";
        const double node = nodesNm[i];
        if (node == std::floor(node))
            out += std::to_string(static_cast<long>(node));
        else
            out += std::to_string(node);
    }
    out += ")";
    return out;
}

std::vector<ExplorationPoint>
TechSpaceExplorer::sweep(
    const SystemSpec &system,
    const std::vector<double> &candidate_nodes_nm) const
{
    std::vector<std::vector<double>> per_chiplet(
        system.chiplets.size(), candidate_nodes_nm);
    return sweep(system, per_chiplet);
}

std::vector<ExplorationPoint>
TechSpaceExplorer::sweep(
    const SystemSpec &system,
    const std::vector<std::vector<double>> &candidates_per_chiplet)
    const
{
    requireConfig(candidates_per_chiplet.size() ==
                      system.chiplets.size(),
                  "candidate list count must match chiplet count");
    for (const auto &candidates : candidates_per_chiplet)
        requireConfig(!candidates.empty(),
                      "empty candidate node list");

    // The cartesian enumeration and per-point evaluation live in
    // the data-oriented sweep kernel, which compiles the sweep's
    // point-invariant structure once and reuses it per point; its
    // points are bit-identical to per-point estimate() calls.
    return SweepEvaluator(*estimator_)
        .sweep(system, candidates_per_chiplet);
}

const ExplorationPoint &
TechSpaceExplorer::bestByEmbodied(
    const std::vector<ExplorationPoint> &points)
{
    requireConfig(!points.empty(), "no exploration points");
    return *std::min_element(
        points.begin(), points.end(), [](const auto &a, const auto &b) {
            return a.report.embodiedCo2Kg() < b.report.embodiedCo2Kg();
        });
}

const ExplorationPoint &
TechSpaceExplorer::bestByTotal(
    const std::vector<ExplorationPoint> &points)
{
    requireConfig(!points.empty(), "no exploration points");
    return *std::min_element(
        points.begin(), points.end(), [](const auto &a, const auto &b) {
            return a.report.totalCo2Kg() < b.report.totalCo2Kg();
        });
}

} // namespace ecochip
