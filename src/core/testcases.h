/**
 * @file
 * Built-in industry testcases (paper Sec. IV(2)): NVIDIA GA102 GPU,
 * Apple A15 mobile SoC, Intel Emerald Rapids (EMR) server CPU, and
 * the 3D-stacked AR/VR neural accelerator of Yang et al.
 *
 * Block-area breakdowns follow the die-shot analyses the paper
 * cites; operating specifications are calibrated so the headline
 * anchors hold (GA102: Euse ~ 228 kWh over two years and embodied
 * carbon ~ 20% of total; A15: embodied ~ 80% of total).
 */

#ifndef ECOCHIP_CORE_TESTCASES_H
#define ECOCHIP_CORE_TESTCASES_H

#include <string>
#include <vector>

#include "core/disaggregate.h"
#include "operation/operational_model.h"
#include "tech/tech_db.h"

namespace ecochip::testcases {

/** @{ @name Block breakdowns */

/** NVIDIA GA102 (628 mm^2 class, modeled at 7 nm). */
SocBlocks ga102Blocks();

/** Apple A15 (108 mm^2 class, 5 nm). */
SocBlocks a15Blocks();

/** One Intel Emerald Rapids compute die (Intel 7 ~ 10 nm). */
SocBlocks emrDieBlocks();

/** @} */

/** @{ @name GA102 */

/** Monolithic GA102 at @p node_nm (default: native 7 nm). */
SystemSpec ga102Monolithic(const TechDb &tech, double node_nm = 7.0);

/**
 * 3-chiplet GA102 with the (digital, memory, analog) three-tuple
 * node convention of Sec. IV(2).
 */
SystemSpec ga102ThreeChiplet(const TechDb &tech, double digital_nm,
                             double memory_nm, double analog_nm);

/**
 * 4-chiplet GA102 of Fig. 2(b): memory and analog chiplets plus
 * the digital block split into two, all at @p node_nm.
 */
SystemSpec ga102FourChiplet(const TechDb &tech, double node_nm);

/**
 * GA102 with the digital block split into (nc - 2) chiplets at
 * 7 nm, memory at 10 nm, analog at 14 nm (Fig. 10's Nc sweep).
 */
SystemSpec ga102Split(const TechDb &tech, int nc);

/**
 * HBM-style mixed 2.5D/3D GA102: the digital and analog chiplets
 * planar on the interposer, the memory content folded into
 * @p stacks vertical towers of @p tiers_per_stack dies each (10 nm
 * memory dies, `stackGroup` "hbm<k>").
 */
SystemSpec ga102Hbm(const TechDb &tech, int stacks = 2,
                    int tiers_per_stack = 4);

/** GA102 operating spec (2-year life, ~130 W average draw). */
OperatingSpec ga102Operating();

/** @} */

/** @{ @name Apple A15 */

/** Monolithic A15 at @p node_nm (default: native 5 nm). */
SystemSpec a15Monolithic(const TechDb &tech, double node_nm = 5.0);

/** 3-chiplet A15 with the three-tuple node convention. */
SystemSpec a15ThreeChiplet(const TechDb &tech, double digital_nm,
                           double memory_nm, double analog_nm);

/** A15 operating spec (battery path; embodied-dominated). */
OperatingSpec a15Operating();

/** @} */

/** @{ @name Intel Emerald Rapids */

/** Native 2-chiplet EMR (two identical compute dies, EMIB). */
SystemSpec emrTwoChiplet(const TechDb &tech, double node_nm = 10.0);

/** Hypothetical monolithic EMR (one double-size die). */
SystemSpec emrMonolithic(const TechDb &tech, double node_nm = 10.0);

/** EMR operating spec (server-class, operation-dominated). */
OperatingSpec emrOperating();

/** @} */

/** @{ @name Server-class multi-die part (beyond the paper) */

/**
 * Server CPU with @p compute_dies identical EMR-class compute
 * dies (one design, the twins reused), a mature-node IO-hub die
 * with the DDR/PCIe/CXL PHY ring, and a shared memory-side cache
 * die -- the multi-socket/multi-die server parts the RISC-V HPC
 * evaluations target. Pair with SiliconBridge (EMIB) packaging.
 */
SystemSpec serverMultiDie(const TechDb &tech, int compute_dies = 4,
                          double node_nm = 10.0);

/** Server operating spec (high duty cycle, 4-year life). */
OperatingSpec serverOperating();

/** @} */

/** @{ @name HBM-stacked training accelerator (beyond the paper) */

/**
 * Datacenter accelerator: one large 7 nm compute die and a 14 nm
 * SerDes/IO die planar on a passive interposer, plus @p stacks
 * HBM towers of @p tiers_per_stack commodity 10 nm DRAM dies
 * (`stackGroup` "hbm<k>", all reused) -- the mixed 2.5D/3D
 * architecture of `bench_ext_hbm_stacks` scaled to a server part.
 */
SystemSpec hbmAccelerator(const TechDb &tech, int stacks = 4,
                          int tiers_per_stack = 4);

/** Accelerator operating spec (rated power, high duty cycle). */
OperatingSpec hbmAcceleratorOperating();

/** @} */

/** @{ @name FPGA PCA accelerator (MANOJAVAM-style) */

/**
 * MANOJAVAM-class unified matrix-multiplication/SVD accelerator
 * for principal component analysis, recast as a chiplet part: a
 * systolic PE-array compute die at @p pe_node_nm, an on-chip
 * buffer (BRAM-class) memory die, and a mature-node
 * transceiver/IO die carrying the host link PHYs. The PE array is
 * the die the search axes retarget and split -- scaling the
 * accelerator is exactly a chiplet-count/node question.
 */
SystemSpec fpgaPcaAccelerator(const TechDb &tech,
                              double pe_node_nm = 7.0);

/** Accelerator-card operating spec (rated power, shared duty). */
OperatingSpec fpgaPcaOperating();

/** @} */

/** @{ @name 64-core RISC-V manycore (Sophon-SG2044-class) */

/**
 * Sophon-SG2044-class 64-core RISC-V server SoC as a chiplet
 * part: four identical 16-core cluster dies at @p node_nm (one
 * design, the twins reused), a mature-node IO hub with the
 * DDR/PCIe PHYs, and a shared memory-side cache die.
 */
SystemSpec riscvManycore64(const TechDb &tech,
                           double node_nm = 7.0);

/** Server operating spec for the manycore (multi-year, high
 *  duty). */
OperatingSpec riscvManycore64Operating();

/** @} */

/** @{ @name AR/VR 3D accelerator (Sec. VI, Fig. 13) */

/** One sweep point of the accelerator study. */
struct ArvrPoint
{
    /** Compute-array flavor: 1K or 2K MACs. */
    std::string series;

    /** Number of stacked SRAM dies (1 - 4). */
    int sramTiers = 1;

    /** SRAM capacity per die (MB): 2 for 1K, 4 for 2K. */
    double mbPerDie = 2.0;

    /** Total memory capacity (MB). */
    double totalMb = 2.0;

    /** Paper-style name, e.g. "3D-1K-4MB". */
    std::string label;

    /** The stacked system (compute tier + SRAM tiers, 7 nm). */
    SystemSpec system;

    /** Inference latency from the accelerator study (ms). */
    double latencyMs = 0.0;

    /** Average operating power from the study (W). */
    double avgPowerW = 0.0;

    /** 2D footprint of the stack (mm^2). */
    double footprintMm2 = 0.0;
};

/**
 * One accelerator configuration.
 *
 * @param series "1K" (2 MB SRAM dies) or "2K" (4 MB SRAM dies).
 * @param sram_tiers Stacked SRAM die count, 1 - 4.
 */
ArvrPoint arvrAccelerator(const TechDb &tech,
                          const std::string &series, int sram_tiers);

/** All eight sweep points (1K and 2K x 1-4 tiers). */
std::vector<ArvrPoint> arvrSweep(const TechDb &tech);

/** AR/VR operating spec for a given study point (2-year life). */
OperatingSpec arvrOperating(const ArvrPoint &point);

/** @} */

} // namespace ecochip::testcases

#endif // ECOCHIP_CORE_TESTCASES_H
