/**
 * @file
 * Cross-product chiplet-reuse portfolio analysis.
 *
 * The paper's Sec. V-C argues that reusing a chiplet "across
 * several designs, not only in the current generation of ICs but
 * even in the next generation, can massively amortize the embodied
 * CFP just as it amortizes the dollar cost". This module makes
 * that argument computable: given a *portfolio* of products that
 * share chiplet designs, it allocates each design's one-time
 * carbon (EDA compute, and mask sets when enabled) across the
 * combined volume of every product using it, and reports the
 * fleet-level savings versus designing each product's chiplets
 * from scratch.
 *
 * Two chiplets are the same *design* when they agree on name,
 * design type, node, and transistor count.
 */

#ifndef ECOCHIP_CORE_PORTFOLIO_H
#define ECOCHIP_CORE_PORTFOLIO_H

#include <string>
#include <vector>

#include "core/ecochip.h"

namespace ecochip {

/** One product in the portfolio. */
struct Product
{
    /** The product's system description. */
    SystemSpec system;

    /** Units of this product manufactured (its NS). */
    double volume = 100000.0;

    /** Product-specific operating profile. */
    OperatingSpec operating;
};

/** Per-product slice of a portfolio analysis. */
struct ProductResult
{
    /** Product (system) name. */
    std::string name;

    /** Carbon report with the *shared* design amortization. */
    CarbonReport report;

    /**
     * Per-part design carbon under isolated (per-product)
     * amortization, for comparison.
     */
    double isolatedDesignCo2Kg = 0.0;

    /** Per-part design carbon under portfolio sharing. */
    double sharedDesignCo2Kg = 0.0;
};

/** Whole-portfolio result. */
struct PortfolioResult
{
    /** Per-product results, in input order. */
    std::vector<ProductResult> products;

    /** Number of distinct chiplet designs in the portfolio. */
    int distinctDesigns = 0;

    /** Total chiplet instances across all products. */
    int totalInstances = 0;

    /** Fleet carbon with shared design amortization (kg CO2). */
    double fleetCo2Kg = 0.0;

    /**
     * Fleet design carbon saved by sharing versus designing each
     * product in isolation (kg CO2).
     */
    double designSharingSavingsCo2Kg = 0.0;
};

/** Portfolio analyzer. */
class PortfolioAnalyzer
{
  public:
    /**
     * @param config Base configuration (packaging, design knobs,
     *        wafer); per-product operating specs override the
     *        config's.
     * @param tech Technology calibration.
     */
    explicit PortfolioAnalyzer(EcoChipConfig config,
                               TechDb tech = TechDb());

    /**
     * Analyze a portfolio.
     *
     * @param products At least one product; `reused` flags on the
     *        chiplets are ignored -- sharing is derived from
     *        design identity across the portfolio instead.
     */
    PortfolioResult
    analyze(const std::vector<Product> &products) const;

  private:
    EcoChipConfig config_;
    TechDb tech_;
};

} // namespace ecochip

#endif // ECOCHIP_CORE_PORTFOLIO_H
