/**
 * @file
 * Top-level ECO-CHIP estimator (paper Sec. III, Eqs. 1-3):
 *
 *   Ctot = Cemb + lifetime * Cop
 *   Cemb = Cmfg + Cdes + CHI
 *   Cop  = Csrc,use * Euse
 *
 * Binds the manufacturing, packaging, design, operational, ACT, and
 * cost models to one technology database and one configuration.
 */

#ifndef ECOCHIP_CORE_ECOCHIP_H
#define ECOCHIP_CORE_ECOCHIP_H

#include <memory>
#include <string>
#include <vector>

#include "act/act_model.h"
#include "chiplet/chiplet.h"
#include "core/eval_cache.h"
#include "cost/cost_model.h"
#include "design/design_model.h"
#include "manufacture/mfg_model.h"
#include "operation/operational_model.h"
#include "package/package_model.h"
#include "tech/tech_db.h"
#include "wafer/wafer_model.h"

namespace ecochip {

/** Complete estimator configuration (paper Sec. IV defaults). */
struct EcoChipConfig
{
    /** Wafer geometry (450 mm in the paper's results). */
    WaferModel wafer = WaferModel();

    /** Fab energy carbon intensity Cmfg,src (coal: 700 g/kWh). */
    double fabIntensityGPerKwh = 700.0;

    /** Die-yield statistics (paper default: Eq. 4's NB model). */
    YieldModelKind yieldModel = YieldModelKind::NegativeBinomial;

    /** Charge wafer-periphery wastage to each die (Fig. 3). */
    bool includeWastage = true;

    /**
     * Charge amortized photomask-set manufacturing carbon (the
     * Sec. V-C NRE extension; off by default to match the paper's
     * base model).
     */
    bool includeMaskNre = false;

    /** Packaging architecture and knobs. */
    PackageParams package;

    /** Design-CFP knobs (Ndes, Pdes, volumes). */
    DesignParams design;

    /** Operating specification (lifetime, duty cycle, source). */
    OperatingSpec operating;
};

/** Per-chiplet slice of a carbon report. */
struct ChipletReport
{
    std::string name;
    double nodeNm = 0.0;
    double areaMm2 = 0.0;
    double yield = 1.0;
    double mfgCo2Kg = 0.0;
    double designCo2Kg = 0.0; ///< amortized per part
};

/** Full carbon report for one system evaluation. */
struct CarbonReport
{
    /** Manufacturing carbon Cmfg (kg CO2). */
    double mfgCo2Kg = 0.0;

    /** HI packaging + communication overheads CHI. */
    HiResult hi;

    /** Amortized design carbon Cdes per part (kg CO2). */
    double designCo2Kg = 0.0;

    /**
     * Amortized mask-set NRE carbon per part (kg CO2); zero
     * unless EcoChipConfig::includeMaskNre is set.
     */
    double nreCo2Kg = 0.0;

    /** Operational energy/carbon over the lifetime. */
    OperationalBreakdown operation;

    /** Per-chiplet detail (per-block for monolithic dies). */
    std::vector<ChipletReport> chiplets;

    /** Embodied carbon Cemb = Cmfg + Cdes + CHI (+NRE), kg CO2. */
    double
    embodiedCo2Kg() const
    {
        return mfgCo2Kg + hi.totalCo2Kg() + designCo2Kg +
               nreCo2Kg;
    }

    /** Total carbon Ctot = Cemb + lifetime Cop (kg CO2). */
    double
    totalCo2Kg() const
    {
        return embodiedCo2Kg() + operation.co2Kg;
    }
};

/**
 * Memoized sub-evaluations of one (tech, config) pair.
 *
 * Bound to the exact technology database and configuration of the
 * estimator that created it; EcoChip swaps in a fresh cache
 * whenever its configuration changes. Copied estimators share the
 * cache (their tech/config values are identical), which is what
 * lets a session's analyses reuse each other's interpolations.
 */
struct EvalCache
{
    /** Per-die manufacturing, keyed by (area, node). */
    MemoTable<MfgBreakdown> mfg;

    /** Per-chiplet design carbon, keyed by (type, node, NT). */
    MemoTable<DesignBreakdown> design;

    /** Whole-system reports, keyed by the full system spec. */
    MemoTable<CarbonReport> report;

    /**
     * Precomputed batch-evaluation plans (src/kernels/), keyed by
     * the sweep or trial structure they were built for. Stored
     * type-erased; each kernel knows the concrete plan type it
     * stores. Shares the cache's lifetime rules: invalidated
     * wholesale when the configuration changes.
     */
    MemoTable<std::shared_ptr<const void>> kernel;
};

/**
 * The ECO-CHIP estimator.
 *
 * Owns its technology database and configuration; `estimate()` is
 * const and thread-safe (the internal evaluation cache is guarded
 * by reader/writer locks), so sweeps can share one instance.
 */
class EcoChip
{
  public:
    /**
     * @param config Estimator configuration.
     * @param tech Technology calibration (defaults to the paper's).
     */
    explicit EcoChip(EcoChipConfig config = EcoChipConfig(),
                     TechDb tech = TechDb());

    /** Technology database in use. */
    const TechDb &tech() const { return tech_; }

    /** Configuration in use. */
    const EcoChipConfig &config() const { return config_; }

    /** Replace the configuration (for parameter sweeps). */
    void setConfig(EcoChipConfig config);

    /**
     * Estimate the full carbon report of a system (Eqs. 1-3).
     *
     * @param system Monolithic or chiplet-based system.
     */
    CarbonReport estimate(const SystemSpec &system) const;

    /** ACT-baseline embodied carbon of the same system (kg CO2). */
    double actEmbodiedCo2Kg(const SystemSpec &system) const;

    /** Dollar cost of the system under the configured package. */
    CostBreakdown cost(const SystemSpec &system) const;

    /** Cost with explicit cost knobs. */
    CostBreakdown cost(const SystemSpec &system,
                       const CostParams &cost_params) const;

    /**
     * The evaluation cache backing this estimator (never null).
     * Exposed for cache-statistics tests and benchmarks.
     */
    const EvalCache &cache() const { return *cache_; }

  private:
    // The data-oriented batch kernels reuse the estimator's memo
    // tables and key layout so scalar and batch evaluations hit
    // the same cache entries.
    friend class BatchEvaluator;
    friend class SweepEvaluator;

    /**
     * Exact memo key of a full-system evaluation: every SystemSpec
     * field that reaches the models. Layout: reportKeyPrefix()
     * followed by each chiplet's node (raw doubles, in order), so
     * sweep kernels rebuild only the node suffix per point.
     */
    static std::string reportKey(const SystemSpec &system);

    /** Node-independent prefix of reportKey(). */
    static std::string reportKeyPrefix(const SystemSpec &system);

    MfgBreakdown cachedDieMfg(const ManufacturingModel &mfg,
                              double area_mm2,
                              double node_nm) const;
    DesignBreakdown cachedChipletDesign(const DesignModel &design,
                                        const Chiplet &chiplet) const;

    TechDb tech_;
    EcoChipConfig config_;
    std::shared_ptr<EvalCache> cache_;
};

} // namespace ecochip

#endif // ECOCHIP_CORE_ECOCHIP_H
