#include "core/optimizer.h"

#include <algorithm>

#include "support/error.h"

namespace ecochip {

std::string
DisaggregationPoint::label() const
{
    if (digitalSplit == 0)
        return "monolith@" +
               std::to_string(
                   static_cast<long>(digitalNodeNm)) +
               "nm";
    return std::to_string(digitalSplit) + "xD@" +
           std::to_string(static_cast<long>(digitalNodeNm)) +
           "/M@" +
           std::to_string(static_cast<long>(memoryNodeNm)) +
           "/A@" +
           std::to_string(static_cast<long>(analogNodeNm)) + " " +
           toString(arch);
}

DisaggregationOptimizer::DisaggregationOptimizer(
    EcoChipConfig config, TechDb tech)
    : config_(std::move(config)), tech_(std::move(tech))
{
}

std::vector<DisaggregationPoint>
DisaggregationOptimizer::enumerate(
    const SocBlocks &blocks,
    const DisaggregationSpace &space) const
{
    requireConfig(!space.digitalNodesNm.empty() &&
                      !space.memoryNodesNm.empty() &&
                      !space.analogNodesNm.empty(),
                  "optimizer node lists must be non-empty");
    requireConfig(!space.digitalSplits.empty(),
                  "optimizer split list must be non-empty");
    requireConfig(!space.architectures.empty(),
                  "optimizer architecture list must be non-empty");

    std::vector<DisaggregationPoint> points;

    if (space.includeMonolith) {
        DisaggregationPoint mono;
        mono.system = makeMonolithic("monolith", blocks, tech_,
                                     space.monolithNodeNm);
        mono.digitalSplit = 0;
        mono.digitalNodeNm = space.monolithNodeNm;
        mono.memoryNodeNm = space.monolithNodeNm;
        mono.analogNodeNm = space.monolithNodeNm;
        EcoChip estimator(config_, tech_);
        mono.report = estimator.estimate(mono.system);
        points.push_back(std::move(mono));
    }

    for (PackagingArch arch : space.architectures) {
        EcoChipConfig config = config_;
        config.package.arch = arch;
        EcoChip estimator(config, tech_);

        for (int split : space.digitalSplits) {
            requireConfig(split >= 1,
                          "digital split must be at least 1");
            for (double d : space.digitalNodesNm) {
                for (double m : space.memoryNodesNm) {
                    for (double a : space.analogNodesNm) {
                        DisaggregationPoint point;
                        point.system = makeDigitalSplit(
                            "cand", blocks, tech_, split, d, m,
                            a);
                        point.arch = arch;
                        point.digitalSplit = split;
                        point.digitalNodeNm = d;
                        point.memoryNodeNm = m;
                        point.analogNodeNm = a;
                        point.report =
                            estimator.estimate(point.system);
                        points.push_back(std::move(point));
                    }
                }
            }
        }
    }
    return points;
}

const DisaggregationPoint &
DisaggregationOptimizer::bestByEmbodied(
    const std::vector<DisaggregationPoint> &points)
{
    requireConfig(!points.empty(), "no optimizer points");
    return *std::min_element(
        points.begin(), points.end(),
        [](const auto &a, const auto &b) {
            return a.report.embodiedCo2Kg() <
                   b.report.embodiedCo2Kg();
        });
}

const DisaggregationPoint &
DisaggregationOptimizer::bestByTotal(
    const std::vector<DisaggregationPoint> &points)
{
    requireConfig(!points.empty(), "no optimizer points");
    return *std::min_element(
        points.begin(), points.end(),
        [](const auto &a, const auto &b) {
            return a.report.totalCo2Kg() < b.report.totalCo2Kg();
        });
}

} // namespace ecochip
