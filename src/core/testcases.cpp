#include "core/testcases.h"

#include <algorithm>

#include "support/error.h"

namespace ecochip::testcases {

SocBlocks
ga102Blocks()
{
    // Die-shot breakdown of the 628 mm^2-class GA102: ~500 mm^2 of
    // digital logic (the block Figs. 9-10 split), with L2/memory
    // controllers and the analog/IO ring on the remainder.
    SocBlocks blocks;
    blocks.logicAreaMm2 = 500.0;
    blocks.memoryAreaMm2 = 80.0;
    blocks.analogAreaMm2 = 48.0;
    blocks.refNodeNm = 7.0;
    return blocks;
}

SocBlocks
a15Blocks()
{
    // ~108 mm^2 A15 die: CPU/GPU/NPU logic, SLC SRAM, and IO.
    SocBlocks blocks;
    blocks.logicAreaMm2 = 60.0;
    blocks.memoryAreaMm2 = 32.0;
    blocks.analogAreaMm2 = 16.0;
    blocks.refNodeNm = 5.0;
    return blocks;
}

SocBlocks
emrDieBlocks()
{
    // One Emerald Rapids compute die (~763 mm^2, Intel 7 ~ 10 nm):
    // cores + mesh, LLC SRAM, DDR/PCIe/UPI PHY ring.
    SocBlocks blocks;
    blocks.logicAreaMm2 = 458.0;
    blocks.memoryAreaMm2 = 191.0;
    blocks.analogAreaMm2 = 114.0;
    blocks.refNodeNm = 10.0;
    return blocks;
}

SystemSpec
ga102Monolithic(const TechDb &tech, double node_nm)
{
    return makeMonolithic("GA102-mono", ga102Blocks(), tech,
                          node_nm);
}

SystemSpec
ga102ThreeChiplet(const TechDb &tech, double digital_nm,
                  double memory_nm, double analog_nm)
{
    return makeThreeChiplet("GA102-3c", ga102Blocks(), tech,
                            digital_nm, memory_nm, analog_nm);
}

SystemSpec
ga102FourChiplet(const TechDb &tech, double node_nm)
{
    // Fig. 2(b): memory and analog on independent chiplets, the
    // large digital block split into two smaller chiplets.
    return makeDigitalSplit("GA102-4c", ga102Blocks(), tech, 2,
                            node_nm, node_nm, node_nm);
}

SystemSpec
ga102Split(const TechDb &tech, int nc)
{
    requireConfig(nc >= 3, "GA102 split needs at least 3 chiplets");
    // Digital slices in 7 nm; memory in 10 nm; analog in 14 nm
    // (Sec. V-B(2)).
    return makeDigitalSplit("GA102-" + std::to_string(nc) + "c",
                            ga102Blocks(), tech, nc - 2, 7.0, 10.0,
                            14.0);
}

SystemSpec
ga102Hbm(const TechDb &tech, int stacks, int tiers_per_stack)
{
    requireConfig(stacks >= 1, "need at least one memory stack");
    requireConfig(tiers_per_stack >= 2,
                  "stacks need at least two tiers");

    const SystemSpec three =
        makeThreeChiplet("GA102-hbm", ga102Blocks(), tech, 7.0,
                         10.0, 14.0);

    SystemSpec system;
    system.name = "GA102-hbm";
    system.chiplets.push_back(three.chiplet("digital"));
    system.chiplets.push_back(three.chiplet("analog"));

    const Chiplet &memory = three.chiplet("memory");
    const int dies = stacks * tiers_per_stack;
    for (int s = 0; s < stacks; ++s) {
        for (int t = 0; t < tiers_per_stack; ++t) {
            Chiplet die = memory;
            die.name = "hbm" + std::to_string(s) + "-t" +
                       std::to_string(t);
            die.transistorsMtr = memory.transistorsMtr / dies;
            die.stackGroup = "hbm" + std::to_string(s);
            // Commodity DRAM/SRAM stack dies: one design, volume
            // manufactured.
            die.reused = s > 0 || t > 0;
            system.chiplets.push_back(die);
        }
    }
    return system;
}

OperatingSpec
ga102Operating()
{
    // Calibrated to the paper's anchor: Euse ~ 228 kWh over a
    // 2-year lifetime (~130 W average at a 10% duty cycle), with
    // the analytical Eq. 14 model active so node mixes shift Cop.
    OperatingSpec spec;
    spec.lifetimeYears = 2.0;
    spec.dutyCycle = 0.10;
    spec.avgFrequencyHz = 0.6e9;
    spec.switchingActivity = 0.10;
    spec.useIntensityGPerKwh = 700.0;
    return spec;
}

SystemSpec
a15Monolithic(const TechDb &tech, double node_nm)
{
    return makeMonolithic("A15-mono", a15Blocks(), tech, node_nm);
}

SystemSpec
a15ThreeChiplet(const TechDb &tech, double digital_nm,
                double memory_nm, double analog_nm)
{
    return makeThreeChiplet("A15-3c", a15Blocks(), tech, digital_nm,
                            memory_nm, analog_nm);
}

OperatingSpec
a15Operating()
{
    // Battery-rating path (Sec. III-F): use energy follows from
    // battery capacity and recharge frequency; the SoC's share
    // lands the embodied/operational split near the 80/20 the
    // paper validates against Apple's product report.
    OperatingSpec spec;
    spec.lifetimeYears = 3.0;
    spec.dutyCycle = 0.15;
    spec.useIntensityGPerKwh = 700.0;
    spec.annualEnergyKwh = 0.8;
    return spec;
}

SystemSpec
emrTwoChiplet(const TechDb &tech, double node_nm)
{
    SocBlocks die = emrDieBlocks();

    SystemSpec system;
    system.name = "EMR-2c";
    // Each EMR compute die is one chiplet; its mixed content is
    // folded into a single chiplet whose area at the native node
    // matches the die.
    Chiplet die_chiplet = Chiplet::fromArea(
        "compute0", DesignType::Logic, node_nm,
        die.totalAreaMm2(), tech);
    system.chiplets.push_back(die_chiplet);
    die_chiplet.name = "compute1";
    die_chiplet.reused = true; // identical twin: one design effort
    system.chiplets.push_back(die_chiplet);
    return system;
}

SystemSpec
emrMonolithic(const TechDb &tech, double node_nm)
{
    SocBlocks die = emrDieBlocks();
    SocBlocks both = die;
    both.logicAreaMm2 *= 2.0;
    both.memoryAreaMm2 *= 2.0;
    both.analogAreaMm2 *= 2.0;
    return makeMonolithic("EMR-mono", both, tech, node_nm);
}

OperatingSpec
emrOperating()
{
    // Server-class profile: high duty cycle, multi-year life;
    // operation dominates embodied (Sec. V-A(4)).
    OperatingSpec spec;
    spec.lifetimeYears = 3.0;
    spec.dutyCycle = 0.30;
    spec.avgFrequencyHz = 0.6e9;
    spec.switchingActivity = 0.10;
    spec.useIntensityGPerKwh = 700.0;
    return spec;
}

SystemSpec
serverMultiDie(const TechDb &tech, int compute_dies,
               double node_nm)
{
    requireConfig(compute_dies >= 2,
                  "server part needs at least two compute dies");

    SystemSpec system;
    system.name = "SRV-" + std::to_string(compute_dies) + "d";

    // Identical compute dies: one design effort, the twins reuse
    // it (the EMR pattern scaled out).
    const Chiplet compute = Chiplet::fromArea(
        "compute0", DesignType::Logic, node_nm,
        emrDieBlocks().totalAreaMm2(), tech);
    system.chiplets.push_back(compute);
    for (int i = 1; i < compute_dies; ++i) {
        Chiplet twin = compute;
        twin.name = "compute" + std::to_string(i);
        twin.reused = true;
        system.chiplets.push_back(twin);
    }

    // DDR/PCIe/CXL PHY ring on a mature node.
    system.chiplets.push_back(Chiplet::fromArea(
        "io-hub", DesignType::Analog, 14.0, 160.0, tech));
    // Shared memory-side cache die.
    system.chiplets.push_back(Chiplet::fromArea(
        "msc", DesignType::Memory, 10.0, 120.0, tech));
    return system;
}

OperatingSpec
serverOperating()
{
    // Always-provisioned server fleet: multi-year life at a high
    // duty cycle, so operation dominates embodied (Sec. V-A(4)).
    OperatingSpec spec;
    spec.lifetimeYears = 4.0;
    spec.dutyCycle = 0.50;
    spec.avgFrequencyHz = 0.6e9;
    spec.switchingActivity = 0.10;
    spec.useIntensityGPerKwh = 700.0;
    return spec;
}

SystemSpec
hbmAccelerator(const TechDb &tech, int stacks,
               int tiers_per_stack)
{
    requireConfig(stacks >= 1, "need at least one HBM stack");
    requireConfig(tiers_per_stack >= 2,
                  "stacks need at least two tiers");

    SystemSpec system;
    system.name = "HBM-ACCEL-" + std::to_string(stacks) + "x" +
                  std::to_string(tiers_per_stack);

    // Training-accelerator-class compute die.
    system.chiplets.push_back(Chiplet::fromArea(
        "compute", DesignType::Logic, 7.0, 330.0, tech));
    // SerDes / host-IO die on a mature node.
    system.chiplets.push_back(Chiplet::fromArea(
        "serdes-io", DesignType::Analog, 14.0, 60.0, tech));

    // Commodity DRAM towers: every die reused (designed and
    // volume-amortized by the memory vendor).
    for (int s = 0; s < stacks; ++s) {
        for (int t = 0; t < tiers_per_stack; ++t) {
            Chiplet die = Chiplet::fromArea(
                "hbm" + std::to_string(s) + "-t" +
                    std::to_string(t),
                DesignType::Memory, 10.0, 70.0, tech);
            die.stackGroup = "hbm" + std::to_string(s);
            die.reused = true;
            system.chiplets.push_back(die);
        }
    }
    return system;
}

OperatingSpec
hbmAcceleratorOperating()
{
    // Rated-power path: the accelerator runs near its provisioned
    // draw whenever it is on.
    OperatingSpec spec;
    spec.lifetimeYears = 3.0;
    spec.dutyCycle = 0.50;
    spec.useIntensityGPerKwh = 700.0;
    spec.avgPowerW = 450.0;
    return spec;
}

SystemSpec
fpgaPcaAccelerator(const TechDb &tech, double pe_node_nm)
{
    SystemSpec system;
    system.name = "FPGA-PCA";

    // Systolic MAC/SVD PE array -- the scalable compute fabric of
    // the MANOJAVAM accelerator, sized like a mid-range FPGA
    // compute region.
    system.chiplets.push_back(Chiplet::fromArea(
        "pe-array", DesignType::Logic, pe_node_nm, 140.0, tech));
    // On-chip working-set buffers (the BRAM column equivalent):
    // a commodity memory die one node behind the PE array.
    system.chiplets.push_back(Chiplet::fromArea(
        "bram", DesignType::Memory, 10.0, 90.0, tech));
    // Host-link transceivers and DDR PHYs on a mature analog
    // node (the part of an FPGA that never scales).
    system.chiplets.push_back(Chiplet::fromArea(
        "io-xcvr", DesignType::Analog, 14.0, 70.0, tech));
    return system;
}

OperatingSpec
fpgaPcaOperating()
{
    // Accelerator card in a shared analytics cluster: rated-power
    // path at a moderate duty cycle.
    OperatingSpec spec;
    spec.lifetimeYears = 3.0;
    spec.dutyCycle = 0.35;
    spec.useIntensityGPerKwh = 700.0;
    spec.avgPowerW = 60.0;
    return spec;
}

SystemSpec
riscvManycore64(const TechDb &tech, double node_nm)
{
    SystemSpec system;
    system.name = "RV64-MANYCORE";

    // Four identical 16-core RISC-V cluster dies: one design
    // effort, the twins reuse it (the SG2044's 64 cores split
    // along its cluster boundaries).
    const Chiplet cluster = Chiplet::fromArea(
        "cluster0", DesignType::Logic, node_nm, 95.0, tech);
    system.chiplets.push_back(cluster);
    for (int i = 1; i < 4; ++i) {
        Chiplet twin = cluster;
        twin.name = "cluster" + std::to_string(i);
        twin.reused = true;
        system.chiplets.push_back(twin);
    }

    // DDR5/PCIe PHY ring on a mature node.
    system.chiplets.push_back(Chiplet::fromArea(
        "io-hub", DesignType::Analog, 14.0, 140.0, tech));
    // Shared system-level cache die.
    system.chiplets.push_back(Chiplet::fromArea(
        "msc", DesignType::Memory, 10.0, 110.0, tech));
    return system;
}

OperatingSpec
riscvManycore64Operating()
{
    // Always-on server SoC: multi-year life at a high duty
    // cycle, so operation dominates embodied.
    OperatingSpec spec;
    spec.lifetimeYears = 5.0;
    spec.dutyCycle = 0.60;
    spec.avgFrequencyHz = 2.0e9;
    spec.switchingActivity = 0.10;
    spec.useIntensityGPerKwh = 700.0;
    return spec;
}

namespace {

/** Latency/power tables for the accelerator study (Yang et al.). */
struct ArvrStudyRow
{
    double latencyMs;
    double avgPowerW;
};

ArvrStudyRow
arvrStudyRow(const std::string &series, int tiers)
{
    // More stacked SRAM shortens inference latency and improves
    // energy efficiency (operational power), Sec. VI(1).
    static const ArvrStudyRow k1[] = {{1.60, 0.85},
                                      {1.05, 0.70},
                                      {0.80, 0.62},
                                      {0.65, 0.58}};
    static const ArvrStudyRow k2[] = {{0.90, 1.10},
                                      {0.60, 0.92},
                                      {0.47, 0.83},
                                      {0.40, 0.78}};
    requireConfig(tiers >= 1 && tiers <= 4,
                  "accelerator supports 1 - 4 SRAM tiers");
    if (series == "1K")
        return k1[tiers - 1];
    if (series == "2K")
        return k2[tiers - 1];
    throw ConfigError("unknown accelerator series: " + series);
}

} // namespace

ArvrPoint
arvrAccelerator(const TechDb &tech, const std::string &series,
                int sram_tiers)
{
    requireConfig(sram_tiers >= 1 && sram_tiers <= 4,
                  "accelerator supports 1 - 4 SRAM tiers");

    ArvrPoint point;
    point.series = series;
    point.sramTiers = sram_tiers;
    point.mbPerDie = series == "1K" ? 2.0 : 4.0;
    point.totalMb = point.mbPerDie * sram_tiers;

    const double compute_area = series == "1K" ? 5.0 : 9.0;
    const double sram_area = series == "1K" ? 2.2 : 4.2;

    SystemSpec system;
    system.name = "ARVR-" + series + "-" +
                  std::to_string(sram_tiers) + "t";
    system.chiplets.push_back(Chiplet::fromArea(
        "compute", DesignType::Logic, 7.0, compute_area, tech));
    for (int i = 0; i < sram_tiers; ++i) {
        Chiplet sram = Chiplet::fromArea(
            "sram" + std::to_string(i), DesignType::Memory, 7.0,
            sram_area, tech);
        sram.reused = true; // commodity SRAM die, design amortized
        system.chiplets.push_back(sram);
    }
    point.system = system;
    point.footprintMm2 = std::max(compute_area, sram_area);

    const int dimension = sram_tiers == 1 ? 2 : 3;
    const int mb = static_cast<int>(point.totalMb);
    point.label = (dimension == 2 ? "2D-" : "3D-") + series + "-" +
                  std::to_string(mb) + "MB";

    const ArvrStudyRow row = arvrStudyRow(series, sram_tiers);
    point.latencyMs = row.latencyMs;
    point.avgPowerW = row.avgPowerW;
    return point;
}

std::vector<ArvrPoint>
arvrSweep(const TechDb &tech)
{
    std::vector<ArvrPoint> points;
    for (const char *series : {"1K", "2K"})
        for (int tiers = 1; tiers <= 4; ++tiers)
            points.push_back(
                arvrAccelerator(tech, series, tiers));
    return points;
}

OperatingSpec
arvrOperating(const ArvrPoint &point)
{
    // Wearable profile: the study reports average power directly;
    // Ctot is evaluated over a 2-year lifetime (Sec. VI(1)). The
    // low duty cycle (~1 h/day of active use) makes the embodied
    // carbon dominate, as in the paper's Fig. 13.
    OperatingSpec spec;
    spec.lifetimeYears = 2.0;
    spec.dutyCycle = 0.03;
    spec.useIntensityGPerKwh = 700.0;
    spec.avgPowerW = point.avgPowerW;
    return spec;
}

} // namespace ecochip::testcases
