/**
 * @file
 * SoC-to-chiplet disaggregation (paper Sec. IV(2), Sec. VI).
 *
 * A monolithic SoC is described by its logic/memory/analog block
 * areas at a reference node (obtained from die shots in the paper).
 * These helpers build the disaggregated variants the evaluation
 * uses: the 3-chiplet (digital, memory, analog) split "inspired by
 * [10]", the 4-chiplet split of Fig. 2(b) (digital halved), and
 * N-way splits of the digital block (Figs. 9-10, 15(b)).
 */

#ifndef ECOCHIP_CORE_DISAGGREGATE_H
#define ECOCHIP_CORE_DISAGGREGATE_H

#include <string>
#include <vector>

#include "chiplet/chiplet.h"
#include "tech/tech_db.h"

namespace ecochip {

/** Block-area breakdown of a monolithic SoC at a reference node. */
struct SocBlocks
{
    /** Digital logic block area (mm^2). */
    double logicAreaMm2 = 0.0;

    /** SRAM / memory-controller block area (mm^2). */
    double memoryAreaMm2 = 0.0;

    /** Analog / IO block area (mm^2). */
    double analogAreaMm2 = 0.0;

    /** Node the areas were measured at (nm). */
    double refNodeNm = 7.0;

    /** Total die area (mm^2). */
    double
    totalAreaMm2() const
    {
        return logicAreaMm2 + memoryAreaMm2 + analogAreaMm2;
    }
};

/**
 * Build the monolithic system: all three blocks on one die at
 * @p node_nm (the blocks' transistor content is derived at the
 * reference node and re-targeted).
 */
SystemSpec makeMonolithic(const std::string &name,
                          const SocBlocks &blocks,
                          const TechDb &tech, double node_nm);

/**
 * Build the paper's canonical 3-chiplet split, with the
 * (digital, memory, analog) chiplets in the given nodes -- the
 * three-tuple convention of Sec. IV(2).
 */
SystemSpec makeThreeChiplet(const std::string &name,
                            const SocBlocks &blocks,
                            const TechDb &tech, double digital_nm,
                            double memory_nm, double analog_nm);

/**
 * Split the digital block into @p digital_count equal chiplets,
 * with memory and analog on their own chiplets (Fig. 10's Nc
 * sweep: total chiplet count = digital_count + 2).
 */
SystemSpec makeDigitalSplit(const std::string &name,
                            const SocBlocks &blocks,
                            const TechDb &tech, int digital_count,
                            double digital_nm, double memory_nm,
                            double analog_nm);

/**
 * Split a pure digital block of @p area_mm2 at @p node_nm into
 * @p count equal chiplets (Fig. 9's packaging-space testcase: the
 * GA102's 500 mm^2 digital logic).
 */
SystemSpec makeUniformSplit(const std::string &name,
                            double area_mm2, double node_nm,
                            int count, const TechDb &tech);

} // namespace ecochip

#endif // ECOCHIP_CORE_DISAGGREGATE_H
