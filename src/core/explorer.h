/**
 * @file
 * Technology-space exploration (paper Sec. V-A): sweep every
 * combination of candidate nodes across a system's chiplets and
 * rank configurations by carbon.
 */

#ifndef ECOCHIP_CORE_EXPLORER_H
#define ECOCHIP_CORE_EXPLORER_H

#include <functional>
#include <string>
#include <vector>

#include "core/ecochip.h"

namespace ecochip {

/** One evaluated node assignment. */
struct ExplorationPoint
{
    /** Node per chiplet, in chiplet order (the "three-tuple"). */
    std::vector<double> nodesNm;

    /** The retargeted system. */
    SystemSpec system;

    /** Full carbon report of the configuration. */
    CarbonReport report;

    /** "(7,10,14)"-style label. */
    std::string label() const;
};

/**
 * Exhaustive cartesian sweep of candidate nodes over chiplets.
 *
 * The sweep size is |candidates|^|chiplets|; the paper's studies
 * use 3 candidate nodes over 3 chiplets (27 points).
 */
class TechSpaceExplorer
{
  public:
    /**
     * @param estimator Configured estimator (must outlive the
     *        explorer).
     */
    explicit TechSpaceExplorer(const EcoChip &estimator)
        : estimator_(&estimator)
    {}

    /**
     * Evaluate every node assignment.
     *
     * @param system Base system (chiplet content fixed).
     * @param candidate_nodes_nm Candidate nodes for every chiplet.
     * @return One point per assignment, in lexicographic order.
     */
    std::vector<ExplorationPoint>
    sweep(const SystemSpec &system,
          const std::vector<double> &candidate_nodes_nm) const;

    /**
     * Evaluate with per-chiplet candidate lists (e.g. pinning the
     * digital chiplet to advanced nodes only).
     */
    std::vector<ExplorationPoint>
    sweep(const SystemSpec &system,
          const std::vector<std::vector<double>>
              &candidates_per_chiplet) const;

    /** The point minimizing embodied carbon. */
    static const ExplorationPoint &
    bestByEmbodied(const std::vector<ExplorationPoint> &points);

    /** The point minimizing total carbon. */
    static const ExplorationPoint &
    bestByTotal(const std::vector<ExplorationPoint> &points);

  private:
    const EcoChip *estimator_;
};

} // namespace ecochip

#endif // ECOCHIP_CORE_EXPLORER_H
