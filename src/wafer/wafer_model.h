/**
 * @file
 * Wafer geometry: dies per wafer and amortized silicon wastage
 * (paper Eqs. 7-8, Fig. 3).
 */

#ifndef ECOCHIP_WAFER_WAFER_MODEL_H
#define ECOCHIP_WAFER_WAFER_MODEL_H

namespace ecochip {

/**
 * A circular wafer of a given diameter.
 *
 * The die cannot occupy zones within its half-diagonal of the wafer
 * edge, reducing the usable diameter by Ld / sqrt(2) on each side
 * (Eq. 7). Everything outside the extracted dies is wasted and
 * amortized per die (Eq. 8).
 */
class WaferModel
{
  public:
    /** Default wafer diameter used in the paper's results (mm). */
    static constexpr double kDefaultDiameterMm = 450.0;

    /**
     * @param diameter_mm Wafer diameter in mm (Table I: 25 - 450).
     */
    explicit WaferModel(double diameter_mm = kDefaultDiameterMm);

    /** Wafer diameter in mm. */
    double diameterMm() const { return diameterMm_; }

    /** Total wafer area in mm^2. */
    double areaMm2() const;

    /**
     * Dies per wafer (Eq. 7):
     *   DPW = floor(pi * (D/2 - Ld/sqrt(2))^2 / Adie)
     * where Ld = sqrt(Adie) for a square die.
     *
     * @param die_area_mm2 Die area in mm^2.
     * @return Whole dies extracted per wafer (0 when the die cannot
     *         fit).
     */
    long diesPerWafer(double die_area_mm2) const;

    /**
     * Amortized wasted silicon per die (Eq. 8):
     *   Awasted = (Awafer - DPW * Adie) / DPW
     *
     * @param die_area_mm2 Die area in mm^2.
     * @return Wasted area per die in mm^2.
     * @throws ConfigError when no die fits the wafer.
     */
    double wastedAreaPerDieMm2(double die_area_mm2) const;

    /** Fraction of the wafer area that becomes product dies. */
    double utilization(double die_area_mm2) const;

  private:
    double diameterMm_;
};

} // namespace ecochip

#endif // ECOCHIP_WAFER_WAFER_MODEL_H
