#include "wafer/wafer_model.h"

#include <cmath>
#include <numbers>

#include "support/error.h"

namespace ecochip {

WaferModel::WaferModel(double diameter_mm)
    : diameterMm_(diameter_mm)
{
    requireConfig(diameter_mm > 0.0,
                  "wafer diameter must be positive");
}

double
WaferModel::areaMm2() const
{
    const double r = diameterMm_ / 2.0;
    return std::numbers::pi * r * r;
}

long
WaferModel::diesPerWafer(double die_area_mm2) const
{
    requireConfig(die_area_mm2 > 0.0, "die area must be positive");
    const double side_mm = std::sqrt(die_area_mm2);
    const double usable_radius_mm =
        diameterMm_ / 2.0 - side_mm / std::numbers::sqrt2;
    if (usable_radius_mm <= 0.0)
        return 0;
    const double usable_area_mm2 =
        std::numbers::pi * usable_radius_mm * usable_radius_mm;
    return static_cast<long>(
        std::floor(usable_area_mm2 / die_area_mm2));
}

double
WaferModel::wastedAreaPerDieMm2(double die_area_mm2) const
{
    const long dpw = diesPerWafer(die_area_mm2);
    requireConfig(dpw > 0, "die does not fit on the wafer");
    return (areaMm2() - static_cast<double>(dpw) * die_area_mm2) /
           static_cast<double>(dpw);
}

double
WaferModel::utilization(double die_area_mm2) const
{
    const long dpw = diesPerWafer(die_area_mm2);
    if (dpw <= 0)
        return 0.0;
    return static_cast<double>(dpw) * die_area_mm2 / areaMm2();
}

} // namespace ecochip
