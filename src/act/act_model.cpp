#include "act/act_model.h"

#include "support/error.h"
#include "support/units.h"

namespace ecochip {

ActModel::ActModel(const TechDb &tech,
                   double fab_intensity_g_per_kwh)
    : tech_(&tech), yieldModel_(tech),
      fabIntensityGPerKwh_(fab_intensity_g_per_kwh)
{
    requireConfig(fab_intensity_g_per_kwh > 0.0,
                  "fab carbon intensity must be positive");
}

double
ActModel::dieCo2Kg(const Chiplet &chiplet) const
{
    const double area_mm2 = chiplet.areaMm2(*tech_);
    const double node = chiplet.nodeNm;
    const double yield = yieldModel_.dieYield(area_mm2, node);

    // ACT's CFPA: fab energy + gas + materials per area, without
    // the equipment derate ECO-CHIP applies.
    const double cfpa_kg_per_cm2 =
        (fabIntensityGPerKwh_ * units::kKgPerG *
             tech_->epaKwhPerCm2(node) +
         tech_->cgasKgPerCm2(node) +
         tech_->cmaterialKgPerCm2(node)) /
        yield;
    return cfpa_kg_per_cm2 * area_mm2 * units::kCm2PerMm2;
}

double
ActModel::embodiedCo2Kg(const SystemSpec &system) const
{
    requireConfig(!system.chiplets.empty(),
                  "system has no chiplets");
    double total = kPackageCo2Kg;
    if (system.singleDie) {
        double area_mm2 = 0.0;
        for (const auto &block : system.chiplets)
            area_mm2 += block.areaMm2(*tech_);
        const double node = system.monolithicNodeNm();
        const double yield = yieldModel_.dieYield(area_mm2, node);
        const double cfpa_kg_per_cm2 =
            (fabIntensityGPerKwh_ * units::kKgPerG *
                 tech_->epaKwhPerCm2(node) +
             tech_->cgasKgPerCm2(node) +
             tech_->cmaterialKgPerCm2(node)) /
            yield;
        return total +
               cfpa_kg_per_cm2 * area_mm2 * units::kCm2PerMm2;
    }
    for (const auto &chiplet : system.chiplets)
        total += dieCo2Kg(chiplet);
    return total;
}

} // namespace ecochip
